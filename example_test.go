package hybridtlb_test

import (
	"fmt"

	"hybridtlb"
)

// Build an anchor-TLB system, map a fragmented region, and translate.
func ExampleNewSystem() {
	sys, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		panic(err)
	}
	err = sys.Map([]hybridtlb.Chunk{
		{VirtPage: 0x10000, PhysPage: 0x80000, Pages: 4096},
		{VirtPage: 0x11000, PhysPage: 0xC0035, Pages: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("anchor distance:", sys.AnchorDistance())

	pa, ok := sys.Translate(0x10800<<12 | 0xabc)
	fmt.Printf("PA=%#x ok=%v\n", pa, ok)
	// Output:
	// anchor distance: 4096
	// PA=0x80800abc ok=true
}

// Algorithm 1: select the anchor distance from a contiguity histogram.
func ExampleSelectAnchorDistance() {
	// A mapping of one thousand 64 KiB chunks (16 pages each).
	d := hybridtlb.SelectAnchorDistance(map[uint64]uint64{16: 1000})
	fmt.Println("distance:", d)
	// Output:
	// distance: 16
}

// Run a paper-style experiment: one benchmark, one mapping scenario, one
// translation scheme.
func ExampleSimulate() {
	res, err := hybridtlb.Simulate(hybridtlb.SimulationConfig{
		Scheme:         hybridtlb.SchemeAnchor,
		Workload:       "gups",
		Scenario:       hybridtlb.ScenarioMax,
		Accesses:       50_000,
		FootprintPages: 1 << 14,
		Seed:           1,
	})
	if err != nil {
		panic(err)
	}
	// On a fully contiguous mapping a single anchor distance covers the
	// whole footprint, so after warmup the TLB never misses.
	fmt.Println("anchor distance:", res.AnchorDistance)
	fmt.Println("misses:", res.Stats.Misses)
	// Output:
	// anchor distance: 16384
	// misses: 0
}

// Per-region anchor distances (the paper's Section 4.2 extension).
func ExampleSystem_MapRegions() {
	sys, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		panic(err)
	}
	// A fine-grained arena followed by one huge region.
	chunks := []hybridtlb.Chunk{}
	vp, pp := uint64(0x10000), uint64(1<<22)
	for i := 0; i < 1024; i++ {
		chunks = append(chunks, hybridtlb.Chunk{VirtPage: vp, PhysPage: pp, Pages: 4})
		vp += 4
		pp += 4 + 512
	}
	chunks = append(chunks, hybridtlb.Chunk{VirtPage: vp, PhysPage: 1 << 27, Pages: 1 << 14})
	if err := sys.MapRegions(chunks); err != nil {
		panic(err)
	}
	for _, r := range sys.Regions() {
		fmt.Printf("region [%#x,%#x) distance %d\n", r.StartPage, r.EndPage, r.Distance)
	}
	// Output:
	// region [0x10000,0x11000) distance 4
	// region [0x11000,0x15000) distance 16384
}
