package hybridtlb_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark runs a scaled version of its
// experiment per iteration and reports the experiment's headline quantity
// through b.ReportMetric, so `go test -bench=. -benchmem` both times the
// harness and regenerates the result shapes. The full-scale rows are
// printed by cmd/experiments.
//
// (External test package: the server benchmarks import internal/server,
// which itself imports hybridtlb — an in-package test file would cycle.)

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hybridtlb"
	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/report"
	"hybridtlb/internal/server"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/sweep"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

// benchOpts keeps one benchmark iteration around a second.
func benchOpts() report.Options {
	return report.Options{
		Accesses:        50_000,
		Seed:            42,
		Workloads:       []string{"gups", "omnetpp", "canneal"},
		SkipStaticIdeal: true,
	}
}

func benchCfg(b *testing.B, wl string, sc mapping.Scenario, scheme mmu.Scheme) sim.Config {
	b.Helper()
	spec, err := workload.ByName(wl)
	if err != nil {
		b.Fatal(err)
	}
	return sim.Config{
		Scheme:         scheme,
		Workload:       spec,
		Scenario:       sc,
		FootprintPages: 1 << 16,
		Accesses:       100_000,
		Seed:           42,
		Pressure:       0.15,
	}
}

// BenchmarkFig1ChunkCDF regenerates Figure 1: chunk-size CDFs of the
// demand mapping under increasing background pressure.
func BenchmarkFig1ChunkCDF(b *testing.B) {
	var smallFrac float64
	for i := 0; i < b.N; i++ {
		series, err := report.Fig1Data(1<<16, 42)
		if err != nil {
			b.Fatal(err)
		}
		last := series[len(series)-1]
		for _, pt := range last.CDF {
			if pt.ChunkPages <= 16 {
				smallFrac = pt.CumFraction
			}
		}
	}
	b.ReportMetric(smallFrac, "highPressureSmallChunkFrac")
}

// BenchmarkFig2PriorSchemes regenerates the motivation figure: relative
// misses of cluster and RMM at low vs high contiguity, exposing the
// crossover the paper builds on.
func BenchmarkFig2PriorSchemes(b *testing.B) {
	var clusterLow, rmmLow, rmmHigh float64
	for i := 0; i < b.N; i++ {
		for _, sc := range []mapping.Scenario{mapping.Low, mapping.High} {
			base, err := sim.Run(benchCfg(b, "omnetpp", sc, mmu.Base))
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range []mmu.Scheme{mmu.Cluster, mmu.RMM} {
				res, err := sim.Run(benchCfg(b, "omnetpp", sc, s))
				if err != nil {
					b.Fatal(err)
				}
				switch {
				case sc == mapping.Low && s == mmu.Cluster:
					clusterLow = res.RelativeMisses(base)
				case sc == mapping.Low && s == mmu.RMM:
					rmmLow = res.RelativeMisses(base)
				case sc == mapping.High && s == mmu.RMM:
					rmmHigh = res.RelativeMisses(base)
				}
			}
		}
	}
	b.ReportMetric(clusterLow, "clusterLow%")
	b.ReportMetric(rmmLow, "rmmLow%")
	b.ReportMetric(rmmHigh, "rmmHigh%")
}

// benchMissFigure runs one scenario's scheme matrix and reports the
// dynamic-anchor mean.
func benchMissFigure(b *testing.B, sc mapping.Scenario) {
	b.Helper()
	var dyn, bestPrior float64
	for i := 0; i < b.N; i++ {
		fig, err := report.MissesByScenario(sc, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		dyn = fig.Mean("dynamic")
		bestPrior = 1e18
		for _, col := range []string{"thp", "cluster", "cl.2mb", "rmm"} {
			if m := fig.Mean(col); m < bestPrior {
				bestPrior = m
			}
		}
	}
	b.ReportMetric(dyn, "dynamicMean%")
	b.ReportMetric(bestPrior, "bestPriorMean%")
}

// BenchmarkFig7Demand regenerates Figure 7 (demand paging misses).
func BenchmarkFig7Demand(b *testing.B) { benchMissFigure(b, mapping.Demand) }

// BenchmarkFig8Medium regenerates Figure 8 (medium contiguity misses).
func BenchmarkFig8Medium(b *testing.B) { benchMissFigure(b, mapping.Medium) }

// BenchmarkFig9AllMappings regenerates Figure 9 (mean misses over all six
// mapping scenarios).
func BenchmarkFig9AllMappings(b *testing.B) {
	var grand float64
	for i := 0; i < b.N; i++ {
		figs, err := report.Fig9Data(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		grand = 0
		for _, fig := range figs {
			grand += fig.Mean("dynamic")
		}
		grand /= float64(len(figs))
	}
	b.ReportMetric(grand, "dynamicGrandMean%")
}

// BenchmarkTab5L2Breakdown regenerates Table 5: the anchor scheme's L2
// regular-hit / anchor-hit / miss split.
func BenchmarkTab5L2Breakdown(b *testing.B) {
	var anchorHit float64
	for i := 0; i < b.N; i++ {
		rows, err := report.Tab5Data(mapping.Medium, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		anchorHit = 0
		for _, r := range rows {
			anchorHit += r.AnchorHit
		}
		anchorHit /= float64(len(rows))
	}
	b.ReportMetric(anchorHit*100, "anchorHit%")
}

// BenchmarkTab6DistanceSelection regenerates Table 6: Algorithm 1's
// selected distances across mappings.
func BenchmarkTab6DistanceSelection(b *testing.B) {
	var lowDist, maxDist float64
	for i := 0; i < b.N; i++ {
		data, err := report.Tab6Data(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, per := range data {
			lowDist = float64(per[mapping.Low])
			maxDist = float64(per[mapping.Max])
			break
		}
	}
	b.ReportMetric(lowDist, "lowDist")
	b.ReportMetric(maxDist, "maxDist")
}

// benchCPI runs a CPI figure and reports the dynamic column's mean total.
func benchCPI(b *testing.B, sc mapping.Scenario) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		data, _, err := report.CPIFigure(sc, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, per := range data {
			total += per["dynamic"].Total()
		}
		total /= float64(len(data))
	}
	b.ReportMetric(total, "dynamicCPI")
}

// BenchmarkFig10CPIDemand regenerates Figure 10 (translation CPI, demand).
func BenchmarkFig10CPIDemand(b *testing.B) { benchCPI(b, mapping.Demand) }

// BenchmarkFig11CPIMedium regenerates Figure 11 (translation CPI, medium).
func BenchmarkFig11CPIMedium(b *testing.B) { benchCPI(b, mapping.Medium) }

// BenchmarkDistanceChangeSweep regenerates the Section 3.3 experiment: the
// cost of re-anchoring a mapping at distances 8 / 64 / 512.
func BenchmarkDistanceChangeSweep(b *testing.B) {
	var d8ms float64
	for i := 0; i < b.N; i++ {
		rows, err := report.SweepData(1 << 17)
		if err != nil {
			b.Fatal(err)
		}
		d8ms = rows[0].Millis
	}
	b.ReportMetric(d8ms, "d8SweepMs(1GiB)")
}

// BenchmarkAblationFixedDistance compares the dynamic selection against a
// deliberately wrong fixed distance, quantifying what Algorithm 1 buys.
func BenchmarkAblationFixedDistance(b *testing.B) {
	var dynMisses, fixedMisses float64
	for i := 0; i < b.N; i++ {
		dyn, err := sim.Run(benchCfg(b, "omnetpp", mapping.Max, mmu.Anchor))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg(b, "omnetpp", mapping.Max, mmu.Anchor)
		cfg.FixedDistance = 4 // far too fine for a fully contiguous mapping
		fixed, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dynMisses = float64(dyn.Stats.Misses())
		fixedMisses = float64(fixed.Stats.Misses())
	}
	b.ReportMetric(dynMisses, "dynamicMisses")
	b.ReportMetric(fixedMisses, "fixed4Misses")
}

// BenchmarkAblationCostModel compares the three distance-selection cost
// models by the misses they actually produce: the entry-count default
// (reproduces Table 6), the coverage-weighted arithmetic written in the
// Algorithm 1 listing, and this repository's capacity-aware extension.
func BenchmarkAblationCostModel(b *testing.B) {
	var entry, weighted, capac float64
	for i := 0; i < b.N; i++ {
		for _, m := range []core.CostModel{core.CostEntryCount, core.CostCoverageWeighted, core.CostCapacityAware} {
			cfg := benchCfg(b, "canneal", mapping.Medium, mmu.Anchor)
			cfg.CostModel = m
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			switch m {
			case core.CostEntryCount:
				entry = float64(res.Stats.Misses())
			case core.CostCoverageWeighted:
				weighted = float64(res.Stats.Misses())
			case core.CostCapacityAware:
				capac = float64(res.Stats.Misses())
			}
		}
	}
	b.ReportMetric(entry, "entryCountMisses")
	b.ReportMetric(weighted, "coverageWeightedMisses")
	b.ReportMetric(capac, "capacityAwareMisses")
}

// BenchmarkExtensionMultiRegion measures the Section 4.2 multi-region
// anchors against the single process-wide distance on the medium mapping.
func BenchmarkExtensionMultiRegion(b *testing.B) {
	var single, multi float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(b, "canneal", mapping.Medium, mmu.Anchor)
		s, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.MultiRegionAnchors = true
		m, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		single = float64(s.Stats.Misses())
		multi = float64(m.Stats.Misses())
	}
	b.ReportMetric(single, "singleDistMisses")
	b.ReportMetric(multi, "multiRegionMisses")
}

// BenchmarkAblationSharedVsPartitioned contrasts coalesced entries in a
// statically partitioned L2 (the cluster scheme) against the same
// coalescing logic sharing one L2 (CoLT) — the partitioning cost the
// paper calls out for cactusADM.
func BenchmarkAblationSharedVsPartitioned(b *testing.B) {
	var partitioned, shared float64
	for i := 0; i < b.N; i++ {
		p, err := sim.Run(benchCfg(b, "omnetpp", mapping.Low, mmu.Cluster))
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.Run(benchCfg(b, "omnetpp", mapping.Low, mmu.CoLT))
		if err != nil {
			b.Fatal(err)
		}
		partitioned = float64(p.Stats.Misses())
		shared = float64(s.Stats.Misses())
	}
	b.ReportMetric(partitioned, "partitionedMisses")
	b.ReportMetric(shared, "sharedMisses")
}

// BenchmarkAblationParallelAnchorLookup models making the anchor probe a
// parallel (same-cycle) L2 access instead of a serialized second access:
// the 8-cycle coalesced latency drops to the regular 7.
func BenchmarkAblationParallelAnchorLookup(b *testing.B) {
	var serialCPI, parallelCPI float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(b, "omnetpp", mapping.Medium, mmu.Anchor)
		serial, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hw := mmu.DefaultConfig()
		hw.CoalescedHitCycles = hw.L2HitCycles
		cfg.HW = hw
		parallel, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		serialCPI = serial.CPI(mmu.DefaultConfig()).Total()
		parallelCPI = parallel.CPI(hw).Total()
	}
	b.ReportMetric(serialCPI, "serialCPI")
	b.ReportMetric(parallelCPI, "parallelCPI")
}

// BenchmarkAblationEpochLength measures how the periodic re-selection
// epoch affects a run with a stable mapping (the check is nearly free
// because the selection never changes — the paper's stability claim).
func BenchmarkAblationEpochLength(b *testing.B) {
	for _, epoch := range []uint64{100_000, 10_000_000} {
		name := "epoch=100k"
		if epoch == 10_000_000 {
			name = "epoch=10M"
		}
		b.Run(name, func(b *testing.B) {
			var changes float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(b, "omnetpp", mapping.Medium, mmu.Anchor)
				cfg.EpochInstructions = epoch
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				changes = float64(res.DistanceChanges)
			}
			b.ReportMetric(changes, "distanceChanges")
		})
	}
}

// BenchmarkAblationDetailedWalk contrasts the paper's flat 50-cycle walk
// latency (Table 3) with the detailed cache+PWC walk model, reporting
// each configuration's translation CPI — evidence for (or against) the
// flat-latency assumption.
func BenchmarkAblationDetailedWalk(b *testing.B) {
	var flatCPI, detailedCPI float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(b, "canneal", mapping.Medium, mmu.Anchor)
		flat, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.DetailedWalk = true
		det, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		flatCPI = float64(flat.Stats.Cycles) / float64(flat.Instructions)
		detailedCPI = float64(det.Stats.Cycles) / float64(det.Instructions)
	}
	b.ReportMetric(flatCPI, "flatWalkCPI")
	b.ReportMetric(detailedCPI, "detailedWalkCPI")
}

// hotPathSetup builds the fixture BenchmarkTranslateHotPath drives: a
// medium-contiguity mapping, the scheme's MMU, and a pre-generated gups
// record buffer (the TLB worst case, so the full probe/walk/fill flow is
// exercised) that the measured loop cycles through. All allocation
// happens here, before the timer starts.
func hotPathSetup(b *testing.B, scheme mmu.Scheme) (mmu.MMU, *osmem.Process, sim.Config, []trace.Record, []mem.VPN) {
	b.Helper()
	cfg := benchCfg(b, "gups", mapping.Medium, scheme)
	cfg.Pressure = 0
	cfg = cfg.WithDefaults()
	cl, err := mapping.Generate(cfg.Scenario, mapping.Config{
		FootprintPages: cfg.FootprintPages,
		Seed:           cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	proc := osmem.NewProcess(cfg.Scheme.Policy())
	if err := proc.InstallChunks(cl, 0); err != nil {
		b.Fatal(err)
	}
	m := mmu.New(cfg.Scheme, cfg.HW, proc)
	gen := cfg.Workload.NewGenerator(cl[0].StartVPN, cfg.FootprintPages, 1<<18, cfg.Seed)
	recs := trace.Collect(gen, 1<<18)
	vpns := make([]mem.VPN, len(recs))
	for i := range recs {
		vpns[i] = recs[i].VPN
	}
	return m, proc, cfg, recs, vpns
}

// BenchmarkTranslateHotPath measures the simulation inner loop per
// scheme: ns/op is nanoseconds per access and allocs/op is allocations
// per access (the batched pipeline must hold 0). The serial variant is
// the pre-refactor record-at-a-time drive loop — per-record warmup
// countdown, epoch check, and virtual Translate dispatch — and the
// batched variant is the segment-sliced TranslateBatch pipeline the
// drive loop now runs. `make bench-json` emits these rows as
// BENCH_pipeline.json.
func BenchmarkTranslateHotPath(b *testing.B) {
	const warmup = 1 << 14
	for _, scheme := range mmu.All() {
		b.Run(scheme.String(), func(b *testing.B) {
			b.Run("serial", func(b *testing.B) {
				m, proc, cfg, recs, _ := hotPathSetup(b, scheme)
				dynamic := cfg.Scheme.Policy().Anchors
				var sinceEpoch uint64
				warmLeft := uint64(warmup)
				pos := 0
				b.ResetTimer()
				for done := 0; done < b.N; done++ {
					rec := recs[pos]
					pos++
					if pos == len(recs) {
						pos = 0
					}
					m.Translate(rec.VPN)
					sinceEpoch += uint64(rec.Instrs)
					if warmLeft > 0 {
						warmLeft--
						if warmLeft == 0 {
							_ = m.Stats()
						}
					}
					if dynamic && sinceEpoch >= cfg.EpochInstructions {
						sinceEpoch = 0
						proc.Reselect(cfg.SweepCost)
					}
				}
			})
			b.Run("sharded", func(b *testing.B) {
				// Whole-run variant: each iteration block replays the full
				// record buffer through sim.RunTrace on the shard-parallel
				// engine, so ns/op is EFFECTIVE per-access cost including
				// mapping install, state cloning, and the fixpoint's
				// re-runs — the honest end-to-end figure a sharded
				// experiment sees. Per-access accounting: one b.N unit is
				// one access, one run covers len(recs) of them. Shard
				// spawn/merge may allocate (only the batched variant is
				// gated by -require-zero-allocs).
				_, _, cfg, recs, _ := hotPathSetup(b, scheme)
				cfg.WarmupAccesses = warmup
				cfg.Accesses = uint64(len(recs) - warmup)
				cfg.Shards = 4
				src := trace.NewSliceSource(recs)
				b.ResetTimer()
				for done := 0; done < b.N; done += len(recs) {
					src.Reset()
					if _, err := sim.RunTrace(cfg, src); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("batched", func(b *testing.B) {
				m, proc, cfg, recs, vpns := hotPathSetup(b, scheme)
				dynamic := cfg.Scheme.Policy().Anchors
				var sinceEpoch uint64
				warmLeft := uint64(warmup)
				pos := 0
				b.ResetTimer()
				for done := 0; done < b.N; {
					n := 4096
					if rem := len(recs) - pos; n > rem {
						n = rem
					}
					if n > b.N-done {
						n = b.N - done
					}
					chunkEnd := pos + n
					for start := pos; start < chunkEnd; {
						end := chunkEnd
						if warmLeft > 0 && uint64(end-start) > warmLeft {
							end = start + int(warmLeft)
						}
						var segInstrs uint64
						epochCrossed := false
						if dynamic {
							budget := cfg.EpochInstructions - sinceEpoch
							for i := start; i < end; i++ {
								segInstrs += uint64(recs[i].Instrs)
								if segInstrs >= budget {
									end = i + 1
									epochCrossed = true
									break
								}
							}
						}
						m.TranslateBatch(vpns[start:end])
						if warmLeft > 0 {
							warmLeft -= uint64(end - start)
							if warmLeft == 0 {
								_ = m.Stats()
							}
						}
						if epochCrossed {
							sinceEpoch = 0
							proc.Reselect(cfg.SweepCost)
						} else {
							sinceEpoch += segInstrs
						}
						start = end
					}
					done += n
					pos += n
					if pos == len(recs) {
						pos = 0
					}
				}
			})
		})
	}
}

// BenchmarkTranslatePublicAPI measures raw translation throughput through
// the public System API (anchor hits on a warm TLB).
func BenchmarkTranslatePublicAPI(b *testing.B) {
	sys, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Map([]hybridtlb.Chunk{{VirtPage: 0x10000, PhysPage: 1 << 24, Pages: 1 << 16}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sys.TranslatePage(0x10000 + uint64(i)&0xFFFF); !ok {
			b.Fatal("fault")
		}
	}
}

// BenchmarkSweepEngine times the same fig9/fig10-style scheme×workload
// grid through the sweep engine at parallelism 1 and 4, with the cache
// disabled so both variants simulate every cell. The parallel/serial
// ratio is the engine's wall-clock speedup (EXPERIMENTS.md records it).
func BenchmarkSweepEngine(b *testing.B) {
	var jobs []sweep.Job
	for _, wl := range []string{"gups", "omnetpp", "canneal", "mcf"} {
		for _, scheme := range []mmu.Scheme{mmu.Base, mmu.THP, mmu.Cluster, mmu.RMM, mmu.Anchor} {
			cfg := benchCfg(b, wl, mapping.Demand, scheme)
			cfg.Accesses = 50_000
			jobs = append(jobs, sweep.Job{Config: cfg})
		}
	}
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sweep.New(sweep.Options{Parallelism: bc.parallelism, DisableCache: true})
				results, err := eng.Run(context.Background(), jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(jobs) {
					b.Fatal("short sweep")
				}
			}
		})
	}
}

// BenchmarkExperimentHarness times the full report pipeline end to end on
// a small matrix (what cmd/experiments does at scale).
func BenchmarkExperimentHarness(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"omnetpp"}
	opts.Accesses = 20_000
	for i := 0; i < b.N; i++ {
		if err := report.Run("fig2", io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchServer assembles a tlbserver handler with logging discarded.
func newBenchServer(b *testing.B, cfg server.Config) *httptest.Server {
	b.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { srv.Drain(context.Background()) })
	return ts
}

// BenchmarkServerSimulate measures end-to-end requests/sec of the
// synchronous POST /v1/simulate path — HTTP decode, validation, the
// shared sweeper, JSON encode. The cached variant repeats one config
// (every request after the first is a result-cache hit: the serving
// overhead floor); the uncached variant varies the seed per request so
// every call simulates (EXPERIMENTS.md records both).
func BenchmarkServerSimulate(b *testing.B) {
	run := func(b *testing.B, body func(i int) string) {
		ts := newBenchServer(b, server.Config{Workers: 4})
		client := ts.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/v1/simulate", "application/json",
				bytes.NewReader([]byte(body(i))))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				out, _ := io.ReadAll(resp.Body)
				b.Fatalf("status %d: %s", resp.StatusCode, out)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	b.Run("cached", func(b *testing.B) {
		run(b, func(int) string {
			return `{"scheme":"anchor","workload":"gups","scenario":"medium","accesses":20000}`
		})
	})
	b.Run("uncached", func(b *testing.B) {
		run(b, func(i int) string {
			return `{"scheme":"anchor","workload":"gups","scenario":"medium","accesses":20000,"seed":` +
				strconv.Itoa(i+1) + `}`
		})
	})
}

// BenchmarkServerSweep measures the asynchronous path end to end:
// submit a grid, poll to completion. One iteration is one full job
// lifecycle on a 2-worker pool.
func BenchmarkServerSweep(b *testing.B) {
	ts := newBenchServer(b, server.Config{Workers: 2, QueueDepth: 64})
	client := ts.Client()
	grid := `{"schemes":["base","anchor"],"workloads":["gups"],"scenarios":["medium"],"accesses":20000}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(grid)))
		if err != nil {
			b.Fatal(err)
		}
		var acc struct {
			StatusURL string `json:"status_url"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for {
			resp, err := client.Get(ts.URL + acc.StatusURL)
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				State string `json:"state"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				b.Fatalf("sweep ended %s", st.State)
			}
		}
	}
}
