// Package hybridtlb is a library implementation of "Hybrid TLB
// Coalescing: Improving TLB Translation Coverage under Diverse Fragmented
// Memory Allocations" (Park, Heo, Jeong, Huh — ISCA 2017), together with
// the full substrate the paper's evaluation rests on: a buddy physical
// allocator, an anchored x86-64 page table, a configurable TLB hierarchy,
// the prior schemes it compares against (THP, cluster TLB, CoLT, RMM),
// an OS memory-management model, synthetic benchmark workloads, and a
// trace-driven simulator that regenerates every table and figure of the
// paper's evaluation.
//
// Two entry points cover most uses:
//
//   - System gives direct, stateful control: install a memory mapping,
//     translate addresses through a chosen scheme, and inspect hit/miss
//     statistics and the anchor machinery.
//
//   - Simulate runs a whole benchmark-over-mapping experiment and
//     returns the paper's metrics (TLB misses, translation CPI, L2
//     breakdowns).
//
// The anchor distance selection algorithm (Algorithm 1 in the paper) is
// exposed as SelectAnchorDistance.
package hybridtlb

import (
	"fmt"
	"sort"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
)

// Chunk describes a physically contiguous piece of a process mapping:
// Pages consecutive virtual pages starting at VirtPage map to Pages
// consecutive physical frames starting at PhysPage. Page numbers are in
// 4 KiB units.
type Chunk struct {
	VirtPage uint64
	PhysPage uint64
	Pages    uint64
}

// Scheme names accepted by NewSystem and Simulate.
const (
	SchemeBase      = "base"        // 4 KiB pages only
	SchemeTHP       = "thp"         // transparent huge pages
	SchemeCluster   = "cluster"     // cluster TLB (no huge pages)
	SchemeCluster2M = "cluster-2mb" // cluster TLB + huge pages
	SchemeRMM       = "rmm"         // redundant memory mappings (range TLB)
	SchemeAnchor    = "anchor"      // the paper's hybrid coalescing
	SchemeCoLT      = "colt"        // CoLT-SA (extension baseline)
	SchemeCoLTFA    = "colt-fa"     // CoLT fully associative mode (extension baseline)
)

// Schemes lists the available translation schemes.
func Schemes() []string {
	var out []string
	for _, s := range mmu.All() {
		out = append(out, s.String())
	}
	return out
}

// Stats reports translation behaviour. Misses counts L2 TLB misses (page
// walks), the paper's headline metric.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	L2RegularHits uint64
	CoalescedHits uint64
	Misses        uint64
	Cycles        uint64
}

// Hardware configures TLB geometry and latencies. The zero value uses the
// paper's Table 3 configuration.
type Hardware struct {
	// L2Entries/L2Ways size the shared second-level TLB (default 1024/8).
	L2Entries, L2Ways int
	// RangeEntries sizes RMM's fully associative range TLB (default 32).
	RangeEntries int
	// L2HitCycles, CoalescedHitCycles and WalkCycles are the latency
	// parameters (defaults 7 / 8 / 50).
	L2HitCycles, CoalescedHitCycles, WalkCycles uint64
}

func (h Hardware) toConfig() mmu.Config {
	cfg := mmu.DefaultConfig()
	if h.L2Entries > 0 {
		cfg.L2Entries = h.L2Entries
	}
	if h.L2Ways > 0 {
		cfg.L2Ways = h.L2Ways
	}
	if h.RangeEntries > 0 {
		cfg.RangeEntries = h.RangeEntries
	}
	if h.L2HitCycles > 0 {
		cfg.L2HitCycles = h.L2HitCycles
	}
	if h.CoalescedHitCycles > 0 {
		cfg.CoalescedHitCycles = h.CoalescedHitCycles
	}
	if h.WalkCycles > 0 {
		cfg.WalkCycles = h.WalkCycles
	}
	return cfg
}

// Option configures a System.
type Option func(*systemOptions)

type systemOptions struct {
	hw            Hardware
	fixedDistance uint64
	costModelName string
}

// WithHardware overrides TLB geometry and latencies.
func WithHardware(h Hardware) Option {
	return func(o *systemOptions) { o.hw = h }
}

// WithFixedAnchorDistance pins the anchor scheme's distance instead of
// selecting it dynamically from the mapping's contiguity histogram.
func WithFixedAnchorDistance(pages uint64) Option {
	return func(o *systemOptions) { o.fixedDistance = pages }
}

// Distance-selection cost model names (see WithCostModel and
// SimulationConfig.CostModel).
const (
	// CostModelEntryCount is the default: it minimizes the hypothetical
	// TLB entry count and reproduces the paper's Table 6 selections.
	CostModelEntryCount = "entry-count"
	// CostModelCoverageWeighted is the arithmetic written in the paper's
	// Algorithm 1 listing (inverse-coverage weights).
	CostModelCoverageWeighted = "coverage-weighted"
	// CostModelCapacityAware is this repository's extension: it
	// maximizes the footprint covered by an L2's worth of the
	// highest-coverage entries, which helps when the mapping needs more
	// entries than the TLB holds.
	CostModelCapacityAware = "capacity-aware"
)

// WithCostModel selects the anchor-distance-selection cost model by name.
func WithCostModel(name string) Option {
	return func(o *systemOptions) { o.costModelName = name }
}

// System is a live translation system: an OS memory-management model plus
// the hardware MMU of one scheme.
type System struct {
	schemeName string
	scheme     mmu.Scheme
	proc       *osmem.Process
	mmu        mmu.MMU
	hw         mmu.Config
	fixedDist  uint64
}

// NewSystem creates a system for the named scheme (see Schemes).
func NewSystem(scheme string, opts ...Option) (*System, error) {
	s, err := mmu.ParseScheme(scheme)
	if err != nil {
		return nil, err
	}
	var o systemOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.fixedDistance != 0 && !core.ValidDistance(o.fixedDistance) {
		return nil, fmt.Errorf("hybridtlb: invalid anchor distance %d (must be a power of two in [2, 65536])", o.fixedDistance)
	}
	costModel, err := core.ParseCostModel(o.costModelName)
	if err != nil {
		return nil, err
	}
	hw := o.hw.toConfig()
	pol := s.Policy()
	pol.Cost = costModel
	proc := osmem.NewProcess(pol)
	return &System{
		schemeName: scheme,
		scheme:     s,
		proc:       proc,
		mmu:        mmu.New(s, hw, proc),
		hw:         hw,
		fixedDist:  o.fixedDistance,
	}, nil
}

// Scheme returns the system's scheme name.
func (s *System) Scheme() string { return s.schemeName }

// Map installs (replacing any previous mapping) the given chunks: the OS
// lays them out with the scheme's page-size policy, writes anchor entries
// where applicable, and flushes the TLBs.
func (s *System) Map(chunks []Chunk) error {
	cl := make(mem.ChunkList, 0, len(chunks))
	for _, c := range chunks {
		cl = append(cl, mem.Chunk{StartVPN: mem.VPN(c.VirtPage), StartPFN: mem.PFN(c.PhysPage), Pages: c.Pages})
	}
	return s.proc.InstallChunks(cl, s.fixedDist)
}

// MapRegions installs the chunks with per-region anchor distances — the
// paper's Section 4.2 multi-region extension. The address space is
// partitioned into at most 8 regions of similar contiguity, each with its
// own distance. Requires the anchor scheme.
func (s *System) MapRegions(chunks []Chunk) error {
	cl := make(mem.ChunkList, 0, len(chunks))
	for _, c := range chunks {
		cl = append(cl, mem.Chunk{StartVPN: mem.VPN(c.VirtPage), StartPFN: mem.PFN(c.PhysPage), Pages: c.Pages})
	}
	return s.proc.InstallChunksRegions(cl, 0)
}

// AnchorRegion is one region of a multi-region install.
type AnchorRegion struct {
	StartPage, EndPage uint64 // [StartPage, EndPage) in 4 KiB pages
	Distance           uint64 // anchor distance in pages
}

// Regions returns the multi-region table (nil for single-distance
// systems).
func (s *System) Regions() []AnchorRegion {
	var out []AnchorRegion
	for _, r := range s.proc.Regions() {
		out = append(out, AnchorRegion{StartPage: uint64(r.Start), EndPage: uint64(r.End), Distance: r.Distance})
	}
	return out
}

// AddChunk maps an additional chunk without disturbing the rest of the
// mapping (a dynamic allocation).
func (s *System) AddChunk(c Chunk) error {
	return s.proc.AppendChunk(mem.Chunk{StartVPN: mem.VPN(c.VirtPage), StartPFN: mem.PFN(c.PhysPage), Pages: c.Pages})
}

// Protect sets the protection of pages virtual pages starting at
// virtPage. prot uses ls-style notation ("r--", "rw-", "r-x", "rwx").
// Anchors never cover across a protection boundary (Section 3.3 of the
// paper), so affected anchor entries are re-clamped and shot down.
func (s *System) Protect(virtPage, pages uint64, prot string) error {
	p, err := parseProt(prot)
	if err != nil {
		return err
	}
	return s.proc.SetProtection(mem.VPN(virtPage), pages, p)
}

func parseProt(prot string) (osmem.Prot, error) {
	if len(prot) != 3 {
		return 0, fmt.Errorf("hybridtlb: protection %q must be 3 characters like \"rw-\"", prot)
	}
	var p osmem.Prot
	switch prot[0] {
	case 'r':
		p |= osmem.ProtRead
	case '-':
	default:
		return 0, fmt.Errorf("hybridtlb: bad read flag in %q", prot)
	}
	switch prot[1] {
	case 'w':
		p |= osmem.ProtWrite
	case '-':
	default:
		return 0, fmt.Errorf("hybridtlb: bad write flag in %q", prot)
	}
	switch prot[2] {
	case 'x':
		p |= osmem.ProtExec
	case '-':
	default:
		return 0, fmt.Errorf("hybridtlb: bad exec flag in %q", prot)
	}
	return p, nil
}

// Unmap removes pages virtual pages starting at virtPage, updating the
// affected anchor entries and invalidating stale TLB entries.
func (s *System) Unmap(virtPage, pages uint64) {
	s.proc.UnmapRange(mem.VPN(virtPage), pages)
}

// Translate translates a byte-granular virtual address through the TLB
// hierarchy, updating hardware state and statistics. ok is false for
// unmapped addresses.
func (s *System) Translate(virtAddr uint64) (physAddr uint64, ok bool) {
	va := mem.VirtAddr(virtAddr)
	res := s.mmu.Translate(va.PageNumber())
	if res.Outcome == mmu.OutFault {
		return 0, false
	}
	return uint64(res.PFN.Addr()) + va.Offset(), true
}

// TranslatePage translates a 4 KiB virtual page number.
func (s *System) TranslatePage(virtPage uint64) (physPage uint64, ok bool) {
	res := s.mmu.Translate(mem.VPN(virtPage))
	if res.Outcome == mmu.OutFault {
		return 0, false
	}
	return uint64(res.PFN), true
}

// Stats returns accumulated translation statistics.
func (s *System) Stats() Stats {
	st := s.mmu.Stats()
	return Stats{
		Accesses:      st.Accesses,
		L1Hits:        st.L1Hits,
		L2RegularHits: st.L2RegularHits,
		CoalescedHits: st.CoalescedHits,
		Misses:        st.Misses(),
		Cycles:        st.Cycles,
	}
}

// AnchorDistance returns the process's current anchor distance in pages
// (meaningful for the anchor scheme).
func (s *System) AnchorDistance() uint64 { return s.proc.AnchorDistance() }

// SetAnchorDistance changes the anchor distance: the OS sweeps the page
// table to rewrite anchors at the new alignment and flushes the TLBs.
func (s *System) SetAnchorDistance(pages uint64) error {
	if !core.ValidDistance(pages) {
		return fmt.Errorf("hybridtlb: invalid anchor distance %d", pages)
	}
	s.proc.SetDistance(pages)
	return nil
}

// Compact defragments the process: frames are relocated so virtually
// adjacent chunks become physically adjacent (Linux memory compaction),
// anchors are rewritten, and the anchor distance is re-selected against
// the new contiguity histogram. targetPhysPage is the base of the free
// zone receiving the compacted image. It returns how many chunks remain.
func (s *System) Compact(targetPhysPage uint64) int {
	res := s.proc.Compact(mem.PFN(targetPhysPage), osmem.DefaultSweepCost)
	return res.ChunksAfter
}

// PromoteHugePages runs a khugepaged-style pass: 2 MiB-aligned congruent
// uniformly-protected 4 KiB runs collapse into huge pages. It returns the
// number of pages promoted.
func (s *System) PromoteHugePages() int {
	return s.proc.PromoteHugePages().Promoted
}

// Reselect re-runs the dynamic distance selection against the current
// mapping (what the OS does periodically); it reports whether the
// distance changed.
func (s *System) Reselect() (changed bool, distance uint64) {
	r := s.proc.Reselect(osmem.DefaultSweepCost)
	return r.Changed, r.Selected
}

// ContiguityHistogram returns the mapping's chunk-size histogram as a
// contiguity (pages) -> chunk-count map, the input of Algorithm 1.
func (s *System) ContiguityHistogram() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for _, b := range s.proc.Histogram() {
		out[b.Contiguity] = b.Frequency
	}
	return out
}

// FootprintPages returns the number of mapped 4 KiB pages.
func (s *System) FootprintPages() uint64 { return s.proc.FootprintPages() }

// SelectAnchorDistance runs the paper's dynamic anchor distance selection
// (Algorithm 1) over a contiguity histogram mapping chunk size (in pages)
// to chunk count, returning the chosen distance in pages.
func SelectAnchorDistance(histogram map[uint64]uint64) uint64 {
	h := make(mem.Histogram, 0, len(histogram))
	for cont, freq := range histogram {
		h = append(h, mem.HistogramBin{Contiguity: cont, Frequency: freq})
	}
	// Algorithm 1 accumulates per-bin float costs; summation order must
	// not depend on map iteration order or the selected distance could
	// differ across runs on cost ties within an ULP.
	sort.Slice(h, func(i, j int) bool { return h[i].Contiguity < h[j].Contiguity })
	d, _ := core.SelectDistance(h)
	return d
}
