// Command tlbload is an open-loop load generator for tlbserver that
// proves graceful degradation under multi-tenant overload. It offers
// two phases of traffic — "calibrate" (the well-behaved light tenant
// alone) and "overload" (the same light tenant plus a heavy tenant
// offering skew× its rate) — and reports per-tenant p50/p99/p999
// latency, throughput, shed counts and the largest adaptive
// Retry-After hint observed, as a BENCH_server.json document
// (internal/benchparse.ServerReport).
//
// With -selftest it boots an in-process tlbserver with a two-tenant
// keyfile (light: weight 3, unlimited; heavy: weight 1, rate-limited,
// quota-bound) so the whole overload proof runs hermetically — this is
// what `make load-smoke` and CI execute. Point -base-url plus
// -light-key/-heavy-key at a real deployment instead to measure one.
//
// With -check (the default) the run fails with exit 1 unless the
// graceful-degradation contract holds: zero non-shed errors anywhere,
// the heavy tenant actually shed with a Retry-After hint, and the
// light tenant's overload p99 within -p99-ratio of its calibrated p99
// (floored by -p99-floor to absorb scheduler noise).
//
// Examples:
//
//	tlbload -selftest -out BENCH_server.json
//	tlbload -base-url http://tlb.internal:8080 -light-key k1 -heavy-key k2 -skew 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridtlb/internal/benchparse"
	"hybridtlb/internal/buildinfo"
)

func main() {
	var (
		selftest = flag.Bool("selftest", false, "load an in-process tlbserver instead of a remote one")
		baseURL  = flag.String("base-url", "", "target server base URL (external mode; requires -light-key and -heavy-key)")
		lightK   = flag.String("light-key", "", "bearer key for the well-behaved tenant (external mode)")
		heavyK   = flag.String("heavy-key", "", "bearer key for the abusive tenant (external mode)")

		lightRPS  = flag.Float64("light-rps", 30, "light tenant's offered request rate")
		skew      = flag.Float64("skew", 10, "heavy tenant's offered rate as a multiple of the light tenant's")
		calibrate = flag.Duration("calibrate", 2*time.Second, "light-tenant-alone calibration phase length")
		duration  = flag.Duration("duration", 3*time.Second, "overload phase length")
		sweepN    = flag.Int("sweep-every", 5, "every Nth request is an async sweep submission (0: simulate only)")
		accesses  = flag.Uint64("accesses", 2000, "per-simulation measured accesses (keeps requests cheap)")
		footprint = flag.Uint64("footprint", 1024, "per-simulation footprint pages (workload defaults are ~100× costlier)")
		seed      = flag.Int64("seed", 1, "base simulation seed; request i uses seed+i so the result cache can't absorb the load")

		workers    = flag.Int("workers", 2, "selftest: sweep worker pool size")
		queueDepth = flag.Int("queue", 2, "selftest: per-tenant sweep queue depth")
		heavyRate  = flag.Float64("heavy-rate", 40, "selftest: heavy tenant's rate_per_sec limit")
		heavyQuota = flag.Int("heavy-inflight", 4, "selftest: heavy tenant's max_in_flight quota")
		retryAfter = flag.Duration("retry-after", time.Second, "selftest: floor for the adaptive Retry-After hint")
		chaos      = flag.Float64("chaos", 0, "selftest: fault-injection rate [0,1) for transient cell failures")
		chaosSeed  = flag.Int64("chaos-seed", 1, "selftest: deterministic seed for fault injection")
		chaosDelay = flag.Duration("chaos-delay", 0, "selftest: max injected per-cell delay")

		check    = flag.Bool("check", true, "assert the graceful-degradation contract; violations exit 1")
		p99Ratio = flag.Float64("p99-ratio", 2.0, "light tenant overload p99 bound as a multiple of its calibrated p99")
		p99Floor = flag.Duration("p99-floor", 150*time.Millisecond, "absolute floor under the p99 bound (absorbs scheduler noise)")

		out         = flag.String("out", "", "write BENCH_server.json here (empty: stdout)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		showVersion = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.Version())
		return
	}
	if *selftest == (*baseURL != "") {
		fmt.Fprintln(os.Stderr, "tlbload: exactly one of -selftest or -base-url is required")
		os.Exit(2)
	}
	if *baseURL != "" && (*lightK == "" || *heavyK == "") {
		fmt.Fprintln(os.Stderr, "tlbload: -base-url requires -light-key and -heavy-key")
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := harnessConfig{
		BaseURL:    *baseURL,
		LightKey:   *lightK,
		HeavyKey:   *heavyK,
		LightRPS:   *lightRPS,
		Skew:       *skew,
		Calibrate:  *calibrate,
		Overload:   *duration,
		SweepEvery: *sweepN,
		Work:       workload{Accesses: *accesses, FootprintPages: *footprint, Seed: *seed},
		Selftest: selftestOptions{
			Workers:    *workers,
			QueueDepth: *queueDepth,
			HeavyRate:  *heavyRate,
			HeavyQuota: *heavyQuota,
			RetryAfter: *retryAfter,
			Chaos:      *chaos,
			ChaosSeed:  *chaosSeed,
			ChaosDelay: *chaosDelay,
			Logger:     log,
		},
		Logger: log,
	}

	rep, err := runHarness(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbload:", err)
		os.Exit(1)
	}
	if err := benchparse.ValidateServer(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tlbload: generated report is invalid:", err)
		os.Exit(1)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbload:", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc) //nolint:errcheck // best-effort stdout
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tlbload:", err)
		os.Exit(1)
	}

	if *check {
		err := checkIsolation(rep, scenarioCalibrate, scenarioOverload, isolationCheck{
			Light: lightTenant, Heavy: heavyTenant,
			P99Ratio:   *p99Ratio,
			P99FloorMs: float64(*p99Floor) / float64(time.Millisecond),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbload: degradation contract violated:", err)
			os.Exit(1)
		}
		log.Info("graceful degradation holds",
			"light_p99_ms", rep.Scenarios[scenarioOverload].Tenants[lightTenant].LatencyMsP99,
			"heavy_shed", rep.Scenarios[scenarioOverload].Tenants[heavyTenant].Shed,
			"heavy_retry_after_max_s", rep.Scenarios[scenarioOverload].Tenants[heavyTenant].RetryAfterMaxS)
	}
}
