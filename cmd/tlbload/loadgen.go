package main

// The open-loop generator and its aggregation live here, separated
// from flag parsing so TestLoadSmoke can drive the exact code path
// `make load-smoke` runs. Open-loop matters for an overload harness:
// requests fire on the offered-rate schedule regardless of how slowly
// the server answers, so a degrading server faces growing concurrency
// exactly as it would from real independent clients, instead of a
// closed loop that politely backs off and hides the overload.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybridtlb"
	"hybridtlb/internal/benchparse"
	"hybridtlb/internal/server"
	"hybridtlb/internal/tenant"
)

// tenantLoad is one tenant's offered traffic during a scenario.
type tenantLoad struct {
	Name string
	Key  string
	// RPS is the offered request rate; the generator holds it open-loop
	// for the scenario duration.
	RPS float64
	// SweepEvery makes every Nth request an async POST /v1/sweeps
	// submission instead of a synchronous simulate (0: simulate only).
	SweepEvery int
	// Priority is the sweep lane ("interactive" or "batch"/empty).
	Priority string
}

// outcome is one request's observed result.
type outcome struct {
	tenant     string
	code       int // 0 on transport error
	sweep      bool
	latency    time.Duration
	retryAfter float64 // seconds, from a 429's Retry-After header
}

// workload shapes the simulation each request asks for. Small accesses
// and a small explicit footprint keep individual requests cheap (a
// workload-default footprint costs ~100× more just building the
// memory layout) so the interesting contention is admission and
// queueing, not simulation CPU.
type workload struct {
	Accesses       uint64
	FootprintPages uint64
	Seed           int64 // base; request i uses Seed+i so the result cache can't absorb the load
}

func (w workload) simBody(i int) string {
	return fmt.Sprintf(`{"scheme":"anchor","workload":"gups","scenario":"demand","accesses":%d,"footprint_pages":%d,"seed":%d}`,
		w.Accesses, w.FootprintPages, w.Seed+int64(i))
}

func (w workload) sweepBody(i int, priority string) string {
	p := ""
	if priority != "" {
		p = fmt.Sprintf(`,"priority":%q`, priority)
	}
	return fmt.Sprintf(`{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"],"accesses":%d,"footprint_pages":%d,"seeds":[%d]%s}`,
		w.Accesses, w.FootprintPages, w.Seed+int64(i), p)
}

// newLoadClient returns an HTTP client sized for open-loop bursts: the
// default two idle conns per host would force a fresh TCP handshake on
// nearly every request at overload rates and the handshake churn would
// show up as transport errors, which the harness counts as failures.
func newLoadClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
}

// runScenario offers each tenant's traffic open-loop for duration and
// returns the per-tenant aggregate. It blocks until every in-flight
// request has completed (the tail beyond the offered window is part of
// the measurement — a shedding server should still answer it quickly).
func runScenario(ctx context.Context, client *http.Client, baseURL string, loads []tenantLoad, duration time.Duration, work workload) map[string]benchparse.TenantLoadStats {
	results := make(chan outcome, 1024)
	var wg sync.WaitGroup

	start := time.Now()
	for _, tl := range loads {
		total := int(tl.RPS * duration.Seconds())
		if total < 1 {
			total = 1
		}
		interval := duration / time.Duration(total)
		wg.Add(1)
		go func(tl tenantLoad, total int, interval time.Duration) {
			defer wg.Done()
			for i := 0; i < total; i++ {
				next := start.Add(time.Duration(i) * interval)
				if d := time.Until(next); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results <- sendOne(ctx, client, baseURL, tl, work, i)
				}(i)
			}
		}(tl, total, interval)
	}

	done := make(chan struct{})
	collected := make(map[string][]outcome)
	go func() {
		defer close(done)
		for o := range results {
			collected[o.tenant] = append(collected[o.tenant], o)
		}
	}()
	wg.Wait()
	close(results)
	<-done

	elapsed := time.Since(start)
	stats := make(map[string]benchparse.TenantLoadStats, len(loads))
	for _, tl := range loads {
		stats[tl.Name] = aggregate(collected[tl.Name], elapsed)
	}
	return stats
}

// sendOne issues request i of a tenant's stream and classifies the
// response: 2xx accepted, 429 shed, anything else (including transport
// failure) an error.
func sendOne(ctx context.Context, client *http.Client, baseURL string, tl tenantLoad, work workload, i int) outcome {
	path, body := "/v1/simulate", work.simBody(i)
	sweep := tl.SweepEvery > 0 && i%tl.SweepEvery == 0
	if sweep {
		path, body = "/v1/sweeps", work.sweepBody(i, tl.Priority)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, strings.NewReader(body))
	if err != nil {
		return outcome{tenant: tl.Name, sweep: sweep}
	}
	req.Header.Set("Content-Type", "application/json")
	if tl.Key != "" {
		req.Header.Set("Authorization", "Bearer "+tl.Key)
	}

	began := time.Now()
	resp, err := client.Do(req)
	took := time.Since(began)
	if err != nil {
		return outcome{tenant: tl.Name, sweep: sweep, latency: took}
	}
	defer resp.Body.Close() //nolint:errcheck // drained below
	_, _ = io.Copy(io.Discard, resp.Body)

	o := outcome{tenant: tl.Name, code: resp.StatusCode, sweep: sweep, latency: took}
	if resp.StatusCode == http.StatusTooManyRequests {
		if s, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil {
			o.retryAfter = s
		}
	}
	return o
}

// aggregate folds one tenant's outcomes into the report row. Latency
// percentiles cover accepted requests only: a 429 returns in
// microseconds by design, and letting sheds into the distribution
// would flatter an overloaded server.
func aggregate(outs []outcome, elapsed time.Duration) benchparse.TenantLoadStats {
	var st benchparse.TenantLoadStats
	var latencies []float64
	for _, o := range outs {
		st.Offered++
		if o.sweep {
			st.Sweeps++
		}
		switch {
		case o.code >= 200 && o.code < 300:
			st.Accepted++
			latencies = append(latencies, float64(o.latency)/float64(time.Millisecond))
		case o.code == http.StatusTooManyRequests:
			st.Shed++
			if o.retryAfter > st.RetryAfterMaxS {
				st.RetryAfterMaxS = o.retryAfter
			}
		default:
			st.Errors++
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		st.ThroughputRPS = float64(st.Accepted) / secs
	}
	st.LatencyMsP50 = benchparse.Quantile(latencies, 0.50)
	st.LatencyMsP99 = benchparse.Quantile(latencies, 0.99)
	st.LatencyMsP999 = benchparse.Quantile(latencies, 0.999)
	return st
}

// isolationCheck is the graceful-degradation contract the overload
// scenario must satisfy.
type isolationCheck struct {
	Light, Heavy string
	// P99Ratio bounds the light tenant's overload p99 relative to its
	// calibration p99; P99FloorMs absorbs scheduler noise on very fast
	// calibration runs (the bound is max(ratio×calibrated, floor)).
	P99Ratio   float64
	P99FloorMs float64
}

// checkIsolation asserts the overload contract against a report that
// contains a calibrate scenario (light tenant alone) and an overload
// scenario (light + heavy): nobody sees non-shed errors, the heavy
// tenant was actually shed with a Retry-After hint, and the light
// tenant's p99 stayed bounded.
func checkIsolation(rep benchparse.ServerReport, calibrate, overload string, c isolationCheck) error {
	for name, sc := range rep.Scenarios {
		for t, ts := range sc.Tenants {
			if ts.Errors > 0 {
				return fmt.Errorf("%s/%s: %d non-shed errors (accepted %d, shed %d)",
					name, t, ts.Errors, ts.Accepted, ts.Shed)
			}
		}
	}
	cal, ok := rep.Scenarios[calibrate].Tenants[c.Light]
	if !ok {
		return fmt.Errorf("calibrate scenario %q has no tenant %q", calibrate, c.Light)
	}
	over, ok := rep.Scenarios[overload].Tenants[c.Light]
	if !ok {
		return fmt.Errorf("overload scenario %q has no tenant %q", overload, c.Light)
	}
	heavy, ok := rep.Scenarios[overload].Tenants[c.Heavy]
	if !ok {
		return fmt.Errorf("overload scenario %q has no tenant %q", overload, c.Heavy)
	}

	if heavy.Shed == 0 {
		return fmt.Errorf("overload: heavy tenant %q was never shed (offered %d, accepted %d) — no overload happened",
			c.Heavy, heavy.Offered, heavy.Accepted)
	}
	if heavy.RetryAfterMaxS <= 0 {
		return fmt.Errorf("overload: heavy tenant %q sheds carried no Retry-After hint", c.Heavy)
	}
	bound := c.P99Ratio * cal.LatencyMsP99
	if bound < c.P99FloorMs {
		bound = c.P99FloorMs
	}
	if over.LatencyMsP99 > bound {
		return fmt.Errorf("overload: light tenant %q p99 %.1fms exceeds bound %.1fms (%.1f× calibrated %.1fms, floor %.0fms)",
			c.Light, over.LatencyMsP99, bound, c.P99Ratio, cal.LatencyMsP99, c.P99FloorMs)
	}
	return nil
}

// selftestOptions sizes the in-process server the -selftest mode loads
// against. The defaults (see main.go flags) are deliberately small so
// a few seconds of skewed traffic is a genuine overload.
type selftestOptions struct {
	Workers    int
	QueueDepth int
	HeavyRate  float64 // heavy tenant's rate_per_sec
	HeavyQuota int     // heavy tenant's max_in_flight
	RetryAfter time.Duration
	Chaos      float64
	ChaosSeed  int64
	ChaosDelay time.Duration
	Logger     *slog.Logger
}

// Fixed identities of the in-process keyfile: "light" is the
// well-behaved weighted tenant, "heavy" the abusive one whose limits
// the admission gates will hit.
const (
	lightTenant, lightKey = "light", "load-light-key"
	heavyTenant, heavyKey = "heavy", "load-heavy-key"
)

// startSelftest boots an in-process tlbserver with a two-tenant
// keyfile: "light" (weight 3, no limits — its protection is fair-share
// plus the heavy tenant's gates) and "heavy" (weight 1, rate-limited,
// quota-bound). Returns the base URL and a graceful shutdown func.
func startSelftest(opts selftestOptions) (string, func(), error) {
	keyfile := fmt.Sprintf(`{"tenants":[
		{"name":%q,"key":%q,"weight":3},
		{"name":%q,"key":%q,"weight":1,"rate_per_sec":%g,"max_in_flight":%d}
	]}`, lightTenant, lightKey, heavyTenant, heavyKey, opts.HeavyRate, opts.HeavyQuota)
	registry, err := tenant.Parse(strings.NewReader(keyfile))
	if err != nil {
		return "", nil, fmt.Errorf("selftest keyfile: %w", err)
	}

	var faults *hybridtlb.FaultInjector
	if opts.Chaos > 0 || opts.ChaosDelay > 0 {
		faults = &hybridtlb.FaultInjector{
			Seed:          opts.ChaosSeed,
			TransientRate: opts.Chaos,
			Delay:         opts.ChaosDelay,
		}
	}

	srv, err := server.New(server.Config{
		Workers:         opts.Workers,
		QueueDepth:      opts.QueueDepth,
		SimulateTimeout: 20 * time.Second,
		RetryAfter:      opts.RetryAfter,
		Tenants:         registry,
		Faults:          faults,
		Logger:          opts.Logger,
	})
	if err != nil {
		return "", nil, fmt.Errorf("selftest server: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("selftest listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // reported as ErrServerClosed on shutdown

	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		srv.BeginShutdown()
		_ = srv.Drain(ctx)
		_ = srv.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// Scenario names in the report: calibrate measures the light tenant
// uncontended, overload adds the heavy tenant at skew× the rate.
const (
	scenarioCalibrate = "calibrate"
	scenarioOverload  = "overload"
)

// harnessConfig is one full tlbload run — both scenarios against one
// target. TestLoadSmoke builds this directly; main builds it from
// flags.
type harnessConfig struct {
	BaseURL            string // external target; empty boots a selftest server
	LightKey, HeavyKey string // bearer keys in external mode

	LightRPS   float64
	Skew       float64 // heavy offered rate = Skew × LightRPS
	Calibrate  time.Duration
	Overload   time.Duration
	SweepEvery int
	Work       workload

	Selftest selftestOptions
	Logger   *slog.Logger
}

// runHarness runs calibrate then overload and folds both into the
// BENCH_server.json report.
func runHarness(ctx context.Context, cfg harnessConfig) (benchparse.ServerReport, error) {
	baseURL, lk, hk := cfg.BaseURL, cfg.LightKey, cfg.HeavyKey
	if baseURL == "" {
		url, shutdown, err := startSelftest(cfg.Selftest)
		if err != nil {
			return benchparse.ServerReport{}, err
		}
		defer shutdown()
		baseURL, lk, hk = url, lightKey, heavyKey
	}
	client := newLoadClient()
	defer client.CloseIdleConnections()

	light := tenantLoad{
		Name: lightTenant, Key: lk, RPS: cfg.LightRPS,
		SweepEvery: cfg.SweepEvery, Priority: "interactive",
	}
	heavy := tenantLoad{
		Name: heavyTenant, Key: hk, RPS: cfg.LightRPS * cfg.Skew,
		SweepEvery: cfg.SweepEvery, Priority: "batch",
	}

	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	log.Info("calibrating", "tenant", light.Name, "rps", light.RPS, "duration", cfg.Calibrate)
	calStats := runScenario(ctx, client, baseURL, []tenantLoad{light}, cfg.Calibrate, cfg.Work)
	if err := ctx.Err(); err != nil {
		return benchparse.ServerReport{}, err
	}

	log.Info("overloading", "light_rps", light.RPS, "heavy_rps", heavy.RPS, "duration", cfg.Overload)
	// Offset the overload seeds past calibration's so the server's
	// result cache never answers for work calibration already did.
	overWork := cfg.Work
	overWork.Seed += int64(cfg.LightRPS*cfg.Calibrate.Seconds()) + 1
	overStats := runScenario(ctx, client, baseURL, []tenantLoad{light, heavy}, cfg.Overload, overWork)
	if err := ctx.Err(); err != nil {
		return benchparse.ServerReport{}, err
	}

	return benchparse.ServerReport{
		Harness: "tlbload",
		Seed:    cfg.Work.Seed,
		Scenarios: map[string]benchparse.LoadScenario{
			scenarioCalibrate: {DurationS: cfg.Calibrate.Seconds(), Tenants: calStats},
			scenarioOverload:  {DurationS: cfg.Overload.Seconds(), Tenants: overStats},
		},
	}, nil
}
