package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybridtlb/internal/benchparse"
)

// TestLoadSmoke is the overload proof CI runs (`make load-smoke`): a
// short two-tenant 10:1 skewed run against the in-process server,
// asserting the graceful-degradation contract — zero non-shed errors,
// the heavy tenant shed with an adaptive Retry-After hint, and the
// light tenant's p99 bounded relative to its uncontended calibration.
// When TLBLOAD_OUT is set, the validated report is also written there
// (that is how the committed BENCH_server.json is regenerated).
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke needs a few seconds of wall clock")
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := harnessConfig{
		LightRPS:   30,
		Skew:       10,
		Calibrate:  800 * time.Millisecond,
		Overload:   1500 * time.Millisecond,
		SweepEvery: 5,
		Work:       workload{Accesses: 2000, FootprintPages: 1024, Seed: 1},
		Selftest: selftestOptions{
			Workers:    2,
			QueueDepth: 2,
			HeavyRate:  40,
			HeavyQuota: 4,
			RetryAfter: time.Second,
			Logger:     quiet,
		},
		Logger: quiet,
	}

	rep, err := runHarness(context.Background(), cfg)
	if err != nil {
		t.Fatalf("runHarness: %v", err)
	}
	if err := benchparse.ValidateServer(rep); err != nil {
		t.Fatalf("generated report invalid: %v", err)
	}

	// The 250ms floor absorbs CI scheduler noise on the sub-millisecond
	// calibrated p99; the 2× ratio is the contract from the design doc.
	err = checkIsolation(rep, scenarioCalibrate, scenarioOverload, isolationCheck{
		Light: lightTenant, Heavy: heavyTenant,
		P99Ratio:   2.0,
		P99FloorMs: 250,
	})
	if err != nil {
		t.Fatalf("degradation contract violated: %v", err)
	}

	over := rep.Scenarios[scenarioOverload].Tenants
	if over[heavyTenant].Shed == 0 {
		t.Fatalf("heavy tenant was never shed: %+v", over[heavyTenant])
	}
	// Graceful degradation means the light tenant barely notices the
	// abuse: at least 80% of its offered load must still be accepted.
	if la, lo := over[lightTenant].Accepted, over[lightTenant].Offered; la*5 < lo*4 {
		t.Fatalf("light tenant shed too much under overload: accepted %d of %d offered", la, lo)
	}
	t.Logf("light: %+v", over[lightTenant])
	t.Logf("heavy: %+v", over[heavyTenant])

	if out := os.Getenv("TLBLOAD_OUT"); out != "" {
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}

// TestCommittedArtifactValid keeps the checked-in BENCH_server.json
// honest: it must parse as a ServerReport and pass the same validator
// tlbload applies before writing one.
func TestCommittedArtifactValid(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_server.json")
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read committed artifact: %v (regenerate with `make load-smoke`)", err)
	}
	var rep benchparse.ServerReport
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("committed artifact does not parse: %v", err)
	}
	if err := benchparse.ValidateServer(rep); err != nil {
		t.Fatalf("committed artifact invalid: %v (regenerate with `make load-smoke`)", err)
	}
}
