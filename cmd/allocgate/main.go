// Command allocgate proves the //tlbvet:hotpath regions allocation-free
// with the compiler's own escape analysis. It is the dynamic complement
// to tlbvet's allocfree pass: allocfree rejects allocation-shaped
// syntax, allocgate parses `go build -gcflags=-m` and fails on any
// "escapes to heap"/"moved to heap" diagnostic whose position falls
// inside an annotated function or loop, unless a committed allowlist
// entry (ALLOCGATE.allow) explicitly absolves it.
//
//	allocgate            # scan the module, gate every hotpath region
//	allocgate -v         # also list the regions and clean packages
//
// Exit status: 0 when every hotpath region is escape-free (or
// allowlisted), 1 otherwise, 2 on usage/toolchain errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// region is one annotated hotpath span in module-relative file
// coordinates.
type region struct {
	file       string // module-relative path, e.g. internal/sim/sim.go
	name       string // function name or "<name> loop@line"
	start, end int    // inclusive line range
}

func main() {
	allowPath := flag.String("allow", "ALLOCGATE.allow", "committed escape allowlist")
	verbose := flag.Bool("v", false, "list regions and per-package results")
	flag.Parse()

	regions, err := collectRegions(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	if len(regions) == 0 {
		fmt.Fprintln(os.Stderr, "allocgate: no //tlbvet:hotpath regions found; nothing to gate")
		os.Exit(2)
	}
	allow, err := loadAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}

	pkgSet := map[string]bool{}
	for _, r := range regions {
		pkgSet[filepath.Dir(r.file)] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, "./"+p)
	}
	sort.Strings(pkgs)

	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: go %s failed:\n%s", strings.Join(args, " "), out)
		os.Exit(2)
	}

	if *verbose {
		for _, r := range regions {
			fmt.Fprintf(os.Stderr, "allocgate: region %s:%d-%d (%s)\n", r.file, r.start, r.end, r.name)
		}
	}

	violations, usedAllow := gate(string(out), regions, allow)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "allocgate: FAIL:", v)
	}
	for _, a := range allow {
		if !usedAllow[a] {
			fmt.Fprintf(os.Stderr, "allocgate: note: allowlist entry %q matched nothing (stale?)\n", a)
		}
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "allocgate: %d escape(s) inside hotpath regions (%d regions, %d packages)\n",
			len(violations), len(regions), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "allocgate: OK — %d hotpath regions across %d packages are escape-free\n",
		len(regions), len(pkgs))
}

const directive = "tlbvet:hotpath"

func isDirective(text string) bool {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	return t == directive || strings.HasPrefix(t, directive+" ")
}

// collectRegions parses every non-test module source file and returns
// the annotated functions and loops, mirroring the allocfree pass's
// matching rules (doc comment for functions, line-above for loops).
func collectRegions(root string) ([]region, error) {
	var regions []region
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "vendor" || name == "testdata" || name == "bin" ||
				(len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rs, err := fileRegions(rel, path)
		if err != nil {
			return err
		}
		regions = append(regions, rs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].file != regions[j].file {
			return regions[i].file < regions[j].file
		}
		return regions[i].start < regions[j].start
	})
	return regions, nil
}

func fileRegions(rel, path string) ([]region, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", rel, err)
	}
	directiveLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isDirective(c.Text) {
				directiveLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	if len(directiveLines) == 0 {
		return nil, nil
	}
	var regions []region
	claimed := func(pos token.Pos, doc *ast.CommentGroup) bool {
		if doc != nil {
			for _, c := range doc.List {
				if isDirective(c.Text) {
					return true
				}
			}
		}
		return directiveLines[fset.Position(pos).Line-1]
	}
	var funcName string
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			funcName = n.Name.Name
			if n.Body != nil && claimed(n.Pos(), n.Doc) {
				regions = append(regions, region{
					file:  rel,
					name:  funcName,
					start: fset.Position(n.Pos()).Line,
					end:   fset.Position(n.End()).Line,
				})
			}
		case *ast.ForStmt, *ast.RangeStmt:
			if claimed(n.Pos(), nil) {
				start := fset.Position(n.Pos()).Line
				regions = append(regions, region{
					file:  rel,
					name:  fmt.Sprintf("%s loop@%d", funcName, start),
					start: start,
					end:   fset.Position(n.End()).Line,
				})
			}
		}
		return true
	})
	return regions, nil
}

// escapeLine matches compiler diagnostics: path:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// gate returns the escape diagnostics that land inside a hotpath
// region and are not excused by the allowlist.
func gate(output string, regions []region, allow []string) (violations []string, used map[string]bool) {
	used = map[string]bool{}
	for _, line := range strings.Split(output, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(m[1], "./"))
		lineNo := atoi(m[2])
		r := findRegion(regions, file, lineNo)
		if r == nil {
			continue
		}
		rendered := fmt.Sprintf("%s:%s:%s: %s (hotpath region %s)", file, m[2], m[3], msg, r.name)
		if a := allowMatch(allow, file, msg); a != "" {
			used[a] = true
			continue
		}
		violations = append(violations, rendered)
	}
	sort.Strings(violations)
	return violations, used
}

func findRegion(regions []region, file string, line int) *region {
	// Innermost match wins (a loop region inside an annotated file).
	var best *region
	for i := range regions {
		r := &regions[i]
		if r.file == file && r.start <= line && line <= r.end {
			if best == nil || r.end-r.start < best.end-best.start {
				best = r
			}
		}
	}
	return best
}

// loadAllowlist reads entries of the form "<file>: <message substring>".
// Blank lines and #-comments are skipped. A missing file is an empty
// allowlist — the gate's default posture.
func loadAllowlist(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []string
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, ":") {
			return nil, fmt.Errorf("%s:%d: allowlist entry %q is not \"<file>: <message substring>\"", path, i+1, line)
		}
		entries = append(entries, line)
	}
	return entries, nil
}

func allowMatch(allow []string, file, msg string) string {
	for _, a := range allow {
		i := strings.Index(a, ":")
		af, asub := strings.TrimSpace(a[:i]), strings.TrimSpace(a[i+1:])
		if af == file && asub != "" && strings.Contains(msg, asub) {
			return a
		}
	}
	return ""
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
