package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGateFiltersByRegionAndAllowlist(t *testing.T) {
	regions := []region{
		{file: "internal/tlb/tlb.go", name: "Lookup", start: 10, end: 30},
		{file: "internal/sim/sim.go", name: "drive loop@80", start: 80, end: 120},
	}
	output := strings.Join([]string{
		"# hybridtlb/internal/tlb",
		"internal/tlb/tlb.go:15:6: e escapes to heap",             // inside Lookup
		"internal/tlb/tlb.go:50:3: buf escapes to heap",           // outside any region
		"internal/tlb/tlb.go:20:9: can inline (*Cache).Lookup",    // not an escape
		"internal/sim/sim.go:90:14: moved to heap: recs",          // inside the loop
		"internal/sim/sim.go:95:2: allowed thing escapes to heap", // allowlisted
		"garbage line without position",
	}, "\n")
	allow := []string{"internal/sim/sim.go: allowed thing"}

	violations, used := gate(output, regions, allow)
	if len(violations) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0], "moved to heap: recs") || !strings.Contains(violations[0], "drive loop@80") {
		t.Errorf("loop-region violation malformed: %s", violations[0])
	}
	if !strings.Contains(violations[1], "tlb.go:15:6") || !strings.Contains(violations[1], "hotpath region Lookup") {
		t.Errorf("function-region violation malformed: %s", violations[1])
	}
	if !used[allow[0]] {
		t.Error("matching allowlist entry not marked used")
	}
}

func TestFileRegionsMatchesDirectivePlacement(t *testing.T) {
	dir := t.TempDir()
	src := `package p

//tlbvet:hotpath
func hot() {}

// doc prose first.
//
//tlbvet:hotpath
func docHot() {}

func loops(xs []int) {
	//tlbvet:hotpath
	for range xs {
	}
	for range xs { // unannotated
	}
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	regions, err := fileRegions("p.go", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3: %v", len(regions), regions)
	}
	if regions[0].name != "hot" || regions[1].name != "docHot" || !strings.HasPrefix(regions[2].name, "loops loop@") {
		t.Errorf("unexpected region names: %v", regions)
	}
	if regions[2].start != 13 || regions[2].end != 14 {
		t.Errorf("loop region spans %d-%d, want 13-14", regions[2].start, regions[2].end)
	}
}

func TestLoadAllowlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.allow")
	content := "# comment\n\ninternal/x/y.go: some escape\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := loadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != "internal/x/y.go: some escape" {
		t.Errorf("entries = %v", entries)
	}

	// Missing file is the default empty allowlist.
	entries, err = loadAllowlist(filepath.Join(dir, "missing"))
	if err != nil || entries != nil {
		t.Errorf("missing allowlist: entries=%v err=%v", entries, err)
	}

	// Malformed entries are rejected loudly, not ignored.
	if err := os.WriteFile(path, []byte("no colon here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAllowlist(path); err == nil {
		t.Error("colonless entry accepted")
	}
}
