// Command tlbworker is a fabric execution node: it registers with a
// tlbserver running in coordinator mode, pulls sweep-cell leases over
// RPC, runs each through the local simulation engine, and uploads the
// content-addressed result payload. Workers are stateless (an optional
// local store is purely a cache), so they can be killed and restarted
// freely — the coordinator re-enqueues whatever they were holding.
//
// Examples:
//
//	tlbworker -coordinator localhost:9090
//	tlbworker -coordinator coord.example:9090 -name rack3-a -store-dir /var/cache/tlbworker
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridtlb"
	"hybridtlb/internal/buildinfo"
	"hybridtlb/internal/fabric"
	"hybridtlb/internal/persist"
)

func main() {
	var (
		coordinator   = flag.String("coordinator", "", "fabric coordinator RPC address (required)")
		name          = flag.String("name", "", "advisory worker name; empty lets the coordinator assign one")
		parallel      = flag.Int("parallel", 0, "concurrency inside one cell's simulation (0: GOMAXPROCS)")
		storeDir      = flag.String("store-dir", "", "local content-addressed artifact cache (empty: none)")
		storeMaxBytes = flag.Int64("store-max-bytes", 0, "prune the local cache oldest-first past this size (0: unbounded)")
		heartbeat     = flag.Duration("heartbeat", time.Second, "coordinator liveness ping interval")
		poll          = flag.Duration("poll", 250*time.Millisecond, "idle wait between lease requests")
		dialAttempts  = flag.Int("dial-attempts", 30, "consecutive failed coordinator dials before exiting nonzero (0: retry forever)")
		retries       = flag.Int("retries", 1, "attempts per cell before its error is reported to the coordinator")
		chaos         = flag.Float64("chaos", 0, "fault-injection rate [0,1) for transient cell failures (testing only)")
		chaosSeed     = flag.Int64("chaos-seed", 1, "deterministic seed for fault injection")
		chaosDelay    = flag.Duration("chaos-delay", 0, "max injected per-cell delay (testing only)")
		logJSON       = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		showVersion   = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.Version())
		return
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "tlbworker: -coordinator is required")
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	var store *persist.ResultStore
	if *storeDir != "" {
		var err error
		store, err = persist.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbworker:", err)
			os.Exit(1)
		}
	}

	var faults *hybridtlb.FaultInjector
	if *chaos > 0 || *chaosDelay > 0 {
		faults = &hybridtlb.FaultInjector{
			Seed:          *chaosSeed,
			TransientRate: *chaos,
			Delay:         *chaosDelay,
		}
		log.Warn("fault injection enabled", "rate", *chaos, "seed", *chaosSeed, "delay", *chaosDelay)
	}

	w, err := fabric.NewWorker(fabric.WorkerConfig{
		Coordinator:   *coordinator,
		Name:          *name,
		Version:       buildinfo.Version(),
		Parallelism:   *parallel,
		Store:         store,
		StoreMaxBytes: *storeMaxBytes,
		Retry:         hybridtlb.RetryPolicy{MaxAttempts: *retries, Seed: *chaosSeed},
		Faults:        faults,
		Heartbeat:     *heartbeat,
		Poll:          *poll,
		DialAttempts:  *dialAttempts,
		Logger:        log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbworker:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("tlbworker starting",
		"coordinator", *coordinator, "name", *name, "version", buildinfo.Version())
	err = w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "tlbworker:", err)
		os.Exit(1)
	}
	log.Info("tlbworker exited cleanly", "cells", w.Cells())
}
