// Command tracegen generates a benchmark's memory access trace, writes it
// in the repository's compact binary format, and summarizes traces read
// back — the record/replay half of the simulator.
//
// Examples:
//
//	tracegen -workload mcf -accesses 1000000 -o mcf.trc
//	tracegen -summarize mcf.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "gups", "benchmark: "+strings.Join(workload.Names(), ", "))
		accesses  = flag.Uint64("accesses", 1_000_000, "trace length in memory accesses")
		footprint = flag.Uint64("footprint", 0, "footprint in 4KiB pages (0: workload default)")
		seed      = flag.Int64("seed", 42, "random seed")
		base      = flag.Uint64("base", 0x10000, "first virtual page of the footprint")
		out       = flag.String("o", "", "output trace file (default: stdout summary only)")
		format    = flag.String("format", "varint", "output format: varint (compact delta stream) or bin (fixed-width records, mmap-able for zero-copy replay)")
		summarize = flag.String("summarize", "", "read a trace file back and summarize it (format auto-detected)")
		reuse     = flag.Bool("reuse", false, "include the page reuse-distance histogram in summaries")
	)
	flag.Parse()

	if *summarize != "" {
		if err := summary(*summarize, *reuse); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	spec, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	gen := spec.NewGenerator(mem.VPN(*base), *footprint, *accesses, *seed)

	if *out == "" {
		if *reuse {
			fmt.Printf("trace         %s\n", spec.Name)
			trace.Analyze(gen).Print(os.Stdout)
			return
		}
		describe(os.Stdout, spec.Name, gen)
		return
	}
	count, size, err := writeTrace(*out, *format, gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d bytes, %.2f B/record) to %s\n",
		count, size, float64(size)/float64(count), *out)
}

// traceWriter is what both encoders expose to the record loop.
type traceWriter interface {
	Write(trace.Record) error
	Count() uint64
}

// writeTrace encodes the source to path in the chosen format and returns
// the record count and file size.
func writeTrace(path, format string, src trace.Source) (uint64, int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	var w traceWriter
	var finish func() error
	switch format {
	case "varint":
		vw, err := trace.NewWriter(f)
		if err != nil {
			_ = f.Close() // the writer error is the failure being reported
			return 0, 0, err
		}
		w, finish = vw, vw.Flush
	case "bin":
		// BinWriter.Close seeks back to patch the record count into the
		// header, which works here because f is a real file.
		bw, err := trace.NewBinWriter(f)
		if err != nil {
			_ = f.Close() // the writer error is the failure being reported
			return 0, 0, err
		}
		w, finish = bw, bw.Close
	default:
		_ = f.Close() // nothing was written
		return 0, 0, fmt.Errorf("unknown trace format %q (varint or bin)", format)
	}
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			_ = f.Close() // the write error is the failure being reported
			return 0, 0, err
		}
	}
	if err := finish(); err != nil {
		_ = f.Close() // the flush error is the failure being reported
		return 0, 0, err
	}
	info, _ := f.Stat()
	// Close before reporting success: a full disk surfaces here, not as
	// a silently truncated trace.
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	return w.Count(), info.Size(), nil
}

func summary(path string, reuse bool) error {
	// OpenPath detects the format by magic, so summaries work on both
	// varint and fixed-width binary traces.
	src, closeSrc, err := trace.OpenPath(path)
	if err != nil {
		return err
	}
	defer closeSrc()
	if reuse {
		fmt.Printf("trace         %s\n", path)
		trace.Analyze(src).Print(os.Stdout)
	} else {
		describe(os.Stdout, path, src)
	}
	if e, ok := src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// describe drains a source and prints aggregate statistics.
func describe(w *os.File, label string, src trace.Source) {
	var records, instrs, writes uint64
	pages := make(map[mem.VPN]struct{})
	minV, maxV := mem.VPN(^uint64(0)), mem.VPN(0)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		records++
		instrs += uint64(rec.Instrs)
		if rec.Write {
			writes++
		}
		pages[rec.VPN] = struct{}{}
		if rec.VPN < minV {
			minV = rec.VPN
		}
		if rec.VPN > maxV {
			maxV = rec.VPN
		}
	}
	fmt.Fprintf(w, "trace         %s\n", label)
	fmt.Fprintf(w, "records       %d\n", records)
	fmt.Fprintf(w, "instructions  %d (%.2f per access)\n", instrs, float64(instrs)/float64(records))
	fmt.Fprintf(w, "writes        %d (%.1f%%)\n", writes, 100*float64(writes)/float64(records))
	fmt.Fprintf(w, "distinct pgs  %d\n", len(pages))
	if records > 0 {
		fmt.Fprintf(w, "VPN range     [%#x, %#x]\n", uint64(minV), uint64(maxV))
	}
}
