package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd builds the real tlbvet binary and runs it through
// `go vet -vettool` against a scratch module seeded with one violation
// per new-analyzer family, asserting the run fails with the expected
// diagnostics — the same wiring `make lint` and CI use, so a protocol
// regression (unitchecker handshake, flag registration, analyzer
// roster) fails here and not on developer machines.
func TestVettoolEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "tlbvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tlbvet: %v\n%s", err, out)
	}

	// The scratch module reuses the real module path so the
	// discovery-scoped analyzers (determinism) treat internal/sim as in
	// scope, exactly like the repo's own packages.
	mod := filepath.Join(tmp, "mod")
	writeFile(t, filepath.Join(mod, "go.mod"), "module hybridtlb\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "internal", "sim", "sim.go"), `package sim

import "time"

func seed() int64 {
	return time.Now().UnixNano()
}

//tlbvet:hotpath
func grow(xs []int, v int) []int {
	return append(xs, v)
}

func leak(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}
`)

	out, err := runVet(t, tool, mod)
	if err == nil {
		t.Fatalf("go vet -vettool passed on seeded violations; output:\n%s", out)
	}
	for _, want := range []string{
		"reads the wall clock",      // determinism
		"append may grow past cap",  // allocfree
		"no provable shutdown path", // lifecycle
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing diagnostic %q; got:\n%s", want, out)
		}
	}

	// The same wiring must pass cleanly on an violation-free package —
	// a vettool that fails everything would also "catch" the seeds.
	clean := filepath.Join(tmp, "clean")
	writeFile(t, filepath.Join(clean, "go.mod"), "module hybridtlb\n\ngo 1.22\n")
	writeFile(t, filepath.Join(clean, "internal", "sim", "sim.go"), `package sim

func double(x int) int { return 2 * x }
`)
	if out, err := runVet(t, tool, clean); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, out)
	}
}

func runVet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
