// Command tlbvet runs the project's custom static analyzers (see
// internal/lint): determinism, ctxflow, locksafe, closecheck, noprint,
// allocfree, rpcsafe, lifecycle, and metriclint.
//
// It works two ways:
//
//	go run ./cmd/tlbvet ./...        # standalone, on package patterns
//	go vet -vettool=bin/tlbvet ./... # as a vet tool
//
// Both forms are equivalent: in standalone mode tlbvet re-executes
// itself through `go vet -vettool`, so the go command does the package
// loading and tlbvet only implements the unitchecker protocol. That
// keeps the binary free of any package-loading machinery and works
// without network access.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"hybridtlb/internal/lint"
)

func main() {
	// `go vet -vettool` invokes the tool with -V=full (version probe),
	// -flags (flag discovery), and finally a <unit>.cfg per package.
	// Anything else — package patterns like ./... — is standalone use.
	if unitProtocol(os.Args[1:]) {
		unitchecker.Main(lint.All()...) // does not return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbvet: cannot locate own binary:", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "tlbvet: go vet:", err)
		os.Exit(2)
	}
}

// unitProtocol reports whether the arguments look like the go
// command's vettool handshake rather than user-supplied package
// patterns.
func unitProtocol(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if !strings.HasPrefix(a, "-") && !strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}
