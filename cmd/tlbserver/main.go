// Command tlbserver serves the simulator over HTTP: synchronous
// simulations on POST /v1/simulate, asynchronous sweep jobs on
// POST /v1/sweeps (202 + job ID, status by polling or SSE), with a
// bounded worker pool, a server-lifetime result cache, Prometheus-text
// /metrics, health/readiness probes and graceful drain on SIGTERM.
//
// With -coordinator it additionally runs the distributed sweep fabric:
// an RPC endpoint that shards sweep cells across tlbworker processes,
// with heartbeat membership, work stealing, and dead-worker recovery.
// Sweeps then execute across the fleet and assemble from the shared
// content-addressed store — byte-identical to local execution.
//
// Examples:
//
//	tlbserver -addr :8080 -workers 2 -queue 4
//	tlbserver -addr :8080 -state-dir /var/lib/tlbserver -coordinator :9090
//	curl -s localhost:8080/v1/simulate -d '{"scheme":"anchor","workload":"gups","scenario":"medium"}'
//	curl -s localhost:8080/v1/sweeps -d '{"schemes":["base","anchor"],"workloads":["gups"],"scenarios":["demand","medium"]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hybridtlb"
	"hybridtlb/internal/buildinfo"
	"hybridtlb/internal/fabric"
	"hybridtlb/internal/persist"
	"hybridtlb/internal/server"
	"hybridtlb/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "sweep worker pool size")
		queueDepth   = flag.Int("queue", 8, "bounded sweep queue depth (full queue answers 429)")
		sweepPar     = flag.Int("sweep-parallel", 0, "concurrent simulations per sweep (0: GOMAXPROCS)")
		simTimeout   = flag.Duration("request-timeout", 60*time.Second, "synchronous simulate budget")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "per-sweep-job budget")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget before in-flight jobs are canceled")
		maxAccesses  = flag.Uint64("max-accesses", 5_000_000, "per-simulation accesses cap")
		maxCells     = flag.Int("max-cells", 4096, "per-sweep expanded grid cap")
		maxJobs      = flag.Int("max-jobs", 512, "retained sweep jobs before the oldest terminal ones are evicted (0: unlimited)")
		stateDir     = flag.String("state-dir", "", "directory for the durable result store and job journal (empty: in-memory only)")
		retries      = flag.Int("retries", 1, "attempts per sweep cell before its error is final")
		chaos        = flag.Float64("chaos", 0, "fault-injection rate [0,1) for transient cell failures (testing only)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "deterministic seed for fault injection")
		chaosDelay   = flag.Duration("chaos-delay", 0, "max injected per-cell delay (testing only)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		keyfile      = flag.String("tenant-keyfile", "", "JSON tenant keyfile; enables bearer-key auth, per-tenant rate/quota limits and weighted fair-share scheduling")
		retryAfter   = flag.Duration("retry-after", 2*time.Second, "floor for the adaptive Retry-After hint on 429 responses")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in; reveals internals)")

		storeMaxBytes = flag.Int64("store-max-bytes", 0, "prune the durable result store oldest-first past this size after each job (0: unbounded)")
		coordinator   = flag.String("coordinator", "", "fabric RPC listen address; enables distributed sweeps (requires -state-dir)")
		fabricTick    = flag.Duration("fabric-tick", 250*time.Millisecond, "fabric clock period (lease TTLs etc. count these ticks)")
		fabricDead    = flag.Int("fabric-dead-after", 12, "heartbeat-silent ticks before a worker is declared dead")
		fabricTTL     = flag.Int("fabric-lease-ttl", 2400, "ticks before an outstanding lease expires")
		fabricSteal   = flag.Int("fabric-steal-after", 40, "lease age in ticks before an idle worker may steal the cell")
		fabricFall    = flag.Int("fabric-fallback-after", 20, "ticks with zero live workers before pending cells resolve locally")
		fabricRetries = flag.Int("fabric-remote-attempts", 2, "remote failures per cell before it resolves locally")
		showVersion   = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.Version())
		return
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	var faults *hybridtlb.FaultInjector
	if *chaos > 0 || *chaosDelay > 0 {
		faults = &hybridtlb.FaultInjector{
			Seed:          *chaosSeed,
			TransientRate: *chaos,
			Delay:         *chaosDelay,
		}
		log.Warn("fault injection enabled", "rate", *chaos, "seed", *chaosSeed, "delay", *chaosDelay)
	}

	var registry *tenant.Registry
	if *keyfile != "" {
		var err error
		registry, err = tenant.Load(*keyfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserver:", err)
			os.Exit(2)
		}
		log.Info("multi-tenant admission enabled", "keyfile", *keyfile, "tenants", registry.Len())
	}

	cfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		SweepParallelism: *sweepPar,
		SimulateTimeout:  *simTimeout,
		JobTimeout:       *jobTimeout,
		MaxAccesses:      *maxAccesses,
		MaxSweepJobs:     *maxCells,
		MaxJobs:          *maxJobs,
		StateDir:         *stateDir,
		StoreMaxBytes:    *storeMaxBytes,
		Retry:            hybridtlb.RetryPolicy{MaxAttempts: *retries, Seed: *chaosSeed},
		Faults:           faults,
		Logger:           log,
		RetryAfter:       *retryAfter,
		Tenants:          registry,
		EnablePprof:      *enablePprof,
	}

	// Coordinator mode: open the shared store up front, run sweeps
	// through the fabric, and expose fabric metrics on /metrics. The
	// store is the result transport, so -state-dir is mandatory here.
	var coord *fabric.Coordinator
	if *coordinator != "" {
		if *stateDir == "" {
			fmt.Fprintln(os.Stderr, "tlbserver: -coordinator requires -state-dir (the shared store is the fabric's result transport)")
			os.Exit(2)
		}
		store, err := persist.OpenStore(filepath.Join(*stateDir, "store"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserver:", err)
			os.Exit(1)
		}
		coord, err = fabric.NewCoordinator(fabric.Config{
			Store:              store,
			Version:            buildinfo.Version(),
			LeaseTTLTicks:      *fabricTTL,
			DeadAfterTicks:     *fabricDead,
			StealAfterTicks:    *fabricSteal,
			FallbackAfterTicks: *fabricFall,
			MaxRemoteAttempts:  *fabricRetries,
			SweepParallelism:   *sweepPar,
			Retry:              hybridtlb.RetryPolicy{MaxAttempts: *retries, Seed: *chaosSeed},
			Faults:             faults,
			Logger:             log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserver:", err)
			os.Exit(1)
		}
		cfg.PersistStore = store
		cfg.Runner = coord
		cfg.ExtraMetrics = coord.WriteMetrics
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbserver:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)

	// Fabric side: RPC listener for workers plus the ticker goroutine
	// that advances the coordinator's clock (the coordinator itself is
	// clock-free; all lease timing counts these ticks). The ticker runs
	// on its own context, not the signal context: in-flight sweeps keep
	// executing during the drain window and still need dead-worker
	// detection, lease expiry, and the empty-fleet fallback, so the
	// clock stops only after the drain completes.
	tickCtx, stopTick := context.WithCancel(context.Background())
	defer stopTick()
	var fabricLn net.Listener
	if coord != nil {
		var err error
		fabricLn, err = net.Listen("tcp", *coordinator)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlbserver:", err)
			os.Exit(1)
		}
		svc := fabric.NewService(coord)
		go func() {
			log.Info("fabric coordinator listening",
				"addr", fabricLn.Addr().String(), "tick", *fabricTick, "version", buildinfo.Version())
			if err := svc.Serve(fabricLn); err != nil {
				errCh <- fmt.Errorf("fabric: %w", err)
			}
		}()
		go func() {
			t := time.NewTicker(*fabricTick)
			defer t.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-t.C:
					coord.Tick()
				}
			}
		}()
	}

	go func() {
		log.Info("tlbserver listening", "addr", *addr, "workers", *workers, "queue", *queueDepth)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "tlbserver:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: flip readiness first so load balancers stop
	// routing here and new sweeps get 503, then let queued and running
	// sweep jobs complete (bounded by -drain-timeout) while the
	// listener stays up — clients can still poll their results during
	// the drain. Only then close the HTTP side.
	log.Info("signal received; draining", "timeout", *drainTimeout)
	if fabricLn != nil {
		if err := fabricLn.Close(); err != nil {
			log.Warn("closing fabric listener", "err", err)
		}
	}
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(shutdownCtx)
	stopTick()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Close(); err != nil {
		log.Warn("closing journal", "err", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "tlbserver: drain:", drainErr)
		os.Exit(1)
	}
	log.Info("tlbserver exited cleanly")
}
