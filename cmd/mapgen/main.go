// Command mapgen generates a mapping scenario and inspects its
// contiguity: chunk counts, the chunk-size histogram and CDF (Figure 1's
// quantity), and the anchor distance Algorithm 1 selects for it.
//
// Example:
//
//	mapgen -scenario demand -footprint 262144 -pressure 0.6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
)

func main() {
	var (
		scenario  = flag.String("scenario", "demand", "mapping scenario: "+strings.Join(scenarioNames(), ", "))
		footprint = flag.Uint64("footprint", 1<<17, "footprint in 4KiB pages")
		seed      = flag.Int64("seed", 42, "random seed")
		pressure  = flag.Float64("pressure", 0, "background fragmentation in [0,1]")
		costs     = flag.Bool("costs", false, "print Algorithm 1's per-distance costs")
		chunks    = flag.Bool("chunks", false, "list every chunk")
		fine      = flag.Bool("fine", false, "fine-grained allocator behaviour (omnetpp-like)")
		outPath   = flag.String("out", "", "write the report to a file instead of stdout")
	)
	flag.Parse()

	sc, err := mapping.ParseScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapgen:", err)
		os.Exit(1)
	}
	cl, err := mapping.Generate(sc, mapping.Config{
		FootprintPages: *footprint,
		Seed:           *seed,
		Pressure:       *pressure,
		FineGrained:    *fine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *outPath != "" {
		f, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapgen:", err)
			os.Exit(1)
		}
		w = f
	}

	hist := mem.BuildHistogram(cl)
	fmt.Fprintf(w, "scenario   %s (pressure %.2f, seed %d)\n", sc, *pressure, *seed)
	fmt.Fprintf(w, "footprint  %s in %d chunks (mean %.1f pages/chunk)\n",
		mem.HumanBytes(*footprint*mem.Size4K), len(cl), float64(*footprint)/float64(len(cl)))

	fmt.Fprintln(w, "\nchunk-size CDF (fraction of pages in chunks <= size):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cdf := hist.CDF()
	for _, bound := range []uint64{1, 4, 16, 64, 256, 512, 2048, 8192, 65536} {
		frac := 0.0
		for _, pt := range cdf {
			if pt.ChunkPages > bound {
				break
			}
			frac = pt.CumFraction
		}
		fmt.Fprintf(tw, "<= %d pages\t%.3f\n", bound, frac)
	}
	tw.Flush()

	best, perDistance := core.SelectDistance(hist)
	fmt.Fprintf(w, "\nAlgorithm 1 selects anchor distance %d (%s)\n", best, mem.HumanBytes(best*mem.Size4K))
	if *costs {
		fmt.Fprintln(w, "\nper-distance cost (hypothetical TLB entries):")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "distance\tanchors\t2MB pages\t4KB pages\tcost")
		for _, c := range perDistance {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f\n", c.Distance, c.AnchorEntries, c.LargePages, c.SmallPages, c.Cost)
		}
		tw.Flush()
	}
	if *chunks {
		fmt.Fprintln(w, "\nchunks:")
		for _, c := range cl {
			fmt.Fprintf(w, "  %s (%d pages)\n", c, c.Pages)
		}
	}
	// Close before exiting zero so a failed flush (full disk) fails the
	// run instead of leaving a truncated report.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mapgen:", err)
			os.Exit(1)
		}
	}
}

func scenarioNames() []string {
	var out []string
	for _, s := range mapping.All() {
		out = append(out, s.String())
	}
	return out
}
