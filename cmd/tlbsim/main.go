// Command tlbsim runs one (scheme × workload × mapping) simulation and
// prints the paper's metrics for it: TLB miss counts, the L2 access
// breakdown, and the translation CPI split.
//
// Example:
//
//	tlbsim -scheme anchor -workload gups -mapping medium -accesses 1000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hybridtlb"
	"hybridtlb/internal/buildinfo"
)

func main() {
	var (
		scheme    = flag.String("scheme", "anchor", "translation scheme: "+strings.Join(hybridtlb.Schemes(), ", "))
		wl        = flag.String("workload", "gups", "benchmark: "+strings.Join(hybridtlb.Workloads(), ", "))
		scenario  = flag.String("mapping", "demand", "mapping scenario: "+strings.Join(hybridtlb.Scenarios(), ", "))
		accesses  = flag.Uint64("accesses", 1_000_000, "measured memory accesses (plus 10% warmup)")
		footprint = flag.Uint64("footprint", 0, "footprint in 4KiB pages (0: workload default)")
		seed      = flag.Int64("seed", 42, "random seed for mapping and workload")
		pressure  = flag.Float64("pressure", 0, "background fragmentation in [0,1] (demand/eager)")
		distance  = flag.Uint64("distance", 0, "pin the anchor distance (0: dynamic selection)")
		static    = flag.Bool("static-ideal", false, "exhaustively search all anchor distances and report the best")
		costModel = flag.String("cost-model", "", "distance selection cost model: entry-count (default), coverage-weighted, capacity-aware")
		regions   = flag.Bool("multi-region", false, "per-region anchor distances (Section 4.2 extension)")
		tracePath   = flag.String("trace", "", "replay a recorded trace file (see tracegen; format auto-detected) instead of generating accesses")
		shards      = flag.Int("shards", 0, "split the run across N parallel shard simulators (byte-identical results; 0/1: serial)")
		epochs      = flag.Bool("epochs", false, "print one line per epoch boundary to stderr (cumulative stats, anchor distance)")
		epochInstrs = flag.Uint64("epoch-instrs", 0, "epoch length in instructions (0: the paper's 10,000,000)")
		showVersion = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.Version())
		return
	}

	cfg := hybridtlb.SimulationConfig{
		Scheme:              *scheme,
		Workload:            *wl,
		Scenario:            *scenario,
		Accesses:            *accesses,
		FootprintPages:      *footprint,
		Seed:                *seed,
		Pressure:            *pressure,
		FixedAnchorDistance: *distance,
		CostModel:           *costModel,
		MultiRegionAnchors:  *regions,
		TracePath:           *tracePath,
		EpochInstructions:   *epochInstrs,
		Shards:              *shards,
	}
	if *epochs {
		cfg.Probe = func(s hybridtlb.EpochSample) {
			fmt.Fprintf(os.Stderr, "epoch %3d  %12d instrs  %12d accesses  %10d misses",
				s.Epoch, s.Instructions, s.Stats.Accesses, s.Stats.Misses)
			if s.AnchorDistance > 0 {
				fmt.Fprintf(os.Stderr, "  d=%d", s.AnchorDistance)
			}
			fmt.Fprintln(os.Stderr)
		}
	}

	// Ctrl-C cancels cleanly at simulation boundaries (between the
	// static-ideal distance probes) instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res hybridtlb.SimulationResult
	var err error
	if *static {
		res, err = hybridtlb.SimulateStaticIdealContext(ctx, cfg)
	} else {
		res, err = hybridtlb.SimulateContext(ctx, cfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tlbsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "tlbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("mapping       %s (%d chunks, %d huge pages)\n", res.Scenario, res.Chunks, res.HugePages)
	if res.AnchorDistance > 1 {
		fmt.Printf("anchor dist.  %d pages\n", res.AnchorDistance)
	}
	fmt.Printf("accesses      %d (%d instructions)\n", res.Stats.Accesses, res.Instructions)
	fmt.Printf("L1 hits       %d (%.1f%%)\n", res.Stats.L1Hits, pct(res.Stats.L1Hits, res.Stats.Accesses))
	fmt.Printf("L2 reg. hits  %d\n", res.Stats.L2RegularHits)
	fmt.Printf("coalesced     %d\n", res.Stats.CoalescedHits)
	fmt.Printf("TLB misses    %d (%.1f per 1M instructions)\n", res.Stats.Misses, res.MissesPerMillionInstructions())
	fmt.Printf("L2 breakdown  %.1f%% regular / %.1f%% coalesced / %.1f%% miss\n",
		res.L2RegularHitFraction*100, res.L2CoalescedHitFraction*100, res.L2MissFraction*100)
	fmt.Printf("transl. CPI   %.4f (%.4f L2-hit + %.4f coalesced + %.4f walk)\n",
		res.TranslationCPI, res.CPIRegularHit, res.CPICoalescedHit, res.CPIWalk)
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
