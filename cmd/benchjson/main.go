// Command benchjson converts `go test -bench` output on stdin into the
// repo's machine-readable benchmark artifact. It is the back half of
// `make bench-json`:
//
//	go test -run xxx -bench BenchmarkTranslateHotPath -benchmem . \
//	    | benchjson -out BENCH_pipeline.json
//
// The artifact records ns/access and allocs/access for every scheme's
// serial and batched hot-path variant; a run without -benchmem (or with
// no hot-path rows at all) fails instead of writing a hollow file. By
// default (-require-zero-allocs) the run also fails if any scheme's
// batched variant reports a nonzero allocs- or bytes-per-access figure,
// turning the bench artifact into a CI proof that the //tlbvet:hotpath
// regions stay allocation-free at runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hybridtlb/internal/benchparse"
)

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output artifact path (empty: compare/check only, write nothing)")
	requireZeroAllocs := flag.Bool("require-zero-allocs", true,
		"fail if any scheme's batched hot-path variant reports allocs or bytes per access")
	baseline := flag.String("baseline", "",
		"committed artifact to compare against; fail on ns/access regressions beyond -baseline-tolerance")
	tolerance := flag.Float64("baseline-tolerance", 0.10,
		"fractional ns/access slack over the baseline before a cell counts as regressed")
	flag.Parse()

	entries, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep, err := benchparse.Pipeline(entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *requireZeroAllocs {
		if err := benchparse.RequireZeroAllocs(rep, "batched"); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base benchparse.PipelineReport
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		if err := benchparse.CompareBaseline(rep, base, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: within %.0f%% of baseline %s\n", 100**tolerance, *baseline)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	schemes := make([]string, 0, len(rep.Schemes))
	for s := range rep.Schemes {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		serial, batched := rep.Schemes[s]["serial"], rep.Schemes[s]["batched"]
		speedup := 0.0
		if batched.NsPerAccess > 0 {
			speedup = serial.NsPerAccess / batched.NsPerAccess
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-12s serial %8.1f ns  batched %8.1f ns  (%.2fx, %d allocs/access)",
			s, serial.NsPerAccess, batched.NsPerAccess, speedup, batched.AllocsPerAccess)
		if sharded, ok := rep.Schemes[s]["sharded"]; ok {
			fmt.Fprintf(os.Stderr, "  sharded %8.1f ns", sharded.NsPerAccess)
		}
		fmt.Fprintln(os.Stderr)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d schemes)\n", *out, len(schemes))
	}
}
