// Command experiments regenerates the paper's evaluation tables and
// figures (Section 5) from the simulator.
//
// Examples:
//
//	experiments -exp fig7               # Figure 7 (demand paging misses)
//	experiments -exp all -out eval.txt  # everything, into a file
//	experiments -exp fig9 -accesses 500000 -workloads gups,mcf,omnetpp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hybridtlb/internal/report"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, "+strings.Join(report.Names(), ", "))
		accesses   = flag.Uint64("accesses", 200_000, "measured accesses per simulation run")
		seed       = flag.Int64("seed", 42, "random seed")
		workloads  = flag.String("workloads", "", "comma-separated benchmark subset (default: full suite)")
		skipStatic = flag.Bool("skip-static-ideal", false, "drop the exhaustive static-ideal column (16x cheaper)")
		outPath    = flag.String("out", "", "write output to a file instead of stdout")
		asJSON     = flag.Bool("json", false, "emit the figure matrices as JSON instead of tables (ignores -exp)")
	)
	flag.Parse()

	opts := report.Options{
		Accesses:        *accesses,
		Seed:            *seed,
		SkipStaticIdeal: *skipStatic,
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	if *asJSON {
		if err := report.WriteJSON(w, opts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else if err := report.Run(*exp, w, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: %s completed in %v\n", *exp, time.Since(start).Round(time.Millisecond))
}
