// Command experiments regenerates the paper's evaluation tables and
// figures (Section 5) from the simulator.
//
// Examples:
//
//	experiments -exp fig7               # Figure 7 (demand paging misses)
//	experiments -exp all -out eval.txt  # everything, into a file
//	experiments -exp fig9 -accesses 500000 -workloads gups,mcf,omnetpp
//	experiments -exp all -parallel 8 -progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"hybridtlb/internal/report"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/sweep"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, "+strings.Join(report.Names(), ", "))
		accesses   = flag.Uint64("accesses", 200_000, "measured accesses per simulation run")
		seed       = flag.Int64("seed", 42, "random seed")
		workloads  = flag.String("workloads", "", "comma-separated benchmark subset (default: full suite)")
		skipStatic = flag.Bool("skip-static-ideal", false, "drop the exhaustive static-ideal column (16x cheaper)")
		outPath    = flag.String("out", "", "write output to a file instead of stdout")
		asJSON     = flag.Bool("json", false, "emit the selected experiment as JSON (supports "+strings.Join(report.JSONExperiments(), ", ")+")")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0: GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "print a live sweep progress line to stderr")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight sweep through the engine's context
	// support: running simulations finish, undispatched jobs are
	// skipped, and no partially written output is reported as success.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var progressFn sweep.ProgressFunc
	var probeFn func(sweep.Job) sim.Probe
	var epochs atomic.Uint64
	if *progress {
		progressFn = func(done, total int, job sweep.Job) {
			fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d (%d epochs) %-40.40s",
				done, total, epochs.Load(), job.String())
			if done == total {
				fmt.Fprint(os.Stderr, "\r"+strings.Repeat(" ", 70)+"\r")
			}
		}
		// Epoch probes make the line move during long cells, between the
		// coarser per-cell completion updates.
		probeFn = func(sweep.Job) sim.Probe {
			return func(sim.ProbeSample) { epochs.Add(1) }
		}
	}
	// One engine for the whole invocation: every experiment of an "all"
	// run shares the worker pool and the result cache.
	eng := sweep.New(sweep.Options{Parallelism: *parallel, Progress: progressFn, Probe: probeFn})

	opts := report.Options{
		Accesses:        *accesses,
		Seed:            *seed,
		SkipStaticIdeal: *skipStatic,
		Parallelism:     *parallel,
		Engine:          eng,
		Context:         ctx,
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *outPath != "" {
		var err error
		f, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		w = f
	}

	start := time.Now()
	var err error
	if *asJSON {
		err = report.WriteJSONFor(*exp, w, opts)
	} else {
		err = report.Run(*exp, w, opts)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; partial sweep discarded")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// A full output file on a nearly-full disk can lose buffered writes
	// at close; surface that instead of reporting success.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	stats := eng.Stats()
	fmt.Fprintf(os.Stderr, "experiments: %s completed in %v (%d simulations, %d cache hits)\n",
		*exp, time.Since(start).Round(time.Millisecond), stats.Misses, stats.Hits)
	if *progress {
		hitRate := 0.0
		if stats.Jobs > 0 {
			hitRate = 100 * float64(stats.Hits) / float64(stats.Jobs)
		}
		fmt.Fprintf(os.Stderr, "experiments: sweep cache: %d jobs, %d hits, %d misses (%.1f%% hit rate), %d epochs observed\n",
			stats.Jobs, stats.Hits, stats.Misses, hitRate, epochs.Load())
	}
}
