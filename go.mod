module hybridtlb

go 1.22

// x/tools is used only by internal/lint and cmd/tlbvet (static analysis);
// the main library and server remain stdlib-only. The dependency is
// vendored (see vendor/) so builds never need the network.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
