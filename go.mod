module hybridtlb

go 1.22
