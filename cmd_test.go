package hybridtlb_test

// End-to-end tests for the command-line tools: each binary is built once
// and driven with small arguments, asserting its output shape and its
// flag plumbing (including the record/replay round trip between tracegen
// and tlbsim).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/<name> binary into the test's temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCmdTLBSim(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd builds skipped in -short")
	}
	bin := buildTool(t, "tlbsim")
	out := run(t, bin,
		"-scheme", "anchor", "-workload", "omnetpp", "-mapping", "medium",
		"-footprint", "8192", "-accesses", "20000")
	for _, want := range []string{"scheme", "anchor", "TLB misses", "transl. CPI", "L2 breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Static-ideal and extension flags plumb through.
	out = run(t, bin,
		"-scheme", "anchor", "-workload", "omnetpp", "-mapping", "low",
		"-footprint", "4096", "-accesses", "10000", "-static-ideal")
	if !strings.Contains(out, "anchor dist.") {
		t.Errorf("static-ideal output missing distance:\n%s", out)
	}
	out = run(t, bin,
		"-scheme", "anchor", "-workload", "omnetpp", "-mapping", "medium",
		"-footprint", "4096", "-accesses", "10000",
		"-cost-model", "capacity-aware", "-multi-region")
	if !strings.Contains(out, "TLB misses") {
		t.Errorf("extension flags broke tlbsim:\n%s", out)
	}
	// Bad flags exit non-zero.
	if _, err := exec.Command(bin, "-scheme", "bogus").CombinedOutput(); err == nil {
		t.Error("bogus scheme exited zero")
	}
}

func TestCmdTracegenAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd builds skipped in -short")
	}
	tracegen := buildTool(t, "tracegen")
	tlbsim := buildTool(t, "tlbsim")
	trc := filepath.Join(t.TempDir(), "w.trc")

	out := run(t, tracegen, "-workload", "canneal", "-accesses", "30000", "-footprint", "8192", "-o", trc)
	if !strings.Contains(out, "wrote 30000 records") {
		t.Fatalf("tracegen output: %s", out)
	}
	if fi, err := os.Stat(trc); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	// Summarize reads it back.
	out = run(t, tracegen, "-summarize", trc)
	if !strings.Contains(out, "records       30000") {
		t.Errorf("summary wrong:\n%s", out)
	}
	// Replay through tlbsim.
	out = run(t, tlbsim,
		"-scheme", "anchor", "-workload", "canneal", "-mapping", "medium",
		"-footprint", "8192", "-accesses", "25000", "-trace", trc)
	if !strings.Contains(out, "accesses      25000") {
		t.Errorf("replay output:\n%s", out)
	}
}

func TestCmdMapgen(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd builds skipped in -short")
	}
	bin := buildTool(t, "mapgen")
	out := run(t, bin, "-scenario", "medium", "-footprint", "16384", "-costs")
	for _, want := range []string{"chunk-size CDF", "Algorithm 1 selects", "per-distance cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out = run(t, bin, "-scenario", "demand", "-footprint", "16384", "-pressure", "0.5", "-fine")
	if !strings.Contains(out, "Algorithm 1 selects anchor distance 4 ") {
		t.Errorf("fine-grained demand should select distance 4:\n%s", out)
	}
}

func TestCmdExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd builds skipped in -short")
	}
	bin := buildTool(t, "experiments")
	outFile := filepath.Join(t.TempDir(), "eval.txt")
	run(t, bin, "-exp", "tab4", "-out", outFile)
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table 4") {
		t.Errorf("experiments output:\n%s", data)
	}
	out := run(t, bin, "-exp", "fig2", "-workloads", "omnetpp", "-accesses", "10000")
	if !strings.Contains(out, "Figure 2") {
		t.Errorf("fig2 output:\n%s", out)
	}
	if _, err := exec.Command(bin, "-exp", "bogus").CombinedOutput(); err == nil {
		t.Error("bogus experiment exited zero")
	}
}
