package hybridtlb

import (
	"context"
	"fmt"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/sweep"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

// Mapping scenario names accepted by Simulate (Section 5.1 / Table 4).
const (
	ScenarioDemand = "demand" // Linux demand paging with THP
	ScenarioEager  = "eager"  // eager paging
	ScenarioLow    = "low"    // chunks of 1-16 pages
	ScenarioMedium = "medium" // chunks of 1-512 pages
	ScenarioHigh   = "high"   // chunks of 512-65536 pages
	ScenarioMax    = "max"    // one contiguous region
)

// Scenarios lists the available mapping scenarios.
func Scenarios() []string {
	var out []string
	for _, s := range mapping.All() {
		out = append(out, s.String())
	}
	return out
}

// Workloads lists the synthetic benchmark suite (stand-ins for the
// paper's SPEC CPU2006 / BioBench / graph500 / gups workloads).
func Workloads() []string { return workload.Names() }

// SimulationConfig parameterizes a Simulate run.
type SimulationConfig struct {
	// Scheme is a translation scheme name (see Schemes).
	Scheme string
	// Workload is a benchmark name (see Workloads).
	Workload string
	// Scenario is a mapping scenario name (see Scenarios).
	Scenario string
	// Accesses is the measured trace length (default 1,000,000; a
	// further 10% runs as warmup).
	Accesses uint64
	// FootprintPages overrides the workload's default footprint.
	FootprintPages uint64
	// Seed makes mapping and workload generation deterministic.
	Seed int64
	// Pressure in [0,1] adds background fragmentation to the
	// buddy-backed scenarios (demand, eager).
	Pressure float64
	// FixedAnchorDistance pins the anchor distance (0: dynamic).
	FixedAnchorDistance uint64
	// CostModel names the distance-selection cost model ("" or
	// CostModelEntryCount for the paper-faithful default).
	CostModel string
	// MultiRegionAnchors installs per-region anchor distances (the
	// paper's Section 4.2 extension). Requires the anchor scheme.
	MultiRegionAnchors bool
	// Hardware overrides TLB geometry and latencies (zero: Table 3).
	Hardware Hardware
	// TracePath, when set, replays a recorded trace file (written by
	// cmd/tracegen) instead of generating the workload's accesses; the
	// Workload field then only names the footprint defaults.
	TracePath string
	// EpochInstructions overrides the epoch period in instructions — the
	// dynamic anchor re-selection interval and the Probe sampling period
	// (0: the paper's 10,000,000).
	EpochInstructions uint64
	// Probe, when non-nil, observes the simulation at every epoch
	// boundary (anchor re-selection period): cumulative stats and the
	// current anchor distance. Purely observational — attaching a probe
	// never changes the result — and excluded from sweep result-cache
	// keys, so a config served from the cache fires no samples.
	Probe func(EpochSample) `json:"-"`
	// Shards > 1 splits the run across that many parallel shard
	// simulators with byte-identical results (the equivalence suite
	// holds shard-parallel against serial for every scheme). Like Probe
	// it never changes results, so it is excluded from sweep cache keys.
	Shards int
}

// EpochSample is one epoch-boundary observation delivered to a
// SimulationConfig.Probe: the state of the run after Epoch re-selection
// periods (1-based), with cumulative counters including warmup.
type EpochSample struct {
	Epoch        int
	Instructions uint64
	Stats        Stats
	// AnchorDistance is the process-wide anchor distance after any
	// re-selection at this boundary (anchor scheme; 0 otherwise).
	AnchorDistance uint64
}

// SimulationResult reports one simulation in the paper's metrics.
type SimulationResult struct {
	Scheme   string
	Workload string
	Scenario string

	Stats        Stats
	Instructions uint64

	// TranslationCPI is translation cycles per instruction, the quantity
	// plotted in Figures 10 and 11 (split into its three components).
	TranslationCPI  float64
	CPIRegularHit   float64
	CPICoalescedHit float64
	CPIWalk         float64

	// L2 access breakdown (Table 5): fractions of L2 accesses served by
	// regular entries, coalesced entries, or missing.
	L2RegularHitFraction   float64
	L2CoalescedHitFraction float64
	L2MissFraction         float64

	// AnchorDistance is the final anchor distance (anchor scheme).
	AnchorDistance uint64
	// Chunks and HugePages describe the generated mapping.
	Chunks    int
	HugePages int
}

// MissesPerMillionInstructions returns the normalized miss rate.
func (r SimulationResult) MissesPerMillionInstructions() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Stats.Misses) / float64(r.Instructions) * 1e6
}

// toSimConfig validates the config's names and assembles the internal
// simulator configuration plus the resolved hardware description.
func (cfg SimulationConfig) toSimConfig() (sim.Config, mmu.Config, error) {
	scheme, err := mmu.ParseScheme(cfg.Scheme)
	if err != nil {
		return sim.Config{}, mmu.Config{}, err
	}
	spec, err := workload.ByName(cfg.Workload)
	if err != nil {
		return sim.Config{}, mmu.Config{}, err
	}
	scenario, err := mapping.ParseScenario(cfg.Scenario)
	if err != nil {
		return sim.Config{}, mmu.Config{}, err
	}
	costModel, err := core.ParseCostModel(cfg.CostModel)
	if err != nil {
		return sim.Config{}, mmu.Config{}, err
	}
	hw := cfg.Hardware.toConfig()
	var probe sim.Probe
	if p := cfg.Probe; p != nil {
		probe = func(s sim.ProbeSample) {
			p(EpochSample{
				Epoch:          s.Epoch,
				Instructions:   s.Instructions,
				Stats:          toPublicStats(s.Stats),
				AnchorDistance: s.AnchorDistance,
			})
		}
	}
	return sim.Config{
		Scheme:             scheme,
		Workload:           spec,
		Scenario:           scenario,
		HW:                 hw,
		FootprintPages:     cfg.FootprintPages,
		Accesses:           cfg.Accesses,
		Seed:               cfg.Seed,
		Pressure:           cfg.Pressure,
		FixedDistance:      cfg.FixedAnchorDistance,
		EpochInstructions:  cfg.EpochInstructions,
		CostModel:          costModel,
		MultiRegionAnchors: cfg.MultiRegionAnchors,
		Probe:              probe,
		Shards:             cfg.Shards,
	}, hw, nil
}

// SimulateContext is Simulate with cancellation support: it checks ctx
// before starting and again before reporting, so a cancelled caller (a
// Ctrl-C'd CLI, a disconnected HTTP request) never receives a result it
// no longer wants. A single simulation is not interruptible mid-run; the
// context is observed at simulation boundaries.
func SimulateContext(ctx context.Context, cfg SimulationConfig) (SimulationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return SimulationResult{}, err
	}
	res, err := Simulate(cfg)
	if cerr := ctx.Err(); cerr != nil {
		return SimulationResult{}, cerr
	}
	return res, err
}

// Simulate runs one benchmark over one mapping scenario through one
// translation scheme and reports the paper's metrics.
func Simulate(cfg SimulationConfig) (SimulationResult, error) {
	simCfg, hw, err := cfg.toSimConfig()
	if err != nil {
		return SimulationResult{}, err
	}
	var res sim.Result
	if cfg.TracePath != "" {
		// OpenPath detects the trace format by magic: the varint v1
		// stream gets a decoding Reader, the fixed-width binary format a
		// zero-copy (mmap-backed where available) record view.
		src, closeSrc, oerr := trace.OpenPath(cfg.TracePath)
		if oerr != nil {
			return SimulationResult{}, oerr
		}
		defer closeSrc()
		res, err = sim.RunTrace(simCfg, src)
		if e, ok := src.(interface{ Err() error }); ok && err == nil && e.Err() != nil {
			err = e.Err()
		}
	} else {
		res, err = sim.Run(simCfg)
	}
	if err != nil {
		return SimulationResult{}, err
	}
	return toSimulationResult(res, hw), nil
}

// staticIdealSimConfig assembles the probe configuration both
// static-ideal entry points share: the anchor scheme with dynamic
// selection enabled (each probe then pins its own distance) and the
// multi-region extension cleared, since per-region distances play no
// role under a fixed process-wide distance. Routing through toSimConfig
// keeps every field — notably CostModel, which a hand-rolled sim.Config
// here once silently dropped — validated and carried identically on the
// serial and concurrent paths.
func (cfg SimulationConfig) staticIdealSimConfig() (sim.Config, mmu.Config, error) {
	cfg.Scheme = SchemeAnchor
	cfg.FixedAnchorDistance = 0
	simCfg, hw, err := cfg.toSimConfig()
	if err != nil {
		return sim.Config{}, mmu.Config{}, err
	}
	simCfg.MultiRegionAnchors = false
	return simCfg, hw, nil
}

// SimulateStaticIdeal exhaustively evaluates every anchor distance and
// returns the best-performing run — the paper's "static ideal"
// configuration. The scheme is forced to the anchor scheme.
func SimulateStaticIdeal(cfg SimulationConfig) (SimulationResult, error) {
	simCfg, hw, err := cfg.staticIdealSimConfig()
	if err != nil {
		return SimulationResult{}, err
	}
	best, _, err := sim.RunStaticIdeal(simCfg)
	if err != nil {
		return SimulationResult{}, err
	}
	return toSimulationResult(best, hw), nil
}

// SimulateStaticIdealContext is SimulateStaticIdeal with cancellation
// support: the per-distance probes run through a sweep engine, so
// cancelling ctx stops dispatching probes not yet started and the
// probes themselves execute concurrently (bounded by GOMAXPROCS).
// Results are identical to the serial SimulateStaticIdeal.
func SimulateStaticIdealContext(ctx context.Context, cfg SimulationConfig) (SimulationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	simCfg, hw, err := cfg.staticIdealSimConfig()
	if err != nil {
		return SimulationResult{}, err
	}
	probes, err := sim.StaticIdealConfigs(simCfg)
	if err != nil {
		return SimulationResult{}, err
	}
	jobs := make([]sweep.Job, len(probes))
	for i, pc := range probes {
		jobs[i] = sweep.Job{Config: pc}
	}
	results, err := sweep.New(sweep.Options{}).Run(ctx, jobs)
	if err != nil {
		return SimulationResult{}, err
	}
	return toSimulationResult(sim.BestStaticIdeal(sweep.Results(results)), hw), nil
}

// toPublicStats converts the internal per-scheme counters to the public
// Stats shape (shared by results and epoch probe samples).
func toPublicStats(s mmu.Stats) Stats {
	return Stats{
		Accesses:      s.Accesses,
		L1Hits:        s.L1Hits,
		L2RegularHits: s.L2RegularHits,
		CoalescedHits: s.CoalescedHits,
		Misses:        s.Misses(),
		Cycles:        s.Cycles,
	}
}

func toSimulationResult(res sim.Result, hw mmu.Config) SimulationResult {
	cpi := res.CPI(hw)
	reg, coal, miss := res.L2Breakdown()
	return SimulationResult{
		Scheme:   res.Scheme.String(),
		Workload: res.Workload,
		Scenario: res.Scenario.String(),
		Stats:    toPublicStats(res.Stats),
		Instructions:           res.Instructions,
		TranslationCPI:         cpi.Total(),
		CPIRegularHit:          cpi.L2Hit,
		CPICoalescedHit:        cpi.Coalesced,
		CPIWalk:                cpi.Walk,
		L2RegularHitFraction:   reg,
		L2CoalescedHitFraction: coal,
		L2MissFraction:         miss,
		AnchorDistance:         res.AnchorDistance,
		Chunks:                 res.Chunks,
		HugePages:              res.HugePages,
	}
}

// GenerateMapping produces the chunk list of a named mapping scenario for
// a given footprint — useful for feeding System.Map with realistic
// fragmented mappings.
func GenerateMapping(scenario string, footprintPages uint64, seed int64, pressure float64) ([]Chunk, error) {
	sc, err := mapping.ParseScenario(scenario)
	if err != nil {
		return nil, err
	}
	cl, err := mapping.Generate(sc, mapping.Config{
		FootprintPages: footprintPages,
		Seed:           seed,
		Pressure:       pressure,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Chunk, 0, len(cl))
	for _, c := range cl {
		out = append(out, Chunk{VirtPage: uint64(c.StartVPN), PhysPage: uint64(c.StartPFN), Pages: c.Pages})
	}
	return out, nil
}

// check that the scheme constants stay in sync with the internal enum.
var _ = func() struct{} {
	for _, name := range []string{SchemeBase, SchemeTHP, SchemeCluster, SchemeCluster2M, SchemeRMM, SchemeAnchor, SchemeCoLT, SchemeCoLTFA} {
		if _, err := mmu.ParseScheme(name); err != nil {
			panic(fmt.Sprintf("hybridtlb: scheme constant %q out of sync: %v", name, err))
		}
	}
	return struct{}{}
}()
