// Fragmentation study: how each translation scheme degrades as background
// memory pressure fragments the physical memory a process receives — the
// NUMA/fragmentation motivation of Section 2 of the paper.
//
// For one workload, the demand-paging mapping is regenerated under
// increasing pressure and every scheme's miss rate is measured. Watch THP
// and RMM collapse as contiguity evaporates while the anchor scheme
// follows the best available technique at every point.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybridtlb"
)

func main() {
	const workloadName = "canneal"
	schemes := []string{
		hybridtlb.SchemeBase, hybridtlb.SchemeTHP, hybridtlb.SchemeCluster2M,
		hybridtlb.SchemeRMM, hybridtlb.SchemeAnchor,
	}
	pressures := []float64{0, 0.3, 0.6, 0.9}

	fmt.Printf("TLB misses per million instructions — %s under demand paging\n\n", workloadName)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "pressure")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw, "\tanchor+cap\tanchor dist.")

	for _, p := range pressures {
		fmt.Fprintf(tw, "%.1f", p)
		var anchorDist uint64
		base := hybridtlb.SimulationConfig{
			Workload: workloadName,
			Scenario: hybridtlb.ScenarioDemand,
			Accesses: 300_000,
			Seed:     7,
			Pressure: p,
		}
		for _, s := range schemes {
			cfg := base
			cfg.Scheme = s
			res, err := hybridtlb.Simulate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.0f", res.MissesPerMillionInstructions())
			if s == hybridtlb.SchemeAnchor {
				anchorDist = res.AnchorDistance
			}
		}
		// The capacity-aware selection extension, for comparison.
		cfg := base
		cfg.Scheme = hybridtlb.SchemeAnchor
		cfg.CostModel = hybridtlb.CostModelCapacityAware
		capRes, err := hybridtlb.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "\t%.0f\t%d\n", capRes.MissesPerMillionInstructions(), anchorDist)
	}
	tw.Flush()

	fmt.Println("\nThe anchor distance shrinks as fragmentation rises: the OS re-encodes")
	fmt.Println("whatever contiguity is left instead of betting on one fixed chunk size.")
	fmt.Println("The capacity-aware column shows this repository's selection extension,")
	fmt.Println("which accounts for TLB capacity when fragmentation explodes the entry count.")
}
