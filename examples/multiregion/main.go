// Multi-region anchors: the paper's Section 4.2 future-work extension in
// action. A process whose address space mixes a fine-grained region (an
// allocator arena built from 4-page chunks) with one huge contiguous
// region cannot be served well by a single anchor distance — whichever
// distance the OS picks sacrifices one half. Per-region distances serve
// both.
package main

import (
	"fmt"
	"log"

	"hybridtlb"
)

func main() {
	// Build the mixed mapping: 16K pages in 4-page chunks, then one
	// 64 MiB contiguous region.
	var chunks []hybridtlb.Chunk
	vp := uint64(0x10000)
	pp := uint64(1 << 22)
	for i := 0; i < 4096; i++ {
		chunks = append(chunks, hybridtlb.Chunk{VirtPage: vp, PhysPage: pp, Pages: 4})
		vp += 4
		pp += 4 + 512 // physically scattered
	}
	chunks = append(chunks, hybridtlb.Chunk{VirtPage: vp, PhysPage: 1 << 27, Pages: 1 << 14})

	fmt.Println("mixed mapping: 16K pages of 4-page chunks + one 64MiB region")

	// Single process-wide distance (the paper's base design).
	single, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		log.Fatal(err)
	}
	if err := single.Map(chunks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle distance: Algorithm 1 picked %d pages for the whole space\n", single.AnchorDistance())

	// Per-region distances (Section 4.2 extension).
	multi, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		log.Fatal(err)
	}
	if err := multi.MapRegions(chunks); err != nil {
		log.Fatal(err)
	}
	fmt.Println("multi-region table:")
	for _, r := range multi.Regions() {
		fmt.Printf("  pages [%#x, %#x): distance %d\n", r.StartPage, r.EndPage, r.Distance)
	}

	// Drive the same access stream (alternating halves) through both.
	drive := func(s *hybridtlb.System) hybridtlb.Stats {
		x := uint64(12345)
		for i := 0; i < 400000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			if i%2 == 0 {
				s.TranslatePage(0x10000 + x%(4096*4)) // fine half
			} else {
				s.TranslatePage(vp + x%(1<<14)) // huge half
			}
		}
		return s.Stats()
	}
	ss, ms := drive(single), drive(multi)
	fmt.Printf("\nsingle distance:  %7d TLB misses (%d anchor hits)\n", ss.Misses, ss.CoalescedHits)
	fmt.Printf("multi-region:     %7d TLB misses (%d anchor hits)\n", ms.Misses, ms.CoalescedHits)
	fmt.Printf("\nper-region distances cut misses by %.1fx on this mapping\n",
		float64(ss.Misses)/float64(ms.Misses))
}
