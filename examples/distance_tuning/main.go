// Distance tuning: the dynamic anchor distance selection (Algorithm 1) in
// action. The example sweeps every fixed anchor distance for one workload
// and mapping, measures real miss rates, and shows where the dynamic
// selection lands relative to the measured optimum — the comparison
// behind the paper's "dynamic" vs "static ideal" configurations.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybridtlb"
)

func main() {
	cfg := hybridtlb.SimulationConfig{
		Scheme:   hybridtlb.SchemeAnchor,
		Workload: "omnetpp",
		Scenario: hybridtlb.ScenarioMedium,
		Accesses: 200_000,
		Seed:     11,
	}

	// Dynamic selection first.
	dyn, err := hybridtlb.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on the %s mapping (%d chunks)\n\n", cfg.Workload, cfg.Scenario, dyn.Chunks)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "anchor distance\tTLB misses\tanchor-hit share\ttranslation CPI")

	type point struct {
		dist   uint64
		misses uint64
	}
	best := point{misses: ^uint64(0)}
	for d := uint64(2); d <= 1<<16; d *= 2 {
		c := cfg
		c.FixedAnchorDistance = d
		res, err := hybridtlb.Simulate(c)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if d == dyn.AnchorDistance {
			marker = "  <- dynamic selection"
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f%%\t%.4f%s\n",
			d, res.Stats.Misses, res.L2CoalescedHitFraction*100, res.TranslationCPI, marker)
		if res.Stats.Misses < best.misses {
			best = point{d, res.Stats.Misses}
		}
	}
	tw.Flush()

	fmt.Printf("\nmeasured optimum: distance %d (%d misses)\n", best.dist, best.misses)
	fmt.Printf("dynamic pick:     distance %d (%d misses)\n", dyn.AnchorDistance, dyn.Stats.Misses)
	fmt.Println("\nAlgorithm 1 sees only the mapping's contiguity histogram — no access")
	fmt.Println("frequencies — yet lands at or near the measured optimum (Section 5.2.3).")
}
