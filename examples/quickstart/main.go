// Quickstart: build an anchor-TLB translation system, map a fragmented
// region, translate addresses through it, and watch the anchor machinery
// work — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"hybridtlb"
)

func main() {
	// An anchor-based system (the paper's scheme). The OS will pick the
	// anchor distance from the mapping's contiguity histogram.
	sys, err := hybridtlb.NewSystem(hybridtlb.SchemeAnchor)
	if err != nil {
		log.Fatal(err)
	}

	// A process mapping of three physically contiguous chunks: a big
	// one, a medium one, and a lone page — the kind of fragmented layout
	// a loaded machine hands out.
	chunks := []hybridtlb.Chunk{
		{VirtPage: 0x10000, PhysPage: 0x80000, Pages: 4096}, // 16 MiB
		{VirtPage: 0x11000, PhysPage: 0xA0000, Pages: 512},  // 2 MiB
		{VirtPage: 0x11200, PhysPage: 0xC0035, Pages: 1},    // 4 KiB
	}
	if err := sys.Map(chunks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d pages; Algorithm 1 selected anchor distance %d pages\n",
		sys.FootprintPages(), sys.AnchorDistance())

	// Translate a few addresses. The first access to a region page
	// walks; later accesses to pages covered by the same anchor entry
	// hit in the TLB without their own entries.
	for _, va := range []uint64{
		0x10000<<12 + 0x123, // first page of the big chunk
		0x10800<<12 + 0xabc, // deep inside the big chunk
		0x11100<<12 + 0x10,  // the medium chunk
		0x11200<<12 + 0xfff, // the lone page
		0x99999 << 12,       // unmapped
	} {
		pa, ok := sys.Translate(va)
		if ok {
			fmt.Printf("VA %#14x -> PA %#14x\n", va, pa)
		} else {
			fmt.Printf("VA %#14x -> fault (unmapped)\n", va)
		}
	}

	st := sys.Stats()
	fmt.Printf("\naccesses=%d  L1=%d  L2-regular=%d  anchor-hits=%d  misses=%d\n",
		st.Accesses, st.L1Hits, st.L2RegularHits, st.CoalescedHits, st.Misses)

	// The same histogram the OS used, and what Algorithm 1 makes of it.
	fmt.Printf("contiguity histogram: %v\n", sys.ContiguityHistogram())
	fmt.Printf("Algorithm 1 on a hypothetical all-64KiB-chunk mapping: distance %d\n",
		hybridtlb.SelectAnchorDistance(map[uint64]uint64{16: 1000}))
}
