// Scheme shootout: the paper's headline comparison on one workload —
// every translation scheme across all six mapping scenarios, with the
// static-ideal anchor configuration as the upper bound. This is a
// single-workload slice of Figure 9.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybridtlb"
)

func main() {
	const workloadName = "xalancbmk"
	schemes := []string{
		hybridtlb.SchemeBase, hybridtlb.SchemeTHP, hybridtlb.SchemeCluster,
		hybridtlb.SchemeCluster2M, hybridtlb.SchemeRMM, hybridtlb.SchemeAnchor,
	}
	scenarios := []string{
		hybridtlb.ScenarioDemand, hybridtlb.ScenarioEager, hybridtlb.ScenarioLow,
		hybridtlb.ScenarioMedium, hybridtlb.ScenarioHigh, hybridtlb.ScenarioMax,
	}

	fmt.Printf("relative TLB misses (%% of base) — %s\n\n", workloadName)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "mapping")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw, "\ts.ideal")

	for _, sc := range scenarios {
		cfg := hybridtlb.SimulationConfig{
			Workload: workloadName,
			Scenario: sc,
			Accesses: 200_000,
			Seed:     3,
			Pressure: 0.6,
		}
		var baseMisses uint64
		fmt.Fprint(tw, sc)
		for _, s := range schemes {
			c := cfg
			c.Scheme = s
			res, err := hybridtlb.Simulate(c)
			if err != nil {
				log.Fatal(err)
			}
			if s == hybridtlb.SchemeBase {
				baseMisses = res.Stats.Misses
			}
			fmt.Fprintf(tw, "\t%.1f", rel(res.Stats.Misses, baseMisses))
		}
		ideal, err := hybridtlb.SimulateStaticIdeal(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "\t%.1f\n", rel(ideal.Stats.Misses, baseMisses))
	}
	tw.Flush()

	fmt.Println("\nEach prior scheme has a scenario that defeats it; the anchor scheme")
	fmt.Println("tracks the best of them everywhere (the paper's Figure 9 conclusion).")
}

func rel(misses, base uint64) float64 {
	if base == 0 {
		return 100
	}
	return 100 * float64(misses) / float64(base)
}
