# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: check vet build test race fabric-test load-smoke bench bench-json bench-baseline experiments serve lint tools allocgate

check: vet build lint allocgate race fabric-test load-smoke

vet:
	$(GO) vet ./...

# tools builds the project's dev tooling into bin/.
tools:
	@mkdir -p bin
	$(GO) build -o bin/tlbvet ./cmd/tlbvet

# lint runs tlbvet, the project's custom go/analysis passes
# (determinism, ctxflow, locksafe, closecheck, noprint, allocfree,
# rpcsafe, lifecycle, metriclint — see DESIGN.md "Project invariants &
# static analysis").
lint: tools
	$(GO) vet -vettool=bin/tlbvet ./...

# allocgate proves every //tlbvet:hotpath region escape-free with the
# compiler's own analysis (`go build -gcflags=-m`), gated by the
# committed ALLOCGATE.allow (empty: no excused escapes).
allocgate:
	$(GO) run ./cmd/allocgate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fabric-test runs the distributed-sweep convergence check: a real
# coordinator plus three tlbworker processes, one SIGKILLed mid-sweep;
# results must stay byte-identical to a single-process run.
fabric-test:
	$(GO) test -race -run TestFabricCrashRecoveryKill9 -count=1 ./internal/server/

# load-smoke runs the multi-tenant overload proof under -race: a short
# tlbload run (two tenants at 10:1 offered load) against an in-process
# server. The light tenant's p99 must stay bounded and error-free while
# the abusive tenant is shed with adaptive Retry-After hints. The run
# regenerates the committed BENCH_server.json and re-validates it.
load-smoke:
	TLBLOAD_OUT=$(CURDIR)/BENCH_server.json $(GO) test -race -run 'TestLoadSmoke|TestCommittedArtifactValid' -count=1 ./cmd/tlbload/

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json runs the translation hot-path benchmark (serial, batched
# and sharded per scheme) and emits it as the BENCH_pipeline.json
# artifact: ns/access, allocs/access, and iteration counts. Override
# BENCHTIME (e.g. BENCHTIME=1000x) for a quick smoke run; 262144x makes
# the sharded whole-run accounting exact (one run per measurement).
BENCHTIME ?= 1s
bench-json:
	$(GO) test -run xxx -bench BenchmarkTranslateHotPath -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_pipeline.json

# bench-baseline reruns the hot-path benchmark and fails if any
# (scheme, variant) cell regressed more than 10% in ns/access against
# the committed BENCH_pipeline.json. Writes nothing; CI's perf gate.
bench-baseline:
	$(GO) test -run xxx -bench BenchmarkTranslateHotPath -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out "" -baseline BENCH_pipeline.json

# Full evaluation tables/figures (cmd/experiments at default scale).
experiments:
	$(GO) run ./cmd/experiments -exp all -progress

# Local simulation service on :8080 (see README for the API).
serve:
	$(GO) run ./cmd/tlbserver -addr :8080
