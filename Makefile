# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: check vet build test race bench experiments

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Full evaluation tables/figures (cmd/experiments at default scale).
experiments:
	$(GO) run ./cmd/experiments -exp all -progress
