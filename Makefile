# Developer entry points. `make check` is the pre-commit gate.

GO ?= go

.PHONY: check vet build test race bench experiments serve

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Full evaluation tables/figures (cmd/experiments at default scale).
experiments:
	$(GO) run ./cmd/experiments -exp all -progress

# Local simulation service on :8080 (see README for the API).
serve:
	$(GO) run ./cmd/tlbserver -addr :8080
