package hybridtlb

import (
	"context"
	"fmt"

	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sweep"
)

// SweepOptions tunes SimulateSweep.
type SweepOptions struct {
	// Parallelism bounds concurrently running simulations
	// (0: runtime.GOMAXPROCS(0)).
	Parallelism int
	// Progress, when non-nil, observes completion: done jobs out of
	// total. Calls are serialized by the engine.
	Progress func(done, total int)
	// DisableCache turns off result memoization; by default identical
	// configs in the sweep are simulated once and shared.
	DisableCache bool
}

// SweepResult pairs one sweep config's metrics with its per-job outcome.
type SweepResult struct {
	SimulationResult
	// Cached reports that the result was served from the sweep's result
	// cache (an identical config appeared earlier in the sweep).
	Cached bool
	// Err is this config's failure: an invalid name, a simulation error
	// or a recovered panic. The rest of the sweep still runs.
	Err error
}

// SimulateSweep runs a batch of simulations concurrently on a bounded
// worker pool and returns their results in input order, regardless of
// completion order. Identical configs — the same cell appearing several
// times in a figure cross-product — are simulated once and served from a
// content-addressed result cache. Each simulation owns its RNG, seeded
// from its config, so the sweep's results are bit-identical to calling
// Simulate serially.
//
// One failing cell does not kill the sweep: its error is reported in its
// SweepResult (and summarized in the returned error) while every other
// cell completes. Cancelling ctx stops dispatching new simulations; jobs
// not yet started report the context's error.
//
// TracePath replay is not supported in sweeps; such configs fail
// per-job.
func SimulateSweep(ctx context.Context, cfgs []SimulationConfig, opts SweepOptions) ([]SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]SweepResult, len(cfgs))

	// Validate and convert up front; invalid configs fail per-job
	// without occupying the pool.
	jobs := make([]sweep.Job, 0, len(cfgs))
	positions := make([]int, 0, len(cfgs)) // job index -> result index
	hws := make([]mmu.Config, 0, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.TracePath != "" {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: TracePath replay is not supported in SimulateSweep", i)
			continue
		}
		simCfg, hw, err := cfg.toSimConfig()
		if err != nil {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: %w", i, err)
			continue
		}
		jobs = append(jobs, sweep.Job{Config: simCfg})
		positions = append(positions, i)
		hws = append(hws, hw)
	}

	var progress sweep.ProgressFunc
	if opts.Progress != nil {
		// The engine's total counts only the valid jobs; report against
		// the caller's config count so done reaches len(cfgs).
		skipped := len(cfgs) - len(jobs)
		progress = func(done, total int, _ sweep.Job) {
			opts.Progress(skipped+done, skipped+total)
		}
	}
	eng := sweep.New(sweep.Options{
		Parallelism:  opts.Parallelism,
		Progress:     progress,
		DisableCache: opts.DisableCache,
	})
	swept, _ := eng.Run(ctx, jobs)
	for j, r := range swept {
		i := positions[j]
		if r.Err != nil {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: %w", i, r.Err)
			continue
		}
		results[i].SimulationResult = toSimulationResult(r.Res, hws[j])
		results[i].Cached = r.Cached
	}

	return results, sweepFailures(ctx, results)
}

// sweepFailures summarizes per-job errors (nil when every job
// succeeded); after cancellation it returns the context's error.
func sweepFailures(ctx context.Context, results []SweepResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var first error
	n := 0
	for _, r := range results {
		if r.Err != nil {
			if first == nil {
				first = r.Err
			}
			n++
		}
	}
	switch {
	case first == nil:
		return nil
	case n == 1:
		return first
	default:
		return fmt.Errorf("%d of %d sweep jobs failed, first: %w", n, len(results), first)
	}
}
