package hybridtlb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sweep"
)

// SweepOptions tunes SimulateSweep.
type SweepOptions struct {
	// Parallelism bounds concurrently running simulations
	// (0: runtime.GOMAXPROCS(0)).
	Parallelism int
	// Progress, when non-nil, observes completion: done jobs out of
	// total. Calls are serialized by the engine.
	Progress func(done, total int)
	// DisableCache turns off result memoization; by default identical
	// configs in the sweep are simulated once and shared.
	DisableCache bool
	// Stats, when non-nil, receives the sweep's cache statistics after
	// the run: how many jobs were submitted, how many were served from
	// the result cache and how many actually simulated.
	Stats *CacheStats
	// Store, when non-nil, adds a durable second cache level under the
	// in-memory one: memory misses probe it before simulating, and
	// fresh results are written through. Corrupt or missing entries
	// degrade to re-simulation, never to errors.
	Store ResultStore
	// Retry re-runs failed cells with capped exponential backoff and
	// deterministic seeded jitter (zero value: a single attempt).
	// Retries only re-run failed cells, so successful results stay
	// byte-identical.
	Retry RetryPolicy
	// Faults, when non-nil, injects seeded probabilistic faults into
	// every cell attempt — the chaos-testing hook.
	Faults *FaultInjector
	// Probe, when non-nil, observes epoch boundaries of every config in
	// the sweep that does not carry its own SimulationConfig.Probe; the
	// first argument is the config's index in the submitted slice.
	// Samples fire only for configs actually simulated: a config served
	// from the result cache — including one coalesced with an identical
	// earlier config in the same sweep — replays no epochs. Calls arrive
	// concurrently from the worker pool; the observer must be
	// goroutine-safe.
	Probe func(config int, s EpochSample)
}

// ResultStore is a durable byte store keyed by the sweep's SHA-256
// content address. Load reports absent (or damaged) entries as
// (nil, false); Save persists one entry. Implementations must be safe
// for concurrent use. The tlbserver wires its -state-dir store in
// through this seam.
type ResultStore interface {
	Load(key string) ([]byte, bool)
	Save(key string, data []byte) error
}

// RetryPolicy controls per-cell retries. Backoff doubles from
// BaseDelay (default 50ms) up to MaxDelay (default 5s), scaled by a
// jitter factor in [0.5, 1.5) derived deterministically from
// (Seed, cell key, attempt) — no shared RNG, so sweeps stay
// reproducible under any parallelism.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per cell (0 or 1: no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff.
	BaseDelay time.Duration
	// MaxDelay caps any single backoff.
	MaxDelay time.Duration
	// Seed varies the jitter sequence.
	Seed int64
}

// FaultInjector perturbs sweep cells with seeded, per-attempt
// probabilistic faults: transient errors (retryable), permanent errors
// and panics (neither is retried), and deterministic per-attempt
// delays. Decisions hash (Seed, cell key, attempt), so a seed fully
// determines the fault pattern.
type FaultInjector struct {
	Seed          int64
	TransientRate float64
	PermanentRate float64
	PanicRate     float64
	Delay         time.Duration
}

// CacheStats reports a sweep's result-cache traffic (the engine's
// cumulative counters for a Sweeper, one call's counters for
// SimulateSweep).
type CacheStats struct {
	// Jobs is the total number of jobs submitted.
	Jobs int
	// Hits counts jobs served without a new simulation: from the cache
	// of an earlier run or coalesced with an identical job in the same
	// sweep.
	Hits int
	// Misses counts jobs that missed the in-memory cache (a miss may
	// still be served from the durable Store).
	Misses int
	// StoreHits counts memory misses resolved from the durable Store
	// instead of simulating.
	StoreHits int
	// StoreErrors counts failed write-throughs to the Store (the sweep
	// still succeeds; the result stays memory-only).
	StoreErrors int
	// Retries counts re-run attempts after per-cell failures.
	Retries int
}

// HitRate returns the fraction of jobs served from the cache in [0,1].
func (s CacheStats) HitRate() float64 {
	if s.Jobs == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Jobs)
}

// CellKey returns the content-addressed cache key of one sweep cell: a
// SHA-256 over a canonical serialization of the validated, defaulted
// configuration. It is the key the sweep engine memoizes under, the
// durable ResultStore persists under, and the distributed fabric leases
// by — two configs with equal keys compute byte-identical results, so
// any layer may serve one's result for the other. The Probe field never
// participates (probes are observational). Invalid configs (unknown
// scheme/workload/scenario names) return an error.
func CellKey(cfg SimulationConfig) (string, error) {
	simCfg, _, err := cfg.toSimConfig()
	if err != nil {
		return "", err
	}
	return sweep.Job{Config: simCfg}.Key(), nil
}

// SweepResult pairs one sweep config's metrics with its per-job outcome.
type SweepResult struct {
	SimulationResult
	// Cached reports that the result was served from the sweep's result
	// cache (an identical config appeared earlier in the sweep).
	Cached bool
	// Err is this config's failure: an invalid name, a simulation error
	// or a recovered panic. The rest of the sweep still runs.
	Err error
}

// SimulateSweep runs a batch of simulations concurrently on a bounded
// worker pool and returns their results in input order, regardless of
// completion order. Identical configs — the same cell appearing several
// times in a figure cross-product — are simulated once and served from a
// content-addressed result cache. Each simulation owns its RNG, seeded
// from its config, so the sweep's results are bit-identical to calling
// Simulate serially.
//
// One failing cell does not kill the sweep: its error is reported in its
// SweepResult (and summarized in the returned error) while every other
// cell completes. Cancelling ctx stops dispatching new simulations; jobs
// not yet started report the context's error.
//
// TracePath replay is not supported in sweeps; such configs fail
// per-job.
//
// The result cache lives for this one call; a service running many
// sweeps should share one Sweeper instead.
func SimulateSweep(ctx context.Context, cfgs []SimulationConfig, opts SweepOptions) ([]SweepResult, error) {
	sw := NewSweeper(opts)
	results, err := sw.Run(ctx, cfgs, opts.Progress)
	if opts.Stats != nil {
		*opts.Stats = sw.Stats()
	}
	return results, err
}

// Sweeper is a long-lived sweep runner: a bounded worker pool plus a
// content-addressed result cache that persists across Run calls, so a
// config repeated by later sweeps — a baseline column shared by many
// requests, a re-submitted grid — is simulated once per Sweeper.
// A Sweeper is safe for concurrent use.
type Sweeper struct {
	eng   *sweep.Engine
	probe func(config int, s EpochSample)
}

// NewSweeper creates a Sweeper. The options' Parallelism, DisableCache
// and Probe apply to every Run; Progress and Stats are ignored here
// (progress is per-Run, stats come from Stats).
func NewSweeper(opts SweepOptions) *Sweeper {
	var faults *sweep.FaultInjector
	if opts.Faults != nil {
		faults = &sweep.FaultInjector{
			Seed:          opts.Faults.Seed,
			TransientRate: opts.Faults.TransientRate,
			PermanentRate: opts.Faults.PermanentRate,
			PanicRate:     opts.Faults.PanicRate,
			Delay:         opts.Faults.Delay,
		}
	}
	return &Sweeper{probe: opts.Probe, eng: sweep.New(sweep.Options{
		Parallelism:  opts.Parallelism,
		DisableCache: opts.DisableCache,
		Store:        opts.Store,
		Retry: sweep.RetryPolicy{
			MaxAttempts: opts.Retry.MaxAttempts,
			BaseDelay:   opts.Retry.BaseDelay,
			MaxDelay:    opts.Retry.MaxDelay,
			Seed:        opts.Retry.Seed,
		},
		Faults: faults,
	})}
}

// Stats returns the Sweeper's cumulative cache statistics across every
// Run so far.
func (s *Sweeper) Stats() CacheStats {
	st := s.eng.Stats()
	return CacheStats{
		Jobs: st.Jobs, Hits: st.Hits, Misses: st.Misses,
		StoreHits: st.StoreHits, StoreErrors: st.StoreErrors, Retries: st.Retries,
	}
}

// Run executes one batch of configs with SimulateSweep semantics —
// results in input order, per-job errors, cancellation at job
// boundaries — against the Sweeper's shared pool and cache. The
// progress callback, when non-nil, observes completion for this call
// only.
func (s *Sweeper) Run(ctx context.Context, cfgs []SimulationConfig, progress func(done, total int)) ([]SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]SweepResult, len(cfgs))

	// Validate and convert up front; invalid configs fail per-job
	// without occupying the pool.
	jobs := make([]sweep.Job, 0, len(cfgs))
	positions := make([]int, 0, len(cfgs)) // job index -> result index
	hws := make([]mmu.Config, 0, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.TracePath != "" {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: TracePath replay is not supported in SimulateSweep", i)
			continue
		}
		if s.probe != nil && cfg.Probe == nil {
			idx, probe := i, s.probe
			cfg.Probe = func(es EpochSample) { probe(idx, es) }
		}
		simCfg, hw, err := cfg.toSimConfig()
		if err != nil {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: %w", i, err)
			continue
		}
		jobs = append(jobs, sweep.Job{Config: simCfg})
		positions = append(positions, i)
		hws = append(hws, hw)
	}

	var progressFn sweep.ProgressFunc
	if progress != nil {
		// The engine's total counts only the valid jobs; report against
		// the caller's config count so done reaches len(cfgs).
		skipped := len(cfgs) - len(jobs)
		progressFn = func(done, total int, _ sweep.Job) {
			progress(skipped+done, skipped+total)
		}
	}
	swept, _ := s.eng.RunWithProgress(ctx, jobs, progressFn)
	for j, r := range swept {
		i := positions[j]
		if r.Err != nil {
			results[i].Err = fmt.Errorf("hybridtlb: sweep job %d: %w", i, r.Err)
			continue
		}
		results[i].SimulationResult = toSimulationResult(r.Res, hws[j])
		results[i].Cached = r.Cached
	}

	return results, sweepFailures(ctx, results)
}

// sweepFailures summarizes per-job errors (nil when every job
// succeeded); after cancellation it returns the context's error. Every
// distinct failure message is included via errors.Join so a multi-cell
// failure is diagnosable from the returned error alone.
func sweepFailures(ctx context.Context, results []SweepResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var errs []error
	seen := make(map[string]bool)
	n := 0
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		n++
		if msg := r.Err.Error(); !seen[msg] {
			seen[msg] = true
			errs = append(errs, r.Err)
		}
	}
	switch {
	case n == 0:
		return nil
	case n == 1:
		return errs[0]
	default:
		return fmt.Errorf("%d of %d sweep jobs failed: %w", n, len(results), errors.Join(errs...))
	}
}
