package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridtlb/internal/tenant"
)

// Admission control: who may submit work, how fast, and how much at
// once. Every /v1 request resolves to a tenant (the keyfile tenant its
// bearer key names, or the implicit default on registry-less servers)
// and passes three gates before touching the simulator:
//
//  1. a per-tenant token bucket on request rate,
//  2. a per-tenant in-flight quota on concurrently held work,
//  3. the per-tenant bounded queue (sweeps) / worker semaphore
//     (synchronous simulate).
//
// Refusals are 429s labeled by gate, and the Retry-After hint is
// derived from live queue depth and the observed drain rate rather
// than a constant — an overloaded server tells clients how long the
// backlog actually is.

// shedReason labels which admission gate refused a request; the set is
// closed, keeping the tenant_shed metric's cardinality bounded.
type shedReason string

const (
	// shedRate: the tenant's token bucket was empty.
	shedRate shedReason = "rate"
	// shedQuota: the tenant's in-flight quota was exhausted.
	shedQuota shedReason = "quota"
	// shedQueue: the tenant's sweep queue was full.
	shedQueue shedReason = "queue"
	// shedCapacity: the synchronous-simulate semaphore was full.
	shedCapacity shedReason = "capacity"
)

// tenantState is one tenant's live admission state: its configured
// limits plus the counters they gate.
type tenantState struct {
	name        string
	weight      int
	maxInFlight int64
	bucket      *tenant.Bucket // nil: unlimited rate
	inflight    atomic.Int64
}

func newTenantState(t tenant.Tenant) *tenantState {
	st := &tenantState{name: t.Name, weight: t.Weight, maxInFlight: int64(t.MaxInFlight)}
	if t.RatePerSec > 0 {
		st.bucket = tenant.NewBucket(t.RatePerSec, t.Burst)
	}
	return st
}

// tryAcquire claims one in-flight slot, refusing past the quota
// (maxInFlight <= 0 is unlimited).
func (t *tenantState) tryAcquire() bool {
	for {
		cur := t.inflight.Load()
		if t.maxInFlight > 0 && cur >= t.maxInFlight {
			return false
		}
		if t.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// forceAcquire claims a slot past the quota — recovery resumes
// journaled jobs even when the keyfile shrank a quota under them;
// availability of accepted work beats strict accounting.
func (t *tenantState) forceAcquire() { t.inflight.Add(1) }

func (t *tenantState) release() { t.inflight.Add(-1) }

// authorize resolves the request's tenant. Registry-less servers map
// everyone to the implicit default tenant; with a keyfile, a missing or
// unknown bearer key is 401 (and never reveals which part was wrong).
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	if !s.multiTenant {
		ts := s.tenants[tenant.DefaultName]
		s.metrics.observeTenantRequest(ts.name)
		return ts, true
	}
	if key, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
		if ts, found := s.tenantKeys[strings.TrimSpace(key)]; found {
			s.metrics.observeTenantRequest(ts.name)
			return ts, true
		}
	}
	s.metrics.authFailures.Add(1)
	w.Header().Set("WWW-Authenticate", `Bearer realm="tlbserver"`)
	writeError(w, &apiError{Status: http.StatusUnauthorized, Code: codeUnauthenticated,
		Message: "missing or unknown API key; send 'Authorization: Bearer <key>'"})
	return nil, false
}

// admitRate applies the tenant's token bucket; a refusal is a 429
// whose Retry-After is the larger of the bucket's token-maturity time
// and the queue-drain estimate.
func (s *Server) admitRate(w http.ResponseWriter, ts *tenantState) bool {
	now := time.Now()
	if ts.bucket.Allow(now) {
		return true
	}
	hint := s.retryAfterHint(s.queue.tenantDepth(ts.name))
	if wait := ts.bucket.RetryAfter(now); wait > hint {
		hint = wait
	}
	s.shed(w, ts, shedRate, hint,
		fmt.Sprintf("tenant %q is over its request rate", ts.name))
	return false
}

// shed emits one 429 with the adaptive Retry-After hint and accounts
// it under the tenant and the gate that refused.
func (s *Server) shed(w http.ResponseWriter, ts *tenantState, reason shedReason, hint time.Duration, msg string) {
	s.metrics.observeShed(ts.name, reason)
	s.metrics.rejected.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(hint.Seconds()))
	writeError(w, &apiError{Status: http.StatusTooManyRequests, Code: codeOverloaded,
		Message: msg + "; retry later"})
}

// releaseJob returns the in-flight slot a sweep job holds from
// admission until its terminal transition.
func (s *Server) releaseJob(j *job) {
	if ts := s.tenants[j.tenant]; ts != nil {
		ts.release()
	}
}

// drainEstimator tracks how fast workers retire jobs as an EWMA of
// per-job wall time, feeding the adaptive Retry-After hint.
type drainEstimator struct {
	mu     sync.Mutex
	perJob float64 // EWMA seconds per job
	seeded bool
}

func (e *drainEstimator) observe(d time.Duration) {
	s := d.Seconds()
	e.mu.Lock()
	if !e.seeded {
		e.perJob, e.seeded = s, true
	} else {
		// 0.3 weights recent jobs enough to track load shifts within a
		// few completions without one outlier whipsawing the hint.
		e.perJob = 0.7*e.perJob + 0.3*s
	}
	e.mu.Unlock()
}

// estimate returns the EWMA seconds per job; ok is false until the
// first job completes.
func (e *drainEstimator) estimate() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.perJob, e.seeded
}

// retryAfterHint derives the 429 backoff hint from live state: the
// time the worker pool needs to drain `queued` jobs at the observed
// per-job rate, floored at the configured constant (which stands alone
// until the first job completes — the old static behavior) and capped
// at RetryAfterMax so a deep backlog never tells clients to go away
// for hours.
func (s *Server) retryAfterHint(queued int) time.Duration {
	hint := s.cfg.RetryAfter
	if perJob, ok := s.drainEst.estimate(); ok {
		est := time.Duration(float64(queued+1) * perJob / float64(s.cfg.Workers) * float64(time.Second))
		if est > hint {
			hint = est
		}
	}
	if hint > s.cfg.RetryAfterMax {
		hint = s.cfg.RetryAfterMax
	}
	return hint
}
