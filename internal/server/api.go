package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"hybridtlb"
	"hybridtlb/internal/core"
)

// apiError is the structured error envelope every non-2xx response
// carries: a stable machine-readable code, a human message, and (for
// validation errors) the offending field.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *apiError) Error() string { return e.Message }

// Error codes returned in the envelope.
const (
	codeInvalidRequest  = "invalid_request"
	codeNotFound        = "not_found"
	codeOverloaded      = "overloaded"
	codeShuttingDown    = "shutting_down"
	codeTimeout         = "timeout"
	codeInternal        = "internal_error"
	codeConflict        = "conflict"
	codeGone            = "gone"
	codeUnauthenticated = "unauthenticated"
)

func invalidField(field, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: codeInvalidRequest,
		Message: fmt.Sprintf(format, args...), Field: field}
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, struct {
		Error *apiError `json:"error"`
	}{e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// decodeJSON parses a bounded request body strictly: unknown fields and
// trailing garbage are validation errors, not silent drops.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{Status: http.StatusBadRequest, Code: codeInvalidRequest,
			Message: "malformed request body: " + err.Error()}
	}
	if dec.More() {
		return &apiError{Status: http.StatusBadRequest, Code: codeInvalidRequest,
			Message: "request body contains more than one JSON value"}
	}
	return nil
}

// Limits bound what one request may ask of the simulator.
type Limits struct {
	// MaxAccesses caps the measured accesses of a single simulation.
	MaxAccesses uint64
	// MaxSweepJobs caps the expanded grid size of one sweep request.
	MaxSweepJobs int
}

// SimulateRequest is the JSON body of POST /v1/simulate and the per-cell
// config echoed back in sweep results. Fields mirror
// hybridtlb.SimulationConfig; zero values take the library defaults
// (Table 3 hardware, workload-default footprint).
type SimulateRequest struct {
	Scheme              string  `json:"scheme"`
	Workload            string  `json:"workload"`
	Scenario            string  `json:"scenario"`
	Accesses            uint64  `json:"accesses,omitempty"`
	FootprintPages      uint64  `json:"footprint_pages,omitempty"`
	Seed                int64   `json:"seed,omitempty"`
	Pressure            float64 `json:"pressure,omitempty"`
	FixedAnchorDistance uint64  `json:"fixed_anchor_distance,omitempty"`
	CostModel           string  `json:"cost_model,omitempty"`
	MultiRegionAnchors  bool    `json:"multi_region_anchors,omitempty"`
	// Shards > 1 runs the simulation on the shard-parallel engine.
	// Results are byte-identical to a serial run, so sharding never
	// affects what a sweep cell reports — only how it is computed.
	Shards int `json:"shards,omitempty"`
	// StaticIdeal runs the exhaustive per-distance search instead of one
	// simulation (simulate endpoint only; ignored in sweeps).
	StaticIdeal bool `json:"static_ideal,omitempty"`
}

// validate checks every name against the library's registries and every
// scalar against the server's limits, so bad requests fail fast with a
// field-level error instead of deep in a worker.
func (req SimulateRequest) validate(lim Limits) *apiError {
	if req.Scheme == "" {
		return invalidField("scheme", "scheme is required (one of %v)", hybridtlb.Schemes())
	}
	if !knownName(hybridtlb.Schemes(), req.Scheme) {
		return invalidField("scheme", "unknown scheme %q (one of %v)", req.Scheme, hybridtlb.Schemes())
	}
	if req.Workload == "" {
		return invalidField("workload", "workload is required (one of %v)", hybridtlb.Workloads())
	}
	if !knownName(hybridtlb.Workloads(), req.Workload) {
		return invalidField("workload", "unknown workload %q (one of %v)", req.Workload, hybridtlb.Workloads())
	}
	if req.Scenario == "" {
		return invalidField("scenario", "scenario is required (one of %v)", hybridtlb.Scenarios())
	}
	if !knownName(hybridtlb.Scenarios(), req.Scenario) {
		return invalidField("scenario", "unknown scenario %q (one of %v)", req.Scenario, hybridtlb.Scenarios())
	}
	if _, err := core.ParseCostModel(req.CostModel); err != nil {
		return invalidField("cost_model", "%v", err)
	}
	if req.Pressure < 0 || req.Pressure > 1 {
		return invalidField("pressure", "pressure %g outside [0,1]", req.Pressure)
	}
	if lim.MaxAccesses > 0 && req.Accesses > lim.MaxAccesses {
		return invalidField("accesses", "accesses %d exceeds the server limit %d", req.Accesses, lim.MaxAccesses)
	}
	if req.Shards < 0 {
		return invalidField("shards", "shards %d is negative", req.Shards)
	}
	return nil
}

func (req SimulateRequest) toConfig() hybridtlb.SimulationConfig {
	return hybridtlb.SimulationConfig{
		Scheme:              req.Scheme,
		Workload:            req.Workload,
		Scenario:            req.Scenario,
		Accesses:            req.Accesses,
		FootprintPages:      req.FootprintPages,
		Seed:                req.Seed,
		Pressure:            req.Pressure,
		FixedAnchorDistance: req.FixedAnchorDistance,
		CostModel:           req.CostModel,
		MultiRegionAnchors:  req.MultiRegionAnchors,
		Shards:              req.Shards,
	}
}

// SweepRequest is the JSON body of POST /v1/sweeps: a grid declared as
// axis lists over shared base parameters, expanded server-side into the
// cross product workloads × scenarios × schemes × seeds × pressures ×
// distances (the row-major order cmd/experiments prints in). Empty
// seeds/pressures/distances axes contribute a single default element
// (seed 42 — the CLI default — pressure 0, dynamic distance).
type SweepRequest struct {
	Schemes   []string  `json:"schemes"`
	Workloads []string  `json:"workloads"`
	Scenarios []string  `json:"scenarios"`
	Seeds     []int64   `json:"seeds,omitempty"`
	Pressures []float64 `json:"pressures,omitempty"`
	Distances []uint64  `json:"distances,omitempty"`

	Accesses           uint64 `json:"accesses,omitempty"`
	FootprintPages     uint64 `json:"footprint_pages,omitempty"`
	CostModel          string `json:"cost_model,omitempty"`
	MultiRegionAnchors bool   `json:"multi_region_anchors,omitempty"`
	// Shards applies the shard-parallel engine to every cell; results
	// are byte-identical to serial, so it never splits cache cells.
	Shards int `json:"shards,omitempty"`

	// Priority picks the lane within the submitting tenant's fair-share
	// queue: "interactive" overtakes the tenant's own "batch" backlog
	// (never another tenant's share). Empty means batch.
	Priority string `json:"priority,omitempty"`
}

// expand validates the axes and returns the grid's cells in
// deterministic order, both as library configs (for the sweeper) and as
// the request echoes reported alongside each result.
func (req SweepRequest) expand(lim Limits) ([]hybridtlb.SimulationConfig, []SimulateRequest, *apiError) {
	for _, axis := range []struct {
		field  string
		values []string
	}{
		{"schemes", req.Schemes},
		{"workloads", req.Workloads},
		{"scenarios", req.Scenarios},
	} {
		if len(axis.values) == 0 {
			return nil, nil, invalidField(axis.field, "%s axis must name at least one value", axis.field)
		}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []int64{42}
	}
	pressures := req.Pressures
	if len(pressures) == 0 {
		pressures = []float64{0}
	}
	distances := req.Distances
	if len(distances) == 0 {
		distances = []uint64{0}
	}

	total := len(req.Workloads) * len(req.Scenarios) * len(req.Schemes) *
		len(seeds) * len(pressures) * len(distances)
	if lim.MaxSweepJobs > 0 && total > lim.MaxSweepJobs {
		return nil, nil, &apiError{Status: http.StatusBadRequest, Code: codeInvalidRequest,
			Message: fmt.Sprintf("sweep expands to %d jobs, over the server limit %d", total, lim.MaxSweepJobs)}
	}

	cfgs := make([]hybridtlb.SimulationConfig, 0, total)
	echoes := make([]SimulateRequest, 0, total)
	for _, wl := range req.Workloads {
		for _, sc := range req.Scenarios {
			for _, scheme := range req.Schemes {
				for _, seed := range seeds {
					for _, press := range pressures {
						for _, dist := range distances {
							cell := SimulateRequest{
								Scheme:              scheme,
								Workload:            wl,
								Scenario:            sc,
								Accesses:            req.Accesses,
								FootprintPages:      req.FootprintPages,
								Seed:                seed,
								Pressure:            press,
								FixedAnchorDistance: dist,
								CostModel:           req.CostModel,
								MultiRegionAnchors:  req.MultiRegionAnchors,
								Shards:              req.Shards,
							}
							if err := cell.validate(lim); err != nil {
								return nil, nil, err
							}
							cfgs = append(cfgs, cell.toConfig())
							echoes = append(echoes, cell)
						}
					}
				}
			}
		}
	}
	return cfgs, echoes, nil
}

func knownName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// ResultJSON is the wire form of hybridtlb.SimulationResult.
type ResultJSON struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Scenario string `json:"scenario"`

	Accesses      uint64 `json:"accesses"`
	Instructions  uint64 `json:"instructions"`
	L1Hits        uint64 `json:"l1_hits"`
	L2RegularHits uint64 `json:"l2_regular_hits"`
	CoalescedHits uint64 `json:"coalesced_hits"`
	Misses        uint64 `json:"misses"`
	Cycles        uint64 `json:"cycles"`

	MissesPerMillionInstructions float64 `json:"misses_per_million_instructions"`
	TranslationCPI               float64 `json:"translation_cpi"`
	CPIRegularHit                float64 `json:"cpi_regular_hit"`
	CPICoalescedHit              float64 `json:"cpi_coalesced_hit"`
	CPIWalk                      float64 `json:"cpi_walk"`

	L2RegularHitFraction   float64 `json:"l2_regular_hit_fraction"`
	L2CoalescedHitFraction float64 `json:"l2_coalesced_hit_fraction"`
	L2MissFraction         float64 `json:"l2_miss_fraction"`

	AnchorDistance uint64 `json:"anchor_distance,omitempty"`
	Chunks         int    `json:"chunks"`
	HugePages      int    `json:"huge_pages"`
}

func toResultJSON(r hybridtlb.SimulationResult) *ResultJSON {
	return &ResultJSON{
		Scheme:        r.Scheme,
		Workload:      r.Workload,
		Scenario:      r.Scenario,
		Accesses:      r.Stats.Accesses,
		Instructions:  r.Instructions,
		L1Hits:        r.Stats.L1Hits,
		L2RegularHits: r.Stats.L2RegularHits,
		CoalescedHits: r.Stats.CoalescedHits,
		Misses:        r.Stats.Misses,
		Cycles:        r.Stats.Cycles,

		MissesPerMillionInstructions: r.MissesPerMillionInstructions(),
		TranslationCPI:               r.TranslationCPI,
		CPIRegularHit:                r.CPIRegularHit,
		CPICoalescedHit:              r.CPICoalescedHit,
		CPIWalk:                      r.CPIWalk,

		L2RegularHitFraction:   r.L2RegularHitFraction,
		L2CoalescedHitFraction: r.L2CoalescedHitFraction,
		L2MissFraction:         r.L2MissFraction,

		AnchorDistance: r.AnchorDistance,
		Chunks:         r.Chunks,
		HugePages:      r.HugePages,
	}
}

// SweepCellJSON is one cell of a finished sweep: the config echo and
// either its result or its per-job error.
type SweepCellJSON struct {
	Config SimulateRequest `json:"config"`
	Result *ResultJSON     `json:"result,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func retryAfterSeconds(d float64) string {
	secs := int(d + 0.999)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
