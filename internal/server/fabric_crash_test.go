package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"hybridtlb"
)

// TestFabricCrashRecoveryKill9 is the distributed counterpart of
// TestCrashRecoveryKill9: a real tlbserver in coordinator mode shards a
// sweep across three real tlbworker processes, one worker is SIGKILLed
// while it holds a lease, and the sweep must still converge — with the
// dead worker's cells re-enqueued to the survivors and every per-cell
// result byte-identical to a clean single-process run of the same grid.
func TestFabricCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics require a POSIX platform")
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "tlbserver")
	workerBin := filepath.Join(dir, "tlbworker")
	for bin, pkg := range map[string]string{
		serverBin: "hybridtlb/cmd/tlbserver",
		workerBin: "hybridtlb/cmd/tlbworker",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	fabricAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base := "http://" + addr

	// Fast fabric clock so dead-worker detection lands in ~300ms, but a
	// huge steal threshold: recovery in this test must come from the
	// death path (lease revoked, cell re-enqueued), not from an idle
	// survivor duplicating the straggler's lease first.
	coord := exec.Command(serverBin,
		"-addr", addr,
		"-state-dir", filepath.Join(dir, "state"),
		"-coordinator", fabricAddr,
		"-fabric-tick", "25ms",
		"-fabric-dead-after", "12",
		"-fabric-steal-after", "100000",
	)
	coord.Stdout = os.Stderr
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()
	waitHealthy(t, base)

	// Three workers with a deterministic injected delay per cell, so the
	// sweep is reliably mid-flight when one of them dies.
	workers := make(map[string]*exec.Cmd, 3)
	for _, name := range []string{"w1", "w2", "w3"} {
		w := exec.Command(workerBin,
			"-coordinator", fabricAddr,
			"-name", name,
			"-heartbeat", "50ms",
			"-poll", "10ms",
			"-chaos-delay", "500ms",
			"-chaos-seed", "7",
		)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %s: %v", name, err)
		}
		workers[name] = w
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()
	waitFabricMetric(t, base, `fabric_workers{state="live"}`, 3)

	const grid = `{"schemes":["base","anchor","thp","colt"],"workloads":["gups"],"scenarios":["demand","medium"],"accesses":2000}`
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	var acc acceptedJSON
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.ID == "" {
		t.Fatal("submission returned no job ID")
	}

	// Kill the first worker observed holding a lease. The 500ms chaos
	// delay per cell keeps leases outstanding long enough to catch one.
	victim := waitLeaseHolder(t, base, workers)
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatalf("kill -9 %s: %v", victim, err)
	}
	workers[victim].Wait()
	workers[victim].Process = nil
	t.Logf("killed worker %s while it held a lease", victim)

	final := waitDone(t, base+acc.StatusURL)
	if final.State != "done" {
		t.Fatalf("job state = %s, want done", final.State)
	}
	if len(final.Results) != 8 {
		t.Fatalf("job has %d cells, want 8", len(final.Results))
	}

	// Reference: the same grid simulated cleanly in-process. Cells that
	// traveled through the fabric arrive via the shared store, so this
	// is the byte-identity proof for the distributed path.
	var req SweepRequest
	if err := json.Unmarshal([]byte(grid), &req); err != nil {
		t.Fatal(err)
	}
	cfgs, _, apiErr := req.expand(Config{}.withDefaults().limits())
	if apiErr != nil {
		t.Fatalf("expand: %v", apiErr.Message)
	}
	ref, err := hybridtlb.NewSweeper(hybridtlb.SweepOptions{}).Run(context.Background(), cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		want, err := json.Marshal(toResultJSON(ref[i].SimulationResult))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := json.Compact(&got, final.Results[i].Result); err != nil {
			t.Fatalf("cell %d: invalid JSON: %v", i, err)
		}
		if got.String() != string(want) {
			t.Errorf("cell %d diverged through the fabric:\n got:  %s\n want: %s",
				i, got.String(), want)
		}
	}

	m := fetchMetrics(t, base)
	if v := metricInt(t, m, `fabric_workers{state="dead"}`); v != 1 {
		t.Errorf(`fabric_workers{state="dead"} = %d, want 1`, v)
	}
	if v := metricInt(t, m, `fabric_workers{state="live"}`); v != 2 {
		t.Errorf(`fabric_workers{state="live"} = %d, want 2`, v)
	}
	if v := metricInt(t, m, "fabric_leases_reenqueued_total"); v < 1 {
		t.Errorf("fabric_leases_reenqueued_total = %d, want >= 1 (the killed worker held a lease)", v)
	}
	if v := metricInt(t, m, "fabric_store_uploads_total"); v < 8 {
		t.Errorf("fabric_store_uploads_total = %d, want >= 8 (every cell must arrive from a worker)", v)
	}
	if v := metricInt(t, m, "fabric_cells_local_fallback_total"); v != 0 {
		t.Errorf("fabric_cells_local_fallback_total = %d, want 0 (two survivors stayed live)", v)
	}
}

// waitFabricMetric polls /metrics until the named sample reaches want.
func waitFabricMetric(t *testing.T, base, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := scrapeInt(fetchMetrics(t, base), name); ok && v >= want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %d", name, want)
}

// waitLeaseHolder polls fabric_worker_leases until some worker holds a
// lease and returns its name.
func waitLeaseHolder(t *testing.T, base string, workers map[string]*exec.Cmd) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		m := fetchMetrics(t, base)
		for name := range workers {
			sample := fmt.Sprintf("fabric_worker_leases{worker=%q}", name)
			if v, ok := scrapeInt(m, sample); ok && v > 0 {
				return name
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no worker ever held a lease; raise -chaos-delay")
	return ""
}

// scrapeInt is the non-fatal cousin of metricInt for polling loops.
func scrapeInt(body, name string) (int, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.Atoi(rest)
			return v, err == nil
		}
	}
	return 0, false
}
