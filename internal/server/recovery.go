package server

import (
	"encoding/json"
	"time"

	"hybridtlb/internal/persist"
	"hybridtlb/internal/tenant"
)

// replayedJob is one job's state folded from the journal: the last
// record wins, in journal order.
type replayedJob struct {
	id       string
	request  json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
	state    JobState
	errMsg   string
	tenant   string
	priority string
	rejected bool
	evicted  bool
}

// recover rebuilds the job store from the replayed journal. Terminal
// jobs are restored for polling — a "done" job's results are
// regenerated through the runner, where every persisted cell resolves
// as a durable-store hit, so restoration costs disk reads, not
// simulations. Jobs that were queued or running when the process died
// are re-enqueued under their original IDs; their finished cells are
// already in the store, so the resumed run re-simulates only the rest.
//
// Recovery never fails the server: a job that cannot be rebuilt (its
// request no longer expands, the queue is full) is restored as failed
// with an explanatory message rather than silently dropped.
func (s *Server) recover(recs []persist.Record) {
	jobs := make(map[string]*replayedJob)
	var order []string
	for _, r := range recs {
		switch r.Type {
		case persist.RecordAccepted:
			if _, ok := jobs[r.Job]; ok {
				continue
			}
			jobs[r.Job] = &replayedJob{
				id: r.Job, request: r.Request, created: r.Time, state: JobQueued,
				tenant: r.Tenant, priority: r.Priority,
			}
			order = append(order, r.Job)
		case persist.RecordState:
			e, ok := jobs[r.Job]
			if !ok {
				continue // state for a job whose acceptance was lost
			}
			switch r.State {
			case "rejected":
				e.rejected = true
			case string(JobRunning):
				e.state = JobRunning
				e.started = r.Time
			case string(JobDone), string(JobFailed), string(JobCanceled):
				e.state = JobState(r.State)
				e.finished = r.Time
				e.errMsg = r.Error
			}
		case persist.RecordEvicted:
			if e, ok := jobs[r.Job]; ok {
				e.evicted = true
			}
		}
	}

	for _, id := range order {
		e := jobs[id]
		switch {
		case e.rejected:
			// Never ran; the client was told 429/503 at the time.
		case e.evicted:
			s.store.markEvicted(id)
		default:
			s.restoreJob(e)
		}
	}
}

func (s *Server) restoreJob(e *replayedJob) {
	var req SweepRequest
	if err := json.Unmarshal(e.request, &req); err != nil {
		s.log.Warn("recovery: journaled request unreadable; dropping job", "job", e.id, "err", err)
		return
	}
	cfgs, echoes, apiErr := req.expand(s.cfg.limits())
	if apiErr != nil {
		s.log.Warn("recovery: journaled request no longer expands; dropping job", "job", e.id, "err", apiErr.Message)
		return
	}
	// Journals written before tenancy carry no tenant; fold those jobs
	// into the implicit default tenant. An unknown or stale priority
	// degrades to batch the same way.
	owner := e.tenant
	if owner == "" {
		owner = tenant.DefaultName
	}
	prio, _ := ParsePriority(e.priority)
	j := newRestoredJob(e.id, cfgs, echoes, e.created, owner, prio)

	switch e.state {
	case JobDone:
		// Regenerate the result payload through the runner: every cell
		// of a done job was written through to the store, so this is a
		// read, not a re-simulation. The queue's base context scopes the
		// work to the server's lifetime, exactly like a worker's run.
		results, err := s.runner.Run(s.queue.baseCtx, cfgs, nil)
		if err != nil {
			s.log.Warn("recovery: regenerating results failed", "job", e.id, "err", err)
			j.restoreTerminal(JobFailed, e.started, e.finished, results,
				"recovered after restart, but regenerating results failed: "+err.Error())
		} else {
			j.restoreTerminal(JobDone, e.started, e.finished, results, e.errMsg)
		}
		s.noteEvictions(s.store.add(j))
		s.metrics.recovered.Add(1)
		s.log.Info("recovery: restored terminal sweep", "job", e.id, "state", string(JobDone))
	case JobFailed, JobCanceled:
		// The per-cell results died with the old process; the terminal
		// state, timeline and error survive for polling clients.
		j.restoreTerminal(e.state, e.started, e.finished, nil, e.errMsg)
		s.noteEvictions(s.store.add(j))
		s.metrics.recovered.Add(1)
		s.log.Info("recovery: restored terminal sweep", "job", e.id, "state", string(e.state))
	default: // queued or running when the process died
		s.noteEvictions(s.store.add(j))
		// Claim the tenant's in-flight slot runJob will release. This
		// bypasses the quota deliberately: the work was admitted before
		// the crash, and honoring that beats strict accounting even if
		// the keyfile's quota shrank meanwhile.
		if ts := s.tenants[owner]; ts != nil {
			ts.forceAcquire()
		}
		if err := s.queue.submit(j); err != nil {
			s.releaseJob(j)
			j.restoreTerminal(JobFailed, e.started, time.Now().UTC(), nil,
				"interrupted by a restart and could not be re-enqueued: "+err.Error())
			s.journalState(j.id, string(JobFailed), "")
			s.log.Warn("recovery: re-enqueue failed", "job", e.id, "err", err)
			return
		}
		s.metrics.resumed.Add(1)
		s.log.Info("recovery: re-enqueued interrupted sweep", "job", e.id, "cells", len(cfgs))
	}
}
