package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"hybridtlb"
)

// TestCrashRecoveryKill9 is the end-to-end durability check: a real
// tlbserver process is SIGKILLed mid-sweep and restarted over the same
// state dir. The resumed job must finish, its per-cell results must be
// byte-identical to a clean in-process run of the same grid, and the
// restart must have re-simulated only the cells that were not yet in
// the durable store.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics require a POSIX platform")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "tlbserver")
	build := exec.Command("go", "build", "-o", bin, "hybridtlb/cmd/tlbserver")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tlbserver: %v\n%s", err, out)
	}

	stateDir := filepath.Join(dir, "state")
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base := "http://" + addr
	// One worker, serial cells, and a deterministic injected delay per
	// cell so the sweep is reliably mid-flight when the process dies.
	startServer := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-state-dir", stateDir,
			"-workers", "1",
			"-sweep-parallel", "1",
			"-chaos-delay", "150ms",
			"-chaos-seed", "7",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting tlbserver: %v", err)
		}
		waitHealthy(t, base)
		return cmd
	}

	const grid = `{"schemes":["base","anchor","thp","colt"],"workloads":["gups"],"scenarios":["demand","medium"],"accesses":2000}`

	proc := startServer()
	defer func() {
		if proc != nil && proc.Process != nil {
			proc.Process.Kill()
			proc.Wait()
		}
	}()

	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	var acc acceptedJSON
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.ID == "" {
		t.Fatal("submission returned no job ID")
	}

	// Let the sweep make partial progress, then pull the plug.
	waitProgress(t, base+acc.StatusURL, 2)
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	proc.Wait()

	proc = startServer()
	final := waitDone(t, base+acc.StatusURL)
	if final.State != "done" {
		t.Fatalf("resumed job state = %s, want done", final.State)
	}
	if len(final.Results) != 8 {
		t.Fatalf("resumed job has %d cells, want 8", len(final.Results))
	}

	// Reference: the same grid simulated cleanly in-process.
	var req SweepRequest
	if err := json.Unmarshal([]byte(grid), &req); err != nil {
		t.Fatal(err)
	}
	cfgs, _, apiErr := req.expand(Config{}.withDefaults().limits())
	if apiErr != nil {
		t.Fatalf("expand: %v", apiErr.Message)
	}
	ref, err := hybridtlb.NewSweeper(hybridtlb.SweepOptions{}).Run(context.Background(), cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		want, err := json.Marshal(toResultJSON(ref[i].SimulationResult))
		if err != nil {
			t.Fatal(err)
		}
		// The handler pretty-prints responses; compact before the
		// byte-for-byte comparison so only content can differ.
		var got bytes.Buffer
		if err := json.Compact(&got, final.Results[i].Result); err != nil {
			t.Fatalf("cell %d: invalid JSON: %v", i, err)
		}
		if got.String() != string(want) {
			t.Errorf("cell %d diverged after crash recovery:\n got:  %s\n want: %s",
				i, got.String(), want)
		}
	}

	// The restart must have read the pre-crash cells from the store and
	// simulated only the remainder.
	m := fetchMetrics(t, base)
	hits := metricInt(t, m, "tlbserver_store_hits_total")
	writes := metricInt(t, m, "tlbserver_store_writes_total")
	if hits < 2 {
		t.Errorf("store_hits_total = %d, want >= 2 (pre-crash cells must come from disk)", hits)
	}
	if writes >= 8 {
		t.Errorf("store_writes_total = %d, want < 8 (persisted cells must not re-simulate)", writes)
	}
	if resumed := metricInt(t, m, "tlbserver_jobs_resumed_total"); resumed != 1 {
		t.Errorf("jobs_resumed_total = %d, want 1", resumed)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("tlbserver never became healthy")
}

// waitProgress polls until at least n cells of the job are done.
func waitProgress(t *testing.T, statusURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(statusURL)
		if err == nil {
			var j struct {
				Done  int    `json:"done"`
				State string `json:"state"`
			}
			json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			if j.Done >= n {
				return
			}
			if j.State == "done" {
				t.Fatal("sweep finished before the crash could be injected; raise -chaos-delay")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job never reached %d completed cells", n)
}

func waitDone(t *testing.T, statusURL string) rawJob {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(statusURL)
		if err == nil {
			var j rawJob
			dec := json.NewDecoder(resp.Body)
			decErr := dec.Decode(&j)
			resp.Body.Close()
			if decErr == nil && j.State.terminal() {
				return j
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("resumed job never reached a terminal state")
	return rawJob{}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String()
}

func metricInt(t *testing.T, body, name string) int {
	t.Helper()
	v, err := strconv.Atoi(metricValue(t, body, name))
	if err != nil {
		t.Fatalf("metric %s = %q, not an integer", name, metricValue(t, body, name))
	}
	return v
}
