package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hybridtlb"
)

// JobState is a sweep job's lifecycle phase.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on the worker pool.
	JobRunning JobState = "running"
	// JobDone: finished with every cell succeeding.
	JobDone JobState = "done"
	// JobFailed: finished with at least one cell failing (per-cell
	// errors are in the results).
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client or by shutdown before
	// completion.
	JobCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// job is one queued sweep: its expanded grid, its progress, and — once a
// worker finishes it — its results. All mutable fields are guarded by
// mu; subscribers get a non-blocking wakeup on every change.
type job struct {
	id      string
	configs []hybridtlb.SimulationConfig
	echoes  []SimulateRequest
	// tenant names the submitting tenant (tenant.DefaultName on
	// registry-less servers); priority is its lane within that tenant's
	// fair-share queue. Both are immutable after construction.
	tenant   string
	priority Priority

	// canceled flips before cancel may exist (a DELETE can land while
	// the job is still queued); workers check it before running.
	canceled atomic.Bool

	// epochs counts epoch-boundary probe samples across the job's
	// cells — a cheap liveness signal for long sweeps, incremented from
	// simulation goroutines without taking mu.
	epochs atomic.Uint64

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	done     int
	results  []hybridtlb.SweepResult
	errMsg   string
	cancel   context.CancelFunc
	subs     map[int]chan struct{}
	nextSub  int
}

func newJob(cfgs []hybridtlb.SimulationConfig, echoes []SimulateRequest, tenantName string, prio Priority) *job {
	return &job{
		id:       "swp_" + randomID(),
		configs:  cfgs,
		echoes:   echoes,
		tenant:   tenantName,
		priority: prio,
		state:    JobQueued,
		created:  time.Now().UTC(),
		subs:     make(map[int]chan struct{}),
	}
}

// newRestoredJob rebuilds a journaled job under its original ID so
// clients polling across a restart keep getting answers.
func newRestoredJob(id string, cfgs []hybridtlb.SimulationConfig, echoes []SimulateRequest, created time.Time, tenantName string, prio Priority) *job {
	return &job{
		id:       id,
		configs:  cfgs,
		echoes:   echoes,
		tenant:   tenantName,
		priority: prio,
		state:    JobQueued,
		created:  created,
		subs:     make(map[int]chan struct{}),
	}
}

// restoreTerminal stamps a recovered job directly into a terminal
// state, with whatever the journal knew about its timeline.
func (j *job) restoreTerminal(state JobState, started, finished time.Time, results []hybridtlb.SweepResult, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.started = started
	j.finished = finished
	j.results = results
	j.errMsg = errMsg
	j.done = len(j.configs)
	if state == JobCanceled {
		j.canceled.Store(true)
	}
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// start transitions queued → running and installs the cancel hook. It
// returns false when the job was canceled while queued, in which case
// the worker must not run it.
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled.Load() {
		j.state = JobCanceled
		j.finished = time.Now().UTC()
		j.notifyLocked()
		return false
	}
	j.state = JobRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	j.notifyLocked()
	return true
}

// requestCancel marks the job canceled and interrupts it if running. It
// reports whether there was anything left to cancel.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.canceled.Store(true)
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// setProgress records completed cells and wakes subscribers.
func (j *job) setProgress(done int) {
	j.mu.Lock()
	j.done = done
	j.notifyLocked()
	j.mu.Unlock()
}

// finish records the outcome and wakes subscribers one last time. A
// context.Canceled error means someone deliberately stopped the job —
// a DELETE or a drain-deadline cancellation — so it lands in
// JobCanceled; a deadline expiry is a failure.
func (j *job) finish(results []hybridtlb.SweepResult, err error) JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = results
	j.finished = time.Now().UTC()
	switch {
	case j.canceled.Load() || errors.Is(err, context.Canceled):
		j.state = JobCanceled
		if err != nil {
			j.errMsg = err.Error()
		}
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
		j.done = len(j.configs)
	default:
		j.state = JobDone
		j.done = len(j.configs)
	}
	j.notifyLocked()
	return j.state
}

// subscribe registers a wakeup channel, signaled (without blocking) on
// every state or progress change.
func (j *job) subscribe() (int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	ch := make(chan struct{}, 1)
	j.subs[id] = ch
	return id, ch
}

func (j *job) unsubscribe(id int) {
	j.mu.Lock()
	delete(j.subs, id)
	j.mu.Unlock()
}

func (j *job) notifyLocked() {
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// JobJSON is the wire form of a job: always the identity and progress,
// plus the per-cell results once the job is terminal (and omitted from
// list responses, which set them to nil).
type JobJSON struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Tenant   string     `json:"tenant,omitempty"`
	Priority string     `json:"priority,omitempty"`
	Created  time.Time  `json:"created_at"`
	Started  *time.Time `json:"started_at,omitempty"`
	Finished *time.Time `json:"finished_at,omitempty"`
	Done     int        `json:"done"`
	Total    int        `json:"total"`
	Cached   int        `json:"cached,omitempty"`
	// Epochs counts epoch-boundary samples observed across the job's
	// simulated cells (cache-served cells contribute none).
	Epochs uint64 `json:"epochs,omitempty"`
	Error  string `json:"error,omitempty"`

	Results []SweepCellJSON `json:"results,omitempty"`
}

// snapshot renders the job's current state; withResults attaches the
// per-cell payload when the job is terminal.
func (j *job) snapshot(withResults bool) JobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := JobJSON{
		ID:       j.id,
		State:    j.state,
		Tenant:   j.tenant,
		Priority: j.priority.String(),
		Created:  j.created,
		Done:     j.done,
		Total:    len(j.configs),
		Epochs:   j.epochs.Load(),
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	for _, r := range j.results {
		if r.Cached {
			out.Cached++
		}
	}
	if withResults && j.state.terminal() && j.results != nil {
		out.Results = make([]SweepCellJSON, len(j.results))
		for i, r := range j.results {
			cell := SweepCellJSON{Config: j.echoes[i], Cached: r.Cached}
			if r.Err != nil {
				cell.Error = r.Err.Error()
			} else {
				cell.Result = toResultJSON(r.SimulationResult)
			}
			out.Results[i] = cell
		}
	}
	return out
}

// progressJSON is the payload of SSE progress events and of the
// polling endpoint's headline fields.
type progressJSON struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Done   int      `json:"done"`
	Total  int      `json:"total"`
	Epochs uint64   `json:"epochs,omitempty"`
}

func (j *job) progress() progressJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	return progressJSON{ID: j.id, State: j.state, Done: j.done,
		Total: len(j.configs), Epochs: j.epochs.Load()}
}

// jobStore indexes jobs by ID, preserving submission order for
// listing. With maxJobs > 0 it retains at most that many jobs,
// evicting the oldest *terminal* jobs first — active jobs are never
// evicted — and remembers evicted IDs so clients polling them get
// 410 Gone instead of a confusable 404.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	order     []string
	maxJobs   int
	evicted   map[string]bool
	evictions int64
}

func newJobStore(maxJobs int) *jobStore {
	return &jobStore{
		jobs:    make(map[string]*job),
		maxJobs: maxJobs,
		evicted: make(map[string]bool),
	}
}

// add indexes a job and enforces the retention cap, returning the IDs
// it evicted (for journaling).
func (s *jobStore) add(j *job) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	delete(s.evicted, j.id) // a restored ID is live again
	return s.enforceCapLocked()
}

// remove forgets a job entirely (rejected submissions); unlike
// eviction the ID does not answer 410 afterwards.
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// enforceCap applies the retention cap outside add — called after a
// job turns terminal — returning the evicted IDs.
func (s *jobStore) enforceCap() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enforceCapLocked()
}

func (s *jobStore) enforceCapLocked() []string {
	if s.maxJobs <= 0 {
		return nil
	}
	var out []string
	for len(s.order) > s.maxJobs {
		victim := ""
		idx := -1
		for i, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			t := j.state.terminal()
			j.mu.Unlock()
			if t {
				victim, idx = id, i
				break
			}
		}
		if idx < 0 {
			return out // everything over the cap is still active
		}
		s.order = append(s.order[:idx], s.order[idx+1:]...)
		delete(s.jobs, victim)
		s.evicted[victim] = true
		s.evictions++
		out = append(out, victim)
	}
	return out
}

// markEvicted replays a journaled eviction so the ID keeps answering
// 410 after a restart.
func (s *jobStore) markEvicted(id string) {
	s.mu.Lock()
	s.evicted[id] = true
	s.mu.Unlock()
}

func (s *jobStore) isEvicted(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted[id]
}

func (s *jobStore) evictionCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	return j, ok
}

// list returns submission-ordered summaries (no per-cell results).
func (s *jobStore) list() []JobJSON {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobJSON, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.get(id); ok {
			out = append(out, j.snapshot(false))
		}
	}
	return out
}

// runningEpochs sums the epoch counters of currently running jobs for
// the metrics gauge. The sum is deliberate: a per-job-ID label would
// mint a new time series for every job the server ever ran (IDs are
// unique per submission, so the scrape's cardinality grows without
// bound over the server's lifetime); per-job epoch counts stay
// available in the job JSON.
func (s *jobStore) runningEpochs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == JobRunning
		j.mu.Unlock()
		if running {
			total += j.epochs.Load()
		}
	}
	return total
}

// countByState tallies job states for metrics.
func (s *jobStore) countByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}
