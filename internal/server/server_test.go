package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridtlb"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fakeRunner is a controllable Runner: it can block until released,
// report scripted progress, and count calls — so queue, SSE and drain
// behavior are tested without paying for real simulations.
type fakeRunner struct {
	mu      sync.Mutex
	calls   int
	stats   hybridtlb.CacheStats
	block   chan struct{} // when non-nil, Run waits for close or ctx
	started chan struct{} // when non-nil, signaled as each Run begins
	// epochsPerCell, when > 0, fires that many probe samples on every
	// config carrying a Probe, before signaling started — so tests can
	// scrape mid-run state after the started handshake.
	epochsPerCell int
}

func (f *fakeRunner) Run(ctx context.Context, cfgs []hybridtlb.SimulationConfig, progress func(done, total int)) ([]hybridtlb.SweepResult, error) {
	f.mu.Lock()
	f.calls++
	f.stats.Jobs += len(cfgs)
	f.stats.Misses += len(cfgs)
	block, started := f.block, f.started
	epochs := f.epochsPerCell
	f.mu.Unlock()
	for _, cfg := range cfgs {
		if cfg.Probe == nil {
			continue
		}
		for e := 1; e <= epochs; e++ {
			cfg.Probe(hybridtlb.EpochSample{Epoch: e})
		}
	}
	if started != nil {
		started <- struct{}{}
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return make([]hybridtlb.SweepResult, len(cfgs)), ctx.Err()
		}
	}
	out := make([]hybridtlb.SweepResult, len(cfgs))
	for i, cfg := range cfgs {
		out[i].SimulationResult = hybridtlb.SimulationResult{
			Scheme: cfg.Scheme, Workload: cfg.Workload, Scenario: cfg.Scenario,
		}
		if progress != nil {
			progress(i+1, len(cfgs))
		}
	}
	return out, nil
}

func (f *fakeRunner) Stats() hybridtlb.CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// mustNew builds a Server, failing the test on a construction error
// (only possible with a -state-dir that cannot be opened).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = discardLogger()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Field   string `json:"field"`
	} `json:"error"`
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}})
	cases := []struct {
		name, body, field string
	}{
		{"unknown scheme", `{"scheme":"bogus","workload":"gups","scenario":"demand"}`, "scheme"},
		{"missing workload", `{"scheme":"anchor","scenario":"demand"}`, "workload"},
		{"unknown scenario", `{"scheme":"anchor","workload":"gups","scenario":"nope"}`, "scenario"},
		{"pressure out of range", `{"scheme":"anchor","workload":"gups","scenario":"demand","pressure":1.5}`, "pressure"},
		{"accesses over cap", `{"scheme":"anchor","workload":"gups","scenario":"demand","accesses":999999999}`, "accesses"},
		{"unknown cost model", `{"scheme":"anchor","workload":"gups","scenario":"demand","cost_model":"psychic"}`, "cost_model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/simulate", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			env := decodeBody[errEnvelope](t, resp)
			if env.Error.Code != codeInvalidRequest {
				t.Errorf("code = %q, want %q", env.Error.Code, codeInvalidRequest)
			}
			if env.Error.Field != tc.field {
				t.Errorf("field = %q, want %q", env.Error.Field, tc.field)
			}
		})
	}

	t.Run("malformed body", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", `{"scheme":`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	})
	t.Run("unknown field", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", `{"scheme":"anchor","workload":"gups","scenario":"demand","warp":9}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	})
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}, MaxSweepJobs: 4})
	t.Run("empty axis", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sweeps", `{"schemes":["anchor"],"workloads":[],"scenarios":["demand"]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		env := decodeBody[errEnvelope](t, resp)
		if env.Error.Field != "workloads" {
			t.Errorf("field = %q, want workloads", env.Error.Field)
		}
	})
	t.Run("grid over cap", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sweeps",
			`{"schemes":["base","anchor","thp"],"workloads":["gups","mcf"],"scenarios":["demand"]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		env := decodeBody[errEnvelope](t, resp)
		if !strings.Contains(env.Error.Message, "over the server limit") {
			t.Errorf("message = %q, want grid-size complaint", env.Error.Message)
		}
	})
	t.Run("bad cell name", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sweeps", `{"schemes":["warp"],"workloads":["gups"],"scenarios":["demand"]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		env := decodeBody[errEnvelope](t, resp)
		if env.Error.Field != "scheme" {
			t.Errorf("field = %q, want scheme", env.Error.Field)
		}
	})
}

type acceptedJSON struct {
	ID        string `json:"id"`
	Total     int    `json:"total"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// submitSweep posts a small grid and returns the 202 payload.
func submitSweep(t *testing.T, ts *httptest.Server, body string) acceptedJSON {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/sweeps", body)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status = %d, want 202 (%s)", resp.StatusCode, b)
	}
	acc := decodeBody[acceptedJSON](t, resp)
	if acc.ID == "" || acc.StatusURL == "" {
		t.Fatalf("incomplete 202 payload: %+v", acc)
	}
	return acc
}

// waitTerminal polls the status endpoint until the job leaves
// queued/running.
func waitTerminal(t *testing.T, ts *httptest.Server, statusURL string) JobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + statusURL)
		if err != nil {
			t.Fatalf("GET %s: %v", statusURL, err)
		}
		j := decodeBody[JobJSON](t, resp)
		if j.State.terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job at %s never reached a terminal state", statusURL)
	return JobJSON{}
}

const tinySweep = `{"schemes":["base","anchor"],"workloads":["gups"],"scenarios":["medium"],"accesses":2000}`

// TestSweepEndToEnd runs a real two-cell sweep through the full HTTP
// path and checks the results are identical to calling the library
// directly — the serving layer must not perturb the reproduction.
func TestSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	acc := submitSweep(t, ts, tinySweep)
	if acc.Total != 2 {
		t.Fatalf("total = %d, want 2", acc.Total)
	}
	j := waitTerminal(t, ts, acc.StatusURL)
	if j.State != JobDone {
		t.Fatalf("state = %s (error %q), want done", j.State, j.Error)
	}
	if len(j.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(j.Results))
	}

	want, err := hybridtlb.SimulateSweep(context.Background(), []hybridtlb.SimulationConfig{
		{Scheme: "base", Workload: "gups", Scenario: "medium", Accesses: 2000, Seed: 42},
		{Scheme: "anchor", Workload: "gups", Scenario: "medium", Accesses: 2000, Seed: 42},
	}, hybridtlb.SweepOptions{})
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	for i, cell := range j.Results {
		if cell.Error != "" {
			t.Fatalf("cell %d error: %s", i, cell.Error)
		}
		if got, wantMisses := cell.Result.Misses, want[i].Stats.Misses; got != wantMisses {
			t.Errorf("cell %d misses = %d, want %d (server must match library exactly)", i, got, wantMisses)
		}
		if got := cell.Result.TranslationCPI; got != want[i].TranslationCPI {
			t.Errorf("cell %d CPI = %v, want %v", i, got, want[i].TranslationCPI)
		}
	}

	// A repeated submission must be served from the server-lifetime
	// cache: every cell cached, and /metrics reports the hits.
	acc2 := submitSweep(t, ts, tinySweep)
	j2 := waitTerminal(t, ts, acc2.StatusURL)
	if j2.State != JobDone {
		t.Fatalf("repeat state = %s, want done", j2.State)
	}
	if j2.Cached != 2 {
		t.Errorf("repeat cached = %d, want 2", j2.Cached)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tlbserver_sweep_cache_hits_total 2") {
		t.Errorf("metrics missing nonzero cache hits:\n%s", grepMetric(string(body), "cache_hits"))
	}
}

func grepMetric(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestBackpressure fills the worker pool and the bounded queue, then
// asserts the next submission is shed with 429 + Retry-After instead of
// queueing unboundedly.
func TestBackpressure(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 8)}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, Runner: fr})

	grid := `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`
	// Occupy both workers...
	for i := 0; i < 2; i++ {
		submitSweep(t, ts, grid)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-fr.started:
		case <-time.After(5 * time.Second):
			t.Fatal("worker never picked up job")
		}
	}
	// ...fill the queue...
	for i := 0; i < 4; i++ {
		submitSweep(t, ts, grid)
	}
	// ...and the next submission must bounce.
	resp := postJSON(t, ts.URL+"/v1/sweeps", grid)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	env := decodeBody[errEnvelope](t, resp)
	if env.Error.Code != codeOverloaded {
		t.Errorf("code = %q, want %q", env.Error.Code, codeOverloaded)
	}
	close(fr.block) // release the workers so cleanup drains fast
}

// TestSimulateBackpressure saturates the synchronous endpoint's
// admission semaphore.
func TestSimulateBackpressure(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 8)}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postJSON(t, ts.URL+"/v1/simulate", `{"scheme":"anchor","workload":"gups","scenario":"demand"}`)
		resp.Body.Close()
	}()
	select {
	case <-fr.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first simulate never started")
	}
	resp := postJSON(t, ts.URL+"/v1/simulate", `{"scheme":"anchor","workload":"gups","scenario":"demand"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	resp.Body.Close()
	close(fr.block)
	<-done
}

// TestSSEProgress streams a job's progress events and asserts the
// sequence ends with a done event.
func TestSSEProgress(t *testing.T) {
	fr := &fakeRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, `{"schemes":["base","thp","anchor"],"workloads":["gups"],"scenarios":["demand"]}`)

	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var events []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
			if events[len(events)-1] == "done" {
				break
			}
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("event sequence = %v, want at least one progress then done", events)
	}
	for _, e := range events[:len(events)-1] {
		if e != "progress" {
			t.Errorf("unexpected event %q before done", e)
		}
	}
}

// TestGracefulDrain submits work, begins shutdown, and checks Drain
// finishes the queued jobs rather than dropping them — and that new
// submissions are refused while draining.
func TestGracefulDrain(t *testing.T) {
	fr := &fakeRunner{}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 4, Runner: fr, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var accs []acceptedJSON
	for i := 0; i < 3; i++ {
		accs = append(accs, submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`))
	}
	s.BeginShutdown()

	// Draining refuses new work with 503...
	resp := postJSON(t, ts.URL+"/v1/sweeps", `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	// ...and /readyz flips.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every accepted job completed; nothing was dropped.
	for _, acc := range accs {
		j := waitTerminal(t, ts, acc.StatusURL)
		if j.State != JobDone {
			t.Errorf("job %s state after drain = %s, want done", acc.ID, j.State)
		}
	}
}

// TestDrainDeadlineCancelsJobs forces the drain budget to expire and
// checks running jobs are canceled, not abandoned.
func TestDrainDeadlineCancelsJobs(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s := mustNew(t, Config{Workers: 1, Runner: fr, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	<-fr.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain returned nil despite a stuck job")
	}
	j := waitTerminal(t, ts, acc.StatusURL)
	if j.State != JobCanceled {
		t.Errorf("state = %s, want canceled", j.State)
	}
}

func TestCancelSweep(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	<-fr.started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+acc.StatusURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	j := waitTerminal(t, ts, acc.StatusURL)
	if j.State != JobCanceled {
		t.Fatalf("state = %s, want canceled", j.State)
	}

	// Cancelling a finished job conflicts.
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	close(fr.block)
}

func TestNotFoundAndProbes(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}})
	resp, err := http.Get(ts.URL + "/v1/sweeps/swp_nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	env := decodeBody[errEnvelope](t, resp)
	if env.Error.Code != codeNotFound {
		t.Errorf("code = %q, want %q", env.Error.Code, codeNotFound)
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", probe, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestSimulateEndToEnd exercises the synchronous endpoint against the
// real simulator and cross-checks the library.
func TestSimulateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/simulate",
		`{"scheme":"anchor","workload":"gups","scenario":"medium","accesses":2000,"seed":42}`)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, b)
	}
	got := decodeBody[ResultJSON](t, resp)

	want, err := hybridtlb.Simulate(hybridtlb.SimulationConfig{
		Scheme: "anchor", Workload: "gups", Scenario: "medium", Accesses: 2000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Misses != want.Stats.Misses || got.TranslationCPI != want.TranslationCPI {
		t.Errorf("server result (misses %d, cpi %v) != library (misses %d, cpi %v)",
			got.Misses, got.TranslationCPI, want.Stats.Misses, want.TranslationCPI)
	}
	if got.Scheme != "anchor" || got.AnchorDistance == 0 {
		t.Errorf("unexpected result identity: %+v", got)
	}
}

func TestListSweeps(t *testing.T) {
	fr := &fakeRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	waitTerminal(t, ts, acc.StatusURL)

	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Sweeps []JobJSON `json:"sweeps"`
	}](t, resp)
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != acc.ID {
		t.Fatalf("list = %+v, want the one submitted job", list.Sweeps)
	}
	if list.Sweeps[0].Results != nil {
		t.Error("list response must not inline result payloads")
	}
}

// TestMetricsShape asserts the exposition format carries the expected
// families after a little traffic.
func TestMetricsShape(t *testing.T) {
	fr := &fakeRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	waitTerminal(t, ts, acc.StatusURL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`tlbserver_http_requests_total{route="POST /v1/sweeps",code="202"} 1`,
		`tlbserver_jobs_finished_total{state="done"} 1`,
		"tlbserver_queue_capacity",
		"tlbserver_workers 1",
		"tlbserver_http_request_duration_seconds_bucket",
		"tlbserver_ready 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobEpochGauge runs the epoch plumbing end to end over the HTTP
// surface: the per-job counter ticks on probe samples, shows up in the
// running-jobs metrics gauge and the status document, and the gauge
// returns to zero once the job is terminal. The gauge is an unlabeled
// sum over running jobs — a job-ID label would mint a new time series
// per submission (metriclint's cardinality rule); per-job detail lives
// in the job JSON.
func TestJobEpochGauge(t *testing.T) {
	fr := &fakeRunner{
		epochsPerCell: 3,
		block:         make(chan struct{}),
		started:       make(chan struct{}, 1),
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, tinySweep) // two cells -> 6 epoch samples
	<-fr.started

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := "tlbserver_job_epochs 6"
	if !strings.Contains(string(body), want) {
		t.Errorf("running-job metrics missing %q", want)
	}
	if strings.Contains(string(body), "tlbserver_job_epochs{") {
		t.Error("job epoch gauge grew a label; it must stay an unlabeled sum (unbounded job-ID cardinality)")
	}

	resp, err = http.Get(ts.URL + acc.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	if j := decodeBody[JobJSON](t, resp); j.State != JobRunning || j.Epochs != 6 {
		t.Errorf("mid-run status = %s with %d epochs, want running with 6", j.State, j.Epochs)
	}

	close(fr.block)
	j := waitTerminal(t, ts, acc.StatusURL)
	if j.State != JobDone || j.Epochs != 6 {
		t.Errorf("terminal status = %s with %d epochs, want done with 6", j.State, j.Epochs)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tlbserver_job_epochs 0") {
		t.Error("epoch gauge did not return to zero after the job went terminal")
	}
}

// TestRetryAfterFormat pins the header to whole seconds >= 1.
func TestRetryAfterFormat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{0.1, "1"}, {2, "2"}, {2.5, "3"}} {
		if got := retryAfterSeconds(tc.in); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestJobJSONShape pins the wire format of the status document.
func TestJobJSONShape(t *testing.T) {
	j := newJob(
		[]hybridtlb.SimulationConfig{{Scheme: "anchor", Workload: "gups", Scenario: "demand"}},
		[]SimulateRequest{{Scheme: "anchor", Workload: "gups", Scenario: "demand"}},
		"default", PriorityBatch,
	)
	j.finish([]hybridtlb.SweepResult{{SimulationResult: hybridtlb.SimulationResult{Scheme: "anchor"}, Cached: true}}, nil)
	data, err := json.Marshal(j.snapshot(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"state":"done"`, `"done":1`, `"total":1`, `"cached":1`, `"results":[`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("snapshot JSON missing %s in %s", want, data)
		}
	}
	if strings.Contains(string(data), `"error"`) {
		t.Errorf("successful snapshot carries error field: %s", data)
	}
}

func init() {
	// Quiet the default logger for any path that misses an explicit one.
	slog.SetDefault(discardLogger())
}

var _ Runner = (*hybridtlb.Sweeper)(nil)
