package server

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull sheds load: the submitting tenant's bounded queue has no
// room, the client should retry later (the handler maps this to 429
// with an adaptive Retry-After).
var errQueueFull = errors.New("server: tenant job queue full")

// errQueueClosed rejects submissions after shutdown began (503).
var errQueueClosed = errors.New("server: job queue draining")

// queue executes jobs on a fixed worker pool fed by the weighted
// fair-share scheduler: every tenant owns a bounded queue and workers
// drain them in deficit-round-robin order, so one tenant's backlog
// never starves another's. A full tenant queue fails submit
// immediately instead of queueing unboundedly, and the HTTP layer
// turns that into per-tenant backpressure.
type queue struct {
	run func(ctx context.Context, j *job)

	// baseCtx parents every job context; canceling it aborts in-flight
	// sweeps when a drain deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// wake carries one token per submission (capacity = workers, so a
	// burst wakes the whole pool); done is close-signaled by drain.
	wake chan struct{}
	done chan struct{}

	wg     sync.WaitGroup
	mu     sync.Mutex
	sched  *scheduler
	closed bool
}

func newQueue(workers, perTenantDepth int, run func(ctx context.Context, j *job)) *queue {
	q := &queue{
		run:   run,
		sched: newScheduler(perTenantDepth),
		wake:  make(chan struct{}, workers),
		done:  make(chan struct{}),
	}
	// tlbvet:ignore ctxflow the pool outlives any request; its lifetime is bound to drain(), not a caller's context.
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *queue) worker() {
	defer q.wg.Done()
	for {
		if j := q.pop(); j != nil {
			q.run(q.baseCtx, j)
			continue
		}
		select {
		case <-q.wake:
			// A submission landed (or a token from an already-served
			// burst); loop and contend for it.
		case <-q.done:
			// Draining: serve whatever is still queued, then exit. The
			// drain deadline cancels baseCtx, so late jobs finish as
			// canceled rather than running long.
			for {
				j := q.pop()
				if j == nil {
					return
				}
				q.run(q.baseCtx, j)
			}
		}
	}
}

// addTenant registers a tenant's fair-share weight with the scheduler.
func (q *queue) addTenant(name string, weight int) {
	q.mu.Lock()
	q.sched.addTenant(name, weight)
	q.mu.Unlock()
}

// submit enqueues without blocking; a full tenant queue or a draining
// server fail fast.
func (q *queue) submit(j *job) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errQueueClosed
	}
	err := q.sched.push(j)
	q.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case q.wake <- struct{}{}:
	default:
		// Every worker already has a pending wake token; one of them
		// will drain this job on its next pop loop.
	}
	return nil
}

// pop takes the next fair-share job, nil when nothing is queued.
func (q *queue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.pop()
}

// depth returns the number of jobs waiting across all tenant queues
// (excluding jobs already running on workers).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.len()
}

// tenantDepth returns one tenant's queued jobs.
func (q *queue) tenantDepth(name string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.tenantDepth(name)
}

// tenantDepths snapshots per-tenant queue depths for metrics.
func (q *queue) tenantDepths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.depths()
}

// capacity returns the per-tenant queue bound.
func (q *queue) capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.perTenantDepth
}

// drain stops intake and waits for every queued and in-flight job to
// finish. If ctx expires first, in-flight job contexts are canceled and
// drain still waits for the workers to observe that, then reports the
// context's error. Safe to call more than once.
func (q *queue) drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.done)
	}
	q.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-finished
		return ctx.Err()
	}
}
