package server

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull sheds load: the bounded buffer has no room, the client
// should retry later (the handler maps this to 429 + Retry-After).
var errQueueFull = errors.New("server: job queue full")

// errQueueClosed rejects submissions after shutdown began (503).
var errQueueClosed = errors.New("server: job queue draining")

// queue executes jobs on a fixed worker pool fed by a bounded buffer.
// The buffer is the server's only admission control: when it is full,
// submit fails immediately instead of queueing unboundedly, and the
// HTTP layer turns that into backpressure.
type queue struct {
	ch  chan *job
	run func(ctx context.Context, j *job)

	// baseCtx parents every job context; canceling it aborts in-flight
	// sweeps when a drain deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

func newQueue(workers, depth int, run func(ctx context.Context, j *job)) *queue {
	q := &queue{
		ch:  make(chan *job, depth),
		run: run,
	}
	// tlbvet:ignore ctxflow the pool outlives any request; its lifetime is bound to close(), not a caller's context.
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.run(q.baseCtx, j)
	}
}

// submit enqueues without blocking; a full buffer or a draining queue
// fail fast.
func (q *queue) submit(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth returns the number of jobs waiting in the buffer (excluding
// jobs already running on workers).
func (q *queue) depth() int { return len(q.ch) }

// capacity returns the buffer size.
func (q *queue) capacity() int { return cap(q.ch) }

// drain stops intake and waits for every queued and in-flight job to
// finish. If ctx expires first, in-flight job contexts are canceled and
// drain still waits for the workers to observe that, then reports the
// context's error. Safe to call more than once.
func (q *queue) drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-done
		return ctx.Err()
	}
}
