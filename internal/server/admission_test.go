package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridtlb/internal/tenant"
)

// mustRegistry parses an inline keyfile document.
func mustRegistry(t *testing.T, doc string) *tenant.Registry {
	t.Helper()
	reg, err := tenant.Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("tenant.Parse: %v", err)
	}
	return reg
}

// doAuthed sends a request with a bearer key ("" sends none).
func doAuthed(t *testing.T, method, url, key, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return resp
}

const (
	simBody   = `{"scheme":"anchor","workload":"gups","scenario":"demand","accesses":50}`
	sweepBody = `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`
)

func TestAuthRequiredWithKeyfile(t *testing.T) {
	reg := mustRegistry(t, `{"tenants":[{"name":"a","key":"key-a"}]}`)
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}, Tenants: reg})

	for _, key := range []string{"", "wrong-key"} {
		resp := doAuthed(t, "POST", ts.URL+"/v1/simulate", key, simBody)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Error("401 missing WWW-Authenticate challenge")
		}
		body := decodeBody[struct {
			Error struct{ Code string }
		}](t, resp)
		if body.Error.Code != codeUnauthenticated {
			t.Fatalf("error code %q, want %q", body.Error.Code, codeUnauthenticated)
		}
	}

	resp := doAuthed(t, "POST", ts.URL+"/v1/simulate", "key-a", simBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Health, readiness and metrics stay unauthenticated: probes and
	// scrapers do not hold tenant keys.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d without a key, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestRateLimitSheds(t *testing.T) {
	reg := mustRegistry(t, `{"tenants":[{"name":"a","key":"key-a","rate_per_sec":0.001,"burst":1}]}`)
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}, Tenants: reg})

	resp := doAuthed(t, "POST", ts.URL+"/v1/simulate", "key-a", simBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp = doAuthed(t, "POST", ts.URL+"/v1/simulate", "key-a", simBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	// At 0.001 tokens/sec the next token is ~1000s out; Retry-After
	// must reflect the bucket, not just the queue floor.
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	var secs int
	fmt.Sscanf(ra, "%d", &secs)
	if secs < 100 {
		t.Fatalf("Retry-After = %s; want the bucket's ~1000s maturity time", ra)
	}
	resp.Body.Close()

	// The shed is visible per tenant and per gate on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metricsText), `tlbserver_tenant_shed_total{tenant="a",reason="rate"} 1`) {
		t.Errorf("metrics missing per-tenant shed counter:\n%s", metricsText)
	}
}

func TestInflightQuotaSpansEndpoints(t *testing.T) {
	reg := mustRegistry(t, `{"tenants":[{"name":"a","key":"key-a","max_in_flight":1}]}`)
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 4)}
	_, ts := newTestServer(t, Config{Runner: fr, Workers: 2, Tenants: reg})

	resp := doAuthed(t, "POST", ts.URL+"/v1/sweeps", "key-a", sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: status %d, want 202", resp.StatusCode)
	}
	accepted := decodeBody[struct{ ID string }](t, resp)
	<-fr.started // the job holds its quota slot on a worker now

	// The same tenant is refused more work — on either endpoint.
	for _, tc := range []struct{ path, body string }{
		{"/v1/sweeps", sweepBody},
		{"/v1/simulate", simBody},
	} {
		resp := doAuthed(t, "POST", ts.URL+tc.path, "key-a", tc.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("POST %s at quota: status %d, want 429", tc.path, resp.StatusCode)
		}
		body := decodeBody[struct {
			Error struct{ Message string }
		}](t, resp)
		if !strings.Contains(body.Error.Message, "quota") {
			t.Fatalf("shed message %q does not name the quota gate", body.Error.Message)
		}
	}

	close(fr.block)
	waitForState(t, ts.URL+"/v1/sweeps/"+accepted.ID, "key-a", JobDone)

	// Terminal job released its slot; the tenant may submit again.
	resp = doAuthed(t, "POST", ts.URL+"/v1/sweeps", "key-a", sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-release sweep: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// waitForState polls a job status URL (with auth) until the job
// reaches the wanted terminal state.
func waitForState(t *testing.T, url, key string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp := doAuthed(t, "GET", url, key, "")
		body := decodeBody[struct{ State JobState }](t, resp)
		if body.State == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job never reached %s", want)
}

func TestTenantJobIsolation(t *testing.T) {
	reg := mustRegistry(t, `{"tenants":[{"name":"a","key":"key-a"},{"name":"b","key":"key-b"}]}`)
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}, Tenants: reg})

	resp := doAuthed(t, "POST", ts.URL+"/v1/sweeps", "key-a", sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct{ ID string }](t, resp)

	// Tenant b cannot see, poll, or cancel a's job; the answer is 404,
	// indistinguishable from a nonexistent ID.
	for _, tc := range []struct{ method, path string }{
		{"GET", "/v1/sweeps/" + accepted.ID},
		{"DELETE", "/v1/sweeps/" + accepted.ID},
		{"GET", "/v1/sweeps/" + accepted.ID + "/events"},
	} {
		resp := doAuthed(t, tc.method, ts.URL+tc.path, "key-b", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s as b: status %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	listA := decodeBody[struct{ Sweeps []JobJSON }](t, doAuthed(t, "GET", ts.URL+"/v1/sweeps", "key-a", ""))
	if len(listA.Sweeps) != 1 || listA.Sweeps[0].Tenant != "a" {
		t.Fatalf("a's list = %+v, want its one job", listA.Sweeps)
	}
	listB := decodeBody[struct{ Sweeps []JobJSON }](t, doAuthed(t, "GET", ts.URL+"/v1/sweeps", "key-b", ""))
	if len(listB.Sweeps) != 0 {
		t.Fatalf("b's list leaked a's jobs: %+v", listB.Sweeps)
	}
}

func TestSweepPriorityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &fakeRunner{}})
	bad := `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"],"priority":"urgent"}`
	resp := postJSON(t, ts.URL+"/v1/sweeps", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body := decodeBody[struct {
		Error struct{ Field string }
	}](t, resp)
	if body.Error.Field != "priority" {
		t.Fatalf("error field %q, want priority", body.Error.Field)
	}

	ok := `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"],"priority":"interactive"}`
	resp = postJSON(t, ts.URL+"/v1/sweeps", ok)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive priority refused: status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct{ ID string }](t, resp)
	resp = doAuthed(t, "GET", ts.URL+"/v1/sweeps/"+accepted.ID, "", "")
	job := decodeBody[JobJSON](t, resp)
	if job.Priority != "interactive" || job.Tenant != tenant.DefaultName {
		t.Fatalf("job echo = tenant %q priority %q", job.Tenant, job.Priority)
	}
}

// TestRetryAfterHintAdapts proves satellite 1 clock-free: the hint is
// the constant floor until a drain rate is observed, then scales with
// queue depth and caps at RetryAfterMax.
func TestRetryAfterHintAdapts(t *testing.T) {
	s := mustNew(t, Config{Runner: &fakeRunner{}, Workers: 2,
		RetryAfter: 2 * time.Second, RetryAfterMax: 60 * time.Second, Logger: discardLogger()})
	t.Cleanup(func() { s.Close() })

	// No completions observed yet: the static floor, regardless of depth.
	if got := s.retryAfterHint(100); got != 2*time.Second {
		t.Fatalf("unseeded hint = %v, want the 2s floor", got)
	}

	// Workers retire a job every 4s; 10 queued over 2 workers ≈ 22s.
	s.drainEst.observe(4 * time.Second)
	if got := s.retryAfterHint(10); got != 22*time.Second {
		t.Fatalf("hint(10 queued, 4s/job, 2 workers) = %v, want 22s", got)
	}
	// An empty queue still quotes one in-progress job, never below floor.
	if got := s.retryAfterHint(0); got != 2*time.Second {
		t.Fatalf("hint(0 queued) = %v, want 2s floor", got)
	}
	// Deep backlogs cap at RetryAfterMax.
	if got := s.retryAfterHint(10_000); got != 60*time.Second {
		t.Fatalf("hint(10k queued) = %v, want the 60s cap", got)
	}
}

// TestRecoveryPreservesTenant round-trips tenant and priority through
// the journal: a job accepted by tenant a before a crash resumes in
// a's fair-share queue after restart.
func TestRecoveryPreservesTenant(t *testing.T) {
	dir := t.TempDir()
	reg := mustRegistry(t, `{"tenants":[{"name":"a","key":"key-a"}]}`)
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	cfg := Config{Runner: fr, Tenants: reg, StateDir: dir, Logger: discardLogger()}

	s1 := mustNew(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	resp := doAuthed(t, "POST", ts1.URL+"/v1/sweeps", "key-a", sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct{ ID string }](t, resp)
	<-fr.started
	// "Crash": abandon s1 without draining (close the journal only).
	ts1.Close()
	close(fr.block)
	s1.Close()

	cfg.Runner = &fakeRunner{}
	s2 := mustNew(t, cfg)
	t.Cleanup(func() { s2.Close() })
	j, ok := s2.store.get(accepted.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	if j.tenant != "a" || j.priority != PriorityBatch {
		t.Fatalf("recovered job tenant %q priority %v, want a/batch", j.tenant, j.priority)
	}
}
