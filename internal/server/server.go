// Package server is the simulation-as-a-service layer: an HTTP API over
// the public hybridtlb simulation entry points and the internal/sweep
// engine. Small synchronous runs go through POST /v1/simulate; grids go
// through POST /v1/sweeps, which enqueues an asynchronous job on a
// bounded worker pool and immediately returns 202 with a job ID that
// clients poll (GET /v1/sweeps/{id}) or stream (SSE at
// /v1/sweeps/{id}/events). Every simulation — sync or async — runs
// against one server-lifetime Sweeper, so its content-addressed result
// cache deduplicates repeated cells across requests and clients.
//
// Production behaviors are first-class: strict request validation with
// structured field-level errors, bounded queues that shed load with
// 429 + Retry-After instead of growing without bound, per-request and
// per-job timeouts, /healthz + /readyz, Prometheus-text /metrics, slog
// access and job logging, and a graceful drain that finishes in-flight
// jobs before the process exits.
//
// The server is multi-tenant: with a tenant keyfile configured
// (Config.Tenants), every /v1 request authenticates with a bearer key
// and runs under that tenant's admission limits — token-bucket request
// rate, in-flight quota, bounded queue share — and the worker pool
// drains tenant queues by weighted fair share (see sched.go), so one
// hostile or buggy client degrades its own service, not everyone's.
// Without a keyfile every caller shares one implicit unlimited tenant
// and the behavior is the old single-tenant server's.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"hybridtlb"
	"hybridtlb/internal/persist"
	"hybridtlb/internal/tenant"
)

// Runner executes simulation batches. *hybridtlb.Sweeper implements it;
// tests substitute controllable fakes.
type Runner interface {
	Run(ctx context.Context, cfgs []hybridtlb.SimulationConfig, progress func(done, total int)) ([]hybridtlb.SweepResult, error)
	Stats() hybridtlb.CacheStats
}

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers sizes the sweep worker pool (default 2).
	Workers int
	// QueueDepth bounds sweeps waiting for a worker, per tenant; a
	// tenant with a full queue is shed with 429 without consuming any
	// other tenant's room (default 8).
	QueueDepth int
	// SweepParallelism bounds concurrent simulations within one sweep
	// (default GOMAXPROCS). Total simulation concurrency is
	// Workers × SweepParallelism plus synchronous simulate requests.
	SweepParallelism int
	// SimulateTimeout budgets one synchronous POST /v1/simulate
	// (default 60s).
	SimulateTimeout time.Duration
	// JobTimeout budgets one queued sweep job (default 15m).
	JobTimeout time.Duration
	// RetryAfter floors the hint sent with 429 responses (default 2s).
	// The live hint scales up with queue depth over the observed drain
	// rate; see retryAfterHint.
	RetryAfter time.Duration
	// RetryAfterMax caps the adaptive Retry-After hint (default 5m).
	RetryAfterMax time.Duration
	// Tenants, when non-nil, switches on multi-tenant admission:
	// every /v1 request must carry "Authorization: Bearer <key>" naming
	// a keyfile tenant, whose rate limit, in-flight quota and
	// fair-share weight then govern it. Nil: one implicit unlimited
	// tenant, no authentication (the pre-tenancy behavior).
	Tenants *tenant.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// profiling during overload investigations. Off by default: the
	// endpoints reveal internals and cost CPU, so they are opt-in.
	EnablePprof bool
	// MaxAccesses caps per-simulation measured accesses
	// (default 5,000,000; negative disables the cap).
	MaxAccesses uint64
	// MaxSweepJobs caps one request's expanded grid size
	// (default 4096; negative disables the cap).
	MaxSweepJobs int
	// MaxJobs caps how many jobs the store retains; beyond it the
	// oldest terminal jobs are evicted and their IDs answer 410 Gone
	// (default 0: unlimited).
	MaxJobs int
	// StateDir, when set, makes sweeps crash-safe: completed cells are
	// persisted to a content-addressed store under it and every job
	// transition is journaled, so a restarted server restores terminal
	// jobs and resumes interrupted ones (re-simulating only cells not
	// yet in the store). Empty: memory-only, the previous behavior.
	StateDir string
	// PersistStore, when non-nil, substitutes an already-open result
	// store for the one New would open under StateDir — the seam that
	// lets the fabric coordinator and the HTTP server share one
	// content-addressed store instance (and its counters). The journal
	// still comes from StateDir when that is also set.
	PersistStore *persist.ResultStore
	// StoreMaxBytes, when positive, caps the result store's on-disk
	// size: after every finished job the oldest envelopes are pruned
	// until the store fits (see persist.ResultStore.Prune). Zero:
	// unbounded, the previous behavior.
	StoreMaxBytes int64
	// SSEKeepAlive is the idle interval between ": keepalive" comment
	// lines on event streams, so proxies don't reap quiet connections
	// (default 15s; negative disables).
	SSEKeepAlive time.Duration
	// Retry is the per-cell retry policy handed to the default runner.
	Retry hybridtlb.RetryPolicy
	// Faults, when non-nil, injects seeded chaos into the default
	// runner — the -chaos soak mode.
	Faults *hybridtlb.FaultInjector
	// Logger receives access and job logs (default slog.Default()).
	Logger *slog.Logger
	// Runner substitutes the sweep executor (default: a fresh
	// hybridtlb.Sweeper with SweepParallelism, wired to the StateDir
	// store when one is configured).
	Runner Runner
	// ExtraMetrics, when non-nil, is invoked at the end of every
	// /metrics render to append additional Prometheus-text families —
	// the seam through which the fabric coordinator exposes its
	// membership and lease counters on the server's endpoint.
	ExtraMetrics func(w io.Writer)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SweepParallelism <= 0 {
		c.SweepParallelism = runtime.GOMAXPROCS(0)
	}
	if c.SimulateTimeout <= 0 {
		c.SimulateTimeout = 60 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = 5 * time.Minute
	}
	if c.MaxAccesses == 0 {
		c.MaxAccesses = 5_000_000
	}
	if c.MaxSweepJobs == 0 {
		c.MaxSweepJobs = 4096
	}
	if c.SSEKeepAlive == 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	// The default Runner is built in New, after the StateDir store is
	// opened, so it can be wired through the sweeper.
	return c
}

func (c Config) limits() Limits {
	lim := Limits{MaxAccesses: c.MaxAccesses, MaxSweepJobs: c.MaxSweepJobs}
	return lim
}

// Server is the HTTP subsystem: handlers, the bounded job queue, the
// job store and the metrics registry. Create with New, mount Handler,
// and on shutdown call BeginShutdown then Drain.
type Server struct {
	cfg     Config
	log     *slog.Logger
	runner  Runner
	store   *jobStore
	queue   *queue
	metrics *metrics
	mux     *http.ServeMux

	// simSem bounds synchronous simulate requests the way the queue
	// bounds sweeps; a full semaphore is backpressure, not a wait.
	simSem chan struct{}

	// tenants indexes admission state by tenant name; tenantKeys by
	// bearer key. multiTenant is true iff a keyfile was configured (the
	// maps then exclude the implicit default tenant).
	tenants     map[string]*tenantState
	tenantKeys  map[string]*tenantState
	multiTenant bool
	// drainEst feeds the adaptive Retry-After hint.
	drainEst drainEstimator

	// persistStore and journal are non-nil iff Config.StateDir is set.
	persistStore *persist.ResultStore
	journal      *persist.Journal

	draining atomic.Bool
	closing  chan struct{} // closed by BeginShutdown; ends SSE streams
}

// New assembles a server. The worker pool starts immediately; when
// Config.StateDir is set, the journal is replayed first so restored
// jobs are visible (and interrupted ones re-enqueued) before the
// server takes traffic. Only opening the state dir can fail — a
// damaged journal tail or corrupt store entries degrade instead.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		runner:  cfg.Runner,
		store:   newJobStore(cfg.MaxJobs),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		simSem:  make(chan struct{}, cfg.Workers),
		closing: make(chan struct{}),

		tenants:    make(map[string]*tenantState),
		tenantKeys: make(map[string]*tenantState),
	}
	if cfg.Tenants != nil {
		s.multiTenant = true
		for _, name := range cfg.Tenants.Names() {
			t, _ := cfg.Tenants.Get(name)
			st := newTenantState(*t)
			s.tenants[t.Name] = st
			s.tenantKeys[t.Key] = st
		}
	} else {
		// Registry-less: one implicit tenant with no limits, so the
		// single-tenant server behaves exactly as before tenancy.
		s.tenants[tenant.DefaultName] = &tenantState{name: tenant.DefaultName, weight: 1}
	}

	var replayed []persist.Record
	s.persistStore = cfg.PersistStore
	if cfg.StateDir != "" {
		if s.persistStore == nil {
			store, err := persist.OpenStore(filepath.Join(cfg.StateDir, "store"))
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			s.persistStore = store
		}
		journal, recs, err := persist.OpenJournal(filepath.Join(cfg.StateDir, "journal.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.journal = journal
		replayed = recs
		if n := journal.Dropped(); n > 0 {
			s.log.Warn("journal tail damaged; truncated to last intact record",
				"dropped_bytes", n, "replayed", journal.Replayed())
		}
	}
	if s.runner == nil {
		opts := hybridtlb.SweepOptions{
			Parallelism: cfg.SweepParallelism,
			Retry:       cfg.Retry,
			Faults:      cfg.Faults,
		}
		if s.persistStore != nil {
			opts.Store = s.persistStore
		}
		s.runner = hybridtlb.NewSweeper(opts)
	}
	s.queue = newQueue(cfg.Workers, cfg.QueueDepth, s.runJob)
	// Seed the scheduler with every known tenant's fair-share weight;
	// tenants appearing only in the journal are added lazily at weight 1.
	for name, st := range s.tenants {
		s.queue.addTenant(name, st.weight)
	}
	if len(replayed) > 0 {
		s.recover(replayed)
	}

	s.route("POST /v1/simulate", s.handleSimulate)
	s.route("POST /v1/sweeps", s.handleCreateSweep)
	s.route("GET /v1/sweeps", s.handleListSweeps)
	s.route("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.route("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.route("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		// Registered through route() so profile fetches appear in the
		// access log and request metrics; each fixed pattern is one
		// bounded label (pprof.Index serves the named sub-profiles
		// under the trailing-slash pattern itself).
		s.route("GET /debug/pprof/", pprof.Index)
		s.route("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.route("GET /debug/pprof/profile", pprof.Profile)
		s.route("GET /debug/pprof/symbol", pprof.Symbol)
		s.route("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginShutdown flips the server to draining: /readyz turns 503 (so load
// balancers stop routing here), new sweep submissions are refused, and
// open SSE streams are told to finish. Call it before http.Server.
// Shutdown so in-flight polls still complete.
func (s *Server) BeginShutdown() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.closing)
		s.log.Info("server draining: refusing new jobs")
	}
}

// Drain stops queue intake and waits for queued and running jobs to
// finish; when ctx expires first, running jobs are canceled and Drain
// returns the context's error after the workers stop. Always preceded
// by BeginShutdown (Drain calls it defensively).
func (s *Server) Drain(ctx context.Context) error {
	s.BeginShutdown()
	err := s.queue.drain(ctx)
	if err != nil {
		s.log.Warn("drain deadline expired; in-flight jobs canceled", "err", err)
	} else {
		s.log.Info("drain complete: all jobs finished")
	}
	return err
}

// route registers a handler wrapped with panic recovery, metrics and
// slog access logging, labeled by the route pattern (bounded
// cardinality).
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("handler panic", "route", pattern, "panic", fmt.Sprint(p))
				if !sw.wrote {
					writeError(w, &apiError{Status: http.StatusInternalServerError,
						Code: codeInternal, Message: "internal error"})
				}
			}
			d := time.Since(start)
			s.metrics.observeRequest(pattern, sw.status(), d)
			s.log.Info("http",
				"method", r.Method,
				"path", r.URL.Path,
				"route", pattern,
				"code", sw.status(),
				"bytes", sw.bytes,
				"dur", d.Round(time.Microsecond),
				"remote", r.RemoteAddr,
			)
		}()
		h(sw, r)
	})
}

// statusWriter captures the response code and size for logs and
// metrics, forwarding Flush so SSE streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// handleSimulate runs one (or one static-ideal family of) simulation
// synchronously, bounded by the worker count and the request timeout.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	ts, ok := s.authorize(w, r)
	if !ok {
		return
	}
	// Rate-limit before reading the body: shedding should cost the
	// server as close to nothing as possible.
	if !s.admitRate(w, ts) {
		return
	}
	var req SimulateRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if apiErr := req.validate(s.cfg.limits()); apiErr != nil {
		writeError(w, apiErr)
		return
	}

	// The tenant's in-flight quota spans sync and async work alike: a
	// tenant at quota cannot sidestep it by switching endpoints.
	if !ts.tryAcquire() {
		s.shed(w, ts, shedQuota, s.retryAfterHint(s.queue.tenantDepth(ts.name)),
			fmt.Sprintf("tenant %q is at its in-flight quota (%d)", ts.name, ts.maxInFlight))
		return
	}
	defer ts.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SimulateTimeout)
	defer cancel()

	// Admission control: at most Workers synchronous simulations at
	// once; an overloaded server answers 429 instead of piling up
	// goroutines.
	select {
	case s.simSem <- struct{}{}:
		defer func() { <-s.simSem }()
	default:
		s.shed(w, ts, shedCapacity, s.retryAfterHint(s.queue.depth()), "all workers busy")
		return
	}

	var res hybridtlb.SimulationResult
	var err error
	if req.StaticIdeal {
		res, err = hybridtlb.SimulateStaticIdealContext(ctx, req.toConfig())
	} else {
		// Route through the shared sweeper: repeated configs are served
		// from the server-lifetime result cache.
		var out []hybridtlb.SweepResult
		out, err = s.runner.Run(ctx, []hybridtlb.SimulationConfig{req.toConfig()}, nil)
		if err == nil {
			res = out[0].SimulationResult
		}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, &apiError{Status: http.StatusGatewayTimeout, Code: codeTimeout,
			Message: fmt.Sprintf("simulation exceeded the %v request budget", s.cfg.SimulateTimeout)})
		return
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the access log only.
		writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeTimeout,
			Message: "request canceled"})
		return
	case err != nil:
		writeError(w, &apiError{Status: http.StatusInternalServerError, Code: codeInternal,
			Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toResultJSON(res))
}

// handleCreateSweep validates and expands the grid, then enqueues it;
// the response is 202 + job ID, 429 when the queue is full, 503 when
// draining.
func (s *Server) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeShuttingDown,
			Message: "server is draining; not accepting new sweeps"})
		return
	}
	ts, ok := s.authorize(w, r)
	if !ok {
		return
	}
	if !s.admitRate(w, ts) {
		return
	}
	var req SweepRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	prio, ok := ParsePriority(req.Priority)
	if !ok {
		writeError(w, invalidField("priority",
			"unknown priority %q (use \"interactive\" or \"batch\")", req.Priority))
		return
	}
	cfgs, echoes, apiErr := req.expand(s.cfg.limits())
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}

	// The job holds one in-flight slot from here until its terminal
	// transition in runJob (or until a failed submit below).
	if !ts.tryAcquire() {
		s.shed(w, ts, shedQuota, s.retryAfterHint(s.queue.tenantDepth(ts.name)),
			fmt.Sprintf("tenant %q is at its in-flight quota (%d)", ts.name, ts.maxInFlight))
		return
	}

	j := newJob(cfgs, echoes, ts.name, prio)
	// Journal acceptance before the job can reach a worker, so a crash
	// at any later point leaves a request we can re-expand on restart.
	s.journalAccepted(j, &req)
	switch err := s.queue.submit(j); {
	case errors.Is(err, errQueueFull):
		ts.release()
		s.journalState(j.id, "rejected", "")
		s.shed(w, ts, shedQueue, s.retryAfterHint(s.queue.tenantDepth(ts.name)),
			fmt.Sprintf("tenant %q sweep queue full (%d waiting)", ts.name, s.queue.tenantDepth(ts.name)))
		return
	case errors.Is(err, errQueueClosed):
		ts.release()
		s.journalState(j.id, "rejected", "")
		writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeShuttingDown,
			Message: "server is draining; not accepting new sweeps"})
		return
	case err != nil:
		ts.release()
		s.journalState(j.id, "rejected", "")
		writeError(w, &apiError{Status: http.StatusInternalServerError, Code: codeInternal, Message: err.Error()})
		return
	}
	s.noteEvictions(s.store.add(j))
	s.log.Info("sweep accepted", "job", j.id, "tenant", ts.name,
		"priority", prio.String(), "cells", len(cfgs), "queued", s.queue.depth())
	writeJSON(w, http.StatusAccepted, struct {
		ID        string `json:"id"`
		Total     int    `json:"total"`
		StatusURL string `json:"status_url"`
		EventsURL string `json:"events_url"`
	}{j.id, len(cfgs), "/v1/sweeps/" + j.id, "/v1/sweeps/" + j.id + "/events"})
}

// journalAccepted, journalState and noteEvictions append to the job
// journal when one is configured; append failures are logged and
// tolerated — durability degrades, service does not.
func (s *Server) journalAccepted(j *job, req *SweepRequest) {
	if s.journal == nil {
		return
	}
	raw, err := json.Marshal(req)
	if err == nil {
		err = s.journal.Append(persist.Record{
			Type: persist.RecordAccepted, Job: j.id, Time: time.Now().UTC(),
			Cells: len(j.configs), Request: raw,
			Tenant: j.tenant, Priority: j.priority.String(),
		})
	}
	if err != nil {
		s.log.Warn("journal append failed", "job", j.id, "err", err)
	}
}

func (s *Server) journalState(id, state, errMsg string) {
	if s.journal == nil {
		return
	}
	err := s.journal.Append(persist.Record{
		Type: persist.RecordState, Job: id, Time: time.Now().UTC(),
		State: state, Error: errMsg,
	})
	if err != nil {
		s.log.Warn("journal append failed", "job", id, "err", err)
	}
}

func (s *Server) noteEvictions(ids []string) {
	for _, id := range ids {
		s.log.Info("sweep evicted by retention cap", "job", id)
		if s.journal == nil {
			continue
		}
		err := s.journal.Append(persist.Record{
			Type: persist.RecordEvicted, Job: id, Time: time.Now().UTC(),
		})
		if err != nil {
			s.log.Warn("journal append failed", "job", id, "err", err)
		}
	}
}

// runJob executes one queued sweep on a worker goroutine.
func (s *Server) runJob(base context.Context, j *job) {
	// The in-flight slot acquired at admission is held until here —
	// terminal transition — so MaxInFlight bounds queued+running work.
	defer s.releaseJob(j)
	ctx, cancel := context.WithTimeout(base, s.cfg.JobTimeout)
	defer cancel()
	if !j.start(cancel) {
		s.journalState(j.id, string(JobCanceled), "")
		s.metrics.observeJob(JobCanceled, j.tenant)
		s.log.Info("sweep canceled before start", "job", j.id)
		return
	}
	s.journalState(j.id, string(JobRunning), "")
	s.metrics.workersBusy.Add(1)
	defer s.metrics.workersBusy.Add(-1)

	start := time.Now()
	// Attach an epoch probe to every cell the request did not claim for
	// itself: the job's epoch counter then ticks at every simulation
	// epoch boundary, feeding the per-job gauge and job JSON. Probes go
	// on a copy so j.configs (shared with snapshots) stays untouched.
	cfgs := make([]hybridtlb.SimulationConfig, len(j.configs))
	copy(cfgs, j.configs)
	probe := func(hybridtlb.EpochSample) { j.epochs.Add(1) }
	for i := range cfgs {
		if cfgs[i].Probe == nil {
			cfgs[i].Probe = probe
		}
	}
	results, err := s.runner.Run(ctx, cfgs, func(done, _ int) {
		j.setProgress(done)
	})
	state := j.finish(results, err)
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	s.journalState(j.id, string(state), errMsg)
	s.noteEvictions(s.store.enforceCap())
	s.metrics.observeJob(state, j.tenant)
	s.drainEst.observe(time.Since(start))
	s.pruneStore()

	stats := s.runner.Stats()
	s.log.Info("sweep finished",
		"job", j.id,
		"state", string(state),
		"cells", len(j.configs),
		"dur", time.Since(start).Round(time.Millisecond),
		"epochs", j.epochs.Load(),
		"cache_hits", stats.Hits,
		"cache_misses", stats.Misses,
	)
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	ts, ok := s.authorize(w, r)
	if !ok {
		return
	}
	all := s.store.list()
	sweeps := make([]JobJSON, 0, len(all))
	for _, j := range all {
		// Tenants see only their own jobs; the registry-less server has
		// one tenant, so everyone sees everything as before.
		if !s.multiTenant || j.Tenant == ts.name {
			sweeps = append(sweeps, j)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Sweeps []JobJSON `json:"sweeps"`
	}{sweeps})
}

// getJob resolves {id} to a job the authenticated tenant owns. Another
// tenant's job answers 404, not 403 — job IDs must not be probeable.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	ts, ok := s.authorize(w, r)
	if !ok {
		return nil, false
	}
	id := r.PathValue("id")
	j, found := s.store.get(id)
	if found && s.multiTenant && j.tenant != ts.name {
		j, found = nil, false
	}
	if !found {
		if s.store.isEvicted(id) {
			writeError(w, &apiError{Status: http.StatusGone, Code: codeGone,
				Message: fmt.Sprintf("sweep %q was evicted by the retention cap (-max-jobs)", id)})
			return nil, false
		}
		writeError(w, &apiError{Status: http.StatusNotFound, Code: codeNotFound,
			Message: fmt.Sprintf("no sweep %q", id)})
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(true))
}

func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	if !j.requestCancel() {
		writeError(w, &apiError{Status: http.StatusConflict, Code: codeConflict,
			Message: fmt.Sprintf("sweep %s already %s", j.id, j.snapshot(false).State)})
		return
	}
	s.log.Info("sweep cancel requested", "job", j.id)
	writeJSON(w, http.StatusAccepted, j.progress())
}

// handleSweepEvents streams job progress as Server-Sent Events: a
// "progress" event per update and a final "done" event carrying the
// terminal snapshot (without the result payload — fetch that from the
// status URL). The stream ends when the job finishes, the client
// disconnects, or the server drains.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, &apiError{Status: http.StatusInternalServerError, Code: codeInternal,
			Message: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	subID, wake := j.subscribe()
	defer j.unsubscribe(subID)

	// Keepalive comments on an idle ticker stop proxies and LBs from
	// reaping streams that are quiet because a long sweep has not
	// finished a cell lately.
	var keepalive <-chan time.Time
	if s.cfg.SSEKeepAlive > 0 {
		ticker := time.NewTicker(s.cfg.SSEKeepAlive)
		defer ticker.Stop()
		keepalive = ticker.C
	}

	for {
		p := j.progress()
		if p.State.terminal() {
			writeSSE(w, "done", j.snapshot(false))
			flusher.Flush()
			return
		}
		writeSSE(w, "progress", p)
		flusher.Flush()
	wait:
		for {
			select {
			case <-wake:
				break wait
			case <-keepalive:
				io.WriteString(w, ": keepalive\n\n") //nolint:errcheck // disconnect surfaces via r.Context()
				flusher.Flush()
			case <-r.Context().Done():
				return
			case <-s.closing:
				writeSSE(w, "closing", p)
				flusher.Flush()
				return
			}
		}
	}
}

// writeSSE emits one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, event string, v any) {
	fmt.Fprintf(w, "event: %s\n", event)
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"encoding failed"}`)
	}
	fmt.Fprintf(w, "data: %s\n\n", data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := s.runner.Stats()
	g := gauges{
		queueDepth:    s.queue.depth(),
		queueCapacity: s.queue.capacity(),
		workers:       s.cfg.Workers,
		workersBusy:   s.metrics.workersBusy.Load(),
		jobStates:     s.store.countByState(),
		cacheJobs:     stats.Jobs,
		cacheHits:     stats.Hits,
		cacheMisses:   stats.Misses,
		retries:       stats.Retries,
		evictions:     s.store.evictionCount(),
		jobEpochs:     s.store.runningEpochs(),
		ready:         !s.draining.Load(),

		tenantQueue:    s.queue.tenantDepths(),
		tenantInflight: make(map[string]int64, len(s.tenants)),
		retryHint:      s.retryAfterHint(s.queue.depth()).Seconds(),
	}
	for name, ts := range s.tenants {
		g.tenantInflight[name] = ts.inflight.Load()
	}
	if s.persistStore != nil {
		g.store = s.persistStore.Stats()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, g)
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(w)
	}
}

// pruneStore enforces Config.StoreMaxBytes after a job finishes. A
// failed prune is logged and tolerated: an oversized cache degrades
// disk usage, not service.
func (s *Server) pruneStore() {
	if s.persistStore == nil || s.cfg.StoreMaxBytes <= 0 {
		return
	}
	n, err := s.persistStore.Prune(s.cfg.StoreMaxBytes)
	if err != nil {
		s.log.Warn("store prune failed", "err", err)
	} else if n > 0 {
		s.log.Info("store pruned to size cap", "removed", n, "max_bytes", s.cfg.StoreMaxBytes)
	}
}

// Close releases durable-state resources (the journal file); call it
// after Drain. A server without a StateDir has nothing to close.
func (s *Server) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}
