package server

// Fair-share job scheduling. The pre-tenancy server drained one FIFO:
// whoever submitted fastest owned the worker pool, and a single hostile
// caller could starve everyone else — the software analogue of the
// failure the paper's per-process HWval registers exist to prevent (one
// process's contiguity state never pollutes another's). The scheduler
// here gives every tenant its own bounded queue and drains them with
// deficit round robin weighted by the keyfile's fair-share weights,
// costed in sweep cells so a tenant cannot buy priority by packing its
// work into bigger jobs.
//
// The structure is deliberately pure — no clocks, no goroutines, no
// channels — so the fairness invariants are provable with plain
// sequential tests (the clock-free pattern internal/fabric established
// for lease timing). The queue wrapper owns all locking.

// Priority orders jobs within one tenant's queue. Two levels only:
// interactive work (small exploratory sweeps a human is waiting on)
// overtakes batch work of the same tenant. Priorities are deliberately
// per-tenant, not global — a global priority lane would let one tenant
// starve another by marking everything urgent, which is exactly the
// isolation failure tenancy exists to prevent.
type Priority int

const (
	// PriorityInteractive jumps the tenant's own batch backlog.
	PriorityInteractive Priority = iota
	// PriorityBatch is the default lane.
	PriorityBatch
	numPriorities
)

// ParsePriority maps the wire spelling to a Priority; empty means
// batch.
func ParsePriority(s string) (Priority, bool) {
	switch s {
	case "interactive":
		return PriorityInteractive, true
	case "", "batch":
		return PriorityBatch, true
	}
	return PriorityBatch, false
}

// String returns the wire spelling.
func (p Priority) String() string {
	if p == PriorityInteractive {
		return "interactive"
	}
	return "batch"
}

// schedTenant is one tenant's pending work: a FIFO per priority plus
// the tenant's deficit-round-robin bookkeeping.
type schedTenant struct {
	name    string
	weight  int
	queues  [numPriorities][]*job
	depth   int
	deficit int
	// charged marks that the tenant already received its quantum for
	// the current ring visit, so serving several jobs in one visit does
	// not re-credit it.
	charged bool
}

func (t *schedTenant) empty() bool { return t.depth == 0 }

func (t *schedTenant) head() *job {
	for p := range t.queues {
		if len(t.queues[p]) > 0 {
			return t.queues[p][0]
		}
	}
	return nil
}

func (t *schedTenant) popHead() *job {
	for p := range t.queues {
		if len(t.queues[p]) > 0 {
			j := t.queues[p][0]
			t.queues[p] = t.queues[p][1:]
			t.depth--
			return j
		}
	}
	return nil
}

// scheduler is the weighted fair queue over tenants. Not safe for
// concurrent use; the queue serializes access.
type scheduler struct {
	tenants map[string]*schedTenant
	// ring holds the names of tenants with queued work, visited round
	// robin; cursor indexes the tenant currently being served.
	ring   []string
	cursor int
	depth  int
	// perTenantDepth bounds each tenant's queue; push fails with
	// errQueueFull past it. <= 0: unbounded.
	perTenantDepth int
}

func newScheduler(perTenantDepth int) *scheduler {
	return &scheduler{
		tenants:        make(map[string]*schedTenant),
		perTenantDepth: perTenantDepth,
	}
}

// jobCost is the fairness unit: sweep cells, not jobs, so a tenant
// submitting 1000-cell sweeps competes on equal terms with one
// submitting single cells.
func jobCost(j *job) int {
	if n := len(j.configs); n > 1 {
		return n
	}
	return 1
}

// addTenant registers (or re-weights) a tenant. Idempotent; called
// lazily on first submission so registry-less servers get the implicit
// default tenant through the same path.
func (s *scheduler) addTenant(name string, weight int) {
	if weight <= 0 {
		weight = 1
	}
	if t, ok := s.tenants[name]; ok {
		t.weight = weight
		return
	}
	s.tenants[name] = &schedTenant{name: name, weight: weight}
}

// push enqueues a job on its tenant's priority FIFO. The tenant must
// have been added first.
func (s *scheduler) push(j *job) error {
	t := s.tenants[j.tenant]
	if t == nil {
		t = &schedTenant{name: j.tenant, weight: 1}
		s.tenants[j.tenant] = t
	}
	if s.perTenantDepth > 0 && t.depth >= s.perTenantDepth {
		return errQueueFull
	}
	if t.empty() {
		s.ring = append(s.ring, t.name)
	}
	t.queues[j.priority] = append(t.queues[j.priority], j)
	t.depth++
	s.depth++
	return nil
}

// pop returns the next job under deficit round robin, or nil when no
// work is queued. Each ring visit credits the tenant its weight in
// cells; a job dispatches when the tenant's accumulated deficit covers
// its cost, so over any contended window tenants drain cells in
// weight proportion regardless of job sizes, and a tenant's backlog
// can delay another tenant's queued job only by the weight share —
// never by the backlog's length.
func (s *scheduler) pop() *job {
	if s.depth == 0 {
		return nil
	}
	for {
		if s.cursor >= len(s.ring) {
			s.cursor = 0
		}
		t := s.tenants[s.ring[s.cursor]]
		if t.empty() {
			// Lazily drop drained tenants from the ring; an empty
			// tenant forfeits its deficit (classic DRR, so idle tenants
			// cannot bank credit and later burst past their share).
			t.deficit = 0
			t.charged = false
			s.ring = append(s.ring[:s.cursor], s.ring[s.cursor+1:]...)
			continue
		}
		if !t.charged {
			t.deficit += t.weight
			t.charged = true
		}
		head := t.head()
		if c := jobCost(head); c <= t.deficit {
			j := t.popHead()
			t.deficit -= c
			s.depth--
			if t.empty() {
				t.deficit = 0
				t.charged = false
				s.ring = append(s.ring[:s.cursor], s.ring[s.cursor+1:]...)
			}
			return j
		}
		// Not enough credit yet: move to the next tenant; the quantum
		// accrues again on the next visit.
		t.charged = false
		s.cursor++
	}
}

// remove deletes a specific job from its tenant's queue (used when a
// queued job is being discarded without running). Reports whether the
// job was found.
func (s *scheduler) remove(j *job) bool {
	t := s.tenants[j.tenant]
	if t == nil {
		return false
	}
	for p := range t.queues {
		for i, q := range t.queues[p] {
			if q == j {
				t.queues[p] = append(t.queues[p][:i], t.queues[p][i+1:]...)
				t.depth--
				s.depth--
				return true
			}
		}
	}
	return false
}

// len returns the total queued jobs across tenants.
func (s *scheduler) len() int { return s.depth }

// tenantDepth returns one tenant's queued jobs (for admission messages
// and metrics).
func (s *scheduler) tenantDepth(name string) int {
	if t, ok := s.tenants[name]; ok {
		return t.depth
	}
	return 0
}

// depths snapshots every known tenant's queue depth for the metrics
// scrape (bounded by the keyfile plus the implicit default tenant).
func (s *scheduler) depths() map[string]int {
	out := make(map[string]int, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = t.depth
	}
	return out
}
