package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridtlb"
	"hybridtlb/internal/persist"
)

// fetchJobRaw fetches a job's full status payload with per-cell result
// objects kept as raw JSON, for byte-level comparisons.
type rawJob struct {
	ID      string `json:"id"`
	State   JobState
	Results []struct {
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	} `json:"results"`
}

func fetchJobRaw(t *testing.T, ts *httptest.Server, statusURL string) rawJob {
	t.Helper()
	resp, err := http.Get(ts.URL + statusURL)
	if err != nil {
		t.Fatalf("GET %s: %v", statusURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", statusURL, resp.StatusCode)
	}
	return decodeBody[rawJob](t, resp)
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(b)
}

// corruptFile flips one byte in the middle of a file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// appendFile appends raw bytes (no trailing newline — a torn write).
func appendFile(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
}

// metricValue extracts one un-labeled counter/gauge from Prometheus
// text exposition.
func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("metric %s not found", name)
	return ""
}

// TestRestartRestoresDoneJob runs a real sweep with a state dir, tears
// the server down, builds a fresh one over the same dir, and checks the
// job is still there — terminal, byte-identical per-cell results —
// without any cell being re-simulated (every cell is a store hit).
func TestRestartRestoresDoneJob(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newTestServer(t, Config{Workers: 1, StateDir: dir})
	acc := submitSweep(t, ts1, tinySweep)
	if got := waitTerminal(t, ts1, acc.StatusURL); got.State != JobDone {
		t.Fatalf("first run state = %s, want done", got.State)
	}
	before := fetchJobRaw(t, ts1, acc.StatusURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Drain(ctx)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1, StateDir: dir})
	after := fetchJobRaw(t, ts2, acc.StatusURL)
	if after.State != JobDone {
		t.Fatalf("restored state = %s, want done", after.State)
	}
	if len(after.Results) != len(before.Results) {
		t.Fatalf("restored %d cells, want %d", len(after.Results), len(before.Results))
	}
	for i := range before.Results {
		if string(before.Results[i].Result) != string(after.Results[i].Result) {
			t.Errorf("cell %d result diverged across restart:\n before: %s\n after:  %s",
				i, before.Results[i].Result, after.Results[i].Result)
		}
	}

	m := metricsBody(t, ts2)
	if got := metricValue(t, m, "tlbserver_jobs_recovered_total"); got != "1" {
		t.Errorf("jobs_recovered_total = %s, want 1", got)
	}
	if got := metricValue(t, m, "tlbserver_store_hits_total"); got == "0" {
		t.Error("store_hits_total = 0; restoration should have read the durable store")
	}
}

// TestRestartResumesInterruptedJob hand-writes a journal describing a
// job that was accepted and running when the process died — no terminal
// record — and checks a new server re-enqueues it and runs it to done.
func TestRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	if _, err := persist.OpenStore(filepath.Join(dir, "store")); err != nil {
		t.Fatal(err)
	}
	jn, _, err := persist.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(tinySweep)
	now := time.Now().UTC()
	if err := jn.Append(persist.Record{
		Type: persist.RecordAccepted, Job: "swp_interrupted", Time: now, Cells: 2, Request: req,
	}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(persist.Record{
		Type: persist.RecordState, Job: "swp_interrupted", Time: now, State: string(JobRunning),
	}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1, StateDir: dir})
	got := waitTerminal(t, ts, "/v1/sweeps/swp_interrupted")
	if got.State != JobDone {
		t.Fatalf("resumed job state = %s, want done", got.State)
	}
	if got.Total != 2 || got.Done != 2 {
		t.Fatalf("resumed job progress = %d/%d, want 2/2", got.Done, got.Total)
	}
	m := metricsBody(t, ts)
	if got := metricValue(t, m, "tlbserver_jobs_resumed_total"); got != "1" {
		t.Errorf("jobs_resumed_total = %s, want 1", got)
	}
}

// TestRestartTerminalWithoutResults restores failed/canceled jobs with
// their journaled error but no per-cell payload.
func TestRestartTerminalWithoutResults(t *testing.T) {
	dir := t.TempDir()
	if _, err := persist.OpenStore(filepath.Join(dir, "store")); err != nil {
		t.Fatal(err)
	}
	jn, _, err := persist.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	recs := []persist.Record{
		{Type: persist.RecordAccepted, Job: "swp_failed", Time: now, Cells: 2, Request: json.RawMessage(tinySweep)},
		{Type: persist.RecordState, Job: "swp_failed", Time: now, State: string(JobRunning)},
		{Type: persist.RecordState, Job: "swp_failed", Time: now, State: string(JobFailed), Error: "boom"},
	}
	for _, r := range recs {
		if err := jn.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1, Runner: &fakeRunner{}, StateDir: dir})
	resp, err := http.Get(ts.URL + "/v1/sweeps/swp_failed")
	if err != nil {
		t.Fatal(err)
	}
	j := decodeBody[JobJSON](t, resp)
	if j.State != JobFailed || j.Error != "boom" {
		t.Fatalf("restored job = %s/%q, want failed/boom", j.State, j.Error)
	}
}

// TestCorruptStateDegradesGracefully corrupts both durable artifacts —
// a flipped byte in a store entry, garbage appended to the journal —
// and checks the server still starts and still answers.
func TestCorruptStateDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, StateDir: dir})
	acc := submitSweep(t, ts1, tinySweep)
	waitTerminal(t, ts1, acc.StatusURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Drain(ctx)
	ts1.Close()
	s1.Close()

	// Corrupt every store entry and tear the journal's tail.
	entries, err := filepath.Glob(filepath.Join(dir, "store", "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("expected store entries, got %v (err %v)", entries, err)
	}
	for _, e := range entries {
		corruptFile(t, e)
	}
	appendFile(t, filepath.Join(dir, "journal.jsonl"), `{"v":1,"t":"state","job":"swp_tor`)

	_, ts2 := newTestServer(t, Config{Workers: 1, StateDir: dir})
	// The job recovers as done: the store entries are quarantined, so the
	// cells re-simulate — slower, but correct.
	got := waitTerminal(t, ts2, acc.StatusURL)
	if got.State != JobDone {
		t.Fatalf("recovered state with corrupt store = %s, want done", got.State)
	}
	m := metricsBody(t, ts2)
	if got := metricValue(t, m, "tlbserver_store_corruptions_total"); got == "0" {
		t.Error("store_corruptions_total = 0, want > 0")
	}
}

// TestEvictionAnswers410 caps retention at one job and checks the
// evicted ID answers 410 Gone (not 404) and is counted.
func TestEvictionAnswers410(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1, Runner: &fakeRunner{}})
	first := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	waitTerminal(t, ts, first.StatusURL)
	second := submitSweep(t, ts, `{"schemes":["base"],"workloads":["gups"],"scenarios":["demand"]}`)
	waitTerminal(t, ts, second.StatusURL)

	resp, err := http.Get(ts.URL + first.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET evicted job = %d, want 410", resp.StatusCode)
	}
	env := decodeBody[errEnvelope](t, resp)
	if env.Error.Code != codeGone {
		t.Errorf("error code = %q, want %q", env.Error.Code, codeGone)
	}
	// Unknown IDs still answer 404, not 410.
	resp, err = http.Get(ts.URL + "/v1/sweeps/swp_never_existed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", resp.StatusCode)
	}
	m := metricsBody(t, ts)
	if got := metricValue(t, m, "tlbserver_jobs_evicted_total"); got != "1" {
		t.Errorf("jobs_evicted_total = %s, want 1", got)
	}
}

// TestEvictionSkipsActiveJobs checks the cap never evicts a queued or
// running job, even when everything over the cap is active.
func TestEvictionSkipsActiveJobs(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxJobs: 1, Runner: fr})
	running := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	<-fr.started
	queued := submitSweep(t, ts, `{"schemes":["base"],"workloads":["gups"],"scenarios":["demand"]}`)

	// Two active jobs, cap of one: neither may disappear.
	for _, u := range []string{running.StatusURL, queued.StatusURL} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (active jobs must not be evicted)", u, resp.StatusCode)
		}
	}
	close(fr.block)
	waitTerminal(t, ts, queued.StatusURL)
}

// TestChaosSoak drives the real sweeper through seeded fault injection
// and checks the retry ladder converges every cell to a clean result.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Retry:   hybridtlb.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 11},
		Faults:  &hybridtlb.FaultInjector{Seed: 11, TransientRate: 0.4},
	})
	acc := submitSweep(t, ts, tinySweep)
	got := waitTerminal(t, ts, acc.StatusURL)
	if got.State != JobDone {
		t.Fatalf("chaos sweep state = %s (err %q), want done", got.State, got.Error)
	}
	m := metricsBody(t, ts)
	if got := metricValue(t, m, "tlbserver_sweep_retries_total"); got == "0" {
		t.Error("sweep_retries_total = 0; fault injection should have forced retries")
	}
}

// TestSubmitVsDrainRace hammers submissions while the server drains;
// run under -race this shakes out queue/journal synchronization. Every
// accepted job must still reach a terminal state.
func TestSubmitVsDrainRace(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Runner: &fakeRunner{}, StateDir: t.TempDir()})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []string
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
					strings.NewReader(`{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`))
				if err != nil {
					return
				}
				if resp.StatusCode == http.StatusAccepted {
					acc := decodeBody[acceptedJSON](t, resp)
					mu.Lock()
					accepted = append(accepted, acc.StatusURL)
					mu.Unlock()
				} else {
					resp.Body.Close()
				}
			}
		}()
	}
	// Let some submissions land, then drain concurrently with the rest.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for _, u := range accepted {
		if j := waitTerminal(t, ts, u); !j.State.terminal() {
			t.Errorf("job at %s not terminal after drain", u)
		}
	}
}

// TestSSEKeepalive holds a job open past several keepalive intervals
// and checks the event stream carries ": keepalive" comment lines while
// idle, then still delivers the terminal event.
func TestSSEKeepalive(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: fr, SSEKeepAlive: 20 * time.Millisecond})
	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	<-fr.started

	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	keepalives := 0
	sawDone := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		switch line := scanner.Text(); {
		case line == ": keepalive":
			keepalives++
			if keepalives == 3 {
				close(fr.block) // enough idle traffic observed; let the job finish
			}
		case line == "event: done":
			sawDone = true
		}
		if sawDone {
			break
		}
	}
	if keepalives < 3 {
		t.Errorf("saw %d keepalive comments, want >= 3", keepalives)
	}
	if !sawDone {
		t.Error("stream ended without a done event")
	}
}

// TestSSESubscriberLeak disconnects an event stream mid-job and checks
// the job's subscriber table empties — a leaked entry would pin the
// wake channel for the job's lifetime.
func TestSSESubscriberLeak(t *testing.T) {
	fr := &fakeRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: fr})
	acc := submitSweep(t, ts, `{"schemes":["anchor"],"workloads":["gups"],"scenarios":["demand"]}`)
	<-fr.started

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+acc.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one event so the handler is certainly subscribed, then drop
	// the connection.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	j, ok := s.store.get(acc.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := len(j.subs)
		j.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still registered after disconnect", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(fr.block)
	waitTerminal(t, ts, acc.StatusURL)
}

// TestDrainTwiceIdempotent drains an idle server twice; the second
// call must succeed without blocking or panicking on a closed channel.
func TestDrainTwiceIdempotent(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, Runner: &fakeRunner{}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
