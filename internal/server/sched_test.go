package server

import (
	"fmt"
	"testing"

	"hybridtlb"
)

// Scheduler invariants are proven clock-free, in the internal/fabric
// style: the scheduler is a pure structure, so fairness claims reduce
// to assertions over pop() sequences — no sleeps, no goroutines, no
// wall time.

// schedJob builds a queued job for tenant with the given cell cost and
// priority.
func schedJob(tenant string, cells int, prio Priority) *job {
	cfgs := make([]hybridtlb.SimulationConfig, cells)
	return &job{
		id:       fmt.Sprintf("%s-%d", tenant, cells),
		configs:  cfgs,
		tenant:   tenant,
		priority: prio,
		state:    JobQueued,
	}
}

func popTenants(s *scheduler, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		j := s.pop()
		if j == nil {
			break
		}
		out = append(out, j.tenant)
	}
	return out
}

func countByTenant(seq []string) map[string]int {
	out := make(map[string]int)
	for _, t := range seq {
		out[t]++
	}
	return out
}

// TestFairShareSaturatingTenantCannotStarve is the headline isolation
// invariant: tenant A saturates its queue with unit jobs; tenant B then
// enqueues a single job of cost c. Under equal weights, B's job must
// dispatch after at most c more grants to A — the deficit share —
// regardless of how deep A's backlog is.
func TestFairShareSaturatingTenantCannotStarve(t *testing.T) {
	for _, c := range []int{1, 4, 16} {
		s := newScheduler(0)
		s.addTenant("a", 1)
		s.addTenant("b", 1)
		for i := 0; i < 500; i++ {
			if err := s.push(schedJob("a", 1, PriorityBatch)); err != nil {
				t.Fatal(err)
			}
		}
		// A's backlog is already draining before B shows up.
		for i := 0; i < 7; i++ {
			s.pop()
		}
		if err := s.push(schedJob("b", c, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
		aGrantsBeforeB := 0
		for {
			j := s.pop()
			if j == nil {
				t.Fatalf("cost %d: scheduler drained without serving b", c)
			}
			if j.tenant == "b" {
				break
			}
			aGrantsBeforeB++
		}
		// Each ring pass grants A weight(=1) cell and credits B one
		// deficit point; B's cost-c job needs c passes, so A can slip
		// in at most c unit jobs (±1 for the pass in progress).
		if aGrantsBeforeB > c+1 {
			t.Fatalf("cost %d: saturating tenant ran %d jobs before b's single job; weight share allows at most %d",
				c, aGrantsBeforeB, c+1)
		}
	}
}

// TestFairShareWeightProportion: with both tenants saturating unit
// jobs, grants converge to the exact weight ratio.
func TestFairShareWeightProportion(t *testing.T) {
	s := newScheduler(0)
	s.addTenant("light", 3)
	s.addTenant("heavy", 1)
	for i := 0; i < 200; i++ {
		if err := s.push(schedJob("light", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
		if err := s.push(schedJob("heavy", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	got := countByTenant(popTenants(s, 200))
	if got["light"] != 150 || got["heavy"] != 50 {
		t.Fatalf("200 grants split %v; want light=150 heavy=50 (3:1 weights)", got)
	}
}

// TestFairShareCostsInCells: fairness is costed in sweep cells, not
// jobs — a tenant submitting 8-cell sweeps gets one grant for every
// eight unit grants of an equal-weight tenant.
func TestFairShareCostsInCells(t *testing.T) {
	s := newScheduler(0)
	s.addTenant("bulk", 1)
	s.addTenant("fine", 1)
	for i := 0; i < 40; i++ {
		if err := s.push(schedJob("bulk", 8, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 320; i++ {
		if err := s.push(schedJob("fine", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	seq := popTenants(s, 90)
	got := countByTenant(seq)
	// 90 grants ≈ 10 bulk (80 cells) + 80 fine (80 cells).
	if got["bulk"] < 9 || got["bulk"] > 11 {
		t.Fatalf("bulk got %d of 90 grants (%v); cell-costed fairness expects ~10", got["bulk"], got)
	}
}

// TestFairSharePriorityWithinTenant: interactive jobs overtake the
// same tenant's batch backlog but never another tenant's share.
func TestFairSharePriorityWithinTenant(t *testing.T) {
	s := newScheduler(0)
	s.addTenant("a", 1)
	s.addTenant("b", 1)
	for i := 0; i < 10; i++ {
		if err := s.push(schedJob("a", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
		if err := s.push(schedJob("b", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	urgent := schedJob("a", 1, PriorityInteractive)
	if err := s.push(urgent); err != nil {
		t.Fatal(err)
	}

	var aJobs []*job
	bSeen := 0
	for {
		j := s.pop()
		if j == nil {
			break
		}
		if j.tenant == "a" {
			aJobs = append(aJobs, j)
		} else {
			bSeen++
		}
	}
	if len(aJobs) == 0 || aJobs[0] != urgent {
		t.Fatal("interactive job did not overtake the tenant's batch backlog")
	}
	if bSeen != 10 {
		t.Fatalf("tenant b lost grants to a's interactive job: served %d of 10", bSeen)
	}
}

// TestSchedulerPerTenantBound: the depth bound is per tenant; one
// tenant filling its queue does not consume another's room.
func TestSchedulerPerTenantBound(t *testing.T) {
	s := newScheduler(3)
	s.addTenant("a", 1)
	s.addTenant("b", 1)
	for i := 0; i < 3; i++ {
		if err := s.push(schedJob("a", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.push(schedJob("a", 1, PriorityBatch)); err != errQueueFull {
		t.Fatalf("4th push for a = %v, want errQueueFull", err)
	}
	if err := s.push(schedJob("b", 1, PriorityBatch)); err != nil {
		t.Fatalf("b's first push refused while a is full: %v", err)
	}
	if s.tenantDepth("a") != 3 || s.tenantDepth("b") != 1 || s.len() != 4 {
		t.Fatalf("depths a=%d b=%d total=%d", s.tenantDepth("a"), s.tenantDepth("b"), s.len())
	}
}

// TestSchedulerIdleTenantBanksNoCredit: classic DRR — deficit resets
// when a tenant drains, so an idle tenant cannot save up credit and
// later burst past its weight share.
func TestSchedulerIdleTenantBanksNoCredit(t *testing.T) {
	s := newScheduler(0)
	s.addTenant("a", 1)
	s.addTenant("b", 1)
	if err := s.push(schedJob("b", 1, PriorityBatch)); err != nil {
		t.Fatal(err)
	}
	if j := s.pop(); j == nil || j.tenant != "b" {
		t.Fatal("lone job should dispatch immediately")
	}
	// b drained; many scheduler rounds pass serving a.
	for i := 0; i < 50; i++ {
		if err := s.push(schedJob("a", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	popTenants(s, 50)
	// b returns with a large job: it must wait its share, not burst.
	if err := s.push(schedJob("b", 4, PriorityBatch)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.push(schedJob("a", 1, PriorityBatch)); err != nil {
			t.Fatal(err)
		}
	}
	seq := popTenants(s, 5)
	for _, tn := range seq[:3] {
		if tn == "b" {
			t.Fatalf("idle tenant banked credit: grant sequence %v dispatched b's 4-cell job before 4 passes", seq)
		}
	}
}

// TestSchedulerRemove drops a queued job without dispatching it.
func TestSchedulerRemove(t *testing.T) {
	s := newScheduler(0)
	s.addTenant("a", 1)
	j1 := schedJob("a", 1, PriorityBatch)
	j2 := schedJob("a", 1, PriorityBatch)
	if err := s.push(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.push(j2); err != nil {
		t.Fatal(err)
	}
	if !s.remove(j1) {
		t.Fatal("remove(j1) = false")
	}
	if s.remove(j1) {
		t.Fatal("second remove(j1) = true")
	}
	if got := s.pop(); got != j2 {
		t.Fatalf("pop = %v, want j2", got)
	}
	if s.pop() != nil || s.len() != 0 {
		t.Fatal("scheduler not empty after remove+pop")
	}
}

// TestSchedulerUnknownTenantLazyAdd: a job for a tenant the scheduler
// has not seen (journal recovery of a tenant since removed from the
// keyfile) is accepted at weight 1 rather than dropped.
func TestSchedulerUnknownTenantLazyAdd(t *testing.T) {
	s := newScheduler(0)
	if err := s.push(schedJob("ghost", 1, PriorityBatch)); err != nil {
		t.Fatal(err)
	}
	if j := s.pop(); j == nil || j.tenant != "ghost" {
		t.Fatal("lazily added tenant's job not dispatched")
	}
}
