package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridtlb/internal/persist"
)

// metrics is a dependency-free Prometheus-text registry for the
// server's counters and histograms. Gauges (queue depth, worker
// utilization, sweep cache traffic) are sampled at scrape time by the
// handler, so the registry only holds monotonic state.
type metrics struct {
	workersBusy atomic.Int64
	rejected    atomic.Int64
	// recovered counts terminal jobs restored from the journal at
	// startup; resumed counts interrupted jobs re-enqueued.
	recovered atomic.Int64
	resumed   atomic.Int64
	// authFailures counts /v1 requests refused 401. Deliberately not
	// labeled by the presented key — failed keys are attacker-chosen,
	// unbounded, and secret-adjacent.
	authFailures atomic.Int64

	mu       sync.Mutex
	requests map[requestKey]int64
	latency  map[string]*histogram
	jobs     map[JobState]int64
	// Per-tenant families. Cardinality is bounded by the keyfile: the
	// tenant label only ever takes keyfile names (plus the implicit
	// default), never anything request-derived.
	tenantRequests map[string]int64
	tenantSheds    map[shedKey]int64
	tenantJobs     map[tenantJobKey]int64
}

type requestKey struct {
	route string
	code  int
}

type shedKey struct {
	tenant string
	reason shedReason
}

type tenantJobKey struct {
	tenant string
	state  JobState
}

func newMetrics() *metrics {
	return &metrics{
		requests:       make(map[requestKey]int64),
		latency:        make(map[string]*histogram),
		jobs:           make(map[JobState]int64),
		tenantRequests: make(map[string]int64),
		tenantSheds:    make(map[shedKey]int64),
		tenantJobs:     make(map[tenantJobKey]int64),
	}
}

// observeRequest records one finished HTTP exchange under its route
// pattern (bounded cardinality — never the raw path).
func (m *metrics) observeRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{route, code}]++
	h, ok := m.latency[route]
	if !ok {
		h = newHistogram()
		m.latency[route] = h
	}
	h.observe(d.Seconds())
}

// observeJob counts a job reaching a terminal state, per tenant.
func (m *metrics) observeJob(state JobState, tenantName string) {
	m.mu.Lock()
	m.jobs[state]++
	m.tenantJobs[tenantJobKey{tenantName, state}]++
	m.mu.Unlock()
}

// observeTenantRequest counts one authenticated /v1 request.
func (m *metrics) observeTenantRequest(tenantName string) {
	m.mu.Lock()
	m.tenantRequests[tenantName]++
	m.mu.Unlock()
}

// observeShed counts one 429, by tenant and refusing gate.
func (m *metrics) observeShed(tenantName string, reason shedReason) {
	m.mu.Lock()
	m.tenantSheds[shedKey{tenantName, reason}]++
	m.mu.Unlock()
}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond status polls to multi-minute sweeps.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

type histogram struct {
	counts []int64 // one per bucket, cumulative semantics applied at render
	sum    float64
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
}

// gauges are the instantaneous values sampled at scrape time.
type gauges struct {
	queueDepth    int
	queueCapacity int
	workers       int
	workersBusy   int64
	jobStates     map[JobState]int
	cacheJobs     int
	cacheHits     int
	cacheMisses   int
	retries       int
	evictions     int64
	jobEpochs     uint64
	store         persist.StoreStats
	ready         bool

	// Per-tenant gauges plus the live Retry-After hint, sampled at
	// scrape time.
	tenantQueue    map[string]int
	tenantInflight map[string]int64
	retryHint      float64
}

// write renders the registry in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP tlbserver_http_requests_total HTTP requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE tlbserver_http_requests_total counter")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "tlbserver_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP tlbserver_http_request_duration_seconds HTTP request latency, by route pattern.")
	fmt.Fprintln(w, "# TYPE tlbserver_http_request_duration_seconds histogram")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := m.latency[r]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "tlbserver_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, ub, cum)
		}
		fmt.Fprintf(w, "tlbserver_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.count)
		fmt.Fprintf(w, "tlbserver_http_request_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "tlbserver_http_request_duration_seconds_count{route=%q} %d\n", r, h.count)
	}

	fmt.Fprintln(w, "# HELP tlbserver_http_requests_rejected_total Sweep submissions shed with 429 because the queue was full.")
	fmt.Fprintln(w, "# TYPE tlbserver_http_requests_rejected_total counter")
	fmt.Fprintf(w, "tlbserver_http_requests_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintln(w, "# HELP tlbserver_jobs_finished_total Sweep jobs reaching a terminal state.")
	fmt.Fprintln(w, "# TYPE tlbserver_jobs_finished_total counter")
	for _, st := range []JobState{JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "tlbserver_jobs_finished_total{state=%q} %d\n", st, m.jobs[st])
	}

	fmt.Fprintln(w, "# HELP tlbserver_jobs Current jobs by state.")
	fmt.Fprintln(w, "# TYPE tlbserver_jobs gauge")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "tlbserver_jobs{state=%q} %d\n", st, g.jobStates[st])
	}

	fmt.Fprintln(w, "# HELP tlbserver_queue_depth Sweep jobs waiting in the bounded queue.")
	fmt.Fprintln(w, "# TYPE tlbserver_queue_depth gauge")
	fmt.Fprintf(w, "tlbserver_queue_depth %d\n", g.queueDepth)

	fmt.Fprintln(w, "# HELP tlbserver_queue_capacity Size of the bounded queue.")
	fmt.Fprintln(w, "# TYPE tlbserver_queue_capacity gauge")
	fmt.Fprintf(w, "tlbserver_queue_capacity %d\n", g.queueCapacity)

	fmt.Fprintln(w, "# HELP tlbserver_workers Size of the sweep worker pool.")
	fmt.Fprintln(w, "# TYPE tlbserver_workers gauge")
	fmt.Fprintf(w, "tlbserver_workers %d\n", g.workers)

	fmt.Fprintln(w, "# HELP tlbserver_workers_busy Workers currently executing a sweep.")
	fmt.Fprintln(w, "# TYPE tlbserver_workers_busy gauge")
	fmt.Fprintf(w, "tlbserver_workers_busy %d\n", g.workersBusy)

	fmt.Fprintln(w, "# HELP tlbserver_sweep_cells_total Simulation cells submitted to the shared sweeper.")
	fmt.Fprintln(w, "# TYPE tlbserver_sweep_cells_total counter")
	fmt.Fprintf(w, "tlbserver_sweep_cells_total %d\n", g.cacheJobs)

	fmt.Fprintln(w, "# HELP tlbserver_sweep_cache_hits_total Cells served from the content-addressed result cache.")
	fmt.Fprintln(w, "# TYPE tlbserver_sweep_cache_hits_total counter")
	fmt.Fprintf(w, "tlbserver_sweep_cache_hits_total %d\n", g.cacheHits)

	fmt.Fprintln(w, "# HELP tlbserver_sweep_cache_misses_total Cells that missed the in-memory result cache.")
	fmt.Fprintln(w, "# TYPE tlbserver_sweep_cache_misses_total counter")
	fmt.Fprintf(w, "tlbserver_sweep_cache_misses_total %d\n", g.cacheMisses)

	fmt.Fprintln(w, "# HELP tlbserver_sweep_retries_total Cell attempts re-run after transient failures.")
	fmt.Fprintln(w, "# TYPE tlbserver_sweep_retries_total counter")
	fmt.Fprintf(w, "tlbserver_sweep_retries_total %d\n", g.retries)

	fmt.Fprintln(w, "# HELP tlbserver_store_hits_total Cells served from the durable result store.")
	fmt.Fprintln(w, "# TYPE tlbserver_store_hits_total counter")
	fmt.Fprintf(w, "tlbserver_store_hits_total %d\n", g.store.Hits)

	fmt.Fprintln(w, "# HELP tlbserver_store_misses_total Durable-store probes that found no entry (corrupt entries included).")
	fmt.Fprintln(w, "# TYPE tlbserver_store_misses_total counter")
	fmt.Fprintf(w, "tlbserver_store_misses_total %d\n", g.store.Misses)

	fmt.Fprintln(w, "# HELP tlbserver_store_corruptions_total Durable-store entries quarantined for failing validation.")
	fmt.Fprintln(w, "# TYPE tlbserver_store_corruptions_total counter")
	fmt.Fprintf(w, "tlbserver_store_corruptions_total %d\n", g.store.Corruptions)

	fmt.Fprintln(w, "# HELP tlbserver_store_writes_total Cells written through to the durable result store.")
	fmt.Fprintln(w, "# TYPE tlbserver_store_writes_total counter")
	fmt.Fprintf(w, "tlbserver_store_writes_total %d\n", g.store.Writes)

	fmt.Fprintln(w, "# HELP tlbserver_store_write_errors_total Failed durable-store writes (results stayed memory-only).")
	fmt.Fprintln(w, "# TYPE tlbserver_store_write_errors_total counter")
	fmt.Fprintf(w, "tlbserver_store_write_errors_total %d\n", g.store.WriteErrors)

	fmt.Fprintln(w, "# HELP tlbserver_store_pruned_total Durable-store envelopes removed by the -store-max-bytes size cap.")
	fmt.Fprintln(w, "# TYPE tlbserver_store_pruned_total counter")
	fmt.Fprintf(w, "tlbserver_store_pruned_total %d\n", g.store.Pruned)

	fmt.Fprintln(w, "# HELP tlbserver_job_epochs Epoch-boundary samples observed so far, summed over currently running sweep jobs (per-job detail lives in the job JSON; a job-ID label would grow scrape cardinality without bound).")
	fmt.Fprintln(w, "# TYPE tlbserver_job_epochs gauge")
	fmt.Fprintf(w, "tlbserver_job_epochs %d\n", g.jobEpochs)

	fmt.Fprintln(w, "# HELP tlbserver_jobs_recovered_total Terminal jobs restored from the journal at startup.")
	fmt.Fprintln(w, "# TYPE tlbserver_jobs_recovered_total counter")
	fmt.Fprintf(w, "tlbserver_jobs_recovered_total %d\n", m.recovered.Load())

	fmt.Fprintln(w, "# HELP tlbserver_jobs_resumed_total Interrupted jobs re-enqueued from the journal at startup.")
	fmt.Fprintln(w, "# TYPE tlbserver_jobs_resumed_total counter")
	fmt.Fprintf(w, "tlbserver_jobs_resumed_total %d\n", m.resumed.Load())

	fmt.Fprintln(w, "# HELP tlbserver_jobs_evicted_total Terminal jobs evicted by the -max-jobs retention cap.")
	fmt.Fprintln(w, "# TYPE tlbserver_jobs_evicted_total counter")
	fmt.Fprintf(w, "tlbserver_jobs_evicted_total %d\n", g.evictions)

	fmt.Fprintln(w, "# HELP tlbserver_auth_failures_total Requests refused 401 for a missing or unknown API key.")
	fmt.Fprintln(w, "# TYPE tlbserver_auth_failures_total counter")
	fmt.Fprintf(w, "tlbserver_auth_failures_total %d\n", m.authFailures.Load())

	fmt.Fprintln(w, "# HELP tlbserver_tenant_requests_total Authenticated API requests, by tenant (label set bounded by the keyfile).")
	fmt.Fprintln(w, "# TYPE tlbserver_tenant_requests_total counter")
	for _, name := range sortedKeys(m.tenantRequests) {
		fmt.Fprintf(w, "tlbserver_tenant_requests_total{tenant=%q} %d\n", name, m.tenantRequests[name])
	}

	fmt.Fprintln(w, "# HELP tlbserver_tenant_shed_total Requests shed with 429, by tenant and refusing admission gate.")
	fmt.Fprintln(w, "# TYPE tlbserver_tenant_shed_total counter")
	shedKeys := make([]shedKey, 0, len(m.tenantSheds))
	for k := range m.tenantSheds {
		shedKeys = append(shedKeys, k)
	}
	sort.Slice(shedKeys, func(i, j int) bool {
		if shedKeys[i].tenant != shedKeys[j].tenant {
			return shedKeys[i].tenant < shedKeys[j].tenant
		}
		return shedKeys[i].reason < shedKeys[j].reason
	})
	for _, k := range shedKeys {
		fmt.Fprintf(w, "tlbserver_tenant_shed_total{tenant=%q,reason=%q} %d\n",
			k.tenant, k.reason, m.tenantSheds[k])
	}

	fmt.Fprintln(w, "# HELP tlbserver_tenant_jobs_finished_total Sweep jobs reaching a terminal state, by tenant.")
	fmt.Fprintln(w, "# TYPE tlbserver_tenant_jobs_finished_total counter")
	jobKeys := make([]tenantJobKey, 0, len(m.tenantJobs))
	for k := range m.tenantJobs {
		jobKeys = append(jobKeys, k)
	}
	sort.Slice(jobKeys, func(i, j int) bool {
		if jobKeys[i].tenant != jobKeys[j].tenant {
			return jobKeys[i].tenant < jobKeys[j].tenant
		}
		return jobKeys[i].state < jobKeys[j].state
	})
	for _, k := range jobKeys {
		fmt.Fprintf(w, "tlbserver_tenant_jobs_finished_total{tenant=%q,state=%q} %d\n",
			k.tenant, k.state, m.tenantJobs[k])
	}

	fmt.Fprintln(w, "# HELP tlbserver_tenant_queue_depth Queued sweep jobs, by tenant fair-share queue.")
	fmt.Fprintln(w, "# TYPE tlbserver_tenant_queue_depth gauge")
	for _, name := range sortedKeys(g.tenantQueue) {
		fmt.Fprintf(w, "tlbserver_tenant_queue_depth{tenant=%q} %d\n", name, g.tenantQueue[name])
	}

	fmt.Fprintln(w, "# HELP tlbserver_tenant_inflight Admitted work currently held (queued + running), by tenant.")
	fmt.Fprintln(w, "# TYPE tlbserver_tenant_inflight gauge")
	for _, name := range sortedKeys(g.tenantInflight) {
		fmt.Fprintf(w, "tlbserver_tenant_inflight{tenant=%q} %d\n", name, g.tenantInflight[name])
	}

	fmt.Fprintln(w, "# HELP tlbserver_retry_after_hint_seconds Adaptive Retry-After a 429 would carry right now, from queue depth over the observed drain rate.")
	fmt.Fprintln(w, "# TYPE tlbserver_retry_after_hint_seconds gauge")
	fmt.Fprintf(w, "tlbserver_retry_after_hint_seconds %g\n", g.retryHint)

	fmt.Fprintln(w, "# HELP tlbserver_ready Whether the server is accepting work (0 while draining).")
	fmt.Fprintln(w, "# TYPE tlbserver_ready gauge")
	ready := 0
	if g.ready {
		ready = 1
	}
	fmt.Fprintf(w, "tlbserver_ready %d\n", ready)
}

// sortedKeys returns a map's string keys in sorted order, for
// deterministic scrape output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
