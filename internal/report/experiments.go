package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/sweep"
)

// Fig1 reproduces Figure 1: cumulative distributions of contiguous chunk
// sizes for two workload footprints, running alone and with increasing
// background job pressure. The paper captured canneal on a 4-socket and
// raytrace on a 2-socket machine; we substitute their footprints under
// the buddy-allocator demand-paging model.
type Fig1Series struct {
	Label    string
	Pressure float64
	CDF      []mem.CDFPoint
}

// Fig1Data computes the CDF series for one footprint at several pressure
// levels.
func Fig1Data(footprintPages uint64, seed int64) ([]Fig1Series, error) {
	var out []Fig1Series
	for _, p := range []struct {
		label    string
		pressure float64
	}{
		{"alone", 0},
		{"bg-low", 0.3},
		{"bg-mid", 0.6},
		{"bg-high", 0.9},
	} {
		cl, err := mapping.Generate(mapping.Demand, mapping.Config{
			FootprintPages: footprintPages,
			Seed:           seed,
			Pressure:       p.pressure,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig1Series{
			Label:    p.label,
			Pressure: p.pressure,
			CDF:      mem.BuildHistogram(cl).CDF(),
		})
	}
	return out, nil
}

func runFig1(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	for _, wl := range []struct {
		name      string
		footprint uint64
	}{
		{"canneal (4-socket stand-in)", 940 << 8},
		{"raytrace (2-socket stand-in)", 1300 << 8},
	} {
		series, err := Fig1Data(wl.footprint, opts.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Figure 1: chunk-size CDF, %s\n", wl.name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "series\tchunks<=16\tchunks<=512\tchunks<=4096\tmax-chunk")
		for _, s := range series {
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%d\n",
				s.Label, cdfAt(s.CDF, 16), cdfAt(s.CDF, 512), cdfAt(s.CDF, 4096), maxChunk(s.CDF))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

func cdfAt(cdf []mem.CDFPoint, pages uint64) float64 {
	frac := 0.0
	for _, pt := range cdf {
		if pt.ChunkPages > pages {
			break
		}
		frac = pt.CumFraction
	}
	return frac
}

func maxChunk(cdf []mem.CDFPoint) uint64 {
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].ChunkPages
}

// Fig2 reproduces the motivation figure: relative TLB misses of the
// baseline, cluster and RMM at small (low), medium and large (high)
// contiguity, averaged over the suite.
func runFig2(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	suite := opts.suite()
	scenarios := []mapping.Scenario{mapping.Low, mapping.Medium, mapping.High}
	schemes := []mmu.Scheme{mmu.Base, mmu.Cluster, mmu.RMM}

	var b batch
	baseCells := make([][]int, len(scenarios))
	schemeCells := make([][][]int, len(scenarios))
	for si, sc := range scenarios {
		baseCells[si] = make([]int, len(suite))
		schemeCells[si] = make([][]int, len(suite))
		for wi, spec := range suite {
			cfg := opts.baseConfig(spec, sc)
			cfg.Scheme = mmu.Base
			baseCells[si][wi] = b.addCfg(cfg)
			schemeCells[si][wi] = make([]int, len(schemes))
			for ki, s := range schemes {
				c := cfg
				c.Scheme = s
				schemeCells[si][wi][ki] = b.addCfg(c)
			}
		}
	}
	cells, err := b.run(opts)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 2: relative TLB misses of prior techniques (% of base)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mapping\tbase\tcluster\trmm")
	for si, sc := range scenarios {
		sums := map[mmu.Scheme]float64{}
		n := 0
		for wi := range suite {
			base := cells[baseCells[si][wi]][0].Res
			for ki, s := range schemes {
				sums[s] += cells[schemeCells[si][wi][ki]][0].Res.RelativeMisses(base)
			}
			n++
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n", sc,
			sums[mmu.Base]/float64(n), sums[mmu.Cluster]/float64(n), sums[mmu.RMM]/float64(n))
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func runTab1(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Table 1: comparison of scalability and allocation flexibility")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "	THP	Cluster/CoLT	RMM	Anchor (this work)")
	fmt.Fprintln(tw, "Scalability	Moderate	Moderate	Good	Good")
	fmt.Fprintln(tw, "Flexibility	Moderate	Flexible	Restricted	Flexible")
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func runTab3(w io.Writer, _ Options) error {
	cfg := mmu.DefaultConfig()
	fmt.Fprintln(w, "Table 3: TLB configuration")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "L1 4KB\t%d entries, %d-way\n", cfg.L1Entries4K, cfg.L1Ways4K)
	fmt.Fprintf(tw, "L1 2MB\t%d entries, %d-way\n", cfg.L1Entries2M, cfg.L1Ways2M)
	fmt.Fprintf(tw, "L2 shared\t%d entries, %d-way\n", cfg.L2Entries, cfg.L2Ways)
	fmt.Fprintf(tw, "cluster regular\t%d entries, %d-way\n", cfg.ClusterRegularEntries, cfg.ClusterRegularWays)
	fmt.Fprintf(tw, "cluster-8\t%d entries, %d-way\n", cfg.ClusterEntries, cfg.ClusterWays)
	fmt.Fprintf(tw, "range TLB\t%d entries, fully associative\n", cfg.RangeEntries)
	fmt.Fprintf(tw, "L2 hit\t%d cycles\n", cfg.L2HitCycles)
	fmt.Fprintf(tw, "clust./RMM/anch. hit\t%d cycles\n", cfg.CoalescedHitCycles)
	fmt.Fprintf(tw, "page table walk\t%d cycles\n", cfg.WalkCycles)
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func runTab4(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Table 4: synthetic mapping scenarios")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, sc := range []mapping.Scenario{mapping.Low, mapping.Medium, mapping.High} {
		lo, hi := sc.ChunkRange()
		fmt.Fprintf(tw, "%s contiguity\t%d - %d pages (%s - %s)\n",
			sc, lo, hi, mem.HumanBytes(lo*mem.Size4K), mem.HumanBytes(hi*mem.Size4K))
	}
	fmt.Fprintln(tw, "max contiguity\tmaximum")
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func runFig7(w io.Writer, opts Options) error {
	fig, err := MissesByScenario(mapping.Demand, opts)
	if err != nil {
		return err
	}
	WriteMissFigure(w, "Figure 7: demand paging mapping", fig)
	return nil
}

func runFig8(w io.Writer, opts Options) error {
	fig, err := MissesByScenario(mapping.Medium, opts)
	if err != nil {
		return err
	}
	WriteMissFigure(w, "Figure 8: medium contiguity mapping", fig)
	return nil
}

// Fig9Data computes the per-scenario mean relative misses for every
// scheme column (the summary bar chart of Figure 9).
func Fig9Data(opts Options) (map[mapping.Scenario]MissFigure, error) {
	out := make(map[mapping.Scenario]MissFigure)
	for _, sc := range mapping.All() {
		fig, err := MissesByScenario(sc, opts)
		if err != nil {
			return nil, err
		}
		out[sc] = fig
	}
	return out, nil
}

func runFig9(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	figs, err := Fig9Data(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: average relative TLB misses per mapping scenario (% of base)")
	cols := figs[mapping.Demand].Columns
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "mapping")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, sc := range mapping.All() {
		fmt.Fprint(tw, sc.String())
		for _, c := range cols {
			fmt.Fprintf(tw, "\t%.1f", figs[sc].Mean(c))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// Tab5Row is one benchmark's L2 access breakdown under the anchor scheme.
type Tab5Row struct {
	Workload                    string
	RegularHit, AnchorHit, Miss float64
}

// Tab5Data computes the Table 5 breakdown for one scenario.
func Tab5Data(sc mapping.Scenario, opts Options) ([]Tab5Row, error) {
	opts = opts.withDefaults()
	suite := opts.suite()
	var b batch
	for _, spec := range suite {
		cfg := opts.baseConfig(spec, sc)
		cfg.Scheme = mmu.Anchor
		b.addCfg(cfg)
	}
	cells, err := b.run(opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Tab5Row, 0, len(suite))
	for i, spec := range suite {
		reg, coal, miss := cells[i][0].Res.L2Breakdown()
		rows = append(rows, Tab5Row{Workload: spec.Name, RegularHit: reg, AnchorHit: coal, Miss: miss})
	}
	return rows, nil
}

func runTab5(w io.Writer, opts Options) error {
	fmt.Fprintln(w, "Table 5: L2 TLB hit/miss statistics of the anchor scheme")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tdemand\t\t\tmedium\t\t")
	fmt.Fprintln(tw, "benchmark\tR.hit\tA.hit\tL2 miss\tR.hit\tA.hit\tL2 miss")
	demand, err := Tab5Data(mapping.Demand, opts)
	if err != nil {
		return err
	}
	medium, err := Tab5Data(mapping.Medium, opts)
	if err != nil {
		return err
	}
	for i := range demand {
		d, m := demand[i], medium[i]
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\n",
			d.Workload, d.RegularHit*100, d.AnchorHit*100, d.Miss*100,
			m.RegularHit*100, m.AnchorHit*100, m.Miss*100)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// Tab6Data computes the anchor distance chosen by the dynamic selection
// for every benchmark and scenario.
func Tab6Data(opts Options) (map[string]map[mapping.Scenario]uint64, error) {
	opts = opts.withDefaults()
	out := make(map[string]map[mapping.Scenario]uint64)
	for _, spec := range opts.suite() {
		out[spec.Name] = make(map[mapping.Scenario]uint64)
		for _, sc := range mapping.All() {
			cl, err := mapping.Generate(sc, mapping.Config{
				FootprintPages: spec.FootprintPages,
				Seed:           opts.Seed,
				Pressure:       opts.Pressure,
				FineGrained:    spec.FineGrainedAlloc,
			})
			if err != nil {
				return nil, err
			}
			d, _ := core.SelectDistanceFromChunks(cl)
			out[spec.Name][sc] = d
		}
	}
	return out, nil
}

func runTab6(w io.Writer, opts Options) error {
	data, err := Tab6Data(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 6: anchor distances selected by the dynamic selection algorithm (pages)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, sc := range mapping.All() {
		fmt.Fprintf(tw, "\t%s", sc)
	}
	fmt.Fprintln(tw)
	for _, name := range sortedKeys(data) {
		fmt.Fprint(tw, name)
		for _, sc := range mapping.All() {
			fmt.Fprintf(tw, "\t%s", mem.HumanPages(data[name][sc]))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// CPIFigure computes the per-benchmark translation CPI breakdowns for one
// scenario across all scheme columns (Figures 10 and 11).
func CPIFigure(sc mapping.Scenario, opts Options) (map[string]map[string]sim.CPIBreakdown, []string, error) {
	opts = opts.withDefaults()
	cols := Columns(opts.SkipStaticIdeal)
	var colNames []string
	for _, c := range cols {
		colNames = append(colNames, c.Name)
	}
	suite := opts.suite()
	var b batch
	cellIdx := make([][]int, len(suite))
	for i, spec := range suite {
		cfg := opts.baseConfig(spec, sc)
		cellIdx[i] = make([]int, len(cols))
		for j, col := range cols {
			js, err := col.jobs(cfg)
			if err != nil {
				return nil, nil, err
			}
			cellIdx[i][j] = b.add(js...)
		}
	}
	cells, err := b.run(opts)
	if err != nil {
		return nil, nil, err
	}

	out := make(map[string]map[string]sim.CPIBreakdown)
	hw := mmu.DefaultConfig()
	for i, spec := range suite {
		out[spec.Name] = make(map[string]sim.CPIBreakdown)
		for j, col := range cols {
			out[spec.Name][col.Name] = col.reduce(cells[cellIdx[i][j]]).CPI(hw)
		}
	}
	return out, colNames, nil
}

func runCPI(w io.Writer, title string, sc mapping.Scenario, opts Options) error {
	data, cols, err := CPIFigure(sc, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (translation CPI totals per scheme)\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, name := range sortedKeys(data) {
		fmt.Fprint(tw, name)
		for _, c := range cols {
			b := data[name][c]
			fmt.Fprintf(tw, "\t%.3f", b.Total())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	// The paper plots each bar stacked into its three components; print
	// the stack for the dynamic anchor column.
	fmt.Fprintln(w, "\ndynamic-anchor CPI stack (L2-hit + anchor-hit + page-walk cycles/instr):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tL2 hit\tanchor hit\tpage walk\ttotal")
	for _, name := range sortedKeys(data) {
		b := data[name]["dynamic"]
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", name, b.L2Hit, b.Coalesced, b.Walk, b.Total())
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

func runFig10(w io.Writer, opts Options) error {
	return runCPI(w, "Figure 10: CPI breakdown, demand paging", mapping.Demand, opts)
}

func runFig11(w io.Writer, opts Options) error {
	return runCPI(w, "Figure 11: CPI breakdown, medium contiguity", mapping.Medium, opts)
}

// SweepCostRow is one distance-change measurement of the Section 3.3
// experiment.
type SweepCostRow struct {
	Distance uint64
	Anchors  uint64
	Millis   float64
}

// SweepData models the cost of re-anchoring a footprint at the paper's
// three distances (8 / 64 / 512) — Section 3.3 measures 452 ms / 71.7 ms
// / 1.7 ms for 30 GiB.
func SweepData(footprintPages uint64) ([]SweepCostRow, error) {
	proc := osmem.NewProcess(osmem.Policy{Anchors: true})
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 21, Pages: footprintPages}}
	if err := proc.InstallChunks(cl, 2); err != nil {
		return nil, err
	}
	var rows []SweepCostRow
	for _, d := range []uint64{8, 64, 512} {
		res, cost := proc.ChangeDistance(d, osmem.DefaultSweepCost)
		rows = append(rows, SweepCostRow{
			Distance: d,
			Anchors:  res.AnchorsVisited,
			Millis:   float64(cost.Microseconds()) / 1000,
		})
	}
	return rows, nil
}

func runSweep(w io.Writer, _ Options) error {
	// The paper sweeps a 30 GiB mapping; default to 1 GiB here and scale
	// the reported figure alongside the modeled per-anchor cost.
	const footprint = 1 << 18 // 1 GiB
	rows, err := SweepData(footprint)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Section 3.3: anchor distance change cost (modeled)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distance\tanchors rewritten\tcost (1GiB)\tscaled to 30GiB\tpaper (30GiB)")
	paper := map[uint64]string{8: "452ms", 64: "71.7ms", 512: "1.7ms"}
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2fms\t%.0fms\t%s\n", r.Distance, r.Anchors, r.Millis, r.Millis*30, paper[r.Distance])
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// runExt runs the extension experiments beyond the paper: the
// capacity-aware distance-selection cost model and the Section 4.2
// multi-region anchors, each compared against the paper-faithful
// configuration on the mappings where the single-snapshot heuristic is
// weakest.
func runExt(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	suite := opts.suite()
	scenarios := []mapping.Scenario{mapping.Eager, mapping.Medium}

	var b batch
	type extCell struct{ plain, capac, multi int }
	cellIdx := make([]extCell, 0, len(suite)*len(scenarios))
	for _, spec := range suite {
		for _, sc := range scenarios {
			cfg := opts.baseConfig(spec, sc)
			cfg.Scheme = mmu.Anchor
			var c extCell
			c.plain = b.addCfg(cfg)
			capac := cfg
			capac.CostModel = core.CostCapacityAware
			c.capac = b.addCfg(capac)
			multi := cfg
			multi.MultiRegionAnchors = true
			c.multi = b.addCfg(multi)
			cellIdx = append(cellIdx, c)
		}
	}
	cells, err := b.run(opts)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Extensions: capacity-aware selection and multi-region anchors (TLB misses)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmapping\tentry-count\tcapacity-aware\tmulti-region")
	i := 0
	for _, spec := range suite {
		for _, sc := range scenarios {
			c := cellIdx[i]
			i++
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n", spec.Name, sc,
				cells[c.plain][0].Res.Stats.Misses(),
				cells[c.capac][0].Res.Stats.Misses(),
				cells[c.multi][0].Res.Stats.Misses())
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// runChurn exercises the Section 3.3 mapping-update machinery under
// load: each scheme runs the same workload while regions of the footprint
// are freed and reallocated, and the table reports the miss inflation and
// the OS shootdown work.
func runChurn(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	suite := opts.suite()
	schemes := []mmu.Scheme{mmu.THP, mmu.Cluster2M, mmu.RMM, mmu.Anchor}

	var b batch
	type churnCell struct{ calm, churned int }
	cellIdx := make([]churnCell, 0, len(suite)*len(schemes))
	for _, spec := range suite {
		for _, s := range schemes {
			cfg := opts.baseConfig(spec, mapping.Medium)
			cfg.Scheme = s
			var c churnCell
			c.calm = b.addCfg(cfg)
			c.churned = b.add(sweep.Job{
				Config:                    cfg,
				ChurnIntervalInstructions: 100_000,
				ChurnPages:                256,
			})
			cellIdx = append(cellIdx, c)
		}
	}
	cells, err := b.run(opts)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Mapping churn (Section 3.3): misses calm vs churned, plus shootdown work")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tscheme\tcalm misses\tchurned misses\tshootdowns\tremaps")
	i := 0
	for _, spec := range suite {
		for _, s := range schemes {
			c := cellIdx[i]
			i++
			churned := cells[c.churned][0]
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n", spec.Name, s,
				cells[c.calm][0].Res.Stats.Misses(), churned.Res.Stats.Misses(),
				churned.Churn.EntryShootdowns, churned.Churn.Operations)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// Experiment names in presentation order.
var experimentOrder = []string{
	"fig1", "fig2", "tab1", "tab3", "tab4", "fig7", "fig8", "fig9",
	"tab5", "tab6", "fig10", "fig11", "sweep", "ext", "churn",
}

var experiments = map[string]func(io.Writer, Options) error{
	"fig1":  runFig1,
	"fig2":  runFig2,
	"tab1":  runTab1,
	"tab3":  runTab3,
	"tab4":  runTab4,
	"fig7":  runFig7,
	"fig8":  runFig8,
	"fig9":  runFig9,
	"tab5":  runTab5,
	"tab6":  runTab6,
	"fig10": runFig10,
	"fig11": runFig11,
	"sweep": runSweep,
	"ext":   runExt,
	"churn": runChurn,
}

// Names lists the available experiment identifiers in order.
func Names() []string { return append([]string(nil), experimentOrder...) }

// Run executes one experiment by name ("all" runs everything). The
// options are defaulted once up front so every experiment of an "all"
// run shares one sweep engine — and with it one result cache, so cells
// repeated across figures (each scenario's base column, the static-ideal
// probes reused by the miss and CPI figures) simulate once.
func Run(name string, w io.Writer, opts Options) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	opts = opts.withDefaults()
	if name == "all" {
		for _, n := range experimentOrder {
			if err := experiments[n](w, opts); err != nil {
				return fmt.Errorf("report: %s: %w", n, err)
			}
		}
		return nil
	}
	fn, ok := experiments[name]
	if !ok {
		return fmt.Errorf("report: unknown experiment %q (have %v)", name, Names())
	}
	return fn(w, opts)
}
