// Package report regenerates every table and figure of the paper's
// evaluation section (Section 5) from the simulator: relative TLB-miss
// figures (2, 7, 8, 9), the chunk-size CDFs of Figure 1, the L2 hit
// breakdown of Table 5, the selected anchor distances of Table 6, the
// translation-CPI breakdowns of Figures 10 and 11, and the
// anchor-distance-change sweep costs of Section 3.3.
//
// Each experiment prints rows in the same orientation as the paper and is
// also exposed as structured data so tests and benchmarks can assert the
// reproduced *shape*: who wins, by roughly what factor, and where the
// crossovers fall.
//
// Every simulation-running generator routes its cells through one
// internal/sweep engine: the scheme × workload matrices execute on a
// bounded worker pool and repeated cells (the base scheme shared by every
// figure, static-ideal's sixteen distance probes) are simulated once per
// engine. Results are collected in spec order before printing, so the
// output is byte-identical to a serial run.
package report

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/sweep"
	"hybridtlb/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Accesses per simulation run (default 200,000 measured accesses
	// plus 10% warmup).
	Accesses uint64
	// Seed for mappings and workloads.
	Seed int64
	// Workloads restricts the benchmark set (nil: the full suite).
	Workloads []string
	// Pressure is the background fragmentation applied to the
	// buddy-backed scenarios (demand, eager). The default of 0.15
	// yields the paper's demand-paging profile — the authors captured
	// their traces on otherwise idle machines, so mappings are dominated
	// by very large contiguous chunks with a fine-grained remainder
	// (Table 6's demand column selects distances of 1K-64K pages). Set
	// negative for zero pressure.
	Pressure float64
	// SkipStaticIdeal drops the exhaustive static-ideal column (16
	// simulations per cell) from the miss figures.
	SkipStaticIdeal bool
	// Parallelism bounds concurrent simulations (0: GOMAXPROCS). Every
	// simulation is independent, so the matrices parallelize perfectly;
	// output stays deterministic because results are collected before
	// printing.
	Parallelism int
	// Engine, when set, runs every simulation: sharing one engine across
	// experiments shares its result cache, so cells repeated between
	// figures are simulated once per process. When nil, a fresh engine
	// (with Parallelism and Progress applied) is created per top-level
	// call.
	Engine *sweep.Engine
	// Progress observes sweep completion (ignored when Engine is set;
	// pass the hook to sweep.New instead).
	Progress sweep.ProgressFunc
	// Context cancels in-flight experiment sweeps (nil: background).
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.Accesses == 0 {
		o.Accesses = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	switch {
	case o.Pressure == 0:
		o.Pressure = 0.15
	case o.Pressure < 0:
		o.Pressure = 0
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Engine == nil {
		o.Engine = sweep.New(sweep.Options{Parallelism: o.Parallelism, Progress: o.Progress})
	}
	return o
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	// tlbvet:ignore ctxflow Options.Context is the caller's context; nil means "no cancellation", the documented API default.
	return context.Background()
}

// batch accumulates sweep jobs for one experiment while remembering cell
// boundaries, so a whole figure dispatches to the engine as one job list
// and the flat results slice back into logical cells.
type batch struct {
	jobs  []sweep.Job
	spans [][2]int
}

// add appends one cell of jobs and returns its cell index.
func (b *batch) add(js ...sweep.Job) int {
	start := len(b.jobs)
	b.jobs = append(b.jobs, js...)
	b.spans = append(b.spans, [2]int{start, len(b.jobs)})
	return len(b.spans) - 1
}

// addCfg appends a single-job cell.
func (b *batch) addCfg(cfg sim.Config) int {
	return b.add(sweep.Job{Config: cfg})
}

// run executes the batch on the options' engine and returns per-cell
// results in cell order.
func (b *batch) run(opts Options) ([][]sweep.Result, error) {
	results, err := opts.Engine.Run(opts.ctx(), b.jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]sweep.Result, len(b.spans))
	for i, sp := range b.spans {
		out[i] = results[sp[0]:sp[1]]
	}
	return out, nil
}

func (o Options) suite() []workload.Spec {
	all := workload.Suite()
	if o.Workloads == nil {
		return all
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		spec, err := workload.ByName(name)
		if err != nil {
			// Surface the typo instead of silently dropping the row;
			// experiments validate via Validate() below before running.
			continue
		}
		out = append(out, spec)
	}
	return out
}

// Validate reports configuration errors (unknown workload names) before
// any simulation runs.
func (o Options) Validate() error {
	for _, name := range o.Workloads {
		if _, err := workload.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// Column is one scheme column of a miss/CPI figure. Dynamic and
// static-ideal are distinct columns over the same anchor hardware.
type Column struct {
	Name   string
	Scheme mmu.Scheme
	// StaticIdeal marks the exhaustive static-ideal column: its cell
	// expands to one probe per candidate anchor distance, reduced to the
	// best run.
	StaticIdeal bool
}

// Columns returns the figure columns in the paper's legend order:
// Base, THP, Cluster, Cluster-2MB, RMM, Dynamic, Static Ideal.
func Columns(skipStaticIdeal bool) []Column {
	cols := []Column{
		{Name: "base", Scheme: mmu.Base},
		{Name: "thp", Scheme: mmu.THP},
		{Name: "cluster", Scheme: mmu.Cluster},
		{Name: "cl.2mb", Scheme: mmu.Cluster2M},
		{Name: "rmm", Scheme: mmu.RMM},
		{Name: "dynamic", Scheme: mmu.Anchor},
	}
	if !skipStaticIdeal {
		cols = append(cols, Column{Name: "s.ideal", Scheme: mmu.Anchor, StaticIdeal: true})
	}
	return cols
}

// jobs expands the column's cell for one base config into its sweep
// jobs.
func (c Column) jobs(cfg sim.Config) ([]sweep.Job, error) {
	cfg.Scheme = c.Scheme
	if c.StaticIdeal {
		cfgs, err := sim.StaticIdealConfigs(cfg)
		if err != nil {
			return nil, err
		}
		js := make([]sweep.Job, len(cfgs))
		for i, pc := range cfgs {
			js[i] = sweep.Job{Config: pc}
		}
		return js, nil
	}
	return []sweep.Job{{Config: cfg}}, nil
}

// reduce folds a cell's results back into the column's single simulation
// result.
func (c Column) reduce(cell []sweep.Result) sim.Result {
	if c.StaticIdeal {
		return sim.BestStaticIdeal(sweep.Results(cell))
	}
	return cell[0].Res
}

// MissRow is one benchmark's relative TLB misses across scheme columns
// (percent of the base scheme's misses).
type MissRow struct {
	Workload string
	Relative map[string]float64 // column name -> percent
	Base     sim.Result
}

// MissFigure is the structured form of Figures 2, 7, 8 and 9.
type MissFigure struct {
	Scenario mapping.Scenario
	Columns  []string
	Rows     []MissRow
}

// Mean returns the arithmetic mean of a column over all rows.
func (f MissFigure) Mean(col string) float64 {
	if len(f.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range f.Rows {
		sum += r.Relative[col]
	}
	return sum / float64(len(f.Rows))
}

// baseConfig assembles the shared simulation config for one cell.
func (o Options) baseConfig(spec workload.Spec, sc mapping.Scenario) sim.Config {
	return sim.Config{
		Workload: spec,
		Scenario: sc,
		Accesses: o.Accesses,
		Seed:     o.Seed,
		Pressure: o.Pressure,
	}
}

// MissesByScenario runs the full scheme matrix for one mapping scenario —
// the computation behind Figures 7 (demand) and 8 (medium contiguity).
// The whole matrix dispatches as one engine batch: every cell runs
// concurrently and the per-row base cell is shared with the base column
// through the result cache.
func MissesByScenario(sc mapping.Scenario, opts Options) (MissFigure, error) {
	opts = opts.withDefaults()
	cols := Columns(opts.SkipStaticIdeal)
	fig := MissFigure{Scenario: sc}
	for _, c := range cols {
		fig.Columns = append(fig.Columns, c.Name)
	}
	suite := opts.suite()

	var b batch
	baseCells := make([]int, len(suite))
	colCells := make([][]int, len(suite))
	for i, spec := range suite {
		cfg := opts.baseConfig(spec, sc)
		baseCfg := cfg
		baseCfg.Scheme = mmu.Base
		baseCells[i] = b.addCfg(baseCfg)
		colCells[i] = make([]int, len(cols))
		for j, col := range cols {
			js, err := col.jobs(cfg)
			if err != nil {
				return fig, fmt.Errorf("report: %s/%v %s: %w", spec.Name, sc, col.Name, err)
			}
			colCells[i][j] = b.add(js...)
		}
	}
	cells, err := b.run(opts)
	if err != nil {
		return fig, fmt.Errorf("report: %v: %w", sc, err)
	}

	rows := make([]MissRow, len(suite))
	for i, spec := range suite {
		base := cells[baseCells[i]][0].Res
		row := MissRow{Workload: spec.Name, Relative: make(map[string]float64), Base: base}
		for j, col := range cols {
			row.Relative[col.Name] = col.reduce(cells[colCells[i][j]]).RelativeMisses(base)
		}
		rows[i] = row
	}
	fig.Rows = rows
	return fig, nil
}

// WriteMissFigure renders a miss figure like the paper's bar charts:
// one row per benchmark plus the mean row, values in percent.
func WriteMissFigure(w io.Writer, title string, fig MissFigure) {
	fmt.Fprintf(w, "%s (relative TLB misses, %% of base; lower is better)\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range fig.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range fig.Rows {
		fmt.Fprint(tw, r.Workload)
		for _, c := range fig.Columns {
			fmt.Fprintf(tw, "\t%.1f", r.Relative[c])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "mean")
	for _, c := range fig.Columns {
		fmt.Fprintf(tw, "\t%.1f", fig.Mean(c))
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintln(w)
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
