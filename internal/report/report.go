// Package report regenerates every table and figure of the paper's
// evaluation section (Section 5) from the simulator: relative TLB-miss
// figures (2, 7, 8, 9), the chunk-size CDFs of Figure 1, the L2 hit
// breakdown of Table 5, the selected anchor distances of Table 6, the
// translation-CPI breakdowns of Figures 10 and 11, and the
// anchor-distance-change sweep costs of Section 3.3.
//
// Each experiment prints rows in the same orientation as the paper and is
// also exposed as structured data so tests and benchmarks can assert the
// reproduced *shape*: who wins, by roughly what factor, and where the
// crossovers fall.
package report

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Accesses per simulation run (default 200,000 measured accesses
	// plus 10% warmup).
	Accesses uint64
	// Seed for mappings and workloads.
	Seed int64
	// Workloads restricts the benchmark set (nil: the full suite).
	Workloads []string
	// Pressure is the background fragmentation applied to the
	// buddy-backed scenarios (demand, eager). The default of 0.15
	// yields the paper's demand-paging profile — the authors captured
	// their traces on otherwise idle machines, so mappings are dominated
	// by very large contiguous chunks with a fine-grained remainder
	// (Table 6's demand column selects distances of 1K-64K pages). Set
	// negative for zero pressure.
	Pressure float64
	// SkipStaticIdeal drops the exhaustive static-ideal column (16
	// simulations per cell) from the miss figures.
	SkipStaticIdeal bool
	// Parallelism bounds concurrent simulations (0: GOMAXPROCS). Every
	// simulation is independent, so the matrices parallelize perfectly;
	// output stays deterministic because results are collected before
	// printing.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Accesses == 0 {
		o.Accesses = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	switch {
	case o.Pressure == 0:
		o.Pressure = 0.15
	case o.Pressure < 0:
		o.Pressure = 0
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// forEachIndex runs fn(i) for i in [0, n) across the options' parallelism
// and returns the first error.
func (o Options) forEachIndex(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := o.Parallelism
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		first atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					first.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := first.Load().(error); ok {
		return err
	}
	return nil
}

func (o Options) suite() []workload.Spec {
	all := workload.Suite()
	if o.Workloads == nil {
		return all
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		spec, err := workload.ByName(name)
		if err != nil {
			// Surface the typo instead of silently dropping the row;
			// experiments validate via Validate() below before running.
			continue
		}
		out = append(out, spec)
	}
	return out
}

// Validate reports configuration errors (unknown workload names) before
// any simulation runs.
func (o Options) Validate() error {
	for _, name := range o.Workloads {
		if _, err := workload.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// Column is one scheme column of a miss/CPI figure. Dynamic and
// static-ideal are distinct columns over the same anchor hardware.
type Column struct {
	Name string
	run  func(cfg sim.Config) (sim.Result, error)
}

// Columns returns the figure columns in the paper's legend order:
// Base, THP, Cluster, Cluster-2MB, RMM, Dynamic, Static Ideal.
func Columns(skipStaticIdeal bool) []Column {
	plain := func(s mmu.Scheme) func(sim.Config) (sim.Result, error) {
		return func(cfg sim.Config) (sim.Result, error) {
			cfg.Scheme = s
			return sim.Run(cfg)
		}
	}
	cols := []Column{
		{"base", plain(mmu.Base)},
		{"thp", plain(mmu.THP)},
		{"cluster", plain(mmu.Cluster)},
		{"cl.2mb", plain(mmu.Cluster2M)},
		{"rmm", plain(mmu.RMM)},
		{"dynamic", plain(mmu.Anchor)},
	}
	if !skipStaticIdeal {
		cols = append(cols, Column{"s.ideal", func(cfg sim.Config) (sim.Result, error) {
			cfg.Scheme = mmu.Anchor
			best, _, err := sim.RunStaticIdeal(cfg)
			return best, err
		}})
	}
	return cols
}

// MissRow is one benchmark's relative TLB misses across scheme columns
// (percent of the base scheme's misses).
type MissRow struct {
	Workload string
	Relative map[string]float64 // column name -> percent
	Base     sim.Result
}

// MissFigure is the structured form of Figures 2, 7, 8 and 9.
type MissFigure struct {
	Scenario mapping.Scenario
	Columns  []string
	Rows     []MissRow
}

// Mean returns the arithmetic mean of a column over all rows.
func (f MissFigure) Mean(col string) float64 {
	if len(f.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range f.Rows {
		sum += r.Relative[col]
	}
	return sum / float64(len(f.Rows))
}

// baseConfig assembles the shared simulation config for one cell.
func (o Options) baseConfig(spec workload.Spec, sc mapping.Scenario) sim.Config {
	return sim.Config{
		Workload: spec,
		Scenario: sc,
		Accesses: o.Accesses,
		Seed:     o.Seed,
		Pressure: o.Pressure,
	}
}

// MissesByScenario runs the full scheme matrix for one mapping scenario —
// the computation behind Figures 7 (demand) and 8 (medium contiguity).
func MissesByScenario(sc mapping.Scenario, opts Options) (MissFigure, error) {
	opts = opts.withDefaults()
	cols := Columns(opts.SkipStaticIdeal)
	fig := MissFigure{Scenario: sc}
	for _, c := range cols {
		fig.Columns = append(fig.Columns, c.Name)
	}
	suite := opts.suite()
	rows := make([]MissRow, len(suite))
	err := opts.forEachIndex(len(suite), func(i int) error {
		spec := suite[i]
		cfg := opts.baseConfig(spec, sc)
		base, err := sim.Run(func() sim.Config { c := cfg; c.Scheme = mmu.Base; return c }())
		if err != nil {
			return fmt.Errorf("report: %s/%v base: %w", spec.Name, sc, err)
		}
		row := MissRow{Workload: spec.Name, Relative: make(map[string]float64), Base: base}
		for _, col := range cols {
			res, err := col.run(cfg)
			if err != nil {
				return fmt.Errorf("report: %s/%v %s: %w", spec.Name, sc, col.Name, err)
			}
			row.Relative[col.Name] = res.RelativeMisses(base)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return fig, err
	}
	fig.Rows = rows
	return fig, nil
}

// WriteMissFigure renders a miss figure like the paper's bar charts:
// one row per benchmark plus the mean row, values in percent.
func WriteMissFigure(w io.Writer, title string, fig MissFigure) {
	fmt.Fprintf(w, "%s (relative TLB misses, %% of base; lower is better)\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range fig.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range fig.Rows {
		fmt.Fprint(tw, r.Workload)
		for _, c := range fig.Columns {
			fmt.Fprintf(tw, "\t%.1f", r.Relative[c])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "mean")
	for _, c := range fig.Columns {
		fmt.Fprintf(tw, "\t%.1f", fig.Mean(c))
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintln(w)
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
