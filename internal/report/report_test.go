package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hybridtlb/internal/mapping"
)

// fastOpts keeps matrix tests tractable: two contrasting benchmarks and
// short traces.
func fastOpts() Options {
	return Options{
		Accesses:  60_000,
		Seed:      7,
		Workloads: []string{"gups", "omnetpp"},
	}
}

func TestColumnsOrder(t *testing.T) {
	cols := Columns(false)
	want := []string{"base", "thp", "cluster", "cl.2mb", "rmm", "dynamic", "s.ideal"}
	if len(cols) != len(want) {
		t.Fatalf("got %d columns", len(cols))
	}
	for i, c := range cols {
		if c.Name != want[i] {
			t.Errorf("column %d = %s, want %s", i, c.Name, want[i])
		}
	}
	if got := Columns(true); len(got) != len(want)-1 {
		t.Error("SkipStaticIdeal did not drop a column")
	}
}

func TestMissesByScenarioShapes(t *testing.T) {
	opts := fastOpts()
	low, err := MissesByScenario(mapping.Low, opts)
	if err != nil {
		t.Fatal(err)
	}
	max, err := MissesByScenario(mapping.Max, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(low.Rows))
	}
	// Base column is 100% by construction.
	for _, r := range low.Rows {
		if r.Relative["base"] < 99.9 || r.Relative["base"] > 100.1 {
			t.Errorf("%s base relative = %.1f", r.Workload, r.Relative["base"])
		}
	}
	// Low contiguity: THP and RMM nearly ineffective, cluster helps,
	// dynamic at least matches cluster closely.
	if m := low.Mean("thp"); m < 85 {
		t.Errorf("low: THP mean %.1f, expected near 100", m)
	}
	if m := low.Mean("rmm"); m < 80 {
		t.Errorf("low: RMM mean %.1f, expected near 100", m)
	}
	// Per-benchmark: cluster clearly helps the SPEC-class workload at
	// low contiguity; gups (8 GiB uniform random) is beyond any scheme's
	// reach, as the paper's Table 5 shows.
	for _, r := range low.Rows {
		switch r.Workload {
		case "omnetpp":
			if r.Relative["cluster"] > 90 {
				t.Errorf("low/omnetpp: cluster %.1f, expected clear wins", r.Relative["cluster"])
			}
			if r.Relative["dynamic"] > r.Relative["cluster"]+10 {
				t.Errorf("low/omnetpp: dynamic (%.1f) much worse than cluster (%.1f)", r.Relative["dynamic"], r.Relative["cluster"])
			}
		case "gups":
			if r.Relative["thp"] < 90 {
				t.Errorf("low/gups: THP %.1f, expected ineffective", r.Relative["thp"])
			}
		}
	}
	// Max contiguity: RMM and dynamic nearly eliminate misses.
	if m := max.Mean("rmm"); m > 5 {
		t.Errorf("max: RMM mean %.1f, want < 5", m)
	}
	if m := max.Mean("dynamic"); m > 10 {
		t.Errorf("max: dynamic mean %.1f, want < 10", m)
	}
	// Static ideal never loses to dynamic beyond noise.
	for _, fig := range []MissFigure{low, max} {
		for _, r := range fig.Rows {
			if r.Relative["s.ideal"] > r.Relative["dynamic"]+5 {
				t.Errorf("%v/%s: static-ideal (%.1f) worse than dynamic (%.1f)",
					fig.Scenario, r.Workload, r.Relative["s.ideal"], r.Relative["dynamic"])
			}
		}
	}
}

// TestHeadlineResult is the paper's summary claim: across scenarios, the
// anchor scheme is better than or comparable to the best prior scheme.
func TestHeadlineResult(t *testing.T) {
	opts := fastOpts()
	// omnetpp's footprint-to-TLB-reach ratio is representative of the
	// paper's SPEC-class benchmarks at our simulation scale; gups is the
	// acknowledged worst case in the paper too (Table 5: 88% L2 misses
	// at medium contiguity) and is exercised elsewhere.
	opts.Workloads = []string{"omnetpp"}
	for _, sc := range []mapping.Scenario{mapping.Low, mapping.Medium, mapping.High, mapping.Max} {
		fig, err := MissesByScenario(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		bestPrior := 1e18
		for _, col := range []string{"thp", "cluster", "cl.2mb", "rmm"} {
			if m := fig.Mean(col); m < bestPrior {
				bestPrior = m
			}
		}
		dyn := fig.Mean("dynamic")
		if dyn > bestPrior*1.25+5 {
			t.Errorf("%v: dynamic (%.1f%%) clearly loses to best prior (%.1f%%)", sc, dyn, bestPrior)
		}
	}
}

func TestWriteMissFigure(t *testing.T) {
	fig := MissFigure{
		Columns: []string{"base", "dynamic"},
		Rows: []MissRow{
			{Workload: "gups", Relative: map[string]float64{"base": 100, "dynamic": 25}},
		},
	}
	var buf bytes.Buffer
	WriteMissFigure(&buf, "test figure", fig)
	out := buf.String()
	for _, want := range []string{"test figure", "gups", "100.0", "25.0", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Data(t *testing.T) {
	series, err := Fig1Data(1<<15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Pressure shifts the CDF left: the small-chunk mass at high
	// pressure exceeds the alone run's.
	alone, high := series[0], series[3]
	if cdfAt(high.CDF, 16) <= cdfAt(alone.CDF, 16) {
		t.Errorf("pressure did not shift CDF: alone %.3f vs high %.3f", cdfAt(alone.CDF, 16), cdfAt(high.CDF, 16))
	}
}

func TestTab5DataRowsSum(t *testing.T) {
	rows, err := Tab5Data(mapping.Medium, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.RegularHit + r.AnchorHit + r.Miss
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %.4f", r.Workload, sum)
		}
		if r.AnchorHit == 0 {
			t.Errorf("%s: zero anchor hits at medium contiguity", r.Workload)
		}
	}
}

func TestTab6Data(t *testing.T) {
	opts := fastOpts()
	data, err := Tab6Data(opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, per := range data {
		// Table 6: the low-contiguity mapping selects distance 4 for
		// every application.
		if per[mapping.Low] != 4 {
			t.Errorf("%s low distance = %d, want 4", name, per[mapping.Low])
		}
		// Max contiguity selects a much larger distance: exactly the
		// largest power of two dividing the (single-chunk) footprint
		// cleanly, 256 or more for every suite footprint.
		if per[mapping.Max] < 256 {
			t.Errorf("%s max distance = %d, want >= 256", name, per[mapping.Max])
		}
		if per[mapping.Max] <= per[mapping.Low] || per[mapping.Medium] < per[mapping.Low] {
			t.Errorf("%s distances not ordered with contiguity: %v", name, per)
		}
	}
}

func TestSweepData(t *testing.T) {
	rows, err := SweepData(1 << 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cost decreases sharply with distance (the paper's 452/71.7/1.7 ms
	// shape), and anchor counts are footprint/distance.
	for i, d := range []uint64{8, 64, 512} {
		if rows[i].Distance != d {
			t.Errorf("row %d distance = %d", i, rows[i].Distance)
		}
		if want := uint64(1<<17) / d; rows[i].Anchors != want {
			t.Errorf("d=%d anchors = %d, want %d", d, rows[i].Anchors, want)
		}
	}
	if !(rows[0].Millis > rows[1].Millis && rows[1].Millis > rows[2].Millis) {
		t.Errorf("sweep cost not decreasing: %+v", rows)
	}
	if ratio := rows[0].Millis / rows[1].Millis; ratio < 4 || ratio > 12 {
		t.Errorf("d8/d64 cost ratio = %.1f, want near 8 (paper: 6.3)", ratio)
	}
}

func TestRunRegistry(t *testing.T) {
	if len(Names()) != 15 {
		t.Errorf("experiments = %d", len(Names()))
	}
	var buf bytes.Buffer
	// The cheap experiments run end to end.
	for _, n := range []string{"tab3", "tab4", "sweep"} {
		if err := Run(n, &buf, fastOpts()); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	for _, want := range []string{"Table 3", "Table 4", "Section 3.3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := Run("nonesuch", &buf, Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig2Small(t *testing.T) {
	var buf bytes.Buffer
	opts := fastOpts()
	opts.Workloads = []string{"gups"}
	opts.Accesses = 40_000
	if err := Run("fig2", &buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("fig2 output malformed")
	}
}

// TestAllExperimentPrintersSmoke runs every registered experiment's
// printer end to end at tiny scale, asserting each emits its header.
func TestAllExperimentPrintersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("printer smoke matrix skipped in -short")
	}
	opts := Options{
		Accesses:        15_000,
		Seed:            7,
		Workloads:       []string{"omnetpp"},
		SkipStaticIdeal: true,
	}
	headers := map[string]string{
		"fig1":  "Figure 1",
		"fig2":  "Figure 2",
		"tab1":  "Table 1",
		"tab3":  "Table 3",
		"tab4":  "Table 4",
		"fig7":  "Figure 7",
		"fig8":  "Figure 8",
		"fig9":  "Figure 9",
		"tab5":  "Table 5",
		"tab6":  "Table 6",
		"fig10": "Figure 10",
		"fig11": "Figure 11",
		"sweep": "Section 3.3",
		"ext":   "Extensions",
		"churn": "Mapping churn",
	}
	for _, name := range Names() {
		var buf bytes.Buffer
		if err := Run(name, &buf, opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), headers[name]) {
			t.Errorf("%s output missing header %q", name, headers[name])
		}
	}
}

func TestCPIFigureShape(t *testing.T) {
	data, cols, err := CPIFigure(mapping.Medium, Options{
		Accesses:        20_000,
		Seed:            3,
		Workloads:       []string{"omnetpp", "gups"},
		SkipStaticIdeal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 6 {
		t.Fatalf("columns = %v", cols)
	}
	if len(data) != 2 {
		t.Fatalf("rows = %d", len(data))
	}
	for wl, per := range data {
		base := per["base"]
		dyn := per["dynamic"]
		if base.Total() <= 0 {
			t.Errorf("%s: zero base CPI", wl)
		}
		if dyn.Total() > base.Total()*1.01 {
			t.Errorf("%s: dynamic CPI %.3f above base %.3f", wl, dyn.Total(), base.Total())
		}
	}
}

func TestBuildJSON(t *testing.T) {
	opts := fastOpts()
	opts.Accesses = 20_000
	rep, err := BuildJSON(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MissFigures) != 6 {
		t.Fatalf("scenarios = %d", len(rep.MissFigures))
	}
	med, ok := rep.MissFigures["medium"]
	if !ok {
		t.Fatal("medium figure missing")
	}
	if med.Rows["gups"]["base"] < 99 {
		t.Errorf("base column not normalized: %v", med.Rows["gups"])
	}
	if len(rep.Distances["gups"]) != 6 {
		t.Errorf("distance scenarios = %d", len(rep.Distances["gups"]))
	}
	if rep.Distances["gups"]["low"] != 4 {
		t.Errorf("gups low distance = %d", rep.Distances["gups"]["low"])
	}
	b := rep.L2Breakdown["omnetpp"]
	if sum := b[0] + b[1] + b[2]; sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var parsed JSONReport
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if parsed.Options.Accesses != 20_000 {
		t.Errorf("round-tripped accesses = %d", parsed.Options.Accesses)
	}
}

// TestGoldenConfigTables pins the exact Table 3 / Table 4 output: these
// are pure configuration, so any drift is an unintended change to the
// reproduced setup.
func TestGoldenConfigTables(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("tab3", &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Run("tab4", &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	golden := `Table 3: TLB configuration
L1 4KB                64 entries, 4-way
L1 2MB                32 entries, 4-way
L2 shared             1024 entries, 8-way
cluster regular       768 entries, 6-way
cluster-8             320 entries, 5-way
range TLB             32 entries, fully associative
L2 hit                7 cycles
clust./RMM/anch. hit  8 cycles
page table walk       50 cycles

Table 4: synthetic mapping scenarios
low contiguity     1 - 16 pages (4KiB - 64KiB)
medium contiguity  1 - 512 pages (4KiB - 2MiB)
high contiguity    512 - 65536 pages (2MiB - 256MiB)
max contiguity     maximum

`
	if got := buf.String(); got != golden {
		t.Errorf("config tables drifted:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
