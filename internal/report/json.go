package report

import (
	"encoding/json"
	"io"

	"hybridtlb/internal/mapping"
)

// Machine-readable output: the structured results behind the main figures
// serialized as JSON, for plotting or regression tracking outside Go.

// JSONReport is the serializable form of the full evaluation.
type JSONReport struct {
	// Options echoes the scale parameters the report was produced with.
	Options struct {
		Accesses uint64  `json:"accesses"`
		Seed     int64   `json:"seed"`
		Pressure float64 `json:"pressure"`
	} `json:"options"`
	// MissFigures holds Figures 7-9: per-scenario, per-benchmark relative
	// misses by scheme column.
	MissFigures map[string]JSONMissFigure `json:"missFigures"`
	// Distances holds Table 6: benchmark -> scenario -> selected anchor
	// distance in pages.
	Distances map[string]map[string]uint64 `json:"anchorDistances"`
	// L2Breakdown holds Table 5 for the anchor scheme on the medium
	// mapping: benchmark -> [regularHit, anchorHit, miss] fractions.
	L2Breakdown map[string][3]float64 `json:"l2Breakdown"`
}

// JSONMissFigure is one scenario's miss matrix.
type JSONMissFigure struct {
	Columns []string                      `json:"columns"`
	Rows    map[string]map[string]float64 `json:"rows"` // benchmark -> column -> percent
	Means   map[string]float64            `json:"means"`
}

func toJSONMissFigure(f MissFigure) JSONMissFigure {
	out := JSONMissFigure{
		Columns: f.Columns,
		Rows:    make(map[string]map[string]float64, len(f.Rows)),
		Means:   make(map[string]float64, len(f.Columns)),
	}
	for _, r := range f.Rows {
		out.Rows[r.Workload] = r.Relative
	}
	for _, c := range f.Columns {
		out.Means[c] = f.Mean(c)
	}
	return out
}

// BuildJSON runs the figure matrices and assembles the JSON report.
func BuildJSON(opts Options) (JSONReport, error) {
	opts = opts.withDefaults()
	var rep JSONReport
	rep.Options.Accesses = opts.Accesses
	rep.Options.Seed = opts.Seed
	rep.Options.Pressure = opts.Pressure

	figs, err := Fig9Data(opts)
	if err != nil {
		return rep, err
	}
	rep.MissFigures = make(map[string]JSONMissFigure, len(figs))
	for sc, fig := range figs {
		rep.MissFigures[sc.String()] = toJSONMissFigure(fig)
	}

	dists, err := Tab6Data(opts)
	if err != nil {
		return rep, err
	}
	rep.Distances = make(map[string]map[string]uint64, len(dists))
	for wl, per := range dists {
		m := make(map[string]uint64, len(per))
		for sc, d := range per {
			m[sc.String()] = d
		}
		rep.Distances[wl] = m
	}

	rows, err := Tab5Data(mapping.Medium, opts)
	if err != nil {
		return rep, err
	}
	rep.L2Breakdown = make(map[string][3]float64, len(rows))
	for _, r := range rows {
		rep.L2Breakdown[r.Workload] = [3]float64{r.RegularHit, r.AnchorHit, r.Miss}
	}
	return rep, nil
}

// WriteJSON emits the full evaluation as indented JSON.
func WriteJSON(w io.Writer, opts Options) error {
	rep, err := BuildJSON(opts)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
