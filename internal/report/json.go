package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hybridtlb/internal/mapping"
)

// Machine-readable output: the structured results behind the main figures
// serialized as JSON, for plotting or regression tracking outside Go.

// JSONReport is the serializable form of the full evaluation.
type JSONReport struct {
	// Options echoes the scale parameters the report was produced with.
	Options struct {
		Accesses uint64  `json:"accesses"`
		Seed     int64   `json:"seed"`
		Pressure float64 `json:"pressure"`
	} `json:"options"`
	// MissFigures holds Figures 7-9: per-scenario, per-benchmark relative
	// misses by scheme column. Sections absent from the experiment
	// selection (see BuildJSONFor) are omitted.
	MissFigures map[string]JSONMissFigure `json:"missFigures,omitempty"`
	// Distances holds Table 6: benchmark -> scenario -> selected anchor
	// distance in pages.
	Distances map[string]map[string]uint64 `json:"anchorDistances,omitempty"`
	// L2Breakdown holds Table 5 for the anchor scheme on the medium
	// mapping: benchmark -> [regularHit, anchorHit, miss] fractions.
	L2Breakdown map[string][3]float64 `json:"l2Breakdown,omitempty"`
}

// JSONMissFigure is one scenario's miss matrix.
type JSONMissFigure struct {
	Columns []string                      `json:"columns"`
	Rows    map[string]map[string]float64 `json:"rows"` // benchmark -> column -> percent
	Means   map[string]float64            `json:"means"`
}

func toJSONMissFigure(f MissFigure) JSONMissFigure {
	out := JSONMissFigure{
		Columns: f.Columns,
		Rows:    make(map[string]map[string]float64, len(f.Rows)),
		Means:   make(map[string]float64, len(f.Columns)),
	}
	for _, r := range f.Rows {
		out.Rows[r.Workload] = r.Relative
	}
	for _, c := range f.Columns {
		out.Means[c] = f.Mean(c)
	}
	return out
}

// JSONExperiments lists the experiment names with a JSON form, in
// presentation order ("all" emits every section).
func JSONExperiments() []string {
	return []string{"all", "fig7", "fig8", "fig9", "tab5", "tab6"}
}

// BuildJSON runs the figure matrices and assembles the full JSON report.
func BuildJSON(opts Options) (JSONReport, error) {
	return BuildJSONFor("all", opts)
}

// BuildJSONFor assembles the JSON report for one experiment selection:
// "all" emits every section; fig7/fig8/fig9 emit the corresponding miss
// figures, tab5 the L2 breakdown, tab6 the anchor distances. Experiments
// without a JSON form are rejected with an error naming the supported
// set.
func BuildJSONFor(name string, opts Options) (JSONReport, error) {
	opts = opts.withDefaults()
	var rep JSONReport
	rep.Options.Accesses = opts.Accesses
	rep.Options.Seed = opts.Seed
	rep.Options.Pressure = opts.Pressure

	missFigures := func(scs ...mapping.Scenario) error {
		rep.MissFigures = make(map[string]JSONMissFigure, len(scs))
		for _, sc := range scs {
			fig, err := MissesByScenario(sc, opts)
			if err != nil {
				return err
			}
			rep.MissFigures[sc.String()] = toJSONMissFigure(fig)
		}
		return nil
	}
	distances := func() error {
		dists, err := Tab6Data(opts)
		if err != nil {
			return err
		}
		rep.Distances = make(map[string]map[string]uint64, len(dists))
		for wl, per := range dists {
			m := make(map[string]uint64, len(per))
			for sc, d := range per {
				m[sc.String()] = d
			}
			rep.Distances[wl] = m
		}
		return nil
	}
	breakdown := func() error {
		rows, err := Tab5Data(mapping.Medium, opts)
		if err != nil {
			return err
		}
		rep.L2Breakdown = make(map[string][3]float64, len(rows))
		for _, r := range rows {
			rep.L2Breakdown[r.Workload] = [3]float64{r.RegularHit, r.AnchorHit, r.Miss}
		}
		return nil
	}

	var err error
	switch name {
	case "all":
		if err = missFigures(mapping.All()...); err == nil {
			if err = distances(); err == nil {
				err = breakdown()
			}
		}
	case "fig7":
		err = missFigures(mapping.Demand)
	case "fig8":
		err = missFigures(mapping.Medium)
	case "fig9":
		err = missFigures(mapping.All()...)
	case "tab5":
		err = breakdown()
	case "tab6":
		err = distances()
	default:
		err = fmt.Errorf("report: experiment %q has no JSON form (JSON supports %s)",
			name, strings.Join(JSONExperiments(), ", "))
	}
	return rep, err
}

// WriteJSON emits the full evaluation as indented JSON.
func WriteJSON(w io.Writer, opts Options) error {
	return WriteJSONFor("all", w, opts)
}

// WriteJSONFor emits one experiment selection (see BuildJSONFor) as
// indented JSON.
func WriteJSONFor(name string, w io.Writer, opts Options) error {
	rep, err := BuildJSONFor(name, opts)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
