// Package fabric is the distributed sweep layer: a coordinator that
// shards sweep cells across a pool of remote workers over net/rpc, with
// heartbeat-tracked membership, lease-based work assignment, straggler
// stealing, and dead-worker recovery.
//
// The design leans on two properties the rest of the repository already
// guarantees. First, cells are content-addressed: hybridtlb.CellKey is
// a SHA-256 over the canonical cell configuration, and two cells with
// equal keys compute byte-identical results. Second, the persist store
// round-trips the engine's result payload losslessly. Together they
// make the store the result transport: workers upload completed cells
// into the coordinator's content-addressed store, and the coordinator
// assembles the sweep by running the ordinary local sweep engine with
// that store wired in — every distributed cell is a store hit, and any
// cell the fleet failed to deliver (no workers, repeated remote
// failures, mid-flight kills) is simply re-simulated locally. Degraded
// mode is therefore the same code path as a cache miss, and a fabric
// run is byte-identical to a single-process run by construction.
//
// The coordinator is clock-free: all timing — lease TTLs, heartbeat
// expiry, steal thresholds, the zero-worker fallback — is expressed in
// ticks of an externally driven counter (Coordinator.Tick). The cmd
// layer advances it from a wall-clock ticker; tests advance it by
// calling Tick directly. This keeps the package inside the repository's
// determinism lint boundary and makes every recovery path unit-testable
// without sleeping.
package fabric

import (
	"log/slog"

	"hybridtlb"
	"hybridtlb/internal/persist"
)

// Config tunes a Coordinator. Tick-denominated fields count calls to
// Coordinator.Tick; with the cmd layer's default 250ms tick period the
// defaults below mean: a worker is dead after ~3s of heartbeat silence,
// a lease may be stolen after ~10s, an unreachable fleet falls back to
// local simulation after ~5s, and a lease expires outright after ~10min.
type Config struct {
	// Store is the shared content-addressed result store — the result
	// transport between workers and the coordinator. Required.
	Store *persist.ResultStore
	// Version is this build's identity (internal/buildinfo.Version).
	// Workers offering a different string are rejected at registration:
	// mixed builds could disagree on simulation semantics and silently
	// poison the shared store.
	Version string
	// LeaseTTLTicks bounds how long one lease may stay outstanding
	// before it expires and its cell is re-enqueued (default 2400).
	LeaseTTLTicks int
	// DeadAfterTicks is the heartbeat silence after which a worker is
	// declared dead and its leases re-enqueued (default 12).
	DeadAfterTicks int
	// StealAfterTicks is the lease age after which an idle worker may
	// be granted a duplicate lease on the same cell — straggler
	// insurance; first completion wins (default 40).
	StealAfterTicks int
	// FallbackAfterTicks is how long the coordinator tolerates zero
	// live workers before resolving all pending cells locally, so a
	// sweep never hangs on an empty fleet (default 20).
	FallbackAfterTicks int
	// MaxRemoteAttempts bounds remote failures per cell before the
	// coordinator stops re-enqueueing it and resolves it locally
	// (default 2).
	MaxRemoteAttempts int
	// SweepParallelism bounds the assembly sweeper's local concurrency
	// (0: GOMAXPROCS). Assembly is mostly store hits; this matters only
	// for cells that fall back to local simulation.
	SweepParallelism int
	// Retry is the per-cell retry policy for locally simulated cells.
	Retry hybridtlb.RetryPolicy
	// Faults, when non-nil, injects seeded chaos into local simulation.
	Faults *hybridtlb.FaultInjector
	// Logger receives membership and recovery logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTLTicks <= 0 {
		c.LeaseTTLTicks = 2400
	}
	if c.DeadAfterTicks <= 0 {
		c.DeadAfterTicks = 12
	}
	if c.StealAfterTicks <= 0 {
		c.StealAfterTicks = 40
	}
	if c.FallbackAfterTicks <= 0 {
		c.FallbackAfterTicks = 20
	}
	if c.MaxRemoteAttempts <= 0 {
		c.MaxRemoteAttempts = 2
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// shortKey abbreviates a 64-hex cell key for logs and errors.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
