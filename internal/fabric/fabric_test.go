package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"hybridtlb"
	"hybridtlb/internal/persist"
)

const testVersion = "test-build-1"

func testCfg(scheme, scenario string) hybridtlb.SimulationConfig {
	return hybridtlb.SimulationConfig{
		Scheme: scheme, Workload: "gups", Scenario: scenario,
		Accesses: 2000, Seed: 42,
	}
}

// newTestCoordinator builds a coordinator with tick thresholds small
// enough that unit tests can cross them with a handful of Tick calls.
func newTestCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	store, err := persist.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(Config{
		Store:              store,
		Version:            testVersion,
		LeaseTTLTicks:      10,
		DeadAfterTicks:     3,
		StealAfterTicks:    4,
		FallbackAfterTicks: 5,
		MaxRemoteAttempts:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// computePayload runs cfg through the same engine path a worker uses
// and returns (key, engine-format payload).
func computePayload(t *testing.T, cfg hybridtlb.SimulationConfig) (string, []byte) {
	t.Helper()
	key, err := hybridtlb.CellKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capture := newCellStore(nil)
	sw := hybridtlb.NewSweeper(hybridtlb.SweepOptions{Store: capture})
	results, err := sw.Run(context.Background(), []hybridtlb.SimulationConfig{cfg}, nil)
	if err != nil || results[0].Err != nil {
		t.Fatalf("reference simulation failed: %v / %v", err, results[0].Err)
	}
	payload, ok := capture.payload(key)
	if !ok {
		t.Fatal("engine wrote no payload")
	}
	return key, payload
}

// startRun launches a coordinator Run on a goroutine and returns a
// channel carrying its outcome.
type runOutcome struct {
	results []hybridtlb.SweepResult
	err     error
}

func startRun(c *Coordinator, cfgs []hybridtlb.SimulationConfig) chan runOutcome {
	ch := make(chan runOutcome, 1)
	go func() {
		res, err := c.Run(context.Background(), cfgs, nil)
		ch <- runOutcome{res, err}
	}()
	return ch
}

// leaseEventually polls leaseFor until a grant arrives (the Run
// goroutine enqueues cells asynchronously).
func leaseEventually(t *testing.T, c *Coordinator, workerID string) LeaseReply {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l := c.leaseFor(&LeaseArgs{WorkerID: workerID})
		if l.Status == StatusGranted {
			return l
		}
		if l.Status == StatusUnregistered {
			t.Fatalf("worker %s unregistered while waiting for a lease", workerID)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no lease granted within the deadline")
	return LeaseReply{}
}

func TestRegisterRejectsVersionSkew(t *testing.T) {
	c := newTestCoordinator(t)
	rep := c.register(&RegisterArgs{Name: "w", Version: "other-build"})
	if !rep.VersionSkew || rep.WorkerID != "" {
		t.Fatalf("register with mismatched version = %+v, want a VersionSkew rejection", rep)
	}
	if rep.CoordinatorVersion != testVersion {
		t.Fatalf("skew reply CoordinatorVersion = %q, want %q", rep.CoordinatorVersion, testVersion)
	}
	if s := c.Snapshot(); s.Rejected != 1 || s.WorkersLive != 0 {
		t.Fatalf("snapshot = %+v, want 1 rejection, 0 live workers", s)
	}
	if rep := c.register(&RegisterArgs{Name: "w", Version: testVersion}); rep.VersionSkew || rep.WorkerID == "" {
		t.Fatalf("register with matching version = %+v, want admission", rep)
	}
}

// A worker offering a mismatched build must exit terminally through
// the structured VersionSkew reply field — not fall into the redial
// loop on an unrecognized error string.
func TestWorkerVersionSkewTerminal(t *testing.T) {
	c := newTestCoordinator(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go NewService(c).Serve(ln) //nolint:errcheck // returns nil when ln closes

	w, err := NewWorker(WorkerConfig{
		Coordinator: ln.Addr().String(),
		Name:        "skewed",
		Version:     "other-build",
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, errVersionSkew) {
			t.Fatalf("skewed worker exited with %v, want errVersionSkew", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("skewed worker kept retrying instead of exiting terminally")
	}
	if s := c.Snapshot(); s.Rejected == 0 || s.WorkersLive != 0 {
		t.Fatalf("snapshot = %+v, want a rejection and no live workers", s)
	}
}

// A lease that outlives its TTL must expire and put the cell back in
// the queue, where the next asking worker picks it up.
func TestLeaseExpiryReenqueues(t *testing.T) {
	c := newTestCoordinator(t)
	reg := c.register(&RegisterArgs{Name: "w1", Version: testVersion})
	cfg := testCfg("anchor", "demand")
	out := startRun(c, []hybridtlb.SimulationConfig{cfg})

	l1 := leaseEventually(t, c, reg.WorkerID)

	// The worker sits on the lease past the TTL. It keeps heartbeating
	// (so it is not declared dead) — this is specifically lease expiry.
	for i := 0; i < 12; i++ {
		c.heartbeat(&HeartbeatArgs{WorkerID: reg.WorkerID})
		c.Tick()
	}
	s := c.Snapshot()
	if s.Expired != 1 {
		t.Fatalf("snapshot = %+v, want 1 expired lease", s)
	}
	if s.Reenqueued != 1 {
		t.Fatalf("snapshot = %+v, want 1 re-enqueued cell", s)
	}

	// The cell is leasable again; completing it finishes the run.
	l2 := leaseEventually(t, c, reg.WorkerID)
	if l2.Key != l1.Key {
		t.Fatalf("re-lease handed key %s, want the expired cell %s", shortKey(l2.Key), shortKey(l1.Key))
	}
	key, payload := computePayload(t, cfg)
	if key != l2.Key {
		t.Fatalf("coordinator key %s != engine key %s", shortKey(l2.Key), shortKey(key))
	}
	rep := c.complete(&CompleteArgs{WorkerID: reg.WorkerID, LeaseID: l2.LeaseID, Key: l2.Key, Payload: payload})
	if !rep.Accepted {
		t.Fatal("completion of re-leased cell not accepted")
	}
	// The expired original lease is gone; completing it must be refused.
	if rep := c.complete(&CompleteArgs{WorkerID: reg.WorkerID, LeaseID: l1.LeaseID, Key: l1.Key, Payload: payload}); rep.Accepted {
		t.Fatal("stale completion of an expired lease was accepted")
	}

	o := <-out
	if o.err != nil {
		t.Fatalf("run failed: %v", o.err)
	}
	if len(o.results) != 1 || o.results[0].Err != nil {
		t.Fatalf("results = %+v, want one clean cell", o.results)
	}
}

// A worker that stops heartbeating is declared dead and its leases are
// re-enqueued for the survivors.
func TestDeadWorkerRecovery(t *testing.T) {
	c := newTestCoordinator(t)
	doomed := c.register(&RegisterArgs{Name: "doomed", Version: testVersion})
	survivor := c.register(&RegisterArgs{Name: "survivor", Version: testVersion})
	cfg := testCfg("colt", "medium")
	out := startRun(c, []hybridtlb.SimulationConfig{cfg})

	l := leaseEventually(t, c, doomed.WorkerID)

	// Only the survivor heartbeats; the doomed worker goes silent.
	for i := 0; i < 5; i++ {
		c.heartbeat(&HeartbeatArgs{WorkerID: survivor.WorkerID})
		c.Tick()
	}
	s := c.Snapshot()
	if s.WorkersDead != 1 || s.WorkersLive != 1 {
		t.Fatalf("snapshot = %+v, want 1 dead + 1 live worker", s)
	}
	if s.Reenqueued == 0 {
		t.Fatalf("snapshot = %+v, want the dead worker's lease re-enqueued", s)
	}

	// The dead worker is locked out.
	if rep := c.heartbeat(&HeartbeatArgs{WorkerID: doomed.WorkerID}); rep.Known {
		t.Fatal("dead worker still recognized by heartbeat")
	}
	if rep := c.leaseFor(&LeaseArgs{WorkerID: doomed.WorkerID}); rep.Status != StatusUnregistered {
		t.Fatalf("dead worker lease status = %s, want unregistered", rep.Status)
	}

	// The survivor picks the cell up and finishes the sweep.
	l2 := leaseEventually(t, c, survivor.WorkerID)
	if l2.Key != l.Key {
		t.Fatalf("survivor got key %s, want the recovered cell %s", shortKey(l2.Key), shortKey(l.Key))
	}
	_, payload := computePayload(t, cfg)
	if rep := c.complete(&CompleteArgs{WorkerID: survivor.WorkerID, LeaseID: l2.LeaseID, Key: l2.Key, Payload: payload}); !rep.Accepted {
		t.Fatal("survivor's completion not accepted")
	}
	o := <-out
	if o.err != nil || len(o.results) != 1 || o.results[0].Err != nil {
		t.Fatalf("run = (%+v, %v), want one clean cell", o.results, o.err)
	}
}

// An idle worker must be able to steal a straggler's cell: the lease is
// duplicated, first completion wins, the loser is refused.
func TestStragglerSteal(t *testing.T) {
	c := newTestCoordinator(t)
	slow := c.register(&RegisterArgs{Name: "slow", Version: testVersion})
	fast := c.register(&RegisterArgs{Name: "fast", Version: testVersion})
	cfg := testCfg("thp", "demand")
	out := startRun(c, []hybridtlb.SimulationConfig{cfg})

	l1 := leaseEventually(t, c, slow.WorkerID)

	// Before the steal threshold, the idle worker gets nothing.
	if rep := c.leaseFor(&LeaseArgs{WorkerID: fast.WorkerID}); rep.Status != StatusIdle {
		t.Fatalf("pre-threshold lease = %s, want idle", rep.Status)
	}
	for i := 0; i < 5; i++ {
		c.heartbeat(&HeartbeatArgs{WorkerID: slow.WorkerID})
		c.heartbeat(&HeartbeatArgs{WorkerID: fast.WorkerID})
		c.Tick()
	}
	l2 := c.leaseFor(&LeaseArgs{WorkerID: fast.WorkerID})
	if l2.Status != StatusGranted || !l2.Stolen || l2.Key != l1.Key {
		t.Fatalf("post-threshold lease = %+v, want a stolen grant of %s", l2, shortKey(l1.Key))
	}
	s := c.Snapshot()
	if s.Stolen != 1 {
		t.Fatalf("snapshot = %+v, want 1 steal", s)
	}
	// At most one duplicate: a third worker cannot steal again.
	third := c.register(&RegisterArgs{Name: "third", Version: testVersion})
	if rep := c.leaseFor(&LeaseArgs{WorkerID: third.WorkerID}); rep.Status != StatusIdle {
		t.Fatalf("double-steal attempt = %s, want idle", rep.Status)
	}

	// The thief completes first and wins; the straggler is refused.
	_, payload := computePayload(t, cfg)
	if rep := c.complete(&CompleteArgs{WorkerID: fast.WorkerID, LeaseID: l2.LeaseID, Key: l2.Key, Payload: payload}); !rep.Accepted {
		t.Fatal("thief's completion not accepted")
	}
	if rep := c.complete(&CompleteArgs{WorkerID: slow.WorkerID, LeaseID: l1.LeaseID, Key: l1.Key, Payload: payload}); rep.Accepted {
		t.Fatal("straggler's late completion was accepted after the steal won")
	}
	o := <-out
	if o.err != nil || len(o.results) != 1 || o.results[0].Err != nil {
		t.Fatalf("run = (%+v, %v), want one clean cell", o.results, o.err)
	}
}

// With zero live workers, pending cells must resolve to local
// simulation after the fallback window — a sweep can degrade but never
// hang on an empty fleet.
func TestLocalFallbackWithoutWorkers(t *testing.T) {
	c := newTestCoordinator(t)
	cfgs := []hybridtlb.SimulationConfig{
		testCfg("base", "demand"),
		testCfg("anchor", "medium"),
	}
	out := startRun(c, cfgs)

	deadline := time.Now().Add(10 * time.Second)
	var o runOutcome
	ticking := true
	for ticking {
		select {
		case o = <-out:
			ticking = false
		default:
			if time.Now().After(deadline) {
				t.Fatal("run never fell back to local simulation")
			}
			c.Tick()
			time.Sleep(time.Millisecond)
		}
	}
	if o.err != nil {
		t.Fatalf("run failed: %v", o.err)
	}
	s := c.Snapshot()
	if s.LocalFallback != 2 {
		t.Fatalf("snapshot = %+v, want both cells counted as local fallback", s)
	}
	if s.Uploads != 0 {
		t.Fatalf("snapshot = %+v, want no uploads with an empty fleet", s)
	}

	// Degraded-mode results are still byte-identical to a local run.
	ref, err := hybridtlb.SimulateSweep(context.Background(), cfgs, hybridtlb.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		assertSameResult(t, i, o.results[i], ref[i])
	}
}

// Remote failures past the attempt budget must defer the cell to local
// simulation instead of looping forever through the queue.
func TestRemoteFailureBudget(t *testing.T) {
	c := newTestCoordinator(t)
	reg := c.register(&RegisterArgs{Name: "flaky", Version: testVersion})
	cfg := testCfg("colt", "demand")
	out := startRun(c, []hybridtlb.SimulationConfig{cfg})

	// Two failed attempts exhaust MaxRemoteAttempts=2.
	l := leaseEventually(t, c, reg.WorkerID)
	c.complete(&CompleteArgs{WorkerID: reg.WorkerID, LeaseID: l.LeaseID, Key: l.Key, Error: "injected fault"})
	l = leaseEventually(t, c, reg.WorkerID)
	c.complete(&CompleteArgs{WorkerID: reg.WorkerID, LeaseID: l.LeaseID, Key: l.Key, Error: "injected fault"})

	o := <-out
	if o.err != nil || o.results[0].Err != nil {
		t.Fatalf("run = (%+v, %v), want local fallback to succeed", o.results, o.err)
	}
	s := c.Snapshot()
	if s.RemoteFailed != 2 || s.LocalFallback != 1 {
		t.Fatalf("snapshot = %+v, want 2 remote failures then 1 local fallback", s)
	}
}

// A cell resolved while a lease is still outstanding (here: its only
// interested run is canceled) lingers in c.cells until the lease
// comes back. A later Run wanting the same key must not attach to
// that zombie — it would block forever, since every recovery path
// skips resolved cells — but defer it to local assembly instead.
func TestRunAfterAbandonedCellWithOutstandingLease(t *testing.T) {
	c := newTestCoordinator(t)
	reg := c.register(&RegisterArgs{Name: "w", Version: testVersion})
	cfg := testCfg("anchor", "demand")

	ctx, cancel := context.WithCancel(context.Background())
	out1 := make(chan runOutcome, 1)
	go func() {
		res, err := c.Run(ctx, []hybridtlb.SimulationConfig{cfg}, nil)
		out1 <- runOutcome{res, err}
	}()
	l := leaseEventually(t, c, reg.WorkerID)
	cancel()
	<-out1 // abandon has run: the cell is resolved, the lease still out

	c.mu.Lock()
	cl := c.cells[l.Key]
	zombie := cl != nil && cl.resolved && cl.leases > 0
	c.mu.Unlock()
	if !zombie {
		t.Fatal("abandon did not leave a resolved cell with an outstanding lease")
	}

	// The second sweep for the same key must complete without any
	// worker activity (local assembly), not hang on the zombie.
	out2 := startRun(c, []hybridtlb.SimulationConfig{cfg})
	select {
	case o := <-out2:
		if o.err != nil || len(o.results) != 1 || o.results[0].Err != nil {
			t.Fatalf("run = (%+v, %v), want one clean cell", o.results, o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run blocked on the zombie resolved cell")
	}
}

// A successful payload arriving on an expired lease must not be
// discarded: the bytes are content-addressed, so the coordinator
// salvages them into the store and the waiting run resolves without
// re-simulating the cell.
func TestStaleCompletionSalvagesPayload(t *testing.T) {
	c := newTestCoordinator(t)
	reg := c.register(&RegisterArgs{Name: "late", Version: testVersion})
	cfg := testCfg("base", "medium")
	out := startRun(c, []hybridtlb.SimulationConfig{cfg})

	l := leaseEventually(t, c, reg.WorkerID)

	// Expire the lease (the worker keeps heartbeating — this is lease
	// staleness, not death); the cell goes back in the queue.
	for i := 0; i < 12; i++ {
		c.heartbeat(&HeartbeatArgs{WorkerID: reg.WorkerID})
		c.Tick()
	}
	if s := c.Snapshot(); s.Expired != 1 || s.Reenqueued != 1 {
		t.Fatalf("snapshot = %+v, want the lease expired and the cell re-enqueued", s)
	}

	// The straggler finishes anyway. The lease is stale (Accepted=false)
	// but the payload must land in the store and resolve the cell.
	_, payload := computePayload(t, cfg)
	if rep := c.complete(&CompleteArgs{WorkerID: reg.WorkerID, LeaseID: l.LeaseID, Key: l.Key, Payload: payload}); rep.Accepted {
		t.Fatal("stale completion reported as accepted")
	}
	if _, ok := c.store.Load(l.Key); !ok {
		t.Fatal("stale completion's payload was not salvaged into the store")
	}

	o := <-out
	if o.err != nil || len(o.results) != 1 || o.results[0].Err != nil {
		t.Fatalf("run = (%+v, %v), want one clean cell", o.results, o.err)
	}
	s := c.Snapshot()
	if s.Uploads != 1 {
		t.Fatalf("snapshot = %+v, want the salvage counted as an upload", s)
	}
	if s.LocalFallback != 0 {
		t.Fatalf("snapshot = %+v, want no local fallback (the salvage resolved the cell)", s)
	}
}

func assertSameResult(t *testing.T, i int, got, want hybridtlb.SweepResult) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("cell %d error mismatch: got %v, want %v", i, got.Err, want.Err)
	}
	g, err := json.Marshal(got.SimulationResult)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want.SimulationResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("cell %d diverged:\n got:  %s\n want: %s", i, g, w)
	}
}

// TestFabricEndToEnd runs the real stack in-process — coordinator,
// RPC listener, and two Worker runtimes over TCP — and checks that the
// distributed sweep is byte-identical to a single-process run, with
// the cells actually computed remotely.
func TestFabricEndToEnd(t *testing.T) {
	store, err := persist.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds here are generous: with a 2ms tick, tight unit-test
	// windows would flap workers dead between heartbeats under -race.
	c, err := NewCoordinator(Config{
		Store:              store,
		Version:            testVersion,
		LeaseTTLTicks:      10000,
		DeadAfterTicks:     500,
		StealAfterTicks:    100,
		FallbackAfterTicks: 10000,
		MaxRemoteAttempts:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	svc := NewService(c)
	go svc.Serve(ln) //nolint:errcheck // returns nil when ln closes

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Drive the fabric clock fast so heartbeat/steal machinery runs.
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.Tick()
			}
		}
	}()

	var wg sync.WaitGroup
	for _, name := range []string{"e2e-a", "e2e-b"} {
		w, err := NewWorker(WorkerConfig{
			Coordinator: ln.Addr().String(),
			Name:        name,
			Version:     testVersion,
			Heartbeat:   2 * time.Millisecond,
			Poll:        2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker exited: %v", err)
			}
		}()
	}

	cfgs := []hybridtlb.SimulationConfig{
		testCfg("base", "demand"),
		testCfg("anchor", "demand"),
		testCfg("thp", "medium"),
		testCfg("colt", "medium"),
		testCfg("anchor", "demand"), // duplicate: must coalesce to one cell
	}
	results, err := c.Run(context.Background(), cfgs, nil)
	if err != nil {
		t.Fatalf("fabric run failed: %v", err)
	}

	ref, err := hybridtlb.SimulateSweep(context.Background(), cfgs, hybridtlb.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		assertSameResult(t, i, results[i], ref[i])
	}

	s := c.Snapshot()
	if s.Uploads != 4 {
		t.Errorf("snapshot = %+v, want all 4 distinct cells computed remotely", s)
	}
	if s.LocalFallback != 0 {
		t.Errorf("snapshot = %+v, want no local fallback with a live fleet", s)
	}
	if s.WorkersLive != 2 {
		t.Errorf("snapshot = %+v, want 2 live workers", s)
	}

	// A second identical sweep is all store hits: nothing re-enters the
	// queue and no new uploads happen.
	again, err := c.Run(context.Background(), cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		assertSameResult(t, i, again[i], ref[i])
	}
	if s2 := c.Snapshot(); s2.Uploads != s.Uploads {
		t.Errorf("repeat sweep re-uploaded cells: %+v -> %+v", s, s2)
	}

	cancel()
	wg.Wait()
}

// TestServeClosesConnectionsOnShutdown pins the Serve teardown path:
// closing the listener must close every outstanding worker connection
// and join the per-connection goroutines before Serve returns. Without
// that, Serve's goroutines linger until the remote side hangs up —
// which an idle heartbeating worker never does.
func TestServeClosesConnectionsOnShutdown(t *testing.T) {
	c := newTestCoordinator(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- NewService(c).Serve(ln) }()

	client, err := rpc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A synchronous call proves the connection is live and being served
	// before the listener goes down.
	var reg RegisterReply
	if err := client.Call(ServiceName+".Register", &RegisterArgs{Name: "w", Version: testVersion}, &reg); err != nil {
		t.Fatalf("Register over live connection: %v", err)
	}

	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on listener close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within 5s of listener close; the idle worker connection kept it alive")
	}

	// Serve only returns after closing the connection and joining its
	// goroutine, so a further call must fail.
	var hb HeartbeatReply
	if err := client.Call(ServiceName+".Heartbeat", &HeartbeatArgs{WorkerID: reg.WorkerID}, &hb); err == nil {
		t.Fatal("call on a torn-down connection succeeded; Serve left the connection open")
	}
}

// TestWorkerDialBudgetExhausted: a worker pointed at a dead address
// must stop redialing after DialAttempts consecutive failures and
// surface ErrDialBudgetExhausted — the regression guard for workers
// spinning forever on a wrong or retired coordinator address.
func TestWorkerDialBudgetExhausted(t *testing.T) {
	// Grab a port that refuses connections: listen, note the address,
	// close. Nothing is accepting there afterwards.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	w, err := NewWorker(WorkerConfig{
		Coordinator:  addr,
		Version:      testVersion,
		DialAttempts: 3,
		RedialBase:   time.Millisecond,
		RedialMax:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDialBudgetExhausted) {
			t.Fatalf("Run = %v, want ErrDialBudgetExhausted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept redialing past its dial budget")
	}
}

// TestWorkerDialBudgetResetsAfterSession: once a session is
// established, the consecutive-dial counter starts over — the budget
// bounds "never reached the coordinator", not ordinary churn.
func TestWorkerDialBudgetResetsAfterSession(t *testing.T) {
	c := newTestCoordinator(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewService(c).Serve(ln) //nolint:errcheck // returns nil when ln closes

	w, err := NewWorker(WorkerConfig{
		Coordinator:  ln.Addr().String(),
		Version:      testVersion,
		DialAttempts: 2,
		RedialBase:   time.Millisecond,
		RedialMax:    5 * time.Millisecond,
		Heartbeat:    5 * time.Millisecond,
		Poll:         time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()

	// Let the worker register, then kill the listener: every session
	// end from here on is a failed dial, so with the counter reset by
	// the successful session the worker still gets its full budget of 2.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().WorkersLive != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}
	ln.Close() // Serve tears down the live session too
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDialBudgetExhausted) {
			t.Fatalf("Run = %v, want ErrDialBudgetExhausted after budget respent", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exhaust its dial budget after the coordinator died")
	}
}
