package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"hybridtlb"
	"hybridtlb/internal/persist"
)

// Coordinator shards sweep cells across registered workers and
// assembles results from the shared store. It implements the server's
// Runner seam (Run + Stats), so the HTTP layer is oblivious to whether
// sweeps execute in-process or across a fleet.
//
// All mutable state sits behind one mutex; nothing blocking happens
// under it (store I/O and progress callbacks run outside). Timing is
// tick-based — see the package comment.
type Coordinator struct {
	cfg     Config
	store   *persist.ResultStore
	sweeper *hybridtlb.Sweeper
	log     *slog.Logger

	mu        sync.Mutex
	tick      uint64
	zeroSince uint64 // tick when the live-worker count last reached zero (0: fleet non-empty)
	seq       int
	leaseSeq  uint64
	workers   map[string]*workerState
	cells     map[string]*cell
	queue     []string // FIFO of cell keys awaiting a lease
	queued    map[string]bool
	leases    map[uint64]*lease
	counters  counters
}

type counters struct {
	granted, stolen, reenqueued, expired uint64
	uploads, uploadErrors                uint64
	remoteFailed, localFallback          uint64
	rejected                             uint64
}

type workerState struct {
	id, name, version string
	dead              bool
	lastBeat          uint64
	leases            int
}

// cell is one distinct sweep cell the fabric is working on, shared by
// every run that wants its key.
type cell struct {
	key      string
	config   []byte // JSON-encoded hybridtlb.SimulationConfig for the wire
	leases   int    // outstanding leases (≤ 2: original + one steal)
	attempts int    // remote failures so far
	resolved bool   // uploaded to the store, or deferred to local assembly
	runs     []*run
}

type lease struct {
	id      uint64
	key     string
	worker  string
	granted uint64 // tick of grant
	stolen  bool
}

// run tracks one Run call's interest in a set of cells during the
// distribution phase.
type run struct {
	pending  map[string]int // cell key -> configs in this run mapping to it
	resolved int            // configs whose cell has resolved
	total    int
	progress func(done, total int)
	done     chan struct{}
	closed   bool
}

// notify is a progress callback captured under the lock and fired
// outside it.
type notify struct {
	fn          func(done, total int)
	done, total int
}

func fire(ns []notify) {
	for _, n := range ns {
		if n.fn != nil {
			n.fn(n.done, n.total)
		}
	}
}

// NewCoordinator builds a Coordinator over the shared result store.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fabric: Config.Store is required (it is the result transport)")
	}
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:   cfg,
		store: cfg.Store,
		log:   cfg.Logger,
		sweeper: hybridtlb.NewSweeper(hybridtlb.SweepOptions{
			Parallelism: cfg.SweepParallelism,
			Store:       cfg.Store,
			Retry:       cfg.Retry,
			Faults:      cfg.Faults,
		}),
		workers: make(map[string]*workerState),
		cells:   make(map[string]*cell),
		queued:  make(map[string]bool),
		leases:  make(map[uint64]*lease),
	}, nil
}

// Stats returns the assembly sweeper's cumulative cache statistics —
// for a fabric run, StoreHits is the count of remotely computed cells.
func (c *Coordinator) Stats() hybridtlb.CacheStats { return c.sweeper.Stats() }

// Run executes one sweep across the fleet. Distribution phase: every
// distinct cell not already in the store is enqueued for lease; the
// call waits until each has resolved (uploaded by a worker, or deferred
// to local simulation by the failure/fallback policy). Assembly phase:
// the ordinary local sweep engine runs over the original configs with
// the shared store wired in, so distributed cells are store hits and
// deferred cells re-simulate — results are byte-identical to a
// single-process run by construction. Cancelling ctx abandons pending
// cells and returns with the usual per-cell context errors.
func (c *Coordinator) Run(ctx context.Context, cfgs []hybridtlb.SimulationConfig, progress func(done, total int)) ([]hybridtlb.SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &run{
		pending:  make(map[string]int),
		total:    len(cfgs),
		progress: progress,
		done:     make(chan struct{}),
	}

	// Key every config up front. Invalid configs (bad names, TracePath)
	// are not distributed; the assembly phase reports their errors with
	// single-process fidelity.
	type want struct {
		key string
		cfg hybridtlb.SimulationConfig
	}
	var wants []want
	seen := make(map[string]bool)
	for _, cfg := range cfgs {
		if cfg.TracePath != "" {
			continue
		}
		key, err := hybridtlb.CellKey(cfg)
		if err != nil {
			continue
		}
		r.pending[key]++
		if !seen[key] {
			seen[key] = true
			wants = append(wants, want{key, cfg})
		}
	}

	// Probe the store outside the lock: already-computed cells resolve
	// without touching the fleet (the restart / stolen-cell fast path).
	var hits []string
	var misses []want
	for _, w := range wants {
		if _, ok := c.store.Load(w.key); ok {
			hits = append(hits, w.key)
		} else {
			misses = append(misses, w)
		}
	}

	c.mu.Lock()
	for _, key := range hits {
		r.resolved += r.pending[key]
		delete(r.pending, key)
	}
	enqueued := 0
	for _, w := range misses {
		cl := c.cells[w.key]
		if cl != nil && cl.resolved {
			// A cell can stay resolved in c.cells while a lease is still
			// outstanding (abandoned run, failure-budget fallback, empty-
			// fleet fallback). Attaching to it would never be credited —
			// complete() refuses the stale lease and every recovery path
			// skips resolved cells — so defer it to local assembly now.
			r.resolved += r.pending[w.key]
			delete(r.pending, w.key)
			continue
		}
		if cl == nil {
			raw, err := json.Marshal(w.cfg)
			if err != nil {
				// Unmarshalable config: defer to local assembly.
				r.resolved += r.pending[w.key]
				delete(r.pending, w.key)
				continue
			}
			cl = &cell{key: w.key, config: raw}
			c.cells[w.key] = cl
			c.queue = append(c.queue, w.key)
			c.queued[w.key] = true
			enqueued++
		}
		cl.runs = append(cl.runs, r)
	}
	if len(r.pending) == 0 && !r.closed {
		r.closed = true
		close(r.done)
	}
	distTotal, distDone := r.total, r.resolved
	c.mu.Unlock()

	if progress != nil {
		progress(distDone, distTotal)
	}
	c.log.Info("fabric sweep distributing",
		"cells", len(cfgs), "distinct", len(wants), "store_hits", len(hits), "enqueued", enqueued)

	select {
	case <-r.done:
	case <-ctx.Done():
		c.abandon(r)
	}

	// Assembly. Progress is clamped to the distribution high-water mark
	// so the job's reported progress never regresses between phases.
	floor := c.resolvedOf(r)
	wrapped := progress
	if progress != nil {
		wrapped = func(done, total int) {
			if done < floor {
				done = floor
			}
			progress(done, total)
		}
	}
	return c.sweeper.Run(ctx, cfgs, wrapped)
}

func (c *Coordinator) resolvedOf(r *run) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return r.resolved
}

// abandon detaches a canceled run from its pending cells. Cells no
// other run wants are resolved (leases already out become no-ops) so
// the fleet stops spending time on work nobody is waiting for.
func (c *Coordinator) abandon(r *run) {
	c.mu.Lock()
	keys := make([]string, 0, len(r.pending))
	for key := range r.pending {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cl := c.cells[key]
		if cl == nil {
			continue
		}
		kept := cl.runs[:0]
		for _, other := range cl.runs {
			if other != r {
				kept = append(kept, other)
			}
		}
		cl.runs = kept
		if len(cl.runs) == 0 && !cl.resolved {
			cl.resolved = true
			if cl.leases == 0 {
				delete(c.cells, key)
			}
		}
	}
	if !r.closed {
		r.closed = true
		close(r.done)
	}
	c.mu.Unlock()
}

// resolveLocked marks a cell resolved and credits every interested run,
// returning the progress notifications to fire after unlock.
func (c *Coordinator) resolveLocked(cl *cell) []notify {
	if cl.resolved {
		return nil
	}
	cl.resolved = true
	var ns []notify
	for _, r := range cl.runs {
		n := r.pending[cl.key]
		if n == 0 {
			continue
		}
		delete(r.pending, cl.key)
		r.resolved += n
		if r.progress != nil {
			ns = append(ns, notify{fn: r.progress, done: r.resolved, total: r.total})
		}
		if len(r.pending) == 0 && !r.closed {
			r.closed = true
			close(r.done)
		}
	}
	cl.runs = nil
	if cl.leases == 0 {
		delete(c.cells, cl.key)
	}
	return ns
}

// requeueLocked puts an unresolved, unleased cell back in the queue —
// the recovery path for dead workers, expired leases, and retryable
// remote failures.
func (c *Coordinator) requeueLocked(cl *cell) {
	if cl.resolved || cl.leases > 0 || c.queued[cl.key] {
		return
	}
	c.queue = append(c.queue, cl.key)
	c.queued[cl.key] = true
	c.counters.reenqueued++
}

// failRemoteLocked records one remote failure for a cell and either
// requeues it or — past the attempt budget — resolves it for local
// simulation during assembly. Returns notifications to fire.
func (c *Coordinator) failRemoteLocked(cl *cell) []notify {
	cl.attempts++
	c.counters.remoteFailed++
	if cl.attempts >= c.cfg.MaxRemoteAttempts {
		c.counters.localFallback++
		return c.resolveLocked(cl)
	}
	c.requeueLocked(cl)
	return nil
}

// register admits a worker, enforcing build-version agreement: a
// mismatched build gets a VersionSkew reply (not an RPC error, so the
// worker can detect it without string matching). The returned worker
// ID is the handle for every later call; the (possibly suffixed) name
// is the worker's metric label.
func (c *Coordinator) register(args *RegisterArgs) RegisterReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if args.Version != c.cfg.Version {
		c.counters.rejected++
		c.log.Warn("worker registration refused for version skew",
			"coordinator_version", c.cfg.Version, "worker_version", args.Version)
		return RegisterReply{CoordinatorVersion: c.cfg.Version, VersionSkew: true}
	}
	c.seq++
	name := args.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", c.seq)
	}
	taken := false
	for _, w := range c.workers {
		if !w.dead && w.name == name {
			taken = true
		}
	}
	if taken {
		name = fmt.Sprintf("%s-%d", name, c.seq)
	}
	id := fmt.Sprintf("w-%d", c.seq)
	c.workers[id] = &workerState{id: id, name: name, version: args.Version, lastBeat: c.tick}
	c.zeroSince = 0
	return RegisterReply{WorkerID: id, Name: name, CoordinatorVersion: c.cfg.Version}
}

// heartbeat refreshes a worker's liveness; Known=false tells the worker
// to re-register (coordinator restart, or it was declared dead).
func (c *Coordinator) heartbeat(args *HeartbeatArgs) HeartbeatReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[args.WorkerID]
	if w == nil || w.dead {
		return HeartbeatReply{Known: false}
	}
	w.lastBeat = c.tick
	return HeartbeatReply{Known: true}
}

// leaseFor hands the next pending cell to a worker. With an empty
// queue it considers stealing: the oldest lease past StealAfterTicks
// (held by someone else, cell not already double-leased) is duplicated,
// so one straggler cannot stall the tail of a sweep.
func (c *Coordinator) leaseFor(args *LeaseArgs) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[args.WorkerID]
	if w == nil || w.dead {
		return LeaseReply{Status: StatusUnregistered}
	}
	w.lastBeat = c.tick

	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		delete(c.queued, key)
		cl := c.cells[key]
		if cl == nil || cl.resolved {
			continue
		}
		return c.grantLocked(w, cl, false)
	}

	var victim *lease
	for _, l := range c.leases {
		if l.worker == args.WorkerID || c.tick-l.granted < uint64(c.cfg.StealAfterTicks) {
			continue
		}
		cl := c.cells[l.key]
		if cl == nil || cl.resolved || cl.leases >= 2 {
			continue
		}
		if victim == nil || l.granted < victim.granted ||
			(l.granted == victim.granted && l.id < victim.id) {
			victim = l
		}
	}
	if victim != nil {
		c.counters.stolen++
		return c.grantLocked(w, c.cells[victim.key], true)
	}
	return LeaseReply{Status: StatusIdle}
}

func (c *Coordinator) grantLocked(w *workerState, cl *cell, stolen bool) LeaseReply {
	c.leaseSeq++
	l := &lease{id: c.leaseSeq, key: cl.key, worker: w.id, granted: c.tick, stolen: stolen}
	c.leases[l.id] = l
	cl.leases++
	w.leases++
	c.counters.granted++
	return LeaseReply{Status: StatusGranted, LeaseID: l.id, Key: cl.key, Config: cl.config, Stolen: stolen}
}

// complete ingests one finished lease. A successful payload is saved to
// the shared store (outside the lock) and resolves the cell; a reported
// error goes through the failure policy. Stale leases — already expired,
// stolen-and-finished by the other holder, or from a worker declared
// dead — answer Accepted=false, but an error-free payload is salvaged
// into the store anyway: results are content-addressed, so the bytes
// are valid regardless of lease state, and saving them spares a full
// re-simulation of a cell that may already be back in the queue.
func (c *Coordinator) complete(args *CompleteArgs) CompleteReply {
	c.mu.Lock()
	if w := c.workers[args.WorkerID]; w != nil && !w.dead {
		w.lastBeat = c.tick
	}
	l := c.leases[args.LeaseID]
	live := l != nil && l.worker == args.WorkerID && l.key == args.Key
	if live {
		c.dropLeaseLocked(l)
	}
	cl := c.cells[args.Key]
	stale := !live || cl == nil || cl.resolved
	if stale {
		if cl != nil && cl.resolved && cl.leases == 0 {
			delete(c.cells, args.Key)
		}
		if args.Error != "" || len(args.Payload) == 0 {
			// Nothing to salvage.
			c.mu.Unlock()
			return CompleteReply{Accepted: false}
		}
	} else if args.Error != "" {
		ns := c.failRemoteLocked(cl)
		c.mu.Unlock()
		fire(ns)
		c.log.Warn("cell failed remotely", "key", shortKey(args.Key), "worker", args.WorkerID, "err", args.Error)
		return CompleteReply{Accepted: true}
	}
	c.mu.Unlock()

	// The store write happens outside the lock; persist's atomic rename
	// makes a racing duplicate upload (steal, or a stale-lease salvage)
	// benign — both write the same bytes under the same key.
	saveErr := c.store.Save(args.Key, args.Payload)

	c.mu.Lock()
	var ns []notify
	accepted := false
	cl = c.cells[args.Key]
	if saveErr != nil {
		c.counters.uploadErrors++
		if !stale && cl != nil && !cl.resolved {
			ns = c.failRemoteLocked(cl)
		}
	} else {
		c.counters.uploads++
		accepted = !stale
		if cl != nil && !cl.resolved {
			ns = c.resolveLocked(cl)
		}
	}
	c.mu.Unlock()
	fire(ns)
	if saveErr != nil {
		c.log.Warn("cell upload failed", "key", shortKey(args.Key), "err", saveErr)
	}
	return CompleteReply{Accepted: accepted}
}

// dropLeaseLocked removes a lease and its bookkeeping without touching
// cell resolution.
func (c *Coordinator) dropLeaseLocked(l *lease) {
	delete(c.leases, l.id)
	if w := c.workers[l.worker]; w != nil && w.leases > 0 {
		w.leases--
	}
	if cl := c.cells[l.key]; cl != nil && cl.leases > 0 {
		cl.leases--
	}
}

// Tick advances fabric time by one step: heartbeat-silent workers are
// declared dead (their leases re-enqueued), over-age leases expire, and
// a fleet that has been empty for FallbackAfterTicks resolves every
// pending cell for local simulation — a sweep can degrade, never hang.
// The cmd layer drives Tick from a wall-clock ticker; tests call it
// directly.
func (c *Coordinator) Tick() {
	var ns []notify
	var died []string
	c.mu.Lock()
	c.tick++

	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	live := 0
	for _, id := range ids {
		w := c.workers[id]
		if w.dead {
			continue
		}
		if c.tick-w.lastBeat > uint64(c.cfg.DeadAfterTicks) {
			w.dead = true
			died = append(died, w.name)
			lids := make([]uint64, 0, w.leases)
			for lid, l := range c.leases {
				if l.worker == id {
					lids = append(lids, lid)
				}
			}
			sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
			for _, lid := range lids {
				l := c.leases[lid]
				c.dropLeaseLocked(l)
				if cl := c.cells[l.key]; cl != nil {
					c.requeueLocked(cl)
				}
			}
			continue
		}
		live++
	}

	lids := make([]uint64, 0, len(c.leases))
	for lid := range c.leases {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	for _, lid := range lids {
		l := c.leases[lid]
		if c.tick-l.granted > uint64(c.cfg.LeaseTTLTicks) {
			c.counters.expired++
			c.dropLeaseLocked(l)
			if cl := c.cells[l.key]; cl != nil {
				c.requeueLocked(cl)
			}
		}
	}

	if live > 0 {
		c.zeroSince = 0
	} else {
		if c.zeroSince == 0 {
			c.zeroSince = c.tick
		}
		if c.tick-c.zeroSince >= uint64(c.cfg.FallbackAfterTicks) && len(c.cells) > 0 {
			keys := make([]string, 0, len(c.cells))
			for key := range c.cells {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				cl := c.cells[key]
				if cl == nil || cl.resolved {
					continue
				}
				c.counters.localFallback++
				ns = append(ns, c.resolveLocked(cl)...)
			}
		}
	}
	c.mu.Unlock()

	fire(ns)
	for _, name := range died {
		c.log.Warn("worker declared dead; leases re-enqueued", "worker", name)
	}
	if len(ns) > 0 && len(died) == 0 {
		c.log.Info("pending cells resolved for local simulation (no live workers)", "cells", len(ns))
	}
}

// WorkerLeases is one live worker's row in a Snapshot.
type WorkerLeases struct {
	Name   string
	Leases int
}

// Snapshot is a consistent view of fabric state for metrics and tests.
type Snapshot struct {
	Tick              uint64
	WorkersLive       int
	WorkersDead       int
	LeasesOutstanding int
	QueueDepth        int
	CellsPending      int
	Granted           uint64
	Stolen            uint64
	Reenqueued        uint64
	Expired           uint64
	Uploads           uint64
	UploadErrors      uint64
	RemoteFailed      uint64
	LocalFallback     uint64
	Rejected          uint64
	PerWorker         []WorkerLeases // live workers, sorted by name
}

// Snapshot returns current fabric state under one lock acquisition.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Tick:              c.tick,
		LeasesOutstanding: len(c.leases),
		QueueDepth:        len(c.queue),
		Granted:           c.counters.granted,
		Stolen:            c.counters.stolen,
		Reenqueued:        c.counters.reenqueued,
		Expired:           c.counters.expired,
		Uploads:           c.counters.uploads,
		UploadErrors:      c.counters.uploadErrors,
		RemoteFailed:      c.counters.remoteFailed,
		LocalFallback:     c.counters.localFallback,
		Rejected:          c.counters.rejected,
	}
	for _, cl := range c.cells {
		if !cl.resolved {
			s.CellsPending++
		}
	}
	for _, w := range c.workers {
		if w.dead {
			s.WorkersDead++
			continue
		}
		s.WorkersLive++
		s.PerWorker = append(s.PerWorker, WorkerLeases{Name: w.name, Leases: w.leases})
	}
	sort.Slice(s.PerWorker, func(i, j int) bool { return s.PerWorker[i].Name < s.PerWorker[j].Name })
	return s
}
