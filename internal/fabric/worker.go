package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"hybridtlb"
	"hybridtlb/internal/persist"
)

// errUnregistered signals that the coordinator no longer recognizes
// this worker; the fix is an immediate re-registration, not a backoff.
var errUnregistered = errors.New("fabric: worker not registered with coordinator")

// errVersionSkew is terminal: this binary can never register with that
// coordinator, so redialing would loop forever.
var errVersionSkew = errors.New("fabric: build version skew")

// errDial wraps a failed coordinator dial, so Run can tell "could not
// connect at all" apart from "a live session broke" when spending the
// dial budget.
var errDial = errors.New("fabric: dial coordinator")

// ErrDialBudgetExhausted is returned by Run when DialAttempts
// consecutive dials failed without a single session being established.
// Callers should treat it as "the coordinator address is wrong or the
// coordinator is gone" and exit nonzero so supervisors notice, instead
// of the worker spinning on a dead address forever.
var ErrDialBudgetExhausted = errors.New("fabric: coordinator unreachable; dial budget exhausted")

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Coordinator is the fabric RPC address to dial. Required.
	Coordinator string
	// Name is the advisory worker name (metric label); empty lets the
	// coordinator assign one.
	Name string
	// Version is this build's identity; must match the coordinator.
	Version string
	// Parallelism bounds concurrency inside one cell's simulation
	// (0: GOMAXPROCS). Cells are single simulations, so this mostly
	// stays 0.
	Parallelism int
	// Store, when non-nil, is a local artifact cache: cells this worker
	// (or a previous incarnation of it) already computed are served
	// from disk instead of re-simulated.
	Store *persist.ResultStore
	// StoreMaxBytes, when positive with Store set, prunes the local
	// cache oldest-first past this size after every completed cell.
	StoreMaxBytes int64
	// Retry is the per-cell retry policy for the local engine.
	Retry hybridtlb.RetryPolicy
	// Faults, when non-nil, injects seeded chaos into cell execution —
	// reused here as worker-side fault injection for fabric tests.
	Faults *hybridtlb.FaultInjector
	// Heartbeat is the liveness ping interval (default 1s).
	Heartbeat time.Duration
	// Poll is the idle wait between lease requests when the coordinator
	// has no work (default 250ms).
	Poll time.Duration
	// RedialBase/RedialMax bound the reconnect backoff
	// (defaults 500ms / 15s).
	RedialBase time.Duration
	RedialMax  time.Duration
	// DialAttempts caps consecutive failed dials before Run gives up
	// with ErrDialBudgetExhausted. Any established session resets the
	// count — the budget bounds "never reached the coordinator", not
	// ordinary session churn. 0: retry forever (the old behavior, and
	// the library default for embedders that manage their own budget).
	DialAttempts int
	// Logger receives session and cell logs (default slog.Default()).
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 500 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Worker is the fabric execution node: it registers with a
// coordinator, pulls cell leases, runs each through the ordinary local
// sweep engine, and uploads the engine-format payload. All state a
// worker holds is reconstructible, so killing one at any instant loses
// at most the cells it was mid-flight on — which the coordinator
// re-enqueues.
type Worker struct {
	cfg   WorkerConfig
	log   *slog.Logger
	cells atomic.Uint64 // completed cells (logs/tests)
}

// NewWorker builds a Worker; call Run to start it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fabric: WorkerConfig.Coordinator is required")
	}
	cfg = cfg.withDefaults()
	return &Worker{cfg: cfg, log: cfg.Logger}, nil
}

// Cells returns how many cells this worker has completed (successfully
// or with a reported error).
func (w *Worker) Cells() uint64 { return w.cells.Load() }

// Run drives the worker until ctx is canceled or the coordinator
// rejects this build (version skew — terminal, since retrying cannot
// help). Transport failures redial with capped exponential backoff; an
// "unregistered" answer re-registers immediately.
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := w.cfg.RedialBase
	failedDials := 0
	for {
		err := w.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, errVersionSkew) {
			return err
		}
		if errors.Is(err, errDial) {
			failedDials++
			if w.cfg.DialAttempts > 0 && failedDials >= w.cfg.DialAttempts {
				return fmt.Errorf("%w: %d consecutive dials to %s failed, last: %v",
					ErrDialBudgetExhausted, failedDials, w.cfg.Coordinator, err)
			}
		} else {
			// We reached the coordinator; whatever broke the session is
			// churn, not an unreachable address.
			failedDials = 0
		}
		if errors.Is(err, errUnregistered) {
			w.log.Info("coordinator forgot us; re-registering")
			backoff = w.cfg.RedialBase
			continue
		}
		w.log.Warn("coordinator session ended; redialing", "err", err, "backoff", backoff)
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		backoff *= 2
		if backoff > w.cfg.RedialMax {
			backoff = w.cfg.RedialMax
		}
	}
}

// session is one connect → register → lease-loop lifetime. It returns
// when the transport breaks, the coordinator disowns us, or ctx ends.
func (w *Worker) session(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", w.cfg.Coordinator)
	if err != nil {
		return fmt.Errorf("%w: %v", errDial, err)
	}
	client := rpc.NewClient(conn)
	defer client.Close() // best-effort teardown; double-close after the lease loop is ErrShutdown, which is fine

	var reg RegisterReply
	err = call(ctx, client, ServiceName+".Register",
		&RegisterArgs{Name: w.cfg.Name, Version: w.cfg.Version}, &reg)
	if err != nil {
		return err
	}
	if reg.VersionSkew {
		return fmt.Errorf("%w: coordinator runs %q, this worker is %q; deploy matching builds",
			errVersionSkew, reg.CoordinatorVersion, w.cfg.Version)
	}
	w.log.Info("registered with coordinator",
		"worker", reg.WorkerID, "name", reg.Name, "coordinator", w.cfg.Coordinator)

	// The heartbeat loop owns a session-scoped context: when the
	// coordinator stops recognizing us (or pings start failing) it
	// cancels the lease loop with the cause.
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		w.heartbeatLoop(sctx, cancel, client, reg.WorkerID)
	}()

	err = w.leaseLoop(sctx, client, reg.WorkerID)
	cancel(nil)
	// Closing the client unblocks any in-flight heartbeat RPC so the
	// join below cannot hang on a wedged connection.
	if cerr := client.Close(); cerr != nil && !errors.Is(cerr, rpc.ErrShutdown) {
		w.log.Debug("closing rpc client", "err", cerr)
	}
	hb.Wait()
	if cause := context.Cause(sctx); cause != nil && ctx.Err() == nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	return err
}

func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelCauseFunc, client *rpc.Client, id string) {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var rep HeartbeatReply
		if err := call(ctx, client, ServiceName+".Heartbeat", &HeartbeatArgs{WorkerID: id}, &rep); err != nil {
			cancel(fmt.Errorf("fabric: heartbeat: %w", err))
			return
		}
		if !rep.Known {
			cancel(errUnregistered)
			return
		}
	}
}

func (w *Worker) leaseLoop(ctx context.Context, client *rpc.Client, id string) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseReply
		if err := call(ctx, client, ServiceName+".Lease", &LeaseArgs{WorkerID: id}, &lease); err != nil {
			return err
		}
		switch lease.Status {
		case StatusUnregistered:
			return errUnregistered
		case StatusIdle:
			if err := sleepCtx(ctx, w.cfg.Poll); err != nil {
				return err
			}
			continue
		case StatusGranted:
		default:
			return fmt.Errorf("fabric: coordinator sent unknown lease status %q", lease.Status)
		}

		payload, cellErr := w.runCell(ctx, lease.Key, lease.Config)
		if ctx.Err() != nil {
			// Don't report a half-run cell; the coordinator's lease
			// machinery recovers it.
			return ctx.Err()
		}
		args := &CompleteArgs{WorkerID: id, LeaseID: lease.LeaseID, Key: lease.Key, Payload: payload}
		if cellErr != nil {
			args.Error = cellErr.Error()
			args.Payload = nil
		}
		var rep CompleteReply
		if err := call(ctx, client, ServiceName+".Complete", args, &rep); err != nil {
			return err
		}
		w.cells.Add(1)
		w.log.Info("cell completed",
			"key", shortKey(lease.Key), "stolen", lease.Stolen,
			"accepted", rep.Accepted, "failed", cellErr != nil)
		w.prune()
	}
}

// runCell executes one leased cell through a fresh local engine. The
// capture store records the engine's write-through — those bytes are
// the upload — and layers over the worker's optional disk cache so
// repeat leases are store hits, not re-simulations.
func (w *Worker) runCell(ctx context.Context, key string, rawCfg []byte) ([]byte, error) {
	var cfg hybridtlb.SimulationConfig
	if err := json.Unmarshal(rawCfg, &cfg); err != nil {
		return nil, fmt.Errorf("fabric: decode cell config: %w", err)
	}
	capture := newCellStore(w.cfg.Store)
	sw := hybridtlb.NewSweeper(hybridtlb.SweepOptions{
		Parallelism: w.cfg.Parallelism,
		Store:       capture,
		Retry:       w.cfg.Retry,
		Faults:      w.cfg.Faults,
	})
	results, err := sw.Run(ctx, []hybridtlb.SimulationConfig{cfg}, nil)
	if err != nil {
		return nil, err
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	payload, ok := capture.payload(key)
	if !ok {
		// The engine keys cells itself; a mismatch with the
		// coordinator's key means the config mutated in transit.
		return nil, fmt.Errorf("fabric: engine produced no payload under leased key %s", shortKey(key))
	}
	return payload, nil
}

// prune enforces the local cache cap after each completed cell.
func (w *Worker) prune() {
	if w.cfg.Store == nil || w.cfg.StoreMaxBytes <= 0 {
		return
	}
	n, err := w.cfg.Store.Prune(w.cfg.StoreMaxBytes)
	if err != nil {
		w.log.Warn("local store prune failed", "err", err)
	} else if n > 0 {
		w.log.Info("local store pruned", "removed", n, "max_bytes", w.cfg.StoreMaxBytes)
	}
}

// cellStore is the worker-side store seam: an in-memory capture of the
// engine's write-through for the cell being executed, layered over the
// optional persistent cache. Load promotes disk hits into memory so the
// payload to upload is always available after a run, whether the cell
// was simulated or cached.
type cellStore struct {
	mu   sync.Mutex
	mem  map[string][]byte
	disk *persist.ResultStore
}

func newCellStore(disk *persist.ResultStore) *cellStore {
	return &cellStore{mem: make(map[string][]byte), disk: disk}
}

func (s *cellStore) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	p, ok := s.mem[key]
	s.mu.Unlock()
	if ok {
		return p, true
	}
	if s.disk == nil {
		return nil, false
	}
	p, ok = s.disk.Load(key)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.mem[key] = p
	s.mu.Unlock()
	return p, true
}

func (s *cellStore) Save(key string, data []byte) error {
	s.mu.Lock()
	s.mem[key] = data
	s.mu.Unlock()
	if s.disk == nil {
		return nil
	}
	return s.disk.Save(key, data)
}

func (s *cellStore) payload(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.mem[key]
	return p, ok
}

// call issues one RPC, honoring ctx: cancellation abandons the call
// (the session teardown closes the client, reaping it).
func call(ctx context.Context, client *rpc.Client, method string, args, reply any) error {
	c := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case done := <-c.Done:
		return done.Error
	}
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
