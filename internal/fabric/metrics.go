package fabric

import (
	"fmt"
	"io"
)

// WriteMetrics renders the coordinator's fabric families in Prometheus
// text exposition format. The server mounts it through its
// ExtraMetrics seam so one /metrics scrape covers HTTP, sweep-cache,
// store, and fabric state.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	s := c.Snapshot()

	fmt.Fprintln(w, "# HELP fabric_workers Fabric workers by membership state.")
	fmt.Fprintln(w, "# TYPE fabric_workers gauge")
	fmt.Fprintf(w, "fabric_workers{state=\"live\"} %d\n", s.WorkersLive)
	fmt.Fprintf(w, "fabric_workers{state=\"dead\"} %d\n", s.WorkersDead)

	fmt.Fprintln(w, "# HELP fabric_worker_leases Leases currently held by each live worker.")
	fmt.Fprintln(w, "# TYPE fabric_worker_leases gauge")
	for _, wl := range s.PerWorker {
		fmt.Fprintf(w, "fabric_worker_leases{worker=%q} %d\n", wl.Name, wl.Leases)
	}

	fmt.Fprintln(w, "# HELP fabric_leases_outstanding Leases currently out with workers.")
	fmt.Fprintln(w, "# TYPE fabric_leases_outstanding gauge")
	fmt.Fprintf(w, "fabric_leases_outstanding %d\n", s.LeasesOutstanding)

	fmt.Fprintln(w, "# HELP fabric_queue_depth Cells awaiting a lease.")
	fmt.Fprintln(w, "# TYPE fabric_queue_depth gauge")
	fmt.Fprintf(w, "fabric_queue_depth %d\n", s.QueueDepth)

	fmt.Fprintln(w, "# HELP fabric_cells_pending Distinct cells not yet resolved.")
	fmt.Fprintln(w, "# TYPE fabric_cells_pending gauge")
	fmt.Fprintf(w, "fabric_cells_pending %d\n", s.CellsPending)

	fmt.Fprintln(w, "# HELP fabric_ticks_total Coordinator clock ticks processed.")
	fmt.Fprintln(w, "# TYPE fabric_ticks_total counter")
	fmt.Fprintf(w, "fabric_ticks_total %d\n", s.Tick)

	fmt.Fprintln(w, "# HELP fabric_leases_granted_total Cell leases handed to workers (steals included).")
	fmt.Fprintln(w, "# TYPE fabric_leases_granted_total counter")
	fmt.Fprintf(w, "fabric_leases_granted_total %d\n", s.Granted)

	fmt.Fprintln(w, "# HELP fabric_leases_stolen_total Duplicate leases granted on straggling cells.")
	fmt.Fprintln(w, "# TYPE fabric_leases_stolen_total counter")
	fmt.Fprintf(w, "fabric_leases_stolen_total %d\n", s.Stolen)

	fmt.Fprintln(w, "# HELP fabric_leases_reenqueued_total Cells put back in the queue after a dead worker, expired lease, or retryable remote failure.")
	fmt.Fprintln(w, "# TYPE fabric_leases_reenqueued_total counter")
	fmt.Fprintf(w, "fabric_leases_reenqueued_total %d\n", s.Reenqueued)

	fmt.Fprintln(w, "# HELP fabric_leases_expired_total Leases that outlived the TTL and were revoked.")
	fmt.Fprintln(w, "# TYPE fabric_leases_expired_total counter")
	fmt.Fprintf(w, "fabric_leases_expired_total %d\n", s.Expired)

	fmt.Fprintln(w, "# HELP fabric_store_uploads_total Cell payloads uploaded into the shared result store.")
	fmt.Fprintln(w, "# TYPE fabric_store_uploads_total counter")
	fmt.Fprintf(w, "fabric_store_uploads_total %d\n", s.Uploads)

	fmt.Fprintln(w, "# HELP fabric_store_upload_errors_total Uploads the coordinator failed to persist.")
	fmt.Fprintln(w, "# TYPE fabric_store_upload_errors_total counter")
	fmt.Fprintf(w, "fabric_store_upload_errors_total %d\n", s.UploadErrors)

	fmt.Fprintln(w, "# HELP fabric_cells_remote_failed_total Remote cell attempts that reported an error.")
	fmt.Fprintln(w, "# TYPE fabric_cells_remote_failed_total counter")
	fmt.Fprintf(w, "fabric_cells_remote_failed_total %d\n", s.RemoteFailed)

	fmt.Fprintln(w, "# HELP fabric_cells_local_fallback_total Cells resolved by local simulation after the fleet could not deliver them.")
	fmt.Fprintln(w, "# TYPE fabric_cells_local_fallback_total counter")
	fmt.Fprintf(w, "fabric_cells_local_fallback_total %d\n", s.LocalFallback)

	fmt.Fprintln(w, "# HELP fabric_workers_rejected_total Worker registrations refused for build-version skew.")
	fmt.Fprintln(w, "# TYPE fabric_workers_rejected_total counter")
	fmt.Fprintf(w, "fabric_workers_rejected_total %d\n", s.Rejected)
}
