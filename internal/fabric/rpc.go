package fabric

import (
	"errors"
	"net"
	"net/rpc"
	"sync"
)

// ServiceName is the RPC receiver name workers dial methods on
// ("Fabric.Register", "Fabric.Lease", ...).
const ServiceName = "Fabric"

// LeaseStatus is the coordinator's answer to a lease request.
type LeaseStatus string

const (
	// StatusGranted carries a cell to execute.
	StatusGranted LeaseStatus = "granted"
	// StatusIdle means no work is available right now; poll again.
	StatusIdle LeaseStatus = "idle"
	// StatusUnregistered means the coordinator does not recognize the
	// worker (restart, or it was declared dead); re-register.
	StatusUnregistered LeaseStatus = "unregistered"
)

// RegisterArgs announces a worker. Name is advisory (the coordinator
// may suffix it for uniqueness); Version must match the coordinator's
// build identity or registration is refused.
type RegisterArgs struct {
	Name    string
	Version string
}

// RegisterReply carries the worker's assigned identity — or, with
// VersionSkew set, a structured rejection: the worker's build does not
// match the coordinator's and no amount of retrying can help. Skew is
// a reply field rather than an RPC error so workers detect it
// machine-checkably instead of parsing error strings.
type RegisterReply struct {
	WorkerID           string
	Name               string
	CoordinatorVersion string
	VersionSkew        bool
}

// LeaseArgs requests one cell of work.
type LeaseArgs struct {
	WorkerID string
}

// LeaseReply carries a granted cell: its content-address Key and the
// JSON-encoded simulation config. Stolen marks a duplicate lease on a
// straggler's cell — informational only; execution is identical.
type LeaseReply struct {
	Status  LeaseStatus
	LeaseID uint64
	Key     string
	Config  []byte
	Stolen  bool
}

// CompleteArgs reports one finished lease: the engine-format result
// payload on success, or the cell's error string. Payload bytes are
// exactly what the worker's engine wrote through its store seam, so
// the coordinator can persist them verbatim.
type CompleteArgs struct {
	WorkerID string
	LeaseID  uint64
	Key      string
	Payload  []byte
	Error    string
}

// CompleteReply acknowledges a completion. Accepted=false means the
// lease was stale (expired, superseded by a steal, or from a dead
// worker); an error-free payload is still salvaged into the shared
// store, since content-addressed results are valid regardless of
// lease state.
type CompleteReply struct {
	Accepted bool
}

// HeartbeatArgs refreshes a worker's liveness.
type HeartbeatArgs struct {
	WorkerID string
}

// HeartbeatReply reports whether the coordinator still recognizes the
// worker; Known=false is the cue to re-register.
type HeartbeatReply struct {
	Known bool
}

// Service adapts a Coordinator to net/rpc method conventions. All
// methods are safe for concurrent use — net/rpc dispatches each call on
// its own goroutine.
type Service struct {
	c *Coordinator
}

// NewService wraps a Coordinator for RPC exposure.
func NewService(c *Coordinator) *Service { return &Service{c: c} }

// Register admits a worker, or reports version skew in the reply.
func (s *Service) Register(args *RegisterArgs, reply *RegisterReply) error {
	*reply = s.c.register(args)
	return nil
}

// Lease hands out the next pending cell, a stolen duplicate, or idle.
func (s *Service) Lease(args *LeaseArgs, reply *LeaseReply) error {
	*reply = s.c.leaseFor(args)
	return nil
}

// Complete ingests a finished cell.
func (s *Service) Complete(args *CompleteArgs, reply *CompleteReply) error {
	*reply = s.c.complete(args)
	return nil
}

// Heartbeat refreshes liveness.
func (s *Service) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	*reply = s.c.heartbeat(args)
	return nil
}

// Serve accepts worker connections on ln until the listener closes
// (clean nil return — the shutdown path) or fails. Each connection is
// served on its own goroutine, tracked so that when the listener goes
// down Serve closes every outstanding worker connection and joins the
// per-connection goroutines before returning — previously they lingered
// until the remote end hung up, which for an idle heartbeating worker
// is never.
func (s *Service) Serve(ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, s); err != nil {
		return err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
	)
	for {
		conn, err := ln.Accept()
		if err != nil {
			mu.Lock()
			for c := range conns {
				_ = c.Close() // unblocks ServeConn; double-close on a raced exit is harmless
			}
			mu.Unlock()
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			_ = conn.Close()
		}()
	}
}
