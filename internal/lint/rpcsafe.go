package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// RPCSafe vets types registered with net/rpc: handler methods must
// match the net/rpc contract (or they are silently not exposed), and
// args/reply types must survive a gob round-trip across a mixed fleet
// — exported fixed-layout fields only; no chan, func, or interface
// anywhere in the payload, and only basic-keyed maps.
var RPCSafe = &analysis.Analyzer{
	Name: "rpcsafe",
	Doc: "vet net/rpc service registrations: handler signatures and gob wire-safety\n\n" +
		"For every type passed to rpc.Register/RegisterName (package-level or\n" +
		"on a *rpc.Server), exported two-parameter methods must be\n" +
		"`func (t *T) M(args *A, reply *R) error` — net/rpc skips anything\n" +
		"else with only a runtime log line. A and R must be wire-safe for gob:\n" +
		"all fields exported (gob silently drops unexported ones), no\n" +
		"chan/func/interface fields at any depth, map keys restricted to basic\n" +
		"types. The fabric's cross-version fleet depends on these payloads\n" +
		"having a fixed, explicit layout.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRPCSafe,
}

func runRPCSafe(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	checked := map[*types.Named]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if inTestFile(pass, call.Pos()) {
			return
		}
		fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if fn == nil || (fn.Name() != "Register" && fn.Name() != "RegisterName") {
			return
		}
		if !isNetRPCFunc(fn) || len(call.Args) == 0 {
			return
		}
		svcArg := call.Args[len(call.Args)-1]
		t := pass.TypesInfo.TypeOf(svcArg)
		if t == nil {
			return
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || checked[named] {
			return
		}
		checked[named] = true
		checkService(pass, call.Pos(), named)
	})
	return nil, nil
}

func isNetRPCFunc(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/rpc" {
		return true
	}
	// Method on *rpc.Server.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/rpc" && obj.Name() == "Server"
}

// checkService vets every exported handler-shaped method of the
// registered type. callPos anchors diagnostics for types declared in
// other packages.
func checkService(pass *analysis.Pass, callPos token.Pos, named *types.Named) {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() != 2 {
			continue // not handler-shaped (Serve, helpers); net/rpc ignores it by design
		}
		pos := fn.Pos()
		if fn.Pkg() != pass.Pkg {
			pos = callPos
		}
		label := named.Obj().Name() + "." + fn.Name()

		if sig.Results().Len() != 1 || !isErrorResult(sig.Results().At(0).Type()) {
			report(pass, pos,
				"%s looks like an RPC handler but does not return exactly one error; net/rpc silently skips it", label)
			continue
		}
		argT, replyT := sig.Params().At(0).Type(), sig.Params().At(1).Type()
		if _, ok := replyT.Underlying().(*types.Pointer); !ok {
			report(pass, pos,
				"%s reply parameter is not a pointer; net/rpc silently skips the method", label)
			continue
		}
		for _, problem := range wireProblems(argT, map[*types.Named]bool{}, "") {
			report(pass, pos, "%s args type is not gob wire-safe: %s", label, problem)
		}
		for _, problem := range wireProblems(replyT, map[*types.Named]bool{}, "") {
			report(pass, pos, "%s reply type is not gob wire-safe: %s", label, problem)
		}
	}
}

func isErrorResult(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// wireProblems walks t and returns every reason a gob round-trip would
// mangle or reject it. path names the offending field chain.
func wireProblems(t types.Type, seen map[*types.Named]bool, path string) []string {
	at := func(what string) string {
		if path == "" {
			return what
		}
		return fmt.Sprintf("field %s %s", path, what)
	}
	switch u := t.(type) {
	case *types.Named:
		if seen[u] {
			return nil
		}
		seen[u] = true
		return wireProblems(u.Underlying(), seen, path)
	case *types.Pointer:
		return wireProblems(u.Elem(), seen, path)
	case *types.Slice:
		return wireProblems(u.Elem(), seen, path)
	case *types.Array:
		return wireProblems(u.Elem(), seen, path)
	case *types.Basic:
		return nil
	case *types.Map:
		var out []string
		if _, ok := u.Key().Underlying().(*types.Basic); !ok {
			out = append(out, at(fmt.Sprintf("has a non-basic map key %s; gob needs plainly comparable keys", u.Key())))
		}
		return append(out, wireProblems(u.Elem(), seen, path)...)
	case *types.Chan:
		return []string{at("is a chan; gob cannot encode channels")}
	case *types.Signature:
		return []string{at("is a func; gob cannot encode functions")}
	case *types.Interface:
		return []string{at("is an interface; gob needs concrete registered types and a mixed-version fleet cannot agree on them")}
	case *types.Struct:
		var out []string
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := f.Name()
			if path != "" {
				fpath = path + "." + f.Name()
			}
			if !f.Exported() {
				out = append(out, fmt.Sprintf("field %s is unexported; gob silently drops it", fpath))
				continue
			}
			out = append(out, wireProblems(f.Type(), seen, fpath)...)
		}
		return out
	}
	return nil
}
