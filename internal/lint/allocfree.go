package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// hotpathDirective marks a function or a for/range loop as part of the
// translation hot path: "//tlbvet:hotpath" in a function's doc comment
// or on the line directly above a loop statement.
const hotpathDirective = "tlbvet:hotpath"

// AllocFree forbids heap-escaping constructs inside regions annotated
// with //tlbvet:hotpath. The batched translation pipeline's value —
// 111.6 ns/access at 0 allocs (BENCH_pipeline.json), and the ROADMAP's
// sub-50ns target — rests on those loops never touching the allocator.
// This is the syntactic half of the proof; cmd/allocgate checks the
// compiler's escape analysis over the same regions.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "forbid heap-escaping constructs in //tlbvet:hotpath regions\n\n" +
		"Functions (doc comment) or for/range loops (line above) annotated\n" +
		"//tlbvet:hotpath may not contain: closures capturing outer variables,\n" +
		"append (it may grow past cap), make/new, map or slice literals, fmt\n" +
		"calls, string concatenation, go statements, or conversions of concrete\n" +
		"values to interface types — every one of these can reach the heap on\n" +
		"the per-access path. Hoist setup above the annotated region instead.\n" +
		"cmd/allocgate verifies the same regions against `go build -gcflags=-m`.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAllocFree,
}

func runAllocFree(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Directive positions per file line, so loop annotations (which the
	// AST does not attach to statements) can be matched by line number.
	type directive struct {
		pos  token.Pos
		used bool
	}
	directives := map[*token.File]map[int]*directive{}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isHotpathComment(c.Text) {
					continue
				}
				if directives[tf] == nil {
					directives[tf] = map[int]*directive{}
				}
				directives[tf][tf.Line(c.Pos())] = &directive{pos: c.Pos()}
			}
		}
	}
	// claim consumes the directive on the line above node start (or any
	// line of the doc comment group, for functions).
	claim := func(pos token.Pos, doc *ast.CommentGroup) bool {
		tf := pass.Fset.File(pos)
		lines := directives[tf]
		if lines == nil {
			return false
		}
		if doc != nil {
			found := false
			for _, c := range doc.List {
				if d := lines[tf.Line(c.Pos())]; d != nil && isHotpathComment(c.Text) {
					d.used, found = true, true
				}
			}
			if found {
				return true
			}
		}
		if d := lines[tf.Line(pos)-1]; d != nil {
			d.used = true
			return true
		}
		return false
	}

	var hotFuncs []*ast.FuncDecl // annotated functions, to skip nested loops
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass, fd.Pos()) {
			return
		}
		if claim(fd.Pos(), fd.Doc) {
			hotFuncs = append(hotFuncs, fd)
			checkHotRegion(pass, fd.Body, fd.Type)
		}
	})

	ins.WithStack([]ast.Node{(*ast.ForStmt)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || inTestFile(pass, n.Pos()) {
			return true
		}
		if !claim(n.Pos(), nil) {
			return true
		}
		// A loop inside an annotated function is already covered.
		encl := enclosingFunc(stack[:len(stack)-1])
		if fd, ok := encl.(*ast.FuncDecl); ok {
			for _, hot := range hotFuncs {
				if hot == fd {
					return true
				}
			}
		}
		var ft *ast.FuncType
		switch f := encl.(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		}
		checkHotRegion(pass, n, ft)
		return true
	})

	// Directives that matched neither a function nor a loop are dead
	// annotations — report them so the invariant they claim is real.
	for _, lines := range directives {
		for _, d := range lines {
			if !d.used {
				report(pass, d.pos,
					"misplaced //tlbvet:hotpath: the directive must be a function's doc comment or sit on the line above a for/range loop")
			}
		}
	}
	return nil, nil
}

func isHotpathComment(text string) bool {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	return t == hotpathDirective || strings.HasPrefix(t, hotpathDirective+" ")
}

// checkHotRegion walks one annotated region and reports every
// allocation-capable construct. enclosing is the type of the function
// the region belongs to (for return-statement conversions).
func checkHotRegion(pass *analysis.Pass, region ast.Node, enclosing *ast.FuncType) {
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if v := capturedVar(pass, n); v != nil {
				report(pass, n.Pos(),
					"closure captures %q on the hot path; captured closures escape to the heap — hoist it out of the //tlbvet:hotpath region or pass state explicitly", v.Name())
			} else {
				report(pass, n.Pos(),
					"function literal on the hot path; even a capture-free closure costs an indirect call — hoist it out of the //tlbvet:hotpath region")
			}
			return false
		case *ast.GoStmt:
			report(pass, n.Pos(), "go statement on the hot path allocates a goroutine per execution; move concurrency outside the //tlbvet:hotpath region")
			return false
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(pass, n.Pos(), "map literal allocates on the hot path; build the map outside the //tlbvet:hotpath region")
				case *types.Slice:
					report(pass, n.Pos(), "slice literal allocates on the hot path; preallocate it outside the //tlbvet:hotpath region")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && pass.TypesInfo.Types[n].Value == nil {
				report(pass, n.Pos(), "string concatenation allocates on the hot path; precompute the string or use fixed buffers outside the //tlbvet:hotpath region")
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		case *ast.ValueSpec:
			checkHotValueSpec(pass, n)
		case *ast.ReturnStmt:
			checkHotReturn(pass, n, enclosing)
		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Explicit conversions: T(x) with T an interface type.
	if tv, ok := pass.TypesInfo.Types[astUnparen(call.Fun)]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) {
			report(pass, call.Pos(),
				"conversion to interface %s allocates on the hot path; keep concrete types inside the //tlbvet:hotpath region", tv.Type.String())
		}
		return
	}
	if id, ok := astUnparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(pass, call.Pos(),
					"append may grow past cap and allocate on the hot path; preallocate outside the //tlbvet:hotpath region and assign by index")
			case "make", "new":
				report(pass, call.Pos(),
					"%s allocates on the hot path; hoist the allocation out of the //tlbvet:hotpath region", b.Name())
			}
			return
		}
	}
	fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(pass, call.Pos(),
			"fmt.%s allocates (boxing + formatting) on the hot path; format outside the //tlbvet:hotpath region", fn.Name())
		return
	}
	// Implicit conversions: concrete arguments passed to interface
	// parameters are boxed.
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		reportIfaceConversion(pass, arg, pt)
	}
}

// paramTypeAt resolves the parameter type for argument i, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func checkHotAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				report(pass, as.Pos(), "string concatenation allocates on the hot path; precompute the string outside the //tlbvet:hotpath region")
				return
			}
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		reportIfaceConversion(pass, as.Rhs[i], lt)
	}
}

func checkHotValueSpec(pass *analysis.Pass, vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	lt := pass.TypesInfo.TypeOf(vs.Type)
	if lt == nil || !types.IsInterface(lt.Underlying()) {
		return
	}
	for _, v := range vs.Values {
		reportIfaceConversion(pass, v, lt)
	}
}

func checkHotReturn(pass *analysis.Pass, ret *ast.ReturnStmt, ft *ast.FuncType) {
	if ft == nil || ft.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range ft.Results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // multi-value call return; out of scope
	}
	for i, r := range ret.Results {
		rt := resultTypes[i]
		if rt == nil || !types.IsInterface(rt.Underlying()) {
			continue
		}
		reportIfaceConversion(pass, r, rt)
	}
}

// reportIfaceConversion flags expr when assigning it to iface boxes a
// concrete value. Nil literals and values already of interface type
// convert for free.
func reportIfaceConversion(pass *analysis.Pass, expr ast.Expr, iface types.Type) {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil || types.IsInterface(t.Underlying()) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	report(pass, expr.Pos(),
		"%s is boxed into interface %s on the hot path; keep the concrete type inside the //tlbvet:hotpath region", t.String(), iface.String())
}

// capturedVar returns a variable the literal captures from an enclosing
// function, or nil. Package-level objects and the literal's own
// parameters/locals are not captures.
func capturedVar(pass *analysis.Pass, fl *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level; referenced directly, not captured
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = v
		}
		return true
	})
	return captured
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
