package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// LockSafe guards internal/server's locking discipline (and everyone
// else's): no blocking operation — channel send/receive, blocking
// select, time.Sleep, WaitGroup.Wait, subprocess or HTTP round-trips —
// while a sync.Mutex/RWMutex is held, and no methods or parameters
// that take a lock-bearing type by value.
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flag blocking calls while a sync mutex is held, and locks passed by value\n\n" +
		"A send or sleep under a held mutex stalls every other goroutine\n" +
		"contending for it — in a server, one slow subscriber freezes the whole\n" +
		"jobstore. Non-blocking sends (select with default) are fine. Value\n" +
		"receivers on mutex-bearing types copy the lock, so locking protects\n" +
		"nothing. The pass is intra-procedural and tracks Lock/Unlock pairs\n" +
		"linearly; deferred Unlock means the lock is held to the end of the\n" +
		"function.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockSafe,
}

func runLockSafe(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkLockByValue(pass, n)
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body != nil {
			walkLocked(pass, body.List, map[string]bool{})
		}
	})
	return nil, nil
}

// checkLockByValue flags value receivers and value parameters whose
// type contains a sync.Mutex or sync.RWMutex.
func checkLockByValue(pass *analysis.Pass, fd *ast.FuncDecl) {
	flag := func(fl *ast.Field, kind string) {
		t := pass.TypesInfo.TypeOf(fl.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if lock := containsLock(t, 0); lock != "" {
			report(pass, fl.Pos(), "%s of %s passes %s (which contains a %s) by value, copying the lock; use a pointer",
				kind, fd.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)), lock)
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			flag(fl, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			flag(fl, "parameter")
		}
	}
}

// containsLock reports the sync lock type embedded (possibly through
// nested structs) in t, or "" if none.
func containsLock(t types.Type, depth int) string {
	if depth > 4 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if lock := containsLock(st.Field(i).Type(), depth+1); lock != "" {
			return lock
		}
	}
	return ""
}

// walkLocked scans a statement list in order, tracking which mutexes
// are held (keyed by the receiver expression's source form). Branch
// bodies get a copy of the held set; a block's statements share it, so
// Lock() in statement i guards statements i+1..n.
func walkLocked(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmtLocked(pass, s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func walkStmtLocked(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op := lockOp(pass, s.X); key != "" {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		scanBlocking(pass, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// body — exactly what the linear scan already assumes — and
		// the deferred call itself runs after the body, so there is
		// nothing else to do here. Other deferred calls run at return
		// time; skip their interiors.
	case *ast.GoStmt:
		// The goroutine body runs concurrently, not under this lock
		// (it is analyzed on its own when the inspector reaches the
		// FuncLit).
	case *ast.SendStmt:
		if len(held) > 0 {
			report(pass, s.Pos(), "channel send while %s is held blocks every goroutine contending for the lock; send outside the critical section or use a non-blocking select", heldName(held))
		}
		scanBlocking(pass, s.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			report(pass, s.Pos(), "blocking select while %s is held; add a default case or move it outside the critical section", heldName(held))
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				walkLocked(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			scanBlocking(pass, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			scanBlocking(pass, e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmtLocked(pass, s.Init, held)
		}
		scanBlocking(pass, s.Cond, held)
		walkLocked(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			walkStmtLocked(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		walkLocked(pass, s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		walkLocked(pass, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		walkLocked(pass, s.List, held)
	case *ast.LabeledStmt:
		walkStmtLocked(pass, s.Stmt, held)
	}
}

// lockOp recognizes mu.Lock()/mu.Unlock()/mu.RLock()/mu.RUnlock()
// calls on sync mutexes (including embedded ones) and returns the
// receiver's source form plus the operation name.
func lockOp(pass *analysis.Pass, e ast.Expr) (key, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// scanBlocking looks inside an expression for operations that can
// block: channel receives and a small set of notoriously blocking
// calls. Function literals are skipped (they execute elsewhere).
func scanBlocking(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(pass, n.Pos(), "channel receive while %s is held; receive outside the critical section", heldName(held))
			}
		case *ast.CallExpr:
			if name := blockingCallName(pass, n); name != "" {
				report(pass, n.Pos(), "%s while %s is held stalls all lock contenders; call it outside the critical section", name, heldName(held))
			}
		}
		return true
	})
}

// blockingCalls maps full function names to their display form. These
// calls have unbounded latency; doing them under a lock turns one slow
// operation into a server-wide stall.
var blockingCalls = map[string]string{
	"time.Sleep":                    "time.Sleep",
	"(*sync.WaitGroup).Wait":        "WaitGroup.Wait",
	"(*os/exec.Cmd).Run":            "exec.Cmd.Run",
	"(*os/exec.Cmd).Wait":           "exec.Cmd.Wait",
	"(*os/exec.Cmd).Output":         "exec.Cmd.Output",
	"(*os/exec.Cmd).CombinedOutput": "exec.Cmd.CombinedOutput",
	"(*net/http.Client).Do":         "http.Client.Do",
	"net/http.Get":                  "http.Get",
	"net/http.Post":                 "http.Post",
}

func blockingCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	return blockingCalls[fn.FullName()]
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func heldName(held map[string]bool) string {
	// Deterministic pick: smallest key. (The lint package practices
	// what it preaches about map iteration.)
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
