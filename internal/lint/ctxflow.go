package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// CtxFlow enforces context propagation in library packages: a function
// that receives a context.Context must pass it on rather than minting
// context.Background()/context.TODO(), and library code without a
// context parameter must not create detached contexts either (thread
// one from the caller). Package main and _test.go files are exempt —
// that is where root contexts legitimately originate — and scope is
// otherwise discovered from the module path (scope.go), so new
// library packages are covered automatically.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require context.Context propagation; flag context.Background/TODO in library code\n\n" +
		"Timeouts, cancellation (server drain, Ctrl-C), and per-request deadlines\n" +
		"only work when every layer threads the caller's context. Creating\n" +
		"context.Background() mid-stack silently detaches the work from its\n" +
		"parent. The one sanctioned form is nil-normalization of the function's\n" +
		"own parameter: `if ctx == nil { ctx = context.Background() }`.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	// Package main is the cmd/ opt-out: root contexts originate there.
	// Everything else in the module is library code and in scope.
	if pass.Pkg.Name() == "main" || !inScope(pass.Pkg.Path(), "", "") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || inTestFile(pass, n.Pos()) {
			return true
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}

		ctxParams := contextParams(pass, enclosingFunc(stack))
		if len(ctxParams) > 0 && normalizesParam(pass, stack, ctxParams) {
			return true // `ctx = context.Background()` nil-guard on own parameter
		}
		switch {
		case fn.Name() == "TODO":
			report(pass, call.Pos(),
				"context.TODO marks unfinished context plumbing; thread a real context.Context from the caller")
		case len(ctxParams) > 0:
			report(pass, call.Pos(),
				"this function already receives a context.Context (%s); propagate it instead of context.Background()",
				ctxParams[0].Name())
		default:
			report(pass, call.Pos(),
				"context.Background() detaches this work from any caller; accept a context.Context parameter and thread it through")
		}
		return true
	})
	return nil, nil
}

// contextParams returns the context.Context parameters of fn (a
// FuncDecl or FuncLit), in declaration order.
func contextParams(pass *analysis.Pass, fn ast.Node) []*types.Var {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	default:
		return nil
	}
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// normalizesParam reports whether the Background()/TODO() call (leaf of
// stack) is the right-hand side of an assignment back onto one of the
// function's own context parameters — the nil-tolerant API idiom.
func normalizesParam(pass *analysis.Pass, stack []ast.Node, params []*types.Var) bool {
	if len(stack) < 2 {
		return false
	}
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	for _, p := range params {
		if obj == p {
			return true
		}
	}
	return false
}
