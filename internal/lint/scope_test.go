package lint

import "testing"

func TestModuleRelative(t *testing.T) {
	cases := []struct {
		path string
		rel  string
		ok   bool
	}{
		{"hybridtlb", ".", true},
		{"hybridtlb/internal/sim", "internal/sim", true},
		{"hybridtlb/cmd/tlbsim", "cmd/tlbsim", true},
		// linttest fixtures use their testdata-relative path as the
		// import path; the bare spellings are module-relative already.
		{"internal/sim", "internal/sim", true},
		{"cmd/tlbworker", "cmd/tlbworker", true},
		// Foreign packages are never in scope.
		{"fmt", "", false},
		{"plain", "", false},
		{"hybridtlbx/internal/sim", "", false},
	}
	for _, c := range cases {
		rel, ok := moduleRelative(c.path)
		if rel != c.rel || ok != c.ok {
			t.Errorf("moduleRelative(%q) = (%q, %v), want (%q, %v)", c.path, rel, ok, c.rel, c.ok)
		}
	}
}

func TestInScope(t *testing.T) {
	const optOut = defaultDeterminismOptOut // "cmd/,internal/server"
	const optIn = defaultDeterminismOptIn   // "cmd/tlbworker"
	cases := []struct {
		path string
		want bool
	}{
		// Discovery: every module package is in scope by construction.
		{"hybridtlb", true},
		{"hybridtlb/internal/sim", true},
		{"hybridtlb/internal/fabric", true},
		{"hybridtlb/internal/lint", true}, // dogfooding: the linter lints itself
		// Opt-out by prefix, with and without trailing slash semantics.
		{"hybridtlb/cmd/tlbsim", false},
		{"hybridtlb/internal/server", false},
		// A package merely sharing the prefix string is not excluded.
		{"hybridtlb/internal/serverutil", true},
		// Opt-in overrides opt-out.
		{"hybridtlb/cmd/tlbworker", true},
		// Fixture spellings behave identically.
		{"internal/sim", true},
		{"cmd/clockmain", false},
		{"cmd/tlbworker", true},
		{"plain", false},
	}
	for _, c := range cases {
		if got := inScope(c.path, optOut, optIn); got != c.want {
			t.Errorf("inScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestHasListedPrefix(t *testing.T) {
	cases := []struct {
		rel, list string
		want      bool
	}{
		{"cmd/tlbsim", "cmd/", true},
		{"cmd", "cmd/", true},
		{"cmdx", "cmd/", false},
		{"internal/server", "cmd/,internal/server", true},
		{"internal/server/sub", "internal/server", true},
		{"internal/serverutil", "internal/server", false},
		{"internal/sim", "", false},
		{"internal/sim", " internal/sim ", true},
	}
	for _, c := range cases {
		if got := hasListedPrefix(c.rel, c.list); got != c.want {
			t.Errorf("hasListedPrefix(%q, %q) = %v, want %v", c.rel, c.list, got, c.want)
		}
	}
}
