package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// MetricLint vets the hand-rolled Prometheus text exposition in metric
// writers: names must be valid, each family registered (# TYPE) exactly
// once per package, samples must belong to a registered family, and —
// the cardinality rule — a label value may not come from unbounded
// input. A label fed by job IDs or tenant strings mints a new time
// series per value and grows the scrape without bound.
var MetricLint = &analysis.Analyzer{
	Name: "metriclint",
	Doc: "vet Prometheus text exposition: metric names, single registration, bounded label cardinality\n\n" +
		"Applies to fmt.Fprint* calls whose format literal is a '# TYPE'/'# HELP'\n" +
		"line or a sample line (an underscore-containing metric name, optional\n" +
		"{labels}, then a value verb). Names and label names must match the\n" +
		"Prometheus grammar; a family may be # TYPE-registered once per package;\n" +
		"samples must match a registered family (histogram/summary suffixes\n" +
		"included). Label values must be provably bounded: literals, constants,\n" +
		"numeric verbs, or named string types (enum idiom, e.g. JobState). A\n" +
		"plain-string label value is allowed only when its label name is on the\n" +
		"reviewed -bounded-labels list — raw IDs mint one time series per value\n" +
		"and grow the scrape without bound. Package main and _test.go files are\n" +
		"exempt.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMetricLint,
}

// defaultBoundedLabels are label names reviewed as bounded even though
// their values are plain strings:
//
//   - route: HTTP route patterns — a closed set registered at startup
//     (the server records patterns, never raw paths).
//   - le: histogram bucket bounds from a fixed bucket table.
//   - worker: live fabric workers only — bounded by fleet size; dead
//     workers leave the gauge when membership declares them dead.
//   - tenant: names from the static keyfile loaded at startup — the
//     admission layer authenticates before any labeled counter is
//     touched, so unknown keys can never mint a series (see
//     internal/tenant's cardinality contract).
const defaultBoundedLabels = "route,le,worker,tenant"

var metricBoundedLabels string

func init() {
	MetricLint.Flags.StringVar(&metricBoundedLabels, "bounded-labels", defaultBoundedLabels,
		"comma-separated label names reviewed as bounded despite plain-string values")
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func runMetricLint(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	families := map[string]metricFamily{}
	type sampleRef struct {
		name string
		pos  token.Pos
	}
	var samples []sampleRef

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if inTestFile(pass, call.Pos()) {
			return
		}
		format, ok := fprintFormat(pass, call)
		if !ok {
			return
		}
		if name, kind, ok := parseTypeLine(format); ok {
			if !metricNameRe.MatchString(name) {
				report(pass, call.Pos(), "invalid Prometheus metric name %q in # TYPE line", name)
				return
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				report(pass, call.Pos(), "invalid Prometheus metric type %q for %s (want counter/gauge/histogram/summary/untyped)", kind, name)
			}
			if prev, dup := families[name]; dup {
				report(pass, call.Pos(), "metric %s is # TYPE-registered more than once in this package (previous registration at %s)",
					name, pass.Fset.Position(prev.pos))
				return
			}
			families[name] = metricFamily{kind: kind, pos: call.Pos()}
			return
		}
		if name, ok := parseHelpLine(format); ok {
			if !metricNameRe.MatchString(name) {
				report(pass, call.Pos(), "invalid Prometheus metric name %q in # HELP line", name)
			}
			return
		}
		s, ok := parseSampleLine(format)
		if !ok {
			return
		}
		if !metricNameRe.MatchString(s.name) {
			report(pass, call.Pos(), "invalid Prometheus metric name %q in sample line", s.name)
			return
		}
		samples = append(samples, sampleRef{name: s.name, pos: call.Pos()})
		for _, l := range s.labels {
			if !labelNameRe.MatchString(l.name) {
				report(pass, call.Pos(), "invalid Prometheus label name %q on metric %s", l.name, s.name)
				continue
			}
			if l.verbIndex < 0 {
				continue // literal label value; bounded by construction
			}
			arg := verbArg(call, l.verbIndex)
			if arg == nil {
				continue
			}
			if boundedLabelValue(pass, arg) || boundedLabelName(l.name) {
				continue
			}
			report(pass, call.Pos(),
				"label %q on metric %s takes an unbounded plain-string value; every distinct value mints a new time series — use a bounded enum type, aggregate the metric, or add the label to metriclint's reviewed -bounded-labels list",
				l.name, s.name)
		}
	})

	// Samples must belong to a family registered in this package; a
	// sample without a # TYPE renders as untyped and hides from tooling.
	if len(families) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i].pos < samples[j].pos })
		for _, s := range samples {
			if !sampleMatchesFamily(s.name, families) {
				report(pass, s.pos, "sample for %s has no # TYPE registration in this package", s.name)
			}
		}
	}
	return nil, nil
}

// metricFamily is one # TYPE registration.
type metricFamily struct {
	kind string
	pos  token.Pos
}

func sampleMatchesFamily(name string, families map[string]metricFamily) bool {
	if _, ok := families[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f, ok := families[base]; ok && (f.kind == "histogram" || f.kind == "summary") {
			return true
		}
	}
	return false
}

// fprintFormat extracts the string literal a fmt.Fprint/Fprintf/Fprintln
// call writes, which is where metric lines are born in this codebase.
func fprintFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	switch fn.Name() {
	case "Fprintf", "Fprintln", "Fprint":
	default:
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	lit, ok := astUnparen(call.Args[1]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func parseTypeLine(s string) (name, kind string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(s), "# TYPE ")
	if !found {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

func parseHelpLine(s string) (name string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(s), "# HELP ")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

type sampleLabel struct {
	name      string
	verbIndex int // ordinal among the format's verbs; -1 for a literal value
}

type sampleLine struct {
	name   string
	labels []sampleLabel
}

// parseSampleLine recognizes `name{label=value,...} value\n` and
// `name value\n` shapes. The heuristic is deliberately conservative:
// the name must contain an underscore (every project metric does;
// prose like "event: %s" does not) and the value must be a verb or a
// number, so ordinary Fprintf output never matches.
func parseSampleLine(s string) (sampleLine, bool) {
	var out sampleLine
	line := strings.TrimSuffix(s, "\n")
	if strings.Contains(line, "\n") || strings.HasPrefix(line, "#") {
		return out, false
	}
	i := 0
	for i < len(line) && isMetricNameChar(line[i], i == 0) {
		i++
	}
	name := line[:i]
	if name == "" || !strings.Contains(name, "_") {
		return out, false
	}
	out.name = name
	rest := line[i:]
	verbsBefore := countVerbs(name)
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return out, false
		}
		labelBlock := rest[1:end]
		rest = rest[end+1:]
		for _, part := range splitLabels(labelBlock) {
			eq := strings.Index(part, "=")
			if eq < 0 {
				return out, false
			}
			lname := strings.TrimSpace(part[:eq])
			lval := strings.TrimSpace(part[eq+1:])
			verbs := countVerbs(part[:eq])
			verbsBefore += verbs
			vi := -1
			if n := countVerbs(lval); n > 0 {
				vi = verbsBefore
				verbsBefore += n
			}
			out.labels = append(out.labels, sampleLabel{name: lname, verbIndex: vi})
		}
	}
	if !strings.HasPrefix(rest, " ") {
		return out, false
	}
	val := strings.TrimSpace(rest)
	if val == "" {
		return out, false
	}
	if strings.HasPrefix(val, "%") && countVerbs(val) == 1 {
		return out, true
	}
	if _, err := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); err == nil {
		return out, true
	}
	return out, false
}

func isMetricNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// splitLabels splits a label block on commas outside quotes.
func splitLabels(block string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, block[start:i])
				start = i + 1
			}
		}
	}
	if start < len(block) {
		parts = append(parts, block[start:])
	}
	return parts
}

// countVerbs counts format verbs (%d, %q, ...) in s, ignoring %%.
func countVerbs(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		if i+1 < len(s) && s[i+1] == '%' {
			i++
			continue
		}
		j := i + 1
		for j < len(s) && strings.ContainsRune("+-# .0123456789[]*", rune(s[j])) {
			j++
		}
		if j < len(s) {
			n++
			i = j
		}
	}
	return n
}

// verbArg maps a verb ordinal to the matching variadic argument of a
// Fprintf call (args[0] is the writer, args[1] the format).
func verbArg(call *ast.CallExpr, verbIndex int) ast.Expr {
	i := 2 + verbIndex
	if i >= len(call.Args) {
		return nil
	}
	return call.Args[i]
}

// boundedLabelValue reports whether the expression feeding a label verb
// is provably bounded: a constant, a numeric, or a named (enum-idiom)
// string type. Plain strings are unbounded unless the label name is on
// the reviewed list.
func boundedLabelValue(pass *analysis.Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return false
	}
	if tv.Value != nil {
		return true // constant
	}
	t := tv.Type
	if b, ok := t.Underlying().(*types.Basic); ok {
		if b.Info()&(types.IsInteger|types.IsFloat|types.IsBoolean) != 0 {
			return true
		}
		if b.Info()&types.IsString != 0 {
			// Named string types are the enum idiom (JobState,
			// LeaseStatus): a closed set by construction.
			if _, named := t.(*types.Named); named {
				return true
			}
		}
	}
	return false
}

func boundedLabelName(name string) bool {
	for _, l := range strings.Split(metricBoundedLabels, ",") {
		if strings.TrimSpace(l) == name {
			return true
		}
	}
	return false
}
