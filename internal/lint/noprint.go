package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// NoPrint forbids writing to stdout from library packages. The eval
// pipeline diffs golden output byte-for-byte, and the server logs
// structured records via log/slog — a stray fmt.Println in a hot path
// corrupts both. Library code returns values, writes to an injected
// io.Writer, or logs through log/slog; only package main owns stdout.
var NoPrint = &analysis.Analyzer{
	Name: "noprint",
	Doc: "forbid fmt.Print*/print/println in library packages\n\n" +
		"Direct stdout writes from a library bypass the injected io.Writer\n" +
		"plumbing that keeps golden files reproducible, and interleave rawly\n" +
		"with slog's structured output in the server. Package main and test\n" +
		"files are exempt.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNoPrint,
}

func runNoPrint(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		switch fn := typeutil.Callee(pass.TypesInfo, call).(type) {
		case *types.Func:
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println":
					report(pass, call.Pos(),
						"fmt.%s writes to stdout from a library package; return the value, write to an injected io.Writer, or use log/slog",
						fn.Name())
				}
			}
		case *types.Builtin:
			if fn.Name() == "print" || fn.Name() == "println" {
				report(pass, call.Pos(),
					"builtin %s writes to stderr from a library package and is not part of the supported output surface; use log/slog",
					fn.Name())
			}
		}
	})
	return nil, nil
}
