package lint

import "strings"

// Module-path-prefix scope discovery. Earlier tlbvet versions kept a
// hand-maintained import-path list inside the determinism analyzer;
// every new package (internal/persist in PR 4, internal/fabric in
// PR 6, ...) had to be appended by hand or it silently escaped the
// lint. Discovery inverts that: every package under the module is in
// scope by construction, and *exclusion* is the explicit, reviewable
// act — a package leaves the determinism scope only by appearing in
// the opt-out list below with a reason.
//
// Paths are matched in two spellings because the analyzers run in two
// harnesses: under `go vet` a package path is fully qualified
// ("hybridtlb/internal/sim"), while linttest fixtures use their
// testdata-relative path ("internal/sim") as the import path. Both
// normalize to the same module-relative form.

// modulePath is this module's import path (go.mod). The analyzers
// cannot see go.mod — unitchecker hands them one compilation unit at a
// time — so the prefix is pinned here.
const modulePath = "hybridtlb"

// defaultDeterminismOptOut lists module-relative path prefixes excluded
// from the determinism scope. Every entry needs a defensible reason:
//
//   - cmd/: binaries own wall-clock concerns (tickers, timeouts,
//     progress meters). Simulation determinism is enforced where the
//     results are produced, in the libraries beneath them.
//   - internal/server: HTTP service infrastructure — request-latency
//     histograms and journal timestamps legitimately read the wall
//     clock. Byte-identity of its *results* is enforced in the sweep
//     and sim layers it delegates to (and pinned by equivalence tests).
const defaultDeterminismOptOut = "cmd/,internal/server"

// defaultDeterminismOptIn re-admits packages that a broader opt-out
// prefix would exclude. cmd/tlbworker executes sweep cells for the
// fabric: every worker must simulate a cell bit-for-bit identically or
// the content-addressed store and first-Complete-wins protocol break,
// so it is held to library determinism despite being a binary.
const defaultDeterminismOptIn = "cmd/tlbworker"

// moduleRelative maps a package path to its module-relative form, and
// reports whether the package belongs to this module at all. Fixture
// paths ("internal/sim", "cmd/x") are already module-relative.
func moduleRelative(path string) (string, bool) {
	switch {
	case path == modulePath:
		return ".", true
	case strings.HasPrefix(path, modulePath+"/"):
		return strings.TrimPrefix(path, modulePath+"/"), true
	case strings.HasPrefix(path, "internal/") || strings.HasPrefix(path, "cmd/"):
		return path, true
	}
	return "", false
}

// inScope implements discovery with an opt-out/opt-in pair: a module
// package is in scope unless an opt-out prefix matches, and an opt-in
// prefix overrides the opt-out. Both lists hold comma-separated
// module-relative path prefixes ("cmd/" excludes every binary;
// "cmd/tlbworker" re-admits one).
func inScope(path, optOut, optIn string) bool {
	rel, ok := moduleRelative(path)
	if !ok {
		return false
	}
	if hasListedPrefix(rel, optIn) {
		return true
	}
	return !hasListedPrefix(rel, optOut)
}

func hasListedPrefix(rel, list string) bool {
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if rel == p || rel == strings.TrimSuffix(p, "/") || strings.HasPrefix(rel, strings.TrimSuffix(p, "/")+"/") {
			return true
		}
	}
	return false
}
