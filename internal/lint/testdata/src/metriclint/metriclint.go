// Fixture for the metriclint analyzer: Prometheus text exposition —
// metric names, single registration, family membership, and bounded
// label cardinality.
package metriclint

import (
	"fmt"
	"io"
)

// State is the enum idiom: a named string type is a closed set by
// construction and therefore a bounded label value.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
)

func writeClean(w io.Writer, st State, route string, jobs int, elapsed float64) {
	fmt.Fprintln(w, "# HELP fixture_jobs Current jobs by state.")
	fmt.Fprintln(w, "# TYPE fixture_jobs gauge")
	fmt.Fprintf(w, "fixture_jobs{state=%q} %d\n", st, jobs)
	fmt.Fprintf(w, "fixture_jobs{state=\"done\"} %d\n", jobs)

	fmt.Fprintln(w, "# TYPE fixture_request_seconds histogram")
	fmt.Fprintf(w, "fixture_request_seconds_bucket{route=%q,le=\"0.1\"} %d\n", route, jobs)
	fmt.Fprintf(w, "fixture_request_seconds_sum{route=%q} %g\n", route, elapsed)
	fmt.Fprintf(w, "fixture_request_seconds_count{route=%q} %d\n", route, jobs)
}

func writeBadNames(w io.Writer, jobs int) {
	fmt.Fprintln(w, "# TYPE 9fixture_bad counter")         // want "invalid Prometheus metric name"
	fmt.Fprintln(w, "# TYPE fixture_bad_kind_total meter") // want "invalid Prometheus metric type"
	fmt.Fprintf(w, "fixture_jobs{9bad=\"x\"} %d\n", jobs)  // want "invalid Prometheus label name"
}

func writeDuplicate(w io.Writer, n int) {
	fmt.Fprintln(w, "# TYPE fixture_dup_total counter")
	fmt.Fprintln(w, "# TYPE fixture_dup_total counter") // want "registered more than once"
	fmt.Fprintf(w, "fixture_dup_total %d\n", n)
}

func writeOrphan(w io.Writer, n int) {
	fmt.Fprintf(w, "fixture_orphan_total %d\n", n) // want "no # TYPE registration"
}

func writeUnbounded(w io.Writer, jobID string, epochs uint64) {
	fmt.Fprintln(w, "# TYPE fixture_job_epochs gauge")
	fmt.Fprintf(w, "fixture_job_epochs{job=%q} %d\n", jobID, epochs) // want "unbounded plain-string value"
}

// writeProse shows the conservative parser ignoring ordinary output:
// no underscore-bearing metric name, no sample shape, no diagnostics.
func writeProse(w io.Writer, event string) {
	fmt.Fprintf(w, "event: %s\n", event)
	fmt.Fprintln(w, "done")
}

// writeTenant is the cardinality contract in miniature: "tenant" is on
// the reviewed bounded-labels list (values come from a static keyfile
// authenticated before any counter is touched), so a plain-string
// tenant name passes — while a raw job ID on the same family still
// mints a series per value and fails.
func writeTenant(w io.Writer, tenantName, jobID string, n int) {
	fmt.Fprintln(w, "# TYPE fixture_tenant_requests_total counter")
	fmt.Fprintf(w, "fixture_tenant_requests_total{tenant=%q} %d\n", tenantName, n)
	fmt.Fprintf(w, "fixture_tenant_requests_total{tenant=%q,job=%q} %d\n", tenantName, jobID, n) // want "unbounded plain-string value"
}
