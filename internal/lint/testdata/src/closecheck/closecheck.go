// Fixture for the closecheck analyzer.
package closecheck

import (
	"io"
	"os"
)

func unchecked(f *os.File) {
	f.Close() // want "error is discarded"
}

func deferred(f *os.File) int {
	defer f.Close() // deferred close is the read-path idiom; exempt
	return 0
}

func returned(f *os.File) error {
	return f.Close()
}

func checked(f *os.File) {
	if err := f.Close(); err != nil {
		_ = err
	}
}

func closerIface(c io.Closer) {
	c.Close() // want "error is discarded"
}

type noErrCloser struct{}

func (noErrCloser) Close() {}

func closeNoError(c noErrCloser) {
	c.Close() // returns nothing: nothing to check
}

// suppressedClose documents a reviewed exception.
func suppressedClose(f *os.File) {
	// tlbvet:ignore closecheck fixture exercises the escape hatch
	f.Close()
}
