// Clean fixture: mirrors internal/report's sortedKeys idiom — map
// iteration feeding output is fine once the keys are collected and
// sorted. The determinism analyzer must stay silent on this package.
package report

import (
	"fmt"
	"io"
	"sort"
)

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeTable(w io.Writer, cells map[string]float64) {
	for _, k := range sortedKeys(cells) {
		fmt.Fprintf(w, "%s %.3f\n", k, cells[k])
	}
}

func writeSortedInline(w io.Writer, cells map[string]float64) {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%.3f\n", k, cells[k])
	}
}
