// Fixture for the ctxflow analyzer (library package: not main, not a
// test file).
package ctxflow

import "context"

type store struct{}

func (s *store) fetch(ctx context.Context, key string) string {
	_ = ctx
	return key
}

func dropsContext(ctx context.Context, s *store) string {
	return s.fetch(context.Background(), "k") // want "already receives a context.Context"
}

func todoInLibrary() context.Context {
	return context.TODO() // want "unfinished context plumbing"
}

func todoWithParam(ctx context.Context, s *store) string {
	return s.fetch(context.TODO(), "k") // want "unfinished context plumbing"
}

func detached() context.Context {
	return context.Background() // want "detaches this work"
}

// normalized is the sanctioned nil-tolerant API idiom: assigning
// Background back onto the function's own parameter.
func normalized(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func litPropagates(ctx context.Context, s *store) func() string {
	return func() string {
		return s.fetch(ctx, "k")
	}
}

func litDetaches(s *store) func() string {
	return func() string {
		return s.fetch(context.Background(), "k") // want "detaches this work"
	}
}

// suppressedDetach documents a reviewed detached context.
func suppressedDetach() context.Context {
	// tlbvet:ignore ctxflow fixture exercises the escape hatch
	return context.Background()
}
