// Fixture for the determinism analyzer: the directory path contains
// "internal/sim", so the package is gated as simulation code.
package sim

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func seedFromClock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func globalRNG() int {
	return rand.Intn(6) // want "uses the global RNG"
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "uses the global RNG"
}

func entropy(b []byte) {
	_, _ = crand.Read(b) // want "crypto/rand"
}

// seeded is the sanctioned pattern: an explicit seed, a private generator.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func printOrder(m map[string]int) {
	for k := range m { // want "map iteration order is random"
		fmt.Println(k)
	}
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted"
		keys = append(keys, k)
	}
	return keys
}

func sendOrder(m map[string]int, ch chan string) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

func concatOrder(m map[string]int) string {
	s := ""
	for k := range m { // want "string concatenation"
		s += k
	}
	return s
}

// appendSorted is the collect-and-sort idiom; the append is absolved by
// the later sort.
func appendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// aggregate folds with an order-insensitive reduction; no diagnostic.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes into another map; insertion order does not matter.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// suppressedSeed documents a reviewed exception via the escape hatch.
func suppressedSeed() int64 {
	// tlbvet:ignore determinism fixture exercises the escape hatch
	return time.Now().UnixNano()
}
