// Clean fixture: package main owns stdout; noprint must stay silent.
package main

import "fmt"

func main() {
	fmt.Println("hello from a command")
}
