// Fixture proving the cmd/ opt-out: binaries own wall-clock concerns
// (progress meters, timeouts), so the determinism scope excludes them
// by module-relative prefix and nothing here is flagged.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	work()
	fmt.Println("elapsed:", time.Since(start))
}

func work() {}
