// Fixture proving the determinism opt-in overrides the cmd/ opt-out:
// cmd/tlbworker must simulate sweep cells bit-for-bit identically
// across the fleet, so it is held to library determinism even though
// it is a binary.
package main

import "time"

func seedFromClock() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}
