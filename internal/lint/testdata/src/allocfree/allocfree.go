// Fixture for the allocfree analyzer: //tlbvet:hotpath regions may not
// contain heap-escaping constructs.
package allocfree

import "fmt"

type entry struct {
	vpn, pfn uint64
	valid    bool
}

type cache struct {
	entries []entry
	sum     uint64
}

func sink(v any) { _ = v }

// lookup is a clean hot function: index scans, struct literals, and
// scalar arithmetic never touch the allocator.
//
//tlbvet:hotpath
func (c *cache) lookup(vpn uint64) (entry, bool) {
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].vpn == vpn {
			return c.entries[i], true
		}
	}
	return entry{}, false
}

//tlbvet:hotpath
func appendsOnHotPath(c *cache, e entry) {
	c.entries = append(c.entries, e) // want "append may grow past cap"
}

//tlbvet:hotpath
func makesOnHotPath() []entry {
	buf := make([]entry, 64) // want "make allocates on the hot path"
	return buf
}

//tlbvet:hotpath
func literalsOnHotPath(vpn uint64) {
	m := map[uint64]bool{vpn: true} // want "map literal allocates"
	s := []uint64{vpn}              // want "slice literal allocates"
	_, _ = m, s
}

//tlbvet:hotpath
func formatsOnHotPath(vpn uint64) string {
	return fmt.Sprintf("vpn=%d", vpn) // want "fmt.Sprintf allocates"
}

//tlbvet:hotpath
func concatsOnHotPath(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//tlbvet:hotpath
func capturesOnHotPath(c *cache) func() uint64 {
	total := c.sum
	return func() uint64 { return total } // want "closure captures \"total\""
}

//tlbvet:hotpath
func spawnsOnHotPath(c *cache) {
	go c.drain() // want "go statement on the hot path"
}

func (c *cache) drain() {}

//tlbvet:hotpath
func boxesArgOnHotPath(vpn uint64) {
	sink(vpn) // want "boxed into interface"
}

//tlbvet:hotpath
func boxesReturnOnHotPath(vpn uint64) any {
	return vpn // want "boxed into interface"
}

//tlbvet:hotpath
func convertsOnHotPath(vpn uint64) {
	var v any = vpn // want "boxed into interface"
	_ = v
}

// driveLoop shows the loop form: setup above the annotated loop may
// allocate; the loop itself may not.
func driveLoop(c *cache, vpns []uint64) uint64 {
	scratch := make([]entry, len(vpns)) // legal: outside the region
	var hits uint64
	//tlbvet:hotpath
	for i, vpn := range vpns {
		e, ok := c.lookup(vpn)
		if ok {
			scratch[i] = e
			hits++
		}
	}
	return hits
}

func loopViolation(vpns []uint64) []string {
	var out []string
	//tlbvet:hotpath
	for _, vpn := range vpns {
		out = append(out, fmt.Sprint(vpn)) // want "append may grow past cap" "fmt.Sprint allocates"
	}
	return out
}

// constFold stays clean: the concatenation is a compile-time constant.
//
//tlbvet:hotpath
func constFold() string {
	return "tlb" + "vet"
}

// coldAppend is unannotated — allocation is fine off the hot path.
func coldAppend(c *cache, e entry) {
	c.entries = append(c.entries, e)
}

//tlbvet:hotpath // want "misplaced //tlbvet:hotpath"
var misplacedDirective = 1
