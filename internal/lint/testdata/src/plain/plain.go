// Fixture proving package gating: "plain" is outside the module path,
// so the discovery-scoped analyzers (determinism, ctxflow) must report
// nothing here even though the code would be flagged inside
// internal/sim or any other module package.
package plain

import (
	"context"
	"fmt"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func printOrder(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func detachedContext(ctx context.Context) context.Context {
	_ = ctx
	return context.Background()
}
