// Fixture proving package gating: "plain" is not a simulation package,
// so the determinism analyzer must report nothing here even though the
// code would be flagged inside internal/sim.
package plain

import (
	"fmt"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func printOrder(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
