// Fixture for the locksafe analyzer.
package locksafe

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) valueRecv() int { // want "by value, copying the lock"
	return c.n
}

func (c *counter) ptrRecv() int {
	return c.n
}

func byValueParam(c counter) int { // want "by value, copying the lock"
	return c.n
}

func byPointerParam(c *counter) int {
	return c.n
}

func sendWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "channel send while c.mu is held"
	c.mu.Unlock()
}

func sendAfterUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func sendUnderDeferredUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want "channel send while c.mu is held"
}

func receiveWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = <-ch // want "channel receive while c.mu is held"
}

// nonBlockingNotify is the jobstore idiom: select with default never
// blocks, so it is safe under the lock.
func nonBlockingNotify(c *counter, ch chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
}

func blockingSelect(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "blocking select while c.mu is held"
	case v := <-ch:
		c.n = v
	}
}

func sleepWhileLocked(c *counter) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while c.mu is held"
	c.mu.Unlock()
}

func waitWhileLocked(c *counter, wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while c.mu is held"
}

// spawnWhileLocked: the goroutine body runs outside the critical
// section, so the send inside it is fine.
func spawnWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	go func() { ch <- 1 }()
	c.mu.Unlock()
}

// branchScoped: a lock taken and released inside a branch does not
// leak into the statements after the branch.
func branchScoped(c *counter, ch chan int, cond bool) {
	if cond {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	ch <- c.n
}

// rlockSend: read locks still serialize against writers; blocking under
// them is flagged too.
type gauge struct {
	mu sync.RWMutex
	v  int
}

func rlockSend(g *gauge, ch chan int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ch <- g.v // want "channel send while g.mu is held"
}

// suppressedSend documents a reviewed exception.
func suppressedSend(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// tlbvet:ignore locksafe fixture exercises the escape hatch
	ch <- c.n
}
