// Fixture for the lifecycle analyzer: every go statement in a library
// package needs a provable shutdown path.
package lifecycle

import (
	"context"
	"sync"
	"time"
)

type pool struct {
	jobs chan int
	stop chan struct{}
	wg   sync.WaitGroup
}

// ctxBound is clean: the goroutine selects on ctx.Done().
func ctxBound(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// rangeBound is clean: ranging over a channel ends when it closes.
func (p *pool) rangeBound() {
	go func() {
		for j := range p.jobs {
			_ = j
		}
	}()
}

// wgBound is clean: WaitGroup pairing bounds the goroutine's lifetime.
func (p *pool) wgBound() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		<-p.jobs
	}()
}

// joiner is clean: a goroutine that Waits is bounded by what it joins.
func (p *pool) joiner(done chan<- struct{}) {
	go func() {
		p.wg.Wait()
		close(done)
	}()
}

// closeSignal is clean: receiving from a struct{} channel is the
// close-signal idiom.
func (p *pool) closeSignal() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case j := <-p.jobs:
				_ = j
			}
		}
	}()
}

// worker loops over the close-signaled channel; namedBound spawns it by
// name and the analyzer follows the same-package body.
func (p *pool) worker() {
	for {
		select {
		case <-p.stop:
			return
		default:
		}
	}
}

func (p *pool) namedBound() {
	go p.worker()
}

func leakyLoop(ticks chan int) {
	go func() { // want "no provable shutdown path"
		for {
			<-ticks
		}
	}()
}

func leakyNamed(p *pool) {
	go spin(p) // want "goroutine spin has no provable shutdown path"
}

func spin(p *pool) {
	for {
		<-p.jobs
	}
}

func crossPackage(d time.Duration) {
	go time.Sleep(d) // want "call into another package"
}

func dynamicValue(f func()) {
	go f() // want "dynamic function value"
}
