// Fixture for the noprint analyzer (library package).
package noprint

import (
	"fmt"
	"io"
	"log/slog"
)

func shout(v int) {
	fmt.Println("v =", v) // want "fmt.Println writes to stdout"
}

func shoutf(v int) {
	fmt.Printf("v = %d\n", v) // want "fmt.Printf writes to stdout"
}

func debug(v int) {
	println("v", v) // want "builtin println"
}

func injected(w io.Writer, v int) {
	fmt.Fprintf(w, "v = %d\n", v) // writer is injected by the caller: fine
}

func logged(v int) {
	slog.Info("computed", "v", v)
}

func formatted(v int) string {
	return fmt.Sprintf("v = %d", v)
}

// suppressedPrint documents a reviewed exception.
func suppressedPrint(v int) {
	// tlbvet:ignore noprint fixture exercises the escape hatch
	fmt.Println(v)
}
