// Fixture for the rpcsafe analyzer: net/rpc handler signatures and gob
// wire-safety of args/reply payloads.
package rpcsafe

import "net/rpc"

// GoodArgs and GoodReply are wire-safe: exported fixed-layout fields.
type GoodArgs struct {
	Key   string
	Batch []uint64
}

type GoodReply struct {
	N      int
	Nested GoodArgs
}

// ChanArgs smuggles a channel; gob cannot encode it.
type ChanArgs struct {
	C chan int
}

// SecretReply mixes an unexported field into the payload; gob drops it
// silently and the remote side sees a zero value.
type SecretReply struct {
	Public int
	secret string
}

// IfaceArgs carries an interface; a mixed-version fleet cannot agree on
// the concrete types behind it.
type IfaceArgs struct {
	V interface{}
}

type structKey struct{ A, B int }

// MapReply uses a struct-keyed map, which gob rejects.
type MapReply struct {
	ByKey map[structKey]int
}

// Svc exercises every handler diagnostic.
type Svc struct{}

// Fine is the clean case: pointer args, pointer reply, single error.
func (s *Svc) Fine(args *GoodArgs, reply *GoodReply) error { return nil }

func (s *Svc) TwoResults(args *GoodArgs, reply *GoodReply) (int, error) { return 0, nil } // want "does not return exactly one error"

func (s *Svc) ValueReply(args *GoodArgs, reply GoodReply) error { return nil } // want "reply parameter is not a pointer"

func (s *Svc) ChanPayload(args *ChanArgs, reply *GoodReply) error { return nil } // want "field C is a chan"

func (s *Svc) SecretPayload(args *GoodArgs, reply *SecretReply) error { return nil } // want "field secret is unexported; gob silently drops it"

func (s *Svc) IfacePayload(args *IfaceArgs, reply *GoodReply) error { return nil } // want "field V is an interface"

func (s *Svc) MapPayload(args *GoodArgs, reply *MapReply) error { return nil } // want "non-basic map key"

// Helper is not handler-shaped (one parameter); net/rpc ignores it by
// design and so does the analyzer.
func (s *Svc) Helper(n int) int { return n }

// Clean is a service whose every handler is contract-correct.
type Clean struct{}

func (c *Clean) Get(args *GoodArgs, reply *GoodReply) error { return nil }

func register() error {
	if err := rpc.Register(&Svc{}); err != nil {
		return err
	}
	srv := rpc.NewServer()
	return srv.RegisterName("Fleet", &Clean{})
}
