// Clean fixture: package main is where root contexts are born; ctxflow
// must report nothing.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
	_ = context.TODO()
}
