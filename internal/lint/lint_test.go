package lint_test

import (
	"strings"
	"testing"

	"hybridtlb/internal/lint"
	"hybridtlb/internal/lint/linttest"
)

// Each analyzer gets at least one fixture demonstrating caught
// violations and one demonstrating a clean pass (ISSUE 3 acceptance).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "internal/sim")
}

// TestDeterminismSortedReportIdiom is the clean pass: the
// collect-and-sort pattern used by internal/report must not be flagged.
func TestDeterminismSortedReportIdiom(t *testing.T) {
	linttest.Run(t, lint.Determinism, "internal/report")
}

// TestDeterminismGatesPackages proves non-simulation packages are out
// of scope even when they contain would-be violations.
func TestDeterminismGatesPackages(t *testing.T) {
	linttest.Run(t, lint.Determinism, "plain")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "ctxflow")
}

func TestCtxFlowMainExempt(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "ctxmain")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, lint.LockSafe, "locksafe")
}

func TestCloseCheck(t *testing.T) {
	linttest.Run(t, lint.CloseCheck, "closecheck")
}

func TestNoPrint(t *testing.T) {
	linttest.Run(t, lint.NoPrint, "noprint")
}

func TestNoPrintMainExempt(t *testing.T) {
	linttest.Run(t, lint.NoPrint, "noprintmain")
}

// TestAll pins the analyzer roster: tlbvet ships at least the five
// passes the project invariants document, with unique names and
// non-empty docs (unitchecker rejects analyzers without them).
func TestAll(t *testing.T) {
	all := lint.All()
	if len(all) < 5 {
		t.Fatalf("expected at least 5 analyzers, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"determinism", "ctxflow", "locksafe", "closecheck", "noprint"} {
		if !seen[want] {
			t.Errorf("analyzer %q missing from lint.All()", want)
		}
	}
	// Doc first lines double as `tlbvet help` output; keep them tight.
	for _, a := range all {
		if first := strings.SplitN(a.Doc, "\n", 2)[0]; len(first) > 100 {
			t.Errorf("analyzer %q first doc line is %d chars; keep it under 100", a.Name, len(first))
		}
	}
}
