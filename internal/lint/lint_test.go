package lint_test

import (
	"strings"
	"testing"

	"hybridtlb/internal/lint"
	"hybridtlb/internal/lint/linttest"
)

// Each analyzer gets at least one fixture demonstrating caught
// violations and one demonstrating a clean pass.

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "internal/sim")
}

// TestDeterminismSortedReportIdiom is the clean pass: the
// collect-and-sort pattern used by internal/report must not be flagged.
func TestDeterminismSortedReportIdiom(t *testing.T) {
	linttest.Run(t, lint.Determinism, "internal/report")
}

// TestDeterminismGatesPackages proves packages outside the module path
// are out of scope even when they contain would-be violations.
func TestDeterminismGatesPackages(t *testing.T) {
	linttest.Run(t, lint.Determinism, "plain")
}

// TestDeterminismCmdOptOut proves the cmd/ prefix opt-out: a binary
// reading the wall clock is not flagged.
func TestDeterminismCmdOptOut(t *testing.T) {
	linttest.Run(t, lint.Determinism, "cmd/clockmain")
}

// TestDeterminismWorkerOptIn proves the opt-in overrides the cmd/
// opt-out: cmd/tlbworker is held to library determinism.
func TestDeterminismWorkerOptIn(t *testing.T) {
	linttest.Run(t, lint.Determinism, "cmd/tlbworker")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "internal/ctxflow")
}

func TestCtxFlowMainExempt(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "ctxmain")
}

// TestCtxFlowScopeGates proves ctxflow shares the module-path scope:
// the non-module "plain" package detaches a context with no diagnostic.
func TestCtxFlowScopeGates(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "plain")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, lint.LockSafe, "locksafe")
}

func TestCloseCheck(t *testing.T) {
	linttest.Run(t, lint.CloseCheck, "closecheck")
}

func TestNoPrint(t *testing.T) {
	linttest.Run(t, lint.NoPrint, "noprint")
}

func TestNoPrintMainExempt(t *testing.T) {
	linttest.Run(t, lint.NoPrint, "noprintmain")
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, lint.AllocFree, "allocfree")
}

func TestRPCSafe(t *testing.T) {
	linttest.Run(t, lint.RPCSafe, "rpcsafe")
}

func TestLifecycle(t *testing.T) {
	linttest.Run(t, lint.Lifecycle, "lifecycle")
}

func TestMetricLint(t *testing.T) {
	linttest.Run(t, lint.MetricLint, "metriclint")
}

// TestAll pins the analyzer roster: tlbvet ships the nine passes the
// project invariants document, with unique names and non-empty docs
// (unitchecker rejects analyzers without them).
func TestAll(t *testing.T) {
	all := lint.All()
	if len(all) < 9 {
		t.Fatalf("expected at least 9 analyzers, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"determinism", "ctxflow", "locksafe", "closecheck", "noprint",
		"allocfree", "rpcsafe", "lifecycle", "metriclint",
	} {
		if !seen[want] {
			t.Errorf("analyzer %q missing from lint.All()", want)
		}
	}
	// Doc first lines double as `tlbvet help` output; keep them tight.
	for _, a := range all {
		if first := strings.SplitN(a.Doc, "\n", 2)[0]; len(first) > 100 {
			t.Errorf("analyzer %q first doc line is %d chars; keep it under 100", a.Name, len(first))
		}
	}
}
