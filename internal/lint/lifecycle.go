package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Lifecycle requires every goroutine spawned in library packages to
// carry a provable shutdown path. The SSE-subscriber leak and the
// drain-race fixes were both goroutines that outlived their owner;
// this pass makes that class of bug a compile-time diagnostic.
var Lifecycle = &analysis.Analyzer{
	Name: "lifecycle",
	Doc: "require a provable shutdown path for every go statement in library packages\n\n" +
		"A goroutine must terminate when its owner shuts down. The pass accepts\n" +
		"any of: a receive/select on a context's Done() channel; WaitGroup\n" +
		"pairing (the body calls Done, someone Waits); ranging over a channel\n" +
		"(ends when the channel closes); receiving from a close-signaled\n" +
		"struct{} channel; or calling WaitGroup.Wait (a join goroutine is\n" +
		"bounded by what it joins). Calls into same-package functions are\n" +
		"followed; a goroutine whose body is a call into another package is\n" +
		"flagged because its termination cannot be verified here — wrap it in a\n" +
		"literal that owns a visible shutdown path. Package main and _test.go\n" +
		"files are exempt.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLifecycle,
}

func runLifecycle(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Same-package function bodies, so `go q.worker()` is judged by
	// worker's own loop shape.
	decls := map[*types.Func]*ast.FuncDecl{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && fd.Body != nil {
			decls[fn] = fd
		}
	})

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if inTestFile(pass, g.Pos()) {
			return
		}
		call := g.Call
		if fl, ok := astUnparen(call.Fun).(*ast.FuncLit); ok {
			if !shutdownPath(pass, fl.Body, decls, map[*types.Func]bool{}, 0) {
				report(pass, g.Pos(),
					"goroutine has no provable shutdown path (ctx.Done() select, WaitGroup pairing, or close-signaled channel); bound its lifetime or it leaks on drain")
			}
			return
		}
		fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if fn != nil {
			if fd := decls[fn]; fd != nil {
				if !shutdownPath(pass, fd.Body, decls, map[*types.Func]bool{fn: true}, 0) {
					report(pass, g.Pos(),
						"goroutine %s has no provable shutdown path (ctx.Done() select, WaitGroup pairing, or close-signaled channel); bound its lifetime or it leaks on drain", fn.Name())
				}
				return
			}
			report(pass, g.Pos(),
				"goroutine body is a call into another package (%s); its termination cannot be verified here — wrap it in a function literal with a visible shutdown path", fn.FullName())
			return
		}
		// Dynamic call (func value): nothing to analyze.
		report(pass, g.Pos(),
			"goroutine runs a dynamic function value; give it a visible shutdown path (ctx.Done() select, WaitGroup pairing, or close-signaled channel)")
	})
	return nil, nil
}

// shutdownPath reports whether body contains one of the accepted
// termination signals, following same-package calls up to depth 2.
func shutdownPath(pass *analysis.Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool, depth int) bool {
	if body == nil {
		return false
	}
	found := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested goroutine body judges itself
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && terminationChannel(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true // range ends when the channel closes
				}
			}
		case *ast.CallExpr:
			fn, _ := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if fn == nil {
				return true
			}
			if isWaitGroupMethod(fn, "Done") || isWaitGroupMethod(fn, "Wait") {
				found = true
				return false
			}
			if fn.Pkg() == pass.Pkg && !visited[fn] {
				callees = append(callees, fn)
			}
		}
		return !found
	})
	if found || depth >= 2 {
		return found
	}
	for _, fn := range callees {
		visited[fn] = true
		if fd := decls[fn]; fd != nil && shutdownPath(pass, fd.Body, decls, visited, depth+1) {
			return true
		}
	}
	return false
}

// terminationChannel recognizes receive operands that signal shutdown:
// a Done() call (context.Context or compatible), or a struct{}-typed
// channel (the close-signal idiom). Payload channels (ticker.C, work
// queues) do not count — receiving work is not a way to stop.
func terminationChannel(pass *analysis.Pass, x ast.Expr) bool {
	x = astUnparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := astUnparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
