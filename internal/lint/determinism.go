package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Determinism forbids nondeterminism sources in simulation packages:
// wall-clock reads, the global math/rand generator, crypto/rand, and
// map iteration whose order leaks into results or output.
//
// Scope is discovered from the module path (see scope.go): every
// package in the module is simulation code unless a reviewed opt-out
// prefix excludes it, so new internal/* packages are covered the day
// they are created instead of when someone remembers to list them.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global RNG, and order-dependent map iteration in simulation packages\n\n" +
		"Simulation results must be byte-identical across serial, parallel, and\n" +
		"server runs (the sweep cache and every golden file depend on it). This\n" +
		"pass flags time.Now/Since/Until, package-level math/rand functions\n" +
		"(seed explicitly and pass a *rand.Rand instead), any crypto/rand use,\n" +
		"and `for k := range m` loops whose body appends to a slice that is\n" +
		"never sorted, sends on a channel, concatenates strings, or writes\n" +
		"output. Collect keys and sort them first (see internal/report's\n" +
		"sortedKeys helper). Module packages are in scope by discovery;\n" +
		"-optout/-optin adjust the reviewed exclusion list.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

var (
	determinismOptOut string
	determinismOptIn  string
)

func init() {
	Determinism.Flags.StringVar(&determinismOptOut, "optout", defaultDeterminismOptOut,
		"comma-separated module-relative path prefixes excluded from the simulation scope")
	Determinism.Flags.StringVar(&determinismOptIn, "optin", defaultDeterminismOptIn,
		"comma-separated module-relative path prefixes re-admitted despite an opt-out prefix")
}

func isSimPackage(path string) bool {
	return inScope(path, determinismOptOut, determinismOptIn)
}

// randConstructors are the package-level math/rand functions that build
// explicitly seeded generators; they are the sanctioned alternative to
// the global source and must stay legal.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || inTestFile(pass, n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondeterministicCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, enclosingFunc(stack))
		}
		return true
	})
	return nil, nil
}

func checkNondeterministicCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	sig, _ := f.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch f.Pkg().Path() {
	case "time":
		if pkgLevel {
			switch f.Name() {
			case "Now", "Since", "Until":
				report(pass, call.Pos(),
					"time.%s reads the wall clock in a simulation package; derive values from the config or seed instead",
					f.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if pkgLevel && !randConstructors[f.Name()] {
			report(pass, call.Pos(),
				"%s.%s uses the global RNG in a simulation package; construct rand.New(rand.NewSource(seed)) from an explicit seed and pass it down",
				f.Pkg().Path(), f.Name())
		}
	case "crypto/rand":
		report(pass, call.Pos(),
			"crypto/rand.%s is nondeterministic; simulation packages must derive randomness from an explicit seed", f.Name())
	}
}

// checkMapRange flags `for k := range m` (m a map) when the loop body
// has an order-sensitive effect. Appending to a slice is absolved when
// the same slice is later passed to sort/slices sorting in the
// enclosing function — that is exactly the collect-and-sort idiom the
// fix should use.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var sinks []string
	var appended []*types.Var // slices appended to inside the loop

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; out of scope
		case *ast.SendStmt:
			sinks = append(sinks, "a channel send")
		case *ast.AssignStmt:
			if v := appendTarget(pass, n); v != nil {
				appended = append(appended, v)
			} else if isStringConcat(pass, n) {
				sinks = append(sinks, "string concatenation")
			}
		case *ast.CallExpr:
			if s := outputCallSink(pass, n); s != "" {
				sinks = append(sinks, s)
			}
		}
		return true
	})

	for _, v := range appended {
		if !sortedLater(pass, fn, v) {
			sinks = append(sinks, "an append to "+v.Name()+" that is never sorted")
		}
	}
	if len(sinks) == 0 {
		return
	}
	report(pass, rng.Pos(),
		"map iteration order is random but the loop body performs %s; collect the keys, sort them, then iterate",
		sinks[0])
}

// appendTarget returns the variable v for statements `v = append(v, ...)`.
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt) *types.Var {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
	return v
}

func isStringConcat(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if as.Tok.String() != "+=" || len(as.Lhs) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// outputCallSink classifies calls that make iteration order observable:
// the fmt print family and Write*/Encode methods (io.Writer,
// strings.Builder, json.Encoder, ...).
func outputCallSink(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
		return "formatted output (fmt." + fn.Name() + ")"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if strings.HasPrefix(fn.Name(), "Write") || fn.Name() == "Encode" {
			return "a " + fn.Name() + " call"
		}
	}
	return ""
}

// sortedLater reports whether v is passed to a sort/slices sorting
// function anywhere in the enclosing function.
func sortedLater(pass *analysis.Pass, fn ast.Node, v *types.Var) bool {
	if fn == nil {
		return false
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		f, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.Contains(f.FullName(), "Sort") && !isSortingHelper(f.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func isSortingHelper(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}
