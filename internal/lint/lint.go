// Package lint holds tlbvet's custom go/analysis passes. They encode
// the project invariants that equality tests alone cannot protect:
//
//   - determinism: simulation packages must produce byte-identical
//     results on every run — no wall-clock, no global RNG, no
//     order-dependent map iteration (the paper's evaluation, and every
//     sweep-cache hit, depends on it).
//   - ctxflow: code that receives a context.Context must propagate it;
//     library code must not mint detached contexts.
//   - locksafe: no blocking operations (channel sends, waits, sleeps)
//     while a sync.Mutex/RWMutex is held, and no lock-by-value
//     receivers — aimed at internal/server's jobstore and queue.
//   - closecheck: Close() errors must be checked (deferred Close is
//     exempt); write errors often surface only at close time.
//   - noprint: library packages never print to stdout; output goes
//     through injected io.Writers, return values, or log/slog.
//   - allocfree: //tlbvet:hotpath-annotated functions and loops contain
//     no heap-escaping constructs (closures, append, map/slice
//     literals, fmt, string concat, interface boxing); the batched
//     translation pipeline's 0 allocs/access is an invariant, not a
//     benchmark number. cmd/allocgate verifies the same regions
//     against the compiler's escape analysis.
//   - rpcsafe: net/rpc service types match the handler contract and
//     their args/reply payloads are gob wire-safe (exported
//     fixed-layout fields; no chan/func/interface anywhere).
//   - lifecycle: every go statement in library packages has a provable
//     shutdown path (ctx.Done select, WaitGroup pairing, or a
//     close-signaled channel).
//   - metriclint: Prometheus names are valid, each family is # TYPE-
//     registered exactly once per package, and label values are
//     provably bounded (no raw job IDs or tenant strings).
//
// Determinism and ctxflow discover their scope from the module path
// (scope.go): new internal/* packages are covered automatically, and
// exclusion is an explicit, reviewed opt-out.
//
// Every diagnostic can be suppressed, with a reason, by a
// "//tlbvet:ignore <analyzer> <reason>" comment on the flagged line or
// the line above it (see DESIGN.md "Project invariants & static
// analysis").
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// All returns every tlbvet analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		CtxFlow,
		LockSafe,
		CloseCheck,
		NoPrint,
		AllocFree,
		RPCSafe,
		Lifecycle,
		MetricLint,
	}
}

// inTestFile reports whether pos lies in a _test.go file. Most passes
// skip test files: tests may legitimately time things, print, or lean
// on randomness for fuzzing.
func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// report emits a diagnostic unless a "//tlbvet:ignore" comment on the
// same line (or the line directly above) names the analyzer.
func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if suppressed(pass, pos, pass.Analyzer.Name) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// suppressed implements the escape hatch for false positives:
//
//	//tlbvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed at the end of the flagged line or on its own line directly
// above. The analyzer list may be "all". A reason is not enforced
// syntactically but is expected by review convention.
func suppressed(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != tf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := tf.Line(c.Pos())
				if cl != line && cl != line-1 {
					continue
				}
				if ignoreDirectiveMatches(c.Text, analyzer) {
					return true
				}
			}
		}
	}
	return false
}

func ignoreDirectiveMatches(comment, analyzer string) bool {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	const prefix = "tlbvet:ignore"
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return true // bare "//tlbvet:ignore" silences everything
	}
	names := strings.FieldsFunc(strings.Fields(rest)[0], func(r rune) bool { return r == ',' })
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// enclosingFunc walks an inspector stack (outermost first) and returns
// the innermost function declaration or literal containing the leaf.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
