// Package linttest is a self-contained analysistest replacement for
// tlbvet's analyzers. The upstream analysistest depends on
// go/packages, which (unlike the go/analysis core) is not part of the
// Go distribution's vendored x/tools subset this repo builds against —
// so this harness loads fixture packages with go/parser + go/types
// directly and needs nothing outside the standard library plus the
// vendored analysis core.
//
// Fixtures live under testdata/src/<pkgpath>, one directory per
// package; <pkgpath> doubles as the type-checker's import path, so a
// fixture under testdata/src/internal/sim exercises package gating
// exactly like the real internal/sim. Expected diagnostics are
// declared in the fixture source:
//
//	f.Close() // want "error is discarded"
//
// Every `// want "substring"` on a line must be matched by a
// diagnostic on that line (substring match against the message), and
// every diagnostic must be matched by a want; anything else fails the
// test.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// stdImporter typechecks stdlib dependencies from $GOROOT/src. It is
// shared across tests: the source importer caches aggressively, and
// fixture packages only import a handful of stdlib packages.
var (
	importerOnce sync.Once
	stdImporter  types.Importer
)

func sharedImporter() types.Importer {
	importerOnce.Do(func() {
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImporter
}

// Run loads testdata/src/<pkgpath>, runs a (and its Requires chain) on
// it, and checks the diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()

	fset := token.NewFileSet()
	files := parseFixture(t, fset, pkgpath)
	pkg, info := typecheck(t, fset, files, pkgpath)
	diags := runAnalyzer(t, a, fset, files, pkg, info)
	compare(t, fset, files, diags)
}

func parseFixture(t *testing.T, fset *token.FileSet, pkgpath string) []*ast.File {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no .go files in fixture %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	return files
}

func typecheck(t *testing.T, fset *token.FileSet, files []*ast.File, pkgpath string) (*types.Package, *types.Info) {
	t.Helper()
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: sharedImporter()}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgpath, err)
	}
	return pkg, info
}

// runAnalyzer executes a's Requires graph depth-first, then a itself,
// recording only a's diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()

	results := make(map[*analysis.Analyzer]any)
	var diags []analysis.Diagnostic

	var run func(an *analysis.Analyzer, record bool)
	run = func(an *analysis.Analyzer, record bool) {
		if _, done := results[an]; done {
			return
		}
		for _, req := range an.Requires {
			run(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", an.Name, err)
		}
		results[an] = res
	}
	run(a, true)
	return diags
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type lineKey struct {
	file string
	line int
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	wants := make(map[lineKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{filepath.Base(pos.Filename), pos.Line}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					wants[k] = append(wants[k], s)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{filepath.Base(pos.Filename), pos.Line}
		if i := matchWant(wants[k], d.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for k, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
		}
	}
}

func matchWant(wants []string, msg string) int {
	for i, w := range wants {
		if w != "" && strings.Contains(msg, w) {
			return i
		}
	}
	return -1
}
