package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// CloseCheck flags statements that call Close() and drop the error.
// For anything buffered (files opened for writing, gzip writers, HTTP
// response bodies mid-protocol) the write error often only surfaces at
// Close; swallowing it means silently truncated eval output. Deferred
// closes are exempt: `defer f.Close()` on a read-only handle is the
// idiom, and a deferred close whose error matters should already be
// wrapped in a closure that records it.
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "flag unchecked Close() return values\n\n" +
		"`f.Close()` as a bare statement discards an error that, for writers,\n" +
		"is the only notification that buffered data never reached disk. Check\n" +
		"it (`if err := f.Close(); err != nil {...}`) or defer it when the\n" +
		"error genuinely cannot matter.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		call, ok := n.(*ast.ExprStmt).X.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		// Only Close() error — a Close with no or odd returns has
		// nothing to check.
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
			return
		}
		report(pass, call.Pos(),
			"%s.Close() error is discarded; for writers this hides data loss — check it or defer it",
			types.ExprString(sel.X))
	})
	return nil, nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
