package buddy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtlb/internal/mem"
)

func TestNewSeedsFullRange(t *testing.T) {
	a := New(1 << 20)
	if a.Frames() != 1<<20 || a.FreeFrames() != 1<<20 {
		t.Fatalf("frames=%d free=%d", a.Frames(), a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	blocks := a.FreeBlocks()
	// 2^20 frames decompose into 4 maximal order-18 blocks.
	if blocks[MaxOrder] != 4 {
		t.Errorf("order-%d blocks = %d, want 4", MaxOrder, blocks[MaxOrder])
	}
}

func TestNewNonPowerOfTwo(t *testing.T) {
	a := New(1000) // 512 + 256 + 128 + 64 + 32 + 8
	if a.FreeFrames() != 1000 {
		t.Fatalf("free = %d, want 1000", a.FreeFrames())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b := a.FreeBlocks()
	for _, want := range []struct{ order, n int }{{9, 1}, {8, 1}, {7, 1}, {6, 1}, {5, 1}, {3, 1}} {
		if b[want.order] != want.n {
			t.Errorf("order %d blocks = %d, want %d", want.order, b[want.order], want.n)
		}
	}
}

func TestAllocLowestFirstAndAligned(t *testing.T) {
	a := New(1 << 12)
	p0, err := a.Alloc(4)
	if err != nil || p0 != 0 {
		t.Fatalf("first alloc = %v, %v; want PFN 0", p0, err)
	}
	p1, err := a.Alloc(4)
	if err != nil || p1 != 16 {
		t.Fatalf("second alloc = %v, %v; want PFN 16", p1, err)
	}
	p2, err := a.Alloc(0)
	if err != nil || p2 != 32 {
		t.Fatalf("third alloc = %v, %v; want PFN 32", p2, err)
	}
	if !p0.IsAligned(16) || !p1.IsAligned(16) {
		t.Error("blocks not naturally aligned")
	}
	if a.FreeFrames() != 1<<12-33 {
		t.Errorf("free = %d", a.FreeFrames())
	}
}

func TestAllocInvalidOrder(t *testing.T) {
	a := New(1024)
	if _, err := a.Alloc(-1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Error("oversized order accepted")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(64)
	if _, err := a.Alloc(7); err != ErrOutOfMemory {
		t.Errorf("order-7 from 64 frames: err = %v, want ErrOutOfMemory", err)
	}
	for i := 0; i < 64; i++ {
		if _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := a.Alloc(0); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if a.FreeFrames() != 0 {
		t.Errorf("free = %d, want 0", a.FreeFrames())
	}
	if a.LargestFreeOrder() != -1 {
		t.Errorf("LargestFreeOrder = %d, want -1", a.LargestFreeOrder())
	}
}

func TestFreeMergesToOriginal(t *testing.T) {
	a := New(1 << 10)
	var pfns []mem.PFN
	for i := 0; i < 1<<10; i++ {
		p, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, p)
	}
	// Free in a scrambled order; everything must merge back.
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(pfns), func(i, j int) { pfns[i], pfns[j] = pfns[j], pfns[i] })
	for _, p := range pfns {
		if err := a.Free(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeFrames() != 1<<10 {
		t.Fatalf("free = %d, want %d", a.FreeFrames(), 1<<10)
	}
	b := a.FreeBlocks()
	if b[10] != 1 {
		t.Errorf("expected one order-10 block after full merge, got %v", b)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeValidation(t *testing.T) {
	a := New(1024)
	p, _ := a.Alloc(3)
	if err := a.Free(p, 2); err == nil {
		t.Error("wrong-order free accepted")
	}
	if err := a.Free(p+1, 3); err == nil {
		t.Error("wrong-address free accepted")
	}
	if err := a.Free(p, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p, 3); err == nil {
		t.Error("double free accepted")
	}
}

func TestAllocPages(t *testing.T) {
	a := New(1 << 16)
	p, got, err := a.AllocPages(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 128 {
		t.Errorf("block size = %d, want 128 (next pow2 of 100)", got)
	}
	if !p.IsAligned(128) {
		t.Error("block not aligned")
	}
	if _, _, err := a.AllocPages(0); err == nil {
		t.Error("zero-page alloc accepted")
	}
	if _, _, err := a.AllocPages(1 << 20); err == nil {
		t.Error("over-max alloc accepted")
	}
}

func TestFragmentationIndex(t *testing.T) {
	a := New(1 << 10)
	if got := a.FragmentationIndex(9); got != 0 {
		t.Errorf("pristine fragmentation = %v, want 0", got)
	}
	// Allocate everything as single pages, free every other page: free
	// memory is then entirely order-0 blocks.
	var pfns []mem.PFN
	for i := 0; i < 1<<10; i++ {
		p, _ := a.Alloc(0)
		pfns = append(pfns, p)
	}
	for i := 0; i < len(pfns); i += 2 {
		if err := a.Free(pfns[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.FragmentationIndex(1); got != 1 {
		t.Errorf("checkerboard fragmentation at order 1 = %v, want 1", got)
	}
	if got := a.FragmentationIndex(0); got != 0 {
		t.Errorf("fragmentation at order 0 = %v, want 0", got)
	}
}

// TestRandomWorkloadInvariants drives a random alloc/free workload and
// verifies the allocator never violates its structural invariants, never
// double-allocates overlapping blocks, and accounts frames exactly.
func TestRandomWorkloadInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	a := New(1 << 14)
	type block struct {
		p     mem.PFN
		order int
	}
	var live []block
	owner := make(map[mem.PFN]bool)
	for step := 0; step < 5000; step++ {
		if r.Intn(2) == 0 || len(live) == 0 {
			order := r.Intn(8)
			p, err := a.Alloc(order)
			if err != nil {
				continue // OOM under pressure is fine
			}
			for f := p; f < p+mem.PFN(1<<order); f++ {
				if owner[f] {
					t.Fatalf("step %d: frame %#x double-allocated", step, uint64(f))
				}
				owner[f] = true
			}
			live = append(live, block{p, order})
		} else {
			i := r.Intn(len(live))
			b := live[i]
			if err := a.Free(b.p, b.order); err != nil {
				t.Fatalf("step %d: free failed: %v", step, err)
			}
			for f := b.p; f < b.p+mem.PFN(1<<b.order); f++ {
				delete(owner, f)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var liveFrames uint64
	for _, b := range live {
		liveFrames += 1 << b.order
	}
	if a.FreeFrames()+liveFrames != a.Frames() {
		t.Fatalf("accounting: %d free + %d live != %d", a.FreeFrames(), liveFrames, a.Frames())
	}
}

// TestAllocFreeRoundTripProperty: any sequence of successful allocations
// followed by freeing all of them restores the pristine free-frame count
// and a fully merged free list.
func TestAllocFreeRoundTripProperty(t *testing.T) {
	f := func(orders []uint8) bool {
		a := New(1 << 15)
		type block struct {
			p mem.PFN
			o int
		}
		var blocks []block
		for _, raw := range orders {
			o := int(raw % 10)
			p, err := a.Alloc(o)
			if err != nil {
				break
			}
			blocks = append(blocks, block{p, o})
		}
		for i := len(blocks) - 1; i >= 0; i-- {
			if err := a.Free(blocks[i].p, blocks[i].o); err != nil {
				return false
			}
		}
		if a.FreeFrames() != 1<<15 {
			return false
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(3)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p, 3); err != nil {
			b.Fatal(err)
		}
	}
}
