// Package buddy implements a binary buddy allocator over physical page
// frames, mirroring the Linux page allocator the paper's OS discussion
// relies on (Sections 2.1 and 5.1: "the operating system uses a buddy
// algorithm to reduce memory fragmentation").
//
// The allocator hands out power-of-two blocks of 4 KiB frames, always
// choosing the lowest-addressed free block of the requested order
// (deterministic, which keeps simulations reproducible), splits larger
// blocks on demand, and eagerly merges freed buddies back together.
// Fragmentation metrics expose the free-list shape so that mapping
// generators can reason about the contiguity the "OS" can offer.
package buddy

import (
	"container/heap"
	"errors"
	"fmt"

	"hybridtlb/internal/mem"
)

// MaxOrder is the largest supported block order: order 18 blocks are
// 2^18 frames = 1 GiB, matching the largest x86 page size.
const MaxOrder = 18

// ErrOutOfMemory is returned when no block of the requested order (or any
// larger order to split) is free.
var ErrOutOfMemory = errors.New("buddy: out of memory")

// Allocator is a binary buddy allocator over the frame range [0, Frames()).
// The zero value is not usable; call New.
type Allocator struct {
	frames uint64
	free   [MaxOrder + 1]orderList
	// allocated tracks live blocks so Free can validate double-frees and
	// order mismatches. Keyed by start PFN, value is the block order.
	allocated map[mem.PFN]int
	freeCount uint64 // total free frames
}

// orderList is the free list for one order: a set for O(1) membership
// (buddy-merge checks and removals) plus a lazy min-heap so allocation can
// deterministically take the lowest-addressed block in O(log n).
type orderList struct {
	set  map[mem.PFN]struct{}
	heap pfnHeap
}

func (l *orderList) init() {
	l.set = make(map[mem.PFN]struct{})
}

func (l *orderList) add(p mem.PFN) {
	l.set[p] = struct{}{}
	heap.Push(&l.heap, p)
}

// remove deletes a specific block from the free list (used when merging a
// buddy). The heap entry is left behind and skipped lazily on pop.
func (l *orderList) remove(p mem.PFN) bool {
	if _, ok := l.set[p]; !ok {
		return false
	}
	delete(l.set, p)
	return true
}

// popMin removes and returns the lowest-addressed free block, skipping heap
// entries that were invalidated by remove.
func (l *orderList) popMin() (mem.PFN, bool) {
	for l.heap.Len() > 0 {
		p := heap.Pop(&l.heap).(mem.PFN)
		if _, ok := l.set[p]; ok {
			delete(l.set, p)
			return p, true
		}
	}
	return 0, false
}

func (l *orderList) size() int { return len(l.set) }

type pfnHeap []mem.PFN

func (h pfnHeap) Len() int            { return len(h) }
func (h pfnHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h pfnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pfnHeap) Push(x interface{}) { *h = append(*h, x.(mem.PFN)) }
func (h *pfnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New creates an allocator managing frames frames of physical memory.
// The frame count need not be a power of two; the range is seeded with the
// greedy decomposition into maximal aligned blocks.
func New(frames uint64) *Allocator {
	a := &Allocator{
		frames:    frames,
		allocated: make(map[mem.PFN]int),
	}
	for i := range a.free {
		a.free[i].init()
	}
	// Greedily cover [0, frames) with maximal aligned power-of-two blocks.
	var p uint64
	for p < frames {
		order := MaxOrder
		for order > 0 {
			size := uint64(1) << order
			if p%size == 0 && p+size <= frames {
				break
			}
			order--
		}
		a.free[order].add(mem.PFN(p))
		p += uint64(1) << order
	}
	a.freeCount = frames
	return a
}

// Frames returns the total number of frames managed by the allocator.
func (a *Allocator) Frames() uint64 { return a.frames }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() uint64 { return a.freeCount }

// Alloc allocates one block of 2^order frames and returns its first PFN.
// The block is naturally aligned to its size.
func (a *Allocator) Alloc(order int) (mem.PFN, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("buddy: invalid order %d", order)
	}
	// Find the smallest order >= requested with a free block.
	from := order
	for from <= MaxOrder && a.free[from].size() == 0 {
		from++
	}
	if from > MaxOrder {
		return 0, ErrOutOfMemory
	}
	p, ok := a.free[from].popMin()
	if !ok {
		return 0, ErrOutOfMemory
	}
	// Split down to the requested order, returning the upper halves to the
	// free lists.
	for from > order {
		from--
		upper := p + mem.PFN(uint64(1)<<from)
		a.free[from].add(upper)
	}
	a.allocated[p] = order
	a.freeCount -= uint64(1) << order
	return p, nil
}

// AllocPages allocates the smallest single block that covers pages frames
// and returns its first PFN together with the block's actual frame count.
// Callers that need an exact run of pages frames use the block's prefix and
// may Free the block later as a whole.
func (a *Allocator) AllocPages(pages uint64) (mem.PFN, uint64, error) {
	if pages == 0 {
		return 0, 0, errors.New("buddy: zero-page allocation")
	}
	order := int(mem.Log2(mem.NextPow2(pages)))
	if order > MaxOrder {
		return 0, 0, fmt.Errorf("buddy: request of %d pages exceeds max order %d", pages, MaxOrder)
	}
	p, err := a.Alloc(order)
	if err != nil {
		return 0, 0, err
	}
	return p, uint64(1) << order, nil
}

// Free returns the block starting at p (previously returned by Alloc with
// the same order) to the allocator, merging with its buddy as far as
// possible.
func (a *Allocator) Free(p mem.PFN, order int) error {
	if got, ok := a.allocated[p]; !ok || got != order {
		return fmt.Errorf("buddy: invalid free of PFN %#x order %d", uint64(p), order)
	}
	delete(a.allocated, p)
	a.freeCount += uint64(1) << order

	// Merge upward while the buddy block is free.
	for order < MaxOrder {
		size := mem.PFN(uint64(1) << order)
		buddy := p ^ size
		if uint64(buddy)+uint64(size) > a.frames {
			break // buddy lies outside the managed range
		}
		if !a.free[order].remove(buddy) {
			break
		}
		if buddy < p {
			p = buddy
		}
		order++
	}
	a.free[order].add(p)
	return nil
}

// LargestFreeOrder returns the largest order with at least one free block,
// or -1 if memory is exhausted.
func (a *Allocator) LargestFreeOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if a.free[o].size() > 0 {
			return o
		}
	}
	return -1
}

// FreeBlocks returns the number of free blocks at each order. Index i holds
// the count of free 2^i-frame blocks.
func (a *Allocator) FreeBlocks() [MaxOrder + 1]int {
	var out [MaxOrder + 1]int
	for o := range a.free {
		out[o] = a.free[o].size()
	}
	return out
}

// FragmentationIndex computes the free-memory fragmentation for a target
// order in the style of Linux's extfrag_index: 0 means all free memory is
// already in blocks of the target order or larger; values approaching 1
// mean free memory exists only as scattered small blocks.
func (a *Allocator) FragmentationIndex(order int) float64 {
	if a.freeCount == 0 {
		return 0
	}
	var usable uint64
	for o := order; o <= MaxOrder; o++ {
		usable += uint64(a.free[o].size()) << uint(o)
	}
	return 1 - float64(usable)/float64(a.freeCount)
}

// CheckInvariants validates internal consistency: free counts match the
// free lists, no free block overlaps an allocated block, and all blocks are
// naturally aligned. It is used by tests and is O(free blocks).
func (a *Allocator) CheckInvariants() error {
	var total uint64
	for o := range a.free {
		for p := range a.free[o].set {
			size := uint64(1) << o
			if !p.IsAligned(size) {
				return fmt.Errorf("buddy: misaligned free block PFN %#x order %d", uint64(p), o)
			}
			if uint64(p)+size > a.frames {
				return fmt.Errorf("buddy: free block PFN %#x order %d out of range", uint64(p), o)
			}
			total += size
		}
	}
	if total != a.freeCount {
		return fmt.Errorf("buddy: free list holds %d frames, counter says %d", total, a.freeCount)
	}
	var live uint64
	for p, o := range a.allocated {
		size := uint64(1) << o
		if !p.IsAligned(size) {
			return fmt.Errorf("buddy: misaligned allocated block PFN %#x order %d", uint64(p), o)
		}
		live += size
	}
	if live+total != a.frames {
		return fmt.Errorf("buddy: %d live + %d free != %d total frames", live, total, a.frames)
	}
	return nil
}
