package tlb

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// RangeEntry is one segment translation of RMM's range TLB: Pages
// consecutive VPNs starting at StartVPN map to consecutive PFNs starting at
// StartPFN.
type RangeEntry struct {
	StartVPN mem.VPN
	StartPFN mem.PFN
	Pages    uint64
}

// Contains reports whether the range covers vpn.
func (r RangeEntry) Contains(v mem.VPN) bool {
	return v >= r.StartVPN && v < r.StartVPN+mem.VPN(r.Pages)
}

// Translate returns the frame for a VPN inside the range.
func (r RangeEntry) Translate(v mem.VPN) mem.PFN {
	return r.StartPFN + mem.PFN(v-r.StartVPN)
}

// RangeTLB is the small fully-associative range TLB of Redundant Memory
// Mapping (Karakostas et al., ISCA'15), as configured in Table 3 of the
// paper: 32 entries, fully associative, LRU. Every lookup compares the VPN
// against all ranges in parallel (in hardware); the full associativity is
// exactly what limits the entry count.
type RangeTLB struct {
	capacity int
	lines    []rangeLine
	clock    uint64
}

type rangeLine struct {
	valid bool
	lru   uint64
	r     RangeEntry
}

// NewRangeTLB creates a range TLB with the given capacity.
func NewRangeTLB(capacity int) *RangeTLB {
	if capacity <= 0 {
		panic(fmt.Sprintf("tlb: range TLB capacity %d must be positive", capacity))
	}
	return &RangeTLB{capacity: capacity, lines: make([]rangeLine, capacity)}
}

// Capacity returns the entry count.
func (t *RangeTLB) Capacity() int { return t.capacity }

// Lookup finds a range covering vpn, promoting it to MRU.
func (t *RangeTLB) Lookup(v mem.VPN) (RangeEntry, bool) {
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].r.Contains(v) {
			t.clock++
			t.lines[i].lru = t.clock
			return t.lines[i].r, true
		}
	}
	return RangeEntry{}, false
}

// Insert installs a range, evicting the LRU entry if full. A range with
// the same StartVPN replaces the old one in place.
func (t *RangeTLB) Insert(r RangeEntry) {
	victim := 0
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].r.StartVPN == r.StartVPN {
			victim = i
			break
		}
		if !t.lines[i].valid {
			if t.lines[victim].valid {
				victim = i
			}
			continue
		}
		if t.lines[victim].valid && t.lines[i].lru < t.lines[victim].lru {
			victim = i
		}
	}
	t.clock++
	t.lines[victim] = rangeLine{valid: true, lru: t.clock, r: r}
}

// InvalidateContaining removes every range covering vpn, reporting how
// many were removed (the OS shoots ranges down when their backing chunk
// is split or unmapped).
func (t *RangeTLB) InvalidateContaining(v mem.VPN) int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].r.Contains(v) {
			t.lines[i] = rangeLine{}
			n++
		}
	}
	return n
}

// Flush empties the range TLB.
func (t *RangeTLB) Flush() {
	for i := range t.lines {
		t.lines[i] = rangeLine{}
	}
}

// Occupancy returns the number of valid ranges.
func (t *RangeTLB) Occupancy() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}
