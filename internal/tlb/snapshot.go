package tlb

import "encoding/binary"

// Shard-replay support: deep clones (so per-shard simulators own private
// TLB state) and canonical state serialization (so the shard engine can
// decide whether two simulator states will behave identically from here
// on, without being confused by representation details that carry no
// behavioural weight).

// Clone returns a deep copy of the cache sharing no storage with c.
func (c *Cache) Clone() *Cache {
	return &Cache{
		sets:    c.sets,
		ways:    c.ways,
		keys:    append([]uint64(nil), c.keys...),
		lrus:    append([]uint64(nil), c.lrus...),
		entries: append([]Entry(nil), c.entries...),
		clock:   c.clock,
	}
}

// AppendCanonical appends a canonical serialization of the cache's
// behaviour-relevant state to dst and returns the extended slice.
//
// Two caches with equal canonical bytes behave identically under any
// future operation sequence, and two caches that behave identically
// converge to equal canonical bytes. That requires erasing two
// representation details:
//
//   - Absolute LRU clock values: victim selection only compares stamps
//     within one set, and every future stamp exceeds every existing one,
//     so only the per-set recency ORDER matters. Entries are emitted in
//     recency order (oldest first) instead of with their stamps.
//   - Way positions: lookups match by key and each live key appears in at
//     most one way of its set (page/anchor tags are unique by
//     construction; cluster entries of one block with different physical
//     bases have disjoint bitmaps and distinct replacement keys), so
//     which way holds an entry never influences hits, victims, or stats.
//     Two simulators replaying the same accesses from different histories
//     converge on contents and recency but essentially never on way
//     placement — dropping positions is what lets the shard fixpoint
//     detect that convergence.
func (c *Cache) AppendCanonical(dst []byte) []byte {
	var fixed [64]int
	ord := fixed[:]
	if c.ways > len(fixed) {
		ord = make([]int, c.ways)
	}
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		n := 0
		for w := 0; w < c.ways; w++ {
			if c.lrus[base+w] == 0 {
				continue
			}
			// Insertion sort by stamp: oldest first. Stamps are unique
			// (the clock increments before every stamp).
			i := n
			for i > 0 && c.lrus[base+ord[i-1]] > c.lrus[base+w] {
				ord[i] = ord[i-1]
				i--
			}
			ord[i] = w
			n++
		}
		dst = append(dst, byte(n))
		for i := 0; i < n; i++ {
			w := base + ord[i]
			dst = binary.LittleEndian.AppendUint64(dst, c.keys[w])
			dst = appendEntry(dst, c.entries[w])
		}
	}
	return dst
}

func appendEntry(dst []byte, e Entry) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.VPNBase))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.PFNBase))
	dst = binary.LittleEndian.AppendUint64(dst, e.Contig)
	return append(dst, byte(e.Kind), e.Bitmap)
}

// Clone returns a deep copy of the range TLB sharing no storage with t.
func (t *RangeTLB) Clone() *RangeTLB {
	return &RangeTLB{
		capacity: t.capacity,
		lines:    append([]rangeLine(nil), t.lines...),
		clock:    t.clock,
	}
}

// AppendCanonical appends a canonical serialization of the range TLB's
// state to dst. Unlike Cache, line POSITIONS are preserved: ranges may
// overlap (CoLT-FA's capped run discovery can produce overlapping runs for
// the same chunk), lookups scan lines in order and promote the first
// match, so which line holds a range is behaviour-relevant. Only the
// absolute clock is erased, by replacing stamps with recency ranks.
func (t *RangeTLB) AppendCanonical(dst []byte) []byte {
	// Rank the valid lines by stamp (unique, so ranks are well defined).
	n := len(t.lines)
	rank := make([]uint32, n)
	for i := 0; i < n; i++ {
		if !t.lines[i].valid {
			continue
		}
		r := uint32(1)
		for j := 0; j < n; j++ {
			if t.lines[j].valid && t.lines[j].lru < t.lines[i].lru {
				r++
			}
		}
		rank[i] = r
	}
	for i := 0; i < n; i++ {
		l := t.lines[i]
		if !l.valid {
			dst = append(dst, 0, 0, 0, 0)
			continue
		}
		dst = binary.LittleEndian.AppendUint32(dst, rank[i])
		dst = binary.LittleEndian.AppendUint64(dst, uint64(l.r.StartVPN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(l.r.StartPFN))
		dst = binary.LittleEndian.AppendUint64(dst, l.r.Pages)
	}
	return dst
}
