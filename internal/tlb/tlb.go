// Package tlb provides the hardware translation-buffer structures the
// simulator composes into full MMUs: a set-associative TLB with true LRU
// replacement (used for the L1s, the shared L2, and the partitioned
// cluster TLB) and a small fully-associative range TLB (used for RMM's
// segment translations).
//
// The set-associative cache stores uniform Entry values and is indexed by
// an externally computed (set, key) pair, because the paper's anchor scheme
// deliberately reuses the same physical L2 array with three different
// indexing functions (Figure 6): 4 KiB entries index with VPN low bits,
// 2 MiB entries with VPN>>9, and anchor entries with VPN>>d, where d is the
// process's current anchor distance.
package tlb

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// EntryKind discriminates what a TLB entry translates. Kinds are part of
// the lookup key so that, e.g., an anchor entry can never satisfy a 4 KiB
// lookup with an aliasing tag.
type EntryKind uint8

// The entry kinds used by the translation schemes.
const (
	Kind4K EntryKind = iota
	Kind2M
	KindAnchor
	KindCluster
	numKinds
)

// String names the entry kind.
func (k EntryKind) String() string {
	switch k {
	case Kind4K:
		return "4K"
	case Kind2M:
		return "2M"
	case KindAnchor:
		return "anchor"
	case KindCluster:
		return "cluster"
	default:
		return fmt.Sprintf("EntryKind(%d)", uint8(k))
	}
}

// Entry is one translation record. The word-sized fields lead so the
// struct packs into 32 bytes; a whole L2 set then spans two cache lines
// instead of four, which matters because every lookup scans the set.
type Entry struct {
	// VPNBase is the first VPN the entry covers (page base for 4K/2M,
	// anchor VPN for anchors, 8-aligned block base for clusters).
	VPNBase mem.VPN
	// PFNBase is the frame corresponding to VPNBase.
	PFNBase mem.PFN
	// Contig is the anchor contiguity in pages (anchor entries only).
	Contig uint64
	Kind   EntryKind
	// Bitmap marks which of the 8 block offsets a cluster entry covers
	// (cluster entries only).
	Bitmap uint8
}

// Cache is a set-associative TLB with true-LRU replacement within a set.
// The zero value is unusable; call NewCache.
//
// Storage is split into parallel per-way arrays rather than an
// array-of-structs: the match scan touches only keys (8 bytes per way, so
// an 8-way set's tags fit in a single cache line) and victim selection
// touches only lrus; the 32-byte Entry payload is read or written once,
// on a hit. An lru of 0 marks an invalid way — the clock is incremented
// before every stamp, so live ways always carry lru >= 1, and zeroing a
// way (Invalidate, Flush) is exactly the invalid encoding.
type Cache struct {
	sets, ways int
	keys       []uint64
	lrus       []uint64
	entries    []Entry
	clock      uint64
}

// NewCache creates a cache with the given geometry. sets must be a power
// of two; ways >= 1.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || !mem.IsPow2(uint64(sets)) {
		panic(fmt.Sprintf("tlb: sets %d must be a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("tlb: ways %d must be positive", ways))
	}
	n := sets * ways
	return &Cache{
		sets:    sets,
		ways:    ways,
		keys:    make([]uint64, n),
		lrus:    make([]uint64, n),
		entries: make([]Entry, n),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Entries returns the total capacity in entries.
func (c *Cache) Entries() int { return c.sets * c.ways }

// SetMask returns sets-1, for external index computation.
func (c *Cache) SetMask() uint64 { return uint64(c.sets - 1) }

// Key packs an (kind, tag) pair into a lookup key. Tags are arbitrary
// values derived from the VPN by the scheme's indexing function.
func Key(kind EntryKind, tag uint64) uint64 {
	return tag<<3 | uint64(kind)
}

// Lookup searches the set for the key and promotes the entry to MRU on a
// hit.
//
//tlbvet:hotpath
func (c *Cache) Lookup(set int, key uint64) (Entry, bool) {
	base := set * c.ways
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i := range keys {
		if keys[i] == key && c.lrus[base+i] != 0 {
			c.clock++
			c.lrus[base+i] = c.clock
			return c.entries[base+i], true
		}
	}
	return Entry{}, false
}

// LookupWhere searches the set for the first valid entry satisfying
// match, promoting it to MRU on a hit. Schemes whose entries cannot be
// found by exact key (e.g. cluster entries, where one virtual block may
// need two entries with different physical bases) probe with this.
func (c *Cache) LookupWhere(set int, match func(Entry) bool) (Entry, bool) {
	base := set * c.ways
	lrus := c.lrus[base : base+c.ways : base+c.ways]
	for i := range lrus {
		if lrus[i] != 0 && match(c.entries[base+i]) {
			c.clock++
			lrus[i] = c.clock
			return c.entries[base+i], true
		}
	}
	return Entry{}, false
}

// Peek is Lookup without the LRU update (used by tests and stats probes).
func (c *Cache) Peek(set int, key uint64) (Entry, bool) {
	base := set * c.ways
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i := range keys {
		if keys[i] == key && c.lrus[base+i] != 0 {
			return c.entries[base+i], true
		}
	}
	return Entry{}, false
}

// Insert installs the entry under key, evicting the set's LRU way if
// necessary. Inserting an existing key overwrites it in place. It returns
// the evicted entry, if any.
//
//tlbvet:hotpath
func (c *Cache) Insert(set int, key uint64, e Entry) (Entry, bool) {
	base := set * c.ways
	keys := c.keys[base : base+c.ways : base+c.ways]
	lrus := c.lrus[base : base+c.ways : base+c.ways]
	// victim selection: an exact key match wins, else the first invalid
	// way, else true LRU. vLRU shadows lrus[victim] (0 = invalid way held)
	// so the scan reads each way once.
	victim := 0
	vLRU := lrus[0]
	for i := range keys {
		li := lrus[i]
		if li != 0 && keys[i] == key {
			victim = i
			break
		}
		if li == 0 {
			if vLRU != 0 {
				victim, vLRU = i, 0
			}
			continue
		}
		if vLRU != 0 && li < vLRU {
			victim, vLRU = i, li
		}
	}
	var evicted Entry
	hadVictim := lrus[victim] != 0 && keys[victim] != key
	if hadVictim {
		evicted = c.entries[base+victim]
	}
	c.clock++
	keys[victim] = key
	lrus[victim] = c.clock
	c.entries[base+victim] = e
	return evicted, hadVictim
}

// InsertNew is Insert for callers that know the key is not in the set —
// every fill that follows a missed lookup of the same key. The victim is
// then the first invalid way if any, else the LRU way: exactly what
// Insert selects when its key-match scan cannot fire, so the two are
// interchangeable whenever the key is absent. Skipping the match scan
// keeps the probe loop to one array and lets it stop at the first free
// way.
//
//tlbvet:hotpath
func (c *Cache) InsertNew(set int, key uint64, e Entry) (Entry, bool) {
	base := set * c.ways
	lrus := c.lrus[base : base+c.ways : base+c.ways]
	victim := 0
	vLRU := lrus[0]
	if vLRU != 0 {
		for i := 1; i < len(lrus); i++ {
			li := lrus[i]
			if li == 0 {
				victim, vLRU = i, 0
				break
			}
			if li < vLRU {
				victim, vLRU = i, li
			}
		}
	}
	var evicted Entry
	hadVictim := vLRU != 0
	if hadVictim {
		evicted = c.entries[base+victim]
	}
	c.clock++
	c.keys[base+victim] = key
	lrus[victim] = c.clock
	c.entries[base+victim] = e
	return evicted, hadVictim
}

// Invalidate removes the entry with the given key from the set, reporting
// whether it was present.
func (c *Cache) Invalidate(set int, key uint64) bool {
	base := set * c.ways
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i := range keys {
		if keys[i] == key && c.lrus[base+i] != 0 {
			keys[i] = 0
			c.lrus[base+i] = 0
			c.entries[base+i] = Entry{}
			return true
		}
	}
	return false
}

// InvalidateWhere removes every entry in the set satisfying match and
// returns how many were removed (targeted shootdown of coalesced entries
// that cannot be addressed by exact key).
func (c *Cache) InvalidateWhere(set int, match func(Entry) bool) int {
	base := set * c.ways
	lrus := c.lrus[base : base+c.ways : base+c.ways]
	n := 0
	for i := range lrus {
		if lrus[i] != 0 && match(c.entries[base+i]) {
			c.keys[base+i] = 0
			lrus[i] = 0
			c.entries[base+i] = Entry{}
			n++
		}
	}
	return n
}

// Flush empties the cache (whole-TLB shootdown, as the OS performs after an
// anchor distance change).
func (c *Cache) Flush() {
	clear(c.keys)
	clear(c.lrus)
	clear(c.entries)
}

// Occupancy returns the number of valid entries, optionally filtered by
// kind (pass nil for all). Used by utilization statistics and tests.
func (c *Cache) Occupancy(want func(Entry) bool) int {
	n := 0
	for i, lru := range c.lrus {
		if lru != 0 && (want == nil || want(c.entries[i])) {
			n++
		}
	}
	return n
}
