// Package tlb provides the hardware translation-buffer structures the
// simulator composes into full MMUs: a set-associative TLB with true LRU
// replacement (used for the L1s, the shared L2, and the partitioned
// cluster TLB) and a small fully-associative range TLB (used for RMM's
// segment translations).
//
// The set-associative cache stores uniform Entry values and is indexed by
// an externally computed (set, key) pair, because the paper's anchor scheme
// deliberately reuses the same physical L2 array with three different
// indexing functions (Figure 6): 4 KiB entries index with VPN low bits,
// 2 MiB entries with VPN>>9, and anchor entries with VPN>>d, where d is the
// process's current anchor distance.
package tlb

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// EntryKind discriminates what a TLB entry translates. Kinds are part of
// the lookup key so that, e.g., an anchor entry can never satisfy a 4 KiB
// lookup with an aliasing tag.
type EntryKind uint8

// The entry kinds used by the translation schemes.
const (
	Kind4K EntryKind = iota
	Kind2M
	KindAnchor
	KindCluster
	numKinds
)

// String names the entry kind.
func (k EntryKind) String() string {
	switch k {
	case Kind4K:
		return "4K"
	case Kind2M:
		return "2M"
	case KindAnchor:
		return "anchor"
	case KindCluster:
		return "cluster"
	default:
		return fmt.Sprintf("EntryKind(%d)", uint8(k))
	}
}

// Entry is one translation record.
type Entry struct {
	Kind EntryKind
	// VPNBase is the first VPN the entry covers (page base for 4K/2M,
	// anchor VPN for anchors, 8-aligned block base for clusters).
	VPNBase mem.VPN
	// PFNBase is the frame corresponding to VPNBase.
	PFNBase mem.PFN
	// Contig is the anchor contiguity in pages (anchor entries only).
	Contig uint64
	// Bitmap marks which of the 8 block offsets a cluster entry covers
	// (cluster entries only).
	Bitmap uint8
}

// Cache is a set-associative TLB with true-LRU replacement within a set.
// The zero value is unusable; call NewCache.
type Cache struct {
	sets, ways int
	lines      []line
	clock      uint64
}

type line struct {
	valid bool
	key   uint64
	lru   uint64
	entry Entry
}

// NewCache creates a cache with the given geometry. sets must be a power
// of two; ways >= 1.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || !mem.IsPow2(uint64(sets)) {
		panic(fmt.Sprintf("tlb: sets %d must be a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("tlb: ways %d must be positive", ways))
	}
	return &Cache{sets: sets, ways: ways, lines: make([]line, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Entries returns the total capacity in entries.
func (c *Cache) Entries() int { return c.sets * c.ways }

// SetMask returns sets-1, for external index computation.
func (c *Cache) SetMask() uint64 { return uint64(c.sets - 1) }

// Key packs an (kind, tag) pair into a lookup key. Tags are arbitrary
// values derived from the VPN by the scheme's indexing function.
func Key(kind EntryKind, tag uint64) uint64 {
	return tag<<3 | uint64(kind)
}

// Lookup searches the set for the key and promotes the entry to MRU on a
// hit.
func (c *Cache) Lookup(set int, key uint64) (Entry, bool) {
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].key == key {
			c.clock++
			c.lines[i].lru = c.clock
			return c.lines[i].entry, true
		}
	}
	return Entry{}, false
}

// LookupWhere searches the set for the first valid entry satisfying
// match, promoting it to MRU on a hit. Schemes whose entries cannot be
// found by exact key (e.g. cluster entries, where one virtual block may
// need two entries with different physical bases) probe with this.
func (c *Cache) LookupWhere(set int, match func(Entry) bool) (Entry, bool) {
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && match(c.lines[i].entry) {
			c.clock++
			c.lines[i].lru = c.clock
			return c.lines[i].entry, true
		}
	}
	return Entry{}, false
}

// Peek is Lookup without the LRU update (used by tests and stats probes).
func (c *Cache) Peek(set int, key uint64) (Entry, bool) {
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].key == key {
			return c.lines[i].entry, true
		}
	}
	return Entry{}, false
}

// Insert installs the entry under key, evicting the set's LRU way if
// necessary. Inserting an existing key overwrites it in place. It returns
// the evicted entry, if any.
func (c *Cache) Insert(set int, key uint64, e Entry) (Entry, bool) {
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].key == key {
			victim = i
			break
		}
		if !c.lines[i].valid {
			if c.lines[victim].valid {
				victim = i
			}
			continue
		}
		if c.lines[victim].valid && c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	var evicted Entry
	hadVictim := c.lines[victim].valid && c.lines[victim].key != key
	if hadVictim {
		evicted = c.lines[victim].entry
	}
	c.clock++
	c.lines[victim] = line{valid: true, key: key, lru: c.clock, entry: e}
	return evicted, hadVictim
}

// Invalidate removes the entry with the given key from the set, reporting
// whether it was present.
func (c *Cache) Invalidate(set int, key uint64) bool {
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].key == key {
			c.lines[i] = line{}
			return true
		}
	}
	return false
}

// InvalidateWhere removes every entry in the set satisfying match and
// returns how many were removed (targeted shootdown of coalesced entries
// that cannot be addressed by exact key).
func (c *Cache) InvalidateWhere(set int, match func(Entry) bool) int {
	base := set * c.ways
	n := 0
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && match(c.lines[i].entry) {
			c.lines[i] = line{}
			n++
		}
	}
	return n
}

// Flush empties the cache (whole-TLB shootdown, as the OS performs after an
// anchor distance change).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Occupancy returns the number of valid entries, optionally filtered by
// kind (pass nil for all). Used by utilization statistics and tests.
func (c *Cache) Occupancy(want func(Entry) bool) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && (want == nil || want(c.lines[i].entry)) {
			n++
		}
	}
	return n
}
