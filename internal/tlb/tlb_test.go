package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtlb/internal/mem"
)

func TestNewCacheValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCache(0, 4) },
		func() { NewCache(3, 4) }, // non power of two
		func() { NewCache(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	c := NewCache(128, 8)
	if c.Sets() != 128 || c.Ways() != 8 || c.Entries() != 1024 || c.SetMask() != 127 {
		t.Error("geometry accessors wrong")
	}
}

func TestLookupInsertBasic(t *testing.T) {
	c := NewCache(4, 2)
	k := Key(Kind4K, 0x42)
	if _, ok := c.Lookup(1, k); ok {
		t.Fatal("hit in empty cache")
	}
	e := Entry{Kind: Kind4K, VPNBase: 0x42, PFNBase: 0x99}
	c.Insert(1, k, e)
	got, ok := c.Lookup(1, k)
	if !ok || got != e {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	// Same key, different set: miss.
	if _, ok := c.Lookup(2, k); ok {
		t.Error("hit in wrong set")
	}
	// Same tag, different kind: miss.
	if _, ok := c.Lookup(1, Key(KindAnchor, 0x42)); ok {
		t.Error("kind aliasing")
	}
}

func TestKeyDisambiguatesKinds(t *testing.T) {
	f := func(tag uint64) bool {
		tag &= (1 << 60) - 1
		seen := map[uint64]bool{}
		for k := EntryKind(0); k < numKinds; k++ {
			key := Key(k, tag)
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(1, 2)
	c.Insert(0, Key(Kind4K, 1), Entry{VPNBase: 1})
	c.Insert(0, Key(Kind4K, 2), Entry{VPNBase: 2})
	// Touch 1, making 2 the LRU.
	if _, ok := c.Lookup(0, Key(Kind4K, 1)); !ok {
		t.Fatal("entry 1 missing")
	}
	evicted, had := c.Insert(0, Key(Kind4K, 3), Entry{VPNBase: 3})
	if !had || evicted.VPNBase != 2 {
		t.Fatalf("evicted %+v (had=%v), want VPNBase 2", evicted, had)
	}
	if _, ok := c.Lookup(0, Key(Kind4K, 1)); !ok {
		t.Error("MRU entry 1 evicted")
	}
	if _, ok := c.Lookup(0, Key(Kind4K, 2)); ok {
		t.Error("LRU entry 2 still present")
	}
}

func TestInsertOverwritesInPlace(t *testing.T) {
	c := NewCache(1, 4)
	k := Key(Kind4K, 7)
	c.Insert(0, k, Entry{PFNBase: 1})
	evicted, had := c.Insert(0, k, Entry{PFNBase: 2})
	if had {
		t.Errorf("overwrite reported eviction of %+v", evicted)
	}
	got, _ := c.Lookup(0, k)
	if got.PFNBase != 2 {
		t.Errorf("PFNBase = %d, want 2", got.PFNBase)
	}
	if c.Occupancy(nil) != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy(nil))
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := NewCache(2, 2)
	c.Insert(0, Key(Kind4K, 1), Entry{})
	c.Insert(1, Key(Kind2M, 2), Entry{Kind: Kind2M})
	if !c.Invalidate(0, Key(Kind4K, 1)) {
		t.Error("invalidate of present entry failed")
	}
	if c.Invalidate(0, Key(Kind4K, 1)) {
		t.Error("invalidate of absent entry succeeded")
	}
	if c.Occupancy(nil) != 1 {
		t.Errorf("occupancy = %d", c.Occupancy(nil))
	}
	if c.Occupancy(func(e Entry) bool { return e.Kind == Kind2M }) != 1 {
		t.Error("filtered occupancy wrong")
	}
	c.Flush()
	if c.Occupancy(nil) != 0 {
		t.Error("flush left entries behind")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := NewCache(1, 2)
	c.Insert(0, Key(Kind4K, 1), Entry{VPNBase: 1})
	c.Insert(0, Key(Kind4K, 2), Entry{VPNBase: 2})
	// Peek at 1 (the LRU); it must remain the LRU.
	if _, ok := c.Peek(0, Key(Kind4K, 1)); !ok {
		t.Fatal("peek missed")
	}
	c.Insert(0, Key(Kind4K, 3), Entry{VPNBase: 3})
	if _, ok := c.Peek(0, Key(Kind4K, 1)); ok {
		t.Error("peek promoted the entry")
	}
}

// TestLRUStackProperty: with a single set of W ways, after any sequence of
// inserts the W most recently used distinct keys are exactly the residents.
func TestLRUStackProperty(t *testing.T) {
	f := func(refs []uint8) bool {
		const ways = 4
		c := NewCache(1, ways)
		var stack []uint64 // MRU first
		for _, r := range refs {
			key := Key(Kind4K, uint64(r%16))
			if _, ok := c.Lookup(0, key); !ok {
				c.Insert(0, key, Entry{VPNBase: mem.VPN(r)})
			}
			// Maintain reference LRU stack.
			for i, k := range stack {
				if k == key {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
			stack = append([]uint64{key}, stack...)
			if len(stack) > ways {
				stack = stack[:ways]
			}
		}
		for _, k := range stack {
			if _, ok := c.Peek(0, k); !ok {
				return false
			}
		}
		return c.Occupancy(nil) == len(stack)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeTLBBasic(t *testing.T) {
	rt := NewRangeTLB(2)
	if rt.Capacity() != 2 {
		t.Error("capacity wrong")
	}
	rt.Insert(RangeEntry{StartVPN: 100, StartPFN: 1000, Pages: 50})
	r, ok := rt.Lookup(120)
	if !ok || r.Translate(120) != 1020 {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	if _, ok := rt.Lookup(150); ok {
		t.Error("hit past range end")
	}
	if _, ok := rt.Lookup(99); ok {
		t.Error("hit before range start")
	}
}

func TestRangeTLBLRU(t *testing.T) {
	rt := NewRangeTLB(2)
	rt.Insert(RangeEntry{StartVPN: 0, Pages: 10})
	rt.Insert(RangeEntry{StartVPN: 100, Pages: 10})
	rt.Lookup(5) // promote range 0
	rt.Insert(RangeEntry{StartVPN: 200, Pages: 10})
	if _, ok := rt.Lookup(105); ok {
		t.Error("LRU range survived eviction")
	}
	if _, ok := rt.Lookup(5); !ok {
		t.Error("MRU range evicted")
	}
	if _, ok := rt.Lookup(205); !ok {
		t.Error("new range missing")
	}
}

func TestRangeTLBReplaceSameStart(t *testing.T) {
	rt := NewRangeTLB(4)
	rt.Insert(RangeEntry{StartVPN: 0, StartPFN: 10, Pages: 5})
	rt.Insert(RangeEntry{StartVPN: 0, StartPFN: 20, Pages: 8})
	if rt.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", rt.Occupancy())
	}
	r, _ := rt.Lookup(7)
	if r.StartPFN != 20 {
		t.Error("replacement did not take effect")
	}
	rt.Flush()
	if rt.Occupancy() != 0 {
		t.Error("flush failed")
	}
}

func TestRangeTLBValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRangeTLB(0)
}

func TestCacheRandomizedVsMap(t *testing.T) {
	// The cache with huge associativity behaves as a plain map.
	c := NewCache(1, 4096)
	ref := make(map[uint64]Entry)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		tag := uint64(r.Intn(2048))
		key := Key(Kind4K, tag)
		switch r.Intn(3) {
		case 0:
			e := Entry{VPNBase: mem.VPN(tag), PFNBase: mem.PFN(r.Intn(1 << 20))}
			c.Insert(0, key, e)
			ref[key] = e
		case 1:
			got, ok := c.Lookup(0, key)
			want, wok := ref[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("iter %d: lookup mismatch", i)
			}
		case 2:
			got := c.Invalidate(0, key)
			_, want := ref[key]
			if got != want {
				t.Fatalf("iter %d: invalidate mismatch", i)
			}
			delete(ref, key)
		}
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(128, 8)
	for i := 0; i < 1024; i++ {
		set := i & 127
		c.Insert(set, Key(Kind4K, uint64(i)), Entry{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(i&127, Key(Kind4K, uint64(i&1023)))
	}
}

func BenchmarkRangeTLBLookup(b *testing.B) {
	rt := NewRangeTLB(32)
	for i := 0; i < 32; i++ {
		rt.Insert(RangeEntry{StartVPN: mem.VPN(i * 1000), StartPFN: mem.PFN(i * 1000), Pages: 500})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Lookup(mem.VPN((i % 32) * 1000))
	}
}

func TestLookupWhere(t *testing.T) {
	c := NewCache(1, 4)
	c.Insert(0, Key(KindCluster, 1), Entry{Kind: KindCluster, VPNBase: 8, PFNBase: 100, Bitmap: 0x0F})
	c.Insert(0, Key(KindCluster, 2), Entry{Kind: KindCluster, VPNBase: 8, PFNBase: 200, Bitmap: 0xF0})
	c.Insert(0, Key(Kind4K, 3), Entry{Kind: Kind4K, VPNBase: 8})

	// Two cluster entries share a block; the predicate picks by bitmap.
	e, ok := c.LookupWhere(0, func(e Entry) bool {
		return e.Kind == KindCluster && e.VPNBase == 8 && e.Bitmap&(1<<6) != 0
	})
	if !ok || e.PFNBase != 200 {
		t.Fatalf("LookupWhere = %+v, %v", e, ok)
	}
	if _, ok := c.LookupWhere(0, func(e Entry) bool { return e.VPNBase == 99 }); ok {
		t.Error("predicate matching nothing hit")
	}
	// LookupWhere promotes: the matched entry must survive two inserts.
	c.Insert(0, Key(Kind4K, 4), Entry{})
	c.Insert(0, Key(Kind4K, 5), Entry{})
	if _, ok := c.Peek(0, Key(KindCluster, 2)); !ok {
		t.Error("promoted entry evicted")
	}
}

func TestInvalidateWhere(t *testing.T) {
	c := NewCache(1, 4)
	c.Insert(0, Key(KindCluster, 1), Entry{Kind: KindCluster, VPNBase: 8})
	c.Insert(0, Key(KindCluster, 2), Entry{Kind: KindCluster, VPNBase: 8})
	c.Insert(0, Key(Kind4K, 3), Entry{Kind: Kind4K, VPNBase: 8})
	n := c.InvalidateWhere(0, func(e Entry) bool { return e.Kind == KindCluster })
	if n != 2 {
		t.Errorf("invalidated %d entries, want 2", n)
	}
	if c.Occupancy(nil) != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy(nil))
	}
	if n := c.InvalidateWhere(0, func(Entry) bool { return false }); n != 0 {
		t.Errorf("no-match invalidate removed %d", n)
	}
}

func TestRangeTLBInvalidateContaining(t *testing.T) {
	rt := NewRangeTLB(4)
	rt.Insert(RangeEntry{StartVPN: 0, StartPFN: 0, Pages: 100})
	rt.Insert(RangeEntry{StartVPN: 50, StartPFN: 500, Pages: 100}) // overlapping VPN 60
	rt.Insert(RangeEntry{StartVPN: 200, StartPFN: 900, Pages: 10})
	if n := rt.InvalidateContaining(60); n != 2 {
		t.Errorf("invalidated %d ranges, want 2", n)
	}
	if rt.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", rt.Occupancy())
	}
	if _, ok := rt.Lookup(205); !ok {
		t.Error("untouched range lost")
	}
	if n := rt.InvalidateContaining(9999); n != 0 {
		t.Errorf("miss invalidate removed %d", n)
	}
}
