package benchparse

import (
	"strings"
	"testing"
)

func validServerReport() ServerReport {
	return ServerReport{
		Harness: "tlbload",
		Seed:    1,
		Scenarios: map[string]LoadScenario{
			"overload": {
				DurationS: 3,
				Tenants: map[string]TenantLoadStats{
					"light": {
						Offered: 60, Accepted: 60,
						ThroughputRPS: 20,
						LatencyMsP50:  4, LatencyMsP99: 9, LatencyMsP999: 12,
					},
					"heavy": {
						Offered: 600, Accepted: 80, Shed: 520,
						ThroughputRPS: 26.7,
						LatencyMsP50:  5, LatencyMsP99: 30, LatencyMsP999: 55,
						RetryAfterMaxS: 12,
					},
				},
			},
		},
	}
}

func TestValidateServerAccepts(t *testing.T) {
	if err := ValidateServer(validServerReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
}

func TestValidateServerRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ServerReport)
		want   string
	}{
		{"wrong harness", func(r *ServerReport) { r.Harness = "wrk" }, "harness"},
		{"no scenarios", func(r *ServerReport) { r.Scenarios = nil }, "no scenarios"},
		{"no tenants", func(r *ServerReport) {
			r.Scenarios["overload"] = LoadScenario{DurationS: 1}
		}, "no tenants"},
		{"zero duration", func(r *ServerReport) {
			sc := r.Scenarios["overload"]
			sc.DurationS = 0
			r.Scenarios["overload"] = sc
		}, "duration"},
		{"counts disagree", func(r *ServerReport) {
			sc := r.Scenarios["overload"]
			ts := sc.Tenants["light"]
			ts.Shed = 7 // offered stays 60, so the sum no longer adds up
			sc.Tenants["light"] = ts
		}, "offered"},
		{"percentiles inverted", func(r *ServerReport) {
			sc := r.Scenarios["overload"]
			ts := sc.Tenants["heavy"]
			ts.LatencyMsP99 = ts.LatencyMsP999 + 1
			sc.Tenants["heavy"] = ts
		}, "percentiles"},
		{"negative throughput", func(r *ServerReport) {
			sc := r.Scenarios["overload"]
			ts := sc.Tenants["light"]
			ts.ThroughputRPS = -1
			sc.Tenants["light"] = ts
		}, "throughput"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validServerReport()
			tc.mutate(&rep)
			err := ValidateServer(rep)
			if err == nil {
				t.Fatalf("mutated report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3} // deliberately unsorted
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.99, 5}, {1, 5},
	}
	for _, tc := range cases {
		if got := Quantile(vals, tc.q); got != tc.want {
			t.Errorf("Quantile(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %g, want 0", got)
	}
	if vals[0] != 5 {
		t.Errorf("Quantile mutated its input: %v", vals)
	}
}
