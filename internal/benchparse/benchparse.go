// Package benchparse turns `go test -bench` text output into the
// machine-readable benchmark artifacts the repo publishes
// (BENCH_pipeline.json via `make bench-json`). It is a plain parser —
// no clocks, no RNG — so it sits inside tlbvet's determinism scope:
// the same bench output always renders the same artifact bytes.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line. Name is the full
// slash-separated sub-benchmark path with the Benchmark prefix and the
// -GOMAXPROCS suffix stripped (e.g. "TranslateHotPath/anchor/batched").
type Entry struct {
	Name        string
	Iterations  uint64
	NsPerOp     float64
	BytesPerOp  uint64
	AllocsPerOp uint64
	// HasMem reports that the line carried -benchmem columns; without
	// them BytesPerOp/AllocsPerOp are zero by absence, not measurement.
	HasMem bool
}

// benchLine matches one result row of `go test -bench` output:
//
//	BenchmarkName/sub-8   123456   78.9 ns/op   0 B/op   0 allocs/op
//
// The ns/op column is mandatory; the -benchmem columns are optional.
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?`)

// Parse reads `go test -bench` output and returns every benchmark
// result line in input order. Non-benchmark lines (the goos/goarch
// header, PASS, ok, sub-test logs) are skipped. An input with no
// benchmark lines at all is an error — it almost always means the bench
// run itself failed upstream of the pipe.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		var err error
		if e.Iterations, err = strconv.ParseUint(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("benchparse: iterations in %q: %w", sc.Text(), err)
		}
		if e.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("benchparse: ns/op in %q: %w", sc.Text(), err)
		}
		if m[4] != "" {
			e.HasMem = true
			if e.BytesPerOp, err = strconv.ParseUint(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("benchparse: B/op in %q: %w", sc.Text(), err)
			}
			if e.AllocsPerOp, err = strconv.ParseUint(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("benchparse: allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchparse: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchparse: no benchmark result lines in input")
	}
	return out, nil
}

// Variant is one (scheme, drive-path) cell of the pipeline report. The
// hot-path benchmark's op is one translated access, so ns/op and
// allocs/op are per-access figures directly.
type Variant struct {
	NsPerAccess     float64 `json:"ns_per_access"`
	BytesPerAccess  uint64  `json:"bytes_per_access"`
	AllocsPerAccess uint64  `json:"allocs_per_access"`
	Iterations      uint64  `json:"iterations"`
}

// PipelineReport is the BENCH_pipeline.json document: per-scheme
// serial vs batched hot-path numbers. encoding/json renders map keys
// sorted, so the artifact bytes are deterministic for a given input.
type PipelineReport struct {
	Benchmark string                        `json:"benchmark"`
	Unit      string                        `json:"unit"`
	Schemes   map[string]map[string]Variant `json:"schemes"`
}

// pipelineBench is the benchmark Pipeline extracts, matching
// BenchmarkTranslateHotPath's sub-benchmark tree: scheme/variant.
const pipelineBench = "TranslateHotPath"

// Pipeline distills parsed entries into the pipeline report. Every
// entry must carry -benchmem columns (the artifact's allocs/access
// claim is meaningless without them), and at least one
// TranslateHotPath row must be present.
func Pipeline(entries []Entry) (PipelineReport, error) {
	rep := PipelineReport{
		Benchmark: pipelineBench,
		Unit:      "access",
		Schemes:   make(map[string]map[string]Variant),
	}
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Name, pipelineBench+"/")
		if !ok {
			continue
		}
		scheme, variant, ok := strings.Cut(rest, "/")
		if !ok {
			return rep, fmt.Errorf("benchparse: %s row %q is not scheme/variant shaped", pipelineBench, e.Name)
		}
		if !e.HasMem {
			return rep, fmt.Errorf("benchparse: %q has no allocation columns; run the bench with -benchmem", e.Name)
		}
		if rep.Schemes[scheme] == nil {
			rep.Schemes[scheme] = make(map[string]Variant)
		}
		rep.Schemes[scheme][variant] = Variant{
			NsPerAccess:     e.NsPerOp,
			BytesPerAccess:  e.BytesPerOp,
			AllocsPerAccess: e.AllocsPerOp,
			Iterations:      e.Iterations,
		}
	}
	if len(rep.Schemes) == 0 {
		return rep, fmt.Errorf("benchparse: no %s rows in input", pipelineBench)
	}
	return rep, nil
}

// CompareBaseline holds a fresh pipeline report against a committed
// baseline artifact: any (scheme, variant) cell present in both whose
// fresh ns/access exceeds the baseline's by more than tolerance
// (fractional — 0.10 means +10%) is a regression. Cells present on only
// one side are ignored (schemes and variants come and go across PRs),
// but zero overlapping cells is an error: it means the comparison
// checked nothing. All regressions are reported at once, in sorted
// order, so a run that slows several schemes names them all.
func CompareBaseline(fresh, baseline PipelineReport, tolerance float64) error {
	type cell struct{ scheme, variant string }
	var cells []cell
	for scheme, variants := range baseline.Schemes {
		for variant := range variants {
			if _, ok := fresh.Schemes[scheme][variant]; ok {
				cells = append(cells, cell{scheme, variant})
			}
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("benchparse: baseline and fresh report share no (scheme, variant) cells; nothing was compared")
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].scheme != cells[j].scheme {
			return cells[i].scheme < cells[j].scheme
		}
		return cells[i].variant < cells[j].variant
	})
	var regressions []string
	for _, c := range cells {
		base := baseline.Schemes[c.scheme][c.variant]
		got := fresh.Schemes[c.scheme][c.variant]
		if base.NsPerAccess <= 0 {
			continue
		}
		if got.NsPerAccess > base.NsPerAccess*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s/%s: %.1f ns/access vs baseline %.1f (+%.1f%%, tolerance %.0f%%)",
				c.scheme, c.variant, got.NsPerAccess, base.NsPerAccess,
				100*(got.NsPerAccess/base.NsPerAccess-1), 100*tolerance))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchparse: ns/access regressions over baseline:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// RequireZeroAllocs fails if any scheme's named variant reports heap
// allocations. It is the runtime half of the hot-path allocation proof:
// tlbvet's allocfree pass and cmd/allocgate show the //tlbvet:hotpath
// regions cannot allocate, and this check shows the measured batched
// drive indeed did not. Schemes are checked in sorted order so the
// error always names the same offender for a given report.
func RequireZeroAllocs(rep PipelineReport, variant string) error {
	schemes := make([]string, 0, len(rep.Schemes))
	for s := range rep.Schemes {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		v, ok := rep.Schemes[s][variant]
		if !ok {
			return fmt.Errorf("benchparse: scheme %q has no %q variant to prove alloc-free", s, variant)
		}
		if v.AllocsPerAccess > 0 || v.BytesPerAccess > 0 {
			return fmt.Errorf("benchparse: %s/%s allocates (%d allocs, %d B per access); the hot path must be allocation-free",
				s, variant, v.AllocsPerAccess, v.BytesPerAccess)
		}
	}
	return nil
}
