package benchparse

// BENCH_server.json: the committed artifact cmd/tlbload renders after
// a load run against the multi-tenant server. Like the pipeline
// report, the document is deterministic for a given set of inputs —
// maps render key-sorted and all fields are plain numbers — so CI can
// diff and validate the bytes. The measured numbers themselves vary
// run to run (they are wall-clock latencies); Validate checks shape
// and internal consistency, not specific values.

import (
	"fmt"
	"math"
	"sort"
)

// TenantLoadStats is one tenant's measured service during a scenario.
type TenantLoadStats struct {
	// Offered is every request the generator sent; Accepted are 2xx,
	// Shed are 429s (admission working as designed), Errors is
	// everything else — transport failures, 5xx, unexpected 4xx.
	Offered  int `json:"offered"`
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	// Sweeps counts the async POST /v1/sweeps submissions within
	// Offered (the rest were synchronous simulates).
	Sweeps int `json:"sweeps,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`

	// Request latencies in milliseconds, over accepted requests.
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsP999 float64 `json:"latency_ms_p999"`

	// RetryAfterMaxS is the largest Retry-After hint observed on this
	// tenant's 429s — evidence the adaptive hint scales under load.
	RetryAfterMaxS float64 `json:"retry_after_max_s,omitempty"`
}

// LoadScenario is one phase of a load run (e.g. "calibrate",
// "overload"), keyed by tenant.
type LoadScenario struct {
	DurationS float64                    `json:"duration_s"`
	Tenants   map[string]TenantLoadStats `json:"tenants"`
}

// ServerReport is the BENCH_server.json document.
type ServerReport struct {
	Harness   string                  `json:"harness"` // always "tlbload"
	Seed      int64                   `json:"seed"`
	Scenarios map[string]LoadScenario `json:"scenarios"`
}

// ValidateServer checks a ServerReport for shape and internal
// consistency: counts must add up and percentiles must be ordered.
// This is the "format-valid BENCH_server.json" gate CI runs against
// the committed artifact.
func ValidateServer(rep ServerReport) error {
	if rep.Harness != "tlbload" {
		return fmt.Errorf("benchparse: server report harness %q, want \"tlbload\"", rep.Harness)
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("benchparse: server report has no scenarios")
	}
	scenarios := make([]string, 0, len(rep.Scenarios))
	for name := range rep.Scenarios {
		scenarios = append(scenarios, name)
	}
	sort.Strings(scenarios)
	for _, name := range scenarios {
		sc := rep.Scenarios[name]
		if sc.DurationS <= 0 {
			return fmt.Errorf("benchparse: scenario %q has non-positive duration", name)
		}
		if len(sc.Tenants) == 0 {
			return fmt.Errorf("benchparse: scenario %q has no tenants", name)
		}
		tenants := make([]string, 0, len(sc.Tenants))
		for t := range sc.Tenants {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			ts := sc.Tenants[t]
			if ts.Offered != ts.Accepted+ts.Shed+ts.Errors {
				return fmt.Errorf("benchparse: %s/%s: offered %d != accepted %d + shed %d + errors %d",
					name, t, ts.Offered, ts.Accepted, ts.Shed, ts.Errors)
			}
			if ts.LatencyMsP50 > ts.LatencyMsP99 || ts.LatencyMsP99 > ts.LatencyMsP999 {
				return fmt.Errorf("benchparse: %s/%s: percentiles out of order (p50 %g, p99 %g, p999 %g)",
					name, t, ts.LatencyMsP50, ts.LatencyMsP99, ts.LatencyMsP999)
			}
			for label, v := range map[string]float64{
				"throughput": ts.ThroughputRPS, "p50": ts.LatencyMsP50,
				"p99": ts.LatencyMsP99, "p999": ts.LatencyMsP999,
			} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("benchparse: %s/%s: %s is %g", name, t, label, v)
				}
			}
		}
	}
	return nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values by
// nearest-rank on a sorted copy; 0 for an empty slice. Used by the
// load harness for p50/p99/p999 and deliberately simple — no
// interpolation, so the result is always an observed value.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
