package benchparse

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hybridtlb
cpu: AMD EPYC 7B13
BenchmarkSimulateAnchor-8   	       2	 512345678 ns/op
BenchmarkTranslateHotPath/base/serial-8     	 8123456	       131.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkTranslateHotPath/base/batched-8    	 9513040	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkTranslateHotPath/anchor/serial-8   	 7000000	       157.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkTranslateHotPath/anchor/batched-8  	 9800000	       108.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hybridtlb	42.1s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5", len(entries))
	}
	if e := entries[0]; e.Name != "SimulateAnchor" || e.Iterations != 2 || e.HasMem {
		t.Errorf("entry 0 = %+v, want SimulateAnchor without mem columns", e)
	}
	if e := entries[2]; e.Name != "TranslateHotPath/base/batched" ||
		e.NsPerOp != 95.2 || e.AllocsPerOp != 0 || !e.HasMem {
		t.Errorf("entry 2 = %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("input without benchmark lines parsed without error")
	}
}

func TestPipeline(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Pipeline(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 2 {
		t.Fatalf("schemes = %v, want base and anchor", rep.Schemes)
	}
	got := rep.Schemes["anchor"]["batched"]
	want := Variant{NsPerAccess: 108.4, Iterations: 9_800_000}
	if got != want {
		t.Errorf("anchor/batched = %+v, want %+v", got, want)
	}
	// The unrelated SimulateAnchor row must not leak into the report.
	if _, ok := rep.Schemes["SimulateAnchor"]; ok {
		t.Error("non-hot-path benchmark leaked into the pipeline report")
	}

	// The artifact bytes must be stable: encoding/json sorts map keys.
	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("report serialization is not deterministic")
	}
	if !strings.Contains(string(a), `"ns_per_access":108.4`) {
		t.Errorf("JSON missing expected field: %s", a)
	}
}

func TestPipelineRequiresBenchmem(t *testing.T) {
	noMem := `BenchmarkTranslateHotPath/base/serial-8 100 131.6 ns/op
`
	entries, err := Parse(strings.NewReader(noMem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pipeline(entries); err == nil || !strings.Contains(err.Error(), "benchmem") {
		t.Errorf("missing -benchmem columns not rejected: %v", err)
	}
}

func TestPipelineRejectsMalformedRow(t *testing.T) {
	entries := []Entry{{Name: "TranslateHotPath/justscheme", HasMem: true}}
	if _, err := Pipeline(entries); err == nil {
		t.Error("scheme-only row not rejected")
	}
	if _, err := Pipeline([]Entry{{Name: "Other"}}); err == nil {
		t.Error("input without hot-path rows not rejected")
	}
}

func TestRequireZeroAllocs(t *testing.T) {
	rep := PipelineReport{Schemes: map[string]map[string]Variant{
		"anchor": {"serial": {AllocsPerAccess: 3}, "batched": {}},
		"base":   {"serial": {AllocsPerAccess: 2}, "batched": {}},
	}}
	if err := RequireZeroAllocs(rep, "batched"); err != nil {
		t.Errorf("alloc-free batched variants rejected: %v", err)
	}

	// Serial variants allocate by design; only the named variant gates.
	if err := RequireZeroAllocs(rep, "serial"); err == nil {
		t.Error("allocating serial variant passed the zero-alloc gate")
	}

	rep.Schemes["colt"] = map[string]Variant{"batched": {AllocsPerAccess: 1, BytesPerAccess: 48}}
	err := RequireZeroAllocs(rep, "batched")
	if err == nil || !strings.Contains(err.Error(), "colt/batched") {
		t.Errorf("allocating batched variant not named in error: %v", err)
	}

	// Bytes without allocs (amortized growth) still fails the proof.
	rep.Schemes["colt"] = map[string]Variant{"batched": {BytesPerAccess: 8}}
	if err := RequireZeroAllocs(rep, "batched"); err == nil {
		t.Error("nonzero bytes/access passed the zero-alloc gate")
	}

	// A scheme missing the gated variant cannot claim the proof.
	rep.Schemes["colt"] = map[string]Variant{"serial": {}}
	if err := RequireZeroAllocs(rep, "batched"); err == nil {
		t.Error("scheme without a batched variant passed the zero-alloc gate")
	}
}

func baselineReport(ns map[string]float64) PipelineReport {
	rep := PipelineReport{Benchmark: pipelineBench, Unit: "access",
		Schemes: map[string]map[string]Variant{}}
	for cell, v := range ns {
		scheme, variant, _ := strings.Cut(cell, "/")
		if rep.Schemes[scheme] == nil {
			rep.Schemes[scheme] = map[string]Variant{}
		}
		rep.Schemes[scheme][variant] = Variant{NsPerAccess: v}
	}
	return rep
}

func TestCompareBaseline(t *testing.T) {
	base := baselineReport(map[string]float64{
		"base/batched": 100, "anchor/batched": 110, "anchor/sharded": 130})

	// Within tolerance: small slowdowns and any speedup pass.
	fresh := baselineReport(map[string]float64{
		"base/batched": 108, "anchor/batched": 90, "anchor/sharded": 130})
	if err := CompareBaseline(fresh, base, 0.10); err != nil {
		t.Errorf("within-tolerance report failed: %v", err)
	}

	// One cell regressed beyond 10%: the error must name it.
	fresh = baselineReport(map[string]float64{
		"base/batched": 125, "anchor/batched": 100, "anchor/sharded": 130})
	err := CompareBaseline(fresh, base, 0.10)
	if err == nil {
		t.Fatal("25% regression passed the baseline gate")
	}
	if !strings.Contains(err.Error(), "base/batched") {
		t.Errorf("regression error does not name the cell: %v", err)
	}

	// Cells only in one report are ignored, not regressions.
	fresh = baselineReport(map[string]float64{
		"base/batched": 100, "colt/batched": 9999})
	if err := CompareBaseline(fresh, base, 0.10); err != nil {
		t.Errorf("extra fresh-only cell failed the gate: %v", err)
	}

	// No overlap at all must error: the gate compared nothing.
	fresh = baselineReport(map[string]float64{"rmm/serial": 50})
	if err := CompareBaseline(fresh, base, 0.10); err == nil {
		t.Error("disjoint reports compared as passing")
	}

	// A JSON round-trip of the artifact stays comparable (the committed
	// baseline is read back through encoding/json).
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var loaded PipelineReport
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if err := CompareBaseline(base, loaded, 0); err != nil {
		t.Errorf("report differs from its own JSON round-trip: %v", err)
	}
}
