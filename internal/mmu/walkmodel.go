package mmu

import (
	"hybridtlb/internal/cache"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
)

// WalkModel optionally replaces the flat Table 3 walk latency (50 cycles)
// with a detailed model: the hardware walker's PTE fetches go through a
// data-cache hierarchy, and a page-walk cache (PWC, Intel's
// paging-structure caches / Barr et al.'s translation caching) skips the
// upper levels whose entries it holds. The paper's evaluation uses the
// flat latency; this model backs the walk-latency ablation and shows why
// 50 cycles is a reasonable average.
type WalkModel struct {
	hierarchy *cache.Hierarchy
	pwc       *pwc
	walks     uint64
	cycles    uint64
}

// NewWalkModel builds a detailed walk model with a conventional memory
// subsystem for translation data: a 32 KiB 8-way L1D slice, a 1 MiB
// 16-way L2 slice, a 200-cycle memory access, and a 32-entry PWC per
// upper level.
func NewWalkModel() *WalkModel {
	h := cache.NewHierarchy(200).
		AddLevel(cache.New(32<<10, 8), 4).
		AddLevel(cache.New(1<<20, 16), 14)
	return &WalkModel{hierarchy: h, pwc: newPWC(32)}
}

// Cost computes the walk latency for vpn against the process's page
// table: the PWC supplies the deepest cached upper level, and the
// remaining PTE fetches go through the cache hierarchy.
func (m *WalkModel) Cost(proc *osmem.Process, vpn mem.VPN) uint64 {
	lines := proc.PageTable().WalkLines(vpn)
	if len(lines) == 0 {
		return m.hierarchy.Access(0) // degenerate: empty table root fetch
	}
	// The PWC can skip fetches of the upper (non-leaf) levels.
	skip := m.pwc.deepestHit(vpn, len(lines)-1)
	var cycles uint64
	for i := skip; i < len(lines); i++ {
		cycles += m.hierarchy.Access(cache.LineOf(lines[i]))
	}
	m.pwc.fill(vpn, len(lines)-1)
	m.walks++
	m.cycles += cycles
	return cycles
}

// AverageCycles reports the mean walk latency observed so far.
func (m *WalkModel) AverageCycles() float64 {
	if m.walks == 0 {
		return 0
	}
	return float64(m.cycles) / float64(m.walks)
}

// Flush empties the caches (a full reset).
func (m *WalkModel) Flush() {
	m.hierarchy.Flush()
	m.pwc.flush()
}

// FlushTranslations empties only the PWC: data caches are physically
// tagged and survive TLB shootdowns, but paging-structure entries are
// translations and must go.
func (m *WalkModel) FlushTranslations() { m.pwc.flush() }

// pwc models the paging-structure caches: one small fully associative
// LRU array per upper level, keyed by the VA prefix that selects the
// entry at that level. A hit at depth k means the walker can start from
// level k (0 = root, so no skip).
type pwc struct {
	capacity int
	// levels[k] caches prefixes covering levels 0..k (k in 1..3):
	// level 1 = PML4E cached (skip 1 fetch), 2 = PDPTE, 3 = PDE.
	levels [4]map[uint64]uint64 // prefix -> lru stamp
	clock  uint64
}

func newPWC(capacity int) *pwc {
	p := &pwc{capacity: capacity}
	for i := range p.levels {
		p.levels[i] = make(map[uint64]uint64, capacity)
	}
	return p
}

// prefix extracts the VA prefix that identifies the entry feeding level
// depth (depth fetches skipped means the walker resumes below the entry
// selected by this prefix).
func pwcPrefix(vpn mem.VPN, depth int) uint64 {
	// VPN has 36 meaningful bits (48-bit VA, 4 KiB pages): PML4 index is
	// bits [27,36), PDPT [18,27), PD [9,18).
	return uint64(vpn) >> uint(36-9*depth)
}

// deepestHit returns how many upper-level fetches can be skipped for vpn
// (0..maxSkip).
func (p *pwc) deepestHit(vpn mem.VPN, maxSkip int) int {
	if maxSkip > 3 {
		maxSkip = 3
	}
	for depth := maxSkip; depth >= 1; depth-- {
		key := pwcPrefix(vpn, depth)
		if _, ok := p.levels[depth][key]; ok {
			p.clock++
			p.levels[depth][key] = p.clock
			return depth
		}
	}
	return 0
}

// fill records the prefixes the walk resolved, up to the leaf's parent.
func (p *pwc) fill(vpn mem.VPN, maxDepth int) {
	if maxDepth > 3 {
		maxDepth = 3
	}
	for depth := 1; depth <= maxDepth; depth++ {
		key := pwcPrefix(vpn, depth)
		p.clock++
		if _, ok := p.levels[depth][key]; !ok && len(p.levels[depth]) >= p.capacity {
			// Evict the LRU prefix.
			var victim uint64
			oldest := p.clock + 1
			for k, stamp := range p.levels[depth] {
				if stamp < oldest {
					oldest, victim = stamp, k
				}
			}
			delete(p.levels[depth], victim)
		}
		p.levels[depth][key] = p.clock
	}
}

func (p *pwc) flush() {
	for i := range p.levels {
		p.levels[i] = make(map[uint64]uint64, p.capacity)
	}
}
