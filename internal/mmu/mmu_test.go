package mmu

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
)

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range All() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v failed", s)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme parsed")
	}
}

func TestSchemePolicies(t *testing.T) {
	cases := []struct {
		s   Scheme
		pol osmem.Policy
	}{
		{Base, osmem.Policy{}},
		{THP, osmem.Policy{THP: true}},
		{Cluster, osmem.Policy{}},
		{Cluster2M, osmem.Policy{THP: true}},
		{RMM, osmem.Policy{THP: true}},
		{Anchor, osmem.Policy{THP: true, Anchors: true}},
		{CoLT, osmem.Policy{}},
	}
	for _, c := range cases {
		if got := c.s.Policy(); got != c.pol {
			t.Errorf("%v policy = %+v, want %+v", c.s, got, c.pol)
		}
	}
}

func TestDefaultConfigMatchesTable3(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1Entries4K != 64 || cfg.L1Entries2M != 32 {
		t.Error("L1 geometry wrong")
	}
	if cfg.L2Entries != 1024 || cfg.L2Ways != 8 {
		t.Error("L2 geometry wrong")
	}
	if cfg.ClusterRegularEntries != 768 || cfg.ClusterEntries != 320 {
		t.Error("cluster geometry wrong")
	}
	if cfg.RangeEntries != 32 {
		t.Error("range TLB size wrong")
	}
	if cfg.L2HitCycles != 7 || cfg.CoalescedHitCycles != 8 || cfg.WalkCycles != 50 {
		t.Error("latencies wrong")
	}
}

// buildProc installs a chunk list for a scheme and returns its MMU.
func buildProc(t *testing.T, s Scheme, cl mem.ChunkList, fixedDist uint64) (*osmem.Process, MMU) {
	t.Helper()
	proc := osmem.NewProcess(s.Policy())
	if err := proc.InstallChunks(cl, fixedDist); err != nil {
		t.Fatal(err)
	}
	return proc, New(s, DefaultConfig(), proc)
}

func randomChunks(r *rand.Rand, n int, maxPages uint64) mem.ChunkList {
	var cl mem.ChunkList
	vpn := mem.VPN(0x10000)
	pfn := mem.PFN(1 << 22)
	for i := 0; i < n; i++ {
		pages := uint64(1 + r.Intn(int(maxPages)))
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: pages})
		vpn += mem.VPN(pages)
		pfn += mem.PFN(pages + uint64(512*(1+r.Intn(4))))
	}
	return cl
}

// TestTranslationCorrectnessAllSchemes is the central property test: every
// scheme must produce exactly the reference translation for every mapped
// VPN, across random mappings and access orders, mapped or not in TLBs.
func TestTranslationCorrectnessAllSchemes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range All() {
		for trial := 0; trial < 4; trial++ {
			cl := randomChunks(r, 12, 3000)
			proc, m := buildProc(t, s, cl, 0)
			lo := cl[0].StartVPN
			hi := cl[len(cl)-1].EndVPN()
			for i := 0; i < 30000; i++ {
				vpn := lo + mem.VPN(r.Int63n(int64(hi-lo)))
				res := m.Translate(vpn)
				want, mapped := proc.Translate(vpn)
				if mapped {
					if res.Outcome == OutFault {
						t.Fatalf("%v trial %d: fault on mapped VPN %#x", s, trial, uint64(vpn))
					}
					if res.PFN != want {
						t.Fatalf("%v trial %d: translate(%#x) = %#x, want %#x (outcome %v)",
							s, trial, uint64(vpn), uint64(res.PFN), uint64(want), res.Outcome)
					}
				} else if res.Outcome != OutFault {
					t.Fatalf("%v trial %d: unmapped VPN %#x returned %v", s, trial, uint64(vpn), res.Outcome)
				}
			}
			st := m.Stats()
			if st.Accesses != 30000 {
				t.Fatalf("%v: accesses = %d", s, st.Accesses)
			}
			if st.L1Hits+st.L2RegularHits+st.CoalescedHits+st.Walks+st.Faults != st.Accesses {
				t.Fatalf("%v: outcome counters do not sum: %+v", s, st)
			}
		}
	}
}

func TestHitLatencyLadder(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 64}}
	for _, s := range All() {
		_, m := buildProc(t, s, cl, 0)
		cfg := DefaultConfig()
		// Cold: walk.
		res := m.Translate(0x10000)
		if res.Outcome != OutWalk || res.Cycles != cfg.WalkCycles {
			t.Errorf("%v cold access = %+v", s, res)
		}
		// Immediately warm: L1.
		res = m.Translate(0x10000)
		if res.Outcome != OutL1Hit || res.Cycles != 0 {
			t.Errorf("%v warm access = %+v", s, res)
		}
	}
}

func TestStandardL2HitAfterL1Eviction(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 22, Pages: 4096}}
	_, m := buildProc(t, Base, cl, 0)
	m.Translate(0)
	// Evict VPN 0 from the 16-set 4-way L1 by touching 8 conflicting pages.
	for i := mem.VPN(16); i <= 16*8; i += 16 {
		m.Translate(i)
	}
	res := m.Translate(0)
	if res.Outcome != OutL2Hit || res.Cycles != 7 {
		t.Errorf("expected 7-cycle L2 hit, got %+v", res)
	}
}

func TestAnchorHitFlow(t *testing.T) {
	// One big aligned chunk, pinned distance 16; accesses to distinct
	// pages inside one anchor unit must be served by the anchor entry
	// after the first walk.
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 1024}}
	proc, m := buildProc(t, Anchor, cl, 16)
	if proc.AnchorDistance() != 16 {
		t.Fatal("distance not pinned")
	}
	am := m.(*anchorMMU)

	res := m.Translate(0x10000) // cold: walk, fills anchor (covered)
	if res.Outcome != OutWalk {
		t.Fatalf("first access = %+v", res)
	}
	if am.Actions()[core.ActionWalkFillAnchor] != 1 {
		t.Fatalf("walk did not fill anchor: %v", am.Actions())
	}
	res = m.Translate(0x10005) // same anchor unit, different page: anchor hit
	if res.Outcome != OutCoalescedHit || res.Cycles != 8 {
		t.Fatalf("anchor-unit access = %+v", res)
	}
	if res.PFN != mem.PFN(1<<22)+5 {
		t.Fatalf("anchor translation wrong: %#x", uint64(res.PFN))
	}
	if am.Actions()[core.ActionAnchorHit] != 1 {
		t.Fatalf("anchor hit not classified: %v", am.Actions())
	}
	// A page in a *different* anchor unit misses the anchor probe and
	// walks, then filling its own anchor.
	res = m.Translate(0x10000 + 16)
	if res.Outcome != OutWalk {
		t.Fatalf("next unit = %+v", res)
	}
	if am.Actions()[core.ActionWalkFillAnchor] != 2 {
		t.Fatalf("second anchor not filled: %v", am.Actions())
	}
}

func TestAnchorContiguityMissFillsRegular(t *testing.T) {
	// Two chunks split mid-unit: VPNs past the first chunk's end are not
	// covered by its anchor (contiguity stops at the chunk boundary).
	cl := mem.ChunkList{
		{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 10},
		{StartVPN: 0x1000A, StartPFN: 2 << 22, Pages: 100},
	}
	proc, m := buildProc(t, Anchor, cl, 16)
	am := m.(*anchorMMU)
	m.Translate(0x10000) // fills anchor with contiguity 10
	if got := proc.PageTable().AnchorContiguity(0x10000, 16); got != 10 {
		t.Fatalf("anchor contiguity = %d", got)
	}
	// VPN 0x1000C: same anchor unit, beyond contiguity 10 -> Table 2 row
	// 3: anchor hit, contiguity miss, walk, fill regular.
	res := m.Translate(0x1000C)
	if res.Outcome != OutWalk {
		t.Fatalf("contiguity miss = %+v", res)
	}
	if am.Actions()[core.ActionFillRegular] != 1 {
		t.Fatalf("row 3 not taken: %v", am.Actions())
	}
	if res.PFN != mem.PFN(2<<22)+2 {
		t.Fatalf("translation wrong: %#x", uint64(res.PFN))
	}
	// Re-access: regular L2 hit now (L1 holds it, so evict L1 first by
	// conflict; instead simply verify via stats after another access).
	res = m.Translate(0x1000C)
	if res.Outcome != OutL1Hit {
		t.Fatalf("refill missing: %+v", res)
	}
}

func TestAnchorSharedL2Capacity(t *testing.T) {
	// Anchor entries share the same physical L2: filling thousands of
	// regular entries must be able to evict anchors.
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 22, Pages: 1 << 15}}
	_, m := buildProc(t, Anchor, cl, 0) // selection picks a big distance
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		m.Translate(mem.VPN(r.Int63n(1 << 15)))
	}
	st := m.Stats()
	if st.CoalescedHits == 0 {
		t.Error("no anchor hits on a fully contiguous mapping")
	}
	if st.Faults != 0 {
		t.Errorf("%d faults on fully mapped region", st.Faults)
	}
}

func TestClusterCoalescing(t *testing.T) {
	// 8 contiguous pages: one walk, then cluster hits for the rest of
	// the block after L1 eviction is impossible here, so check stats by
	// touching each page once — 1 walk + 7 cluster hits.
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 8}}
	_, m := buildProc(t, Cluster, cl, 0)
	for i := mem.VPN(0); i < 8; i++ {
		m.Translate(0x10000 + i)
	}
	st := m.Stats()
	if st.Walks != 1 {
		t.Errorf("walks = %d, want 1 (block coalesced)", st.Walks)
	}
	if st.CoalescedHits != 7 {
		t.Errorf("cluster hits = %d, want 7", st.CoalescedHits)
	}
}

func TestClusterSingletonGoesRegular(t *testing.T) {
	// Physically scattered single pages cannot coalesce: every page is
	// its own walk, then regular entries.
	cl := mem.ChunkList{
		{StartVPN: 0x10000, StartPFN: 1000, Pages: 1},
		{StartVPN: 0x10001, StartPFN: 5000, Pages: 1},
		{StartVPN: 0x10002, StartPFN: 9000, Pages: 1},
	}
	_, m := buildProc(t, Cluster, cl, 0)
	for i := mem.VPN(0); i < 3; i++ {
		m.Translate(0x10000 + i)
	}
	if st := m.Stats(); st.Walks != 3 || st.CoalescedHits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCluster2MUsesHugePages(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 22, Pages: 1024}}
	proc, m := buildProc(t, Cluster2M, cl, 0)
	if proc.HugePages() != 2 {
		t.Fatalf("huge pages = %d", proc.HugePages())
	}
	m.Translate(0)
	// Another page in the same huge page: L1 2M hit.
	res := m.Translate(100)
	if res.Outcome != OutL1Hit {
		t.Errorf("huge-page L1 reuse = %+v", res)
	}
	if res.PFN != mem.PFN(1<<22)+100 {
		t.Errorf("PFN = %#x", uint64(res.PFN))
	}
}

func TestRMMRangeHit(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 1 << 14}}
	_, m := buildProc(t, RMM, cl, 0)
	m.Translate(0x10000) // walk refills the range
	// A page far away in the same range: range TLB hit (L1 and L2 miss).
	res := m.Translate(0x10000 + 8000)
	if res.Outcome != OutCoalescedHit || res.Cycles != 8 {
		t.Fatalf("range access = %+v", res)
	}
	if res.PFN != mem.PFN(1<<22)+8000 {
		t.Fatalf("range translation wrong")
	}
}

func TestRMMThrashesOnFragmentation(t *testing.T) {
	// More ranges than the 32-entry range TLB, each touched round-robin:
	// almost every L2 miss is also a range miss.
	r := rand.New(rand.NewSource(3))
	cl := randomChunks(r, 500, 8) // 500 tiny ranges
	_, m := buildProc(t, RMM, cl, 0)
	lo, hi := cl[0].StartVPN, cl[len(cl)-1].EndVPN()
	for pass := 0; pass < 3; pass++ {
		for v := lo; v < hi; v += 7 {
			m.Translate(v)
		}
	}
	st := m.Stats()
	if st.CoalescedHits > st.Walks/2 {
		t.Errorf("range TLB unexpectedly effective on 500 tiny ranges: %+v", st)
	}
}

// TestFigure2Shape reproduces the motivation experiment in miniature:
// cluster helps at small contiguity where RMM fails; RMM wins at max
// contiguity.
func TestFigure2Shape(t *testing.T) {
	run := func(s Scheme, cl mem.ChunkList) uint64 {
		_, m := buildProc(t, s, cl, 0)
		r := rand.New(rand.NewSource(4))
		lo := cl[0].StartVPN
		span := int64(cl[len(cl)-1].EndVPN() - lo)
		for i := 0; i < 100000; i++ {
			m.Translate(lo + mem.VPN(r.Int63n(span)))
		}
		return m.Stats().Misses()
	}
	r := rand.New(rand.NewSource(5))
	small := randomChunks(r, 4096, 8) // ~16k pages in tiny chunks
	big := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 1 << 14}}

	baseSmall, clusterSmall, rmmSmall := run(Base, small), run(Cluster, small), run(RMM, small)
	if clusterSmall >= baseSmall {
		t.Errorf("small contiguity: cluster (%d) did not beat base (%d)", clusterSmall, baseSmall)
	}
	if rmmSmall < baseSmall*8/10 {
		t.Errorf("small contiguity: RMM (%d) should be nearly ineffective vs base (%d)", rmmSmall, baseSmall)
	}
	rmmBig, clusterBig := run(RMM, big), run(Cluster, big)
	if rmmBig*10 > rmmSmall {
		t.Errorf("max contiguity: RMM misses (%d) should collapse vs fragmented (%d)", rmmBig, rmmSmall)
	}
	if rmmBig >= clusterBig {
		t.Errorf("max contiguity: RMM (%d) should beat cluster (%d)", rmmBig, clusterBig)
	}
}

func TestFlushWiredToProcess(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 4096}}
	proc, m := buildProc(t, Anchor, cl, 16)
	m.Translate(0x10000)
	if res := m.Translate(0x10000); res.Outcome != OutL1Hit {
		t.Fatal("warm access missed")
	}
	proc.ChangeDistance(64, osmem.DefaultSweepCost)
	// After the OS-initiated flush, the next access must walk again.
	if res := m.Translate(0x10000); res.Outcome != OutWalk {
		t.Errorf("post-flush access = %+v", res)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := OutL1Hit; o <= OutFault; o++ {
		if o.String() == "" {
			t.Errorf("outcome %d has empty name", int(o))
		}
	}
}

func BenchmarkTranslateAnchorHit(b *testing.B) {
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 22, Pages: 1 << 16}}
	proc := osmem.NewProcess(Anchor.Policy())
	if err := proc.InstallChunks(cl, 256); err != nil {
		b.Fatal(err)
	}
	m := New(Anchor, DefaultConfig(), proc)
	r := rand.New(rand.NewSource(1))
	vpns := make([]mem.VPN, 4096)
	for i := range vpns {
		vpns[i] = mem.VPN(r.Int63n(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Translate(vpns[i&4095])
	}
}

// TestShootdownReachesAllSchemes: after the OS unmaps pages, no scheme may
// serve a stale translation from any TLB level.
func TestShootdownReachesAllSchemes(t *testing.T) {
	for _, s := range All() {
		cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 2048}}
		proc, m := buildProc(t, s, cl, 16)
		if s.Policy().Anchors == false {
			proc, m = buildProc(t, s, cl, 0)
		}
		// Warm every level: walk then re-touch.
		for _, v := range []mem.VPN{0x10000, 0x10001, 0x10400, 0x10407} {
			m.Translate(v)
			m.Translate(v)
		}
		proc.UnmapRange(0x10000, 1024)
		for _, v := range []mem.VPN{0x10000, 0x10001, 0x103FF} {
			if res := m.Translate(v); res.Outcome != OutFault {
				t.Errorf("%v: stale translation of %#x after unmap: %+v", s, uint64(v), res)
			}
		}
		// Surviving pages still translate correctly.
		res := m.Translate(0x10400 + 5)
		want, _ := proc.Translate(0x10400 + 5)
		if res.Outcome == OutFault || res.PFN != want {
			t.Errorf("%v: surviving page broken: %+v, want %#x", s, res, uint64(want))
		}
	}
}

// TestStaleAnchorAfterPartialUnmap: an anchor whose run was shortened by an
// unmap must not cover the hole any more.
func TestStaleAnchorAfterPartialUnmap(t *testing.T) {
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 64}}
	proc, m := buildProc(t, Anchor, cl, 16)
	m.Translate(0x10000)          // fill anchor covering 64 pages
	m.Translate(0x10000 + 8)      // anchor hit
	proc.UnmapRange(0x10000+4, 4) // punch [4, 8)
	if res := m.Translate(0x10000 + 5); res.Outcome != OutFault {
		t.Fatalf("hole translated: %+v", res)
	}
	// Pages before the hole still work through the (rewritten) anchor.
	res := m.Translate(0x10000 + 2)
	if res.Outcome == OutFault || res.PFN != mem.PFN(1<<22)+2 {
		t.Fatalf("pre-hole page broken: %+v", res)
	}
}

func TestCoLTFACoalescesLongRuns(t *testing.T) {
	// A 200-page contiguous chunk: one walk discovers the whole run; the
	// remaining pages are fully associative coalesced hits.
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 200}}
	_, m := buildProc(t, CoLTFA, cl, 0)
	for i := mem.VPN(0); i < 200; i++ {
		m.Translate(0x10000 + i)
	}
	st := m.Stats()
	if st.Walks != 1 {
		t.Errorf("walks = %d, want 1 (run fully coalesced)", st.Walks)
	}
	if st.CoalescedHits != 199 {
		t.Errorf("coalesced hits = %d, want 199", st.CoalescedHits)
	}
}

func TestCoLTFARunCap(t *testing.T) {
	// A 1000-page chunk exceeds the 256-page coalescing cap: at least
	// ceil(1000/256) walks.
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 1000}}
	_, m := buildProc(t, CoLTFA, cl, 0)
	for i := mem.VPN(0); i < 1000; i++ {
		m.Translate(0x10000 + i)
	}
	st := m.Stats()
	if st.Walks < 4 {
		t.Errorf("walks = %d; cap not enforced", st.Walks)
	}
	if st.Walks > 8 {
		t.Errorf("walks = %d; coalescing far below cap", st.Walks)
	}
}

func TestCoLTFAEntryLimitThrashes(t *testing.T) {
	// Far more runs than the 16 fully associative entries, touched round
	// robin: the FA array cannot hold them (the Section 2.1 trade-off).
	r := rand.New(rand.NewSource(6))
	cl := randomChunks(r, 200, 8)
	_, m := buildProc(t, CoLTFA, cl, 0)
	lo, hi := cl[0].StartVPN, cl[len(cl)-1].EndVPN()
	for pass := 0; pass < 3; pass++ {
		for v := lo; v < hi; v += 3 {
			m.Translate(v)
		}
	}
	st := m.Stats()
	if st.CoalescedHits > st.Walks {
		t.Errorf("FA array unexpectedly effective over 200 runs: %+v", st)
	}
}

func TestCoLTFAMidRunDiscovery(t *testing.T) {
	// Walking a page in the middle of a run must discover both
	// directions.
	cl := mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: 64}}
	_, m := buildProc(t, CoLTFA, cl, 0)
	m.Translate(0x10000 + 32) // mid-run walk
	res := m.Translate(0x10000)
	if res.Outcome != OutCoalescedHit {
		t.Errorf("backward extension missing: %+v", res)
	}
	res = m.Translate(0x10000 + 63)
	if res.Outcome != OutCoalescedHit {
		t.Errorf("forward extension missing: %+v", res)
	}
}
