package mmu

import (
	"testing"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
)

func walkModelProc(t *testing.T, pages uint64) *osmem.Process {
	t.Helper()
	proc := osmem.NewProcess(osmem.Policy{})
	if err := proc.InstallChunks(mem.ChunkList{{StartVPN: 0x10000, StartPFN: 1 << 22, Pages: pages}}, 0); err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestWalkModelColdVsWarm(t *testing.T) {
	proc := walkModelProc(t, 1<<12)
	wm := NewWalkModel()
	cold := wm.Cost(proc, 0x10000)
	// Cold: 4 uncached PTE fetches, each missing both cache levels.
	if want := uint64(4 * (4 + 14 + 200)); cold != want {
		t.Errorf("cold walk = %d cycles, want %d", cold, want)
	}
	// Immediately repeated: PWC skips 3 levels, leaf line is in L1D.
	warm := wm.Cost(proc, 0x10000)
	if warm != 4 {
		t.Errorf("warm walk = %d cycles, want 4 (one L1D hit)", warm)
	}
	// Neighbouring page in the same PTE cache block: also a 4-cycle walk.
	if got := wm.Cost(proc, 0x10001); got != 4 {
		t.Errorf("same-line neighbour walk = %d cycles", got)
	}
	// Page under the next PD entry: the PWC covers down to the PDPTE
	// (skip 2), the PD line is already in L1D (adjacent PDE), and only
	// the new PT leaf line goes to memory.
	if got := wm.Cost(proc, 0x10000+512); got != 4+(4+14+200) {
		t.Errorf("new-leaf walk = %d cycles, want 222", got)
	}
	if wm.AverageCycles() <= 0 {
		t.Error("no average reported")
	}
}

func TestWalkModelFlushes(t *testing.T) {
	proc := walkModelProc(t, 64)
	wm := NewWalkModel()
	wm.Cost(proc, 0x10000)
	// A translation flush empties the PWC but keeps the data caches: the
	// next walk re-fetches all 4 levels, but the lines hit in L1D.
	wm.FlushTranslations()
	if got := wm.Cost(proc, 0x10000); got != 4*4 {
		t.Errorf("post-PWC-flush walk = %d cycles, want 16", got)
	}
	wm.Flush()
	if got := wm.Cost(proc, 0x10000); got != 4*(4+14+200) {
		t.Errorf("post-full-flush walk = %d cycles", got)
	}
}

func TestWalkModelIntegration(t *testing.T) {
	// An MMU configured with the detailed model produces variable walk
	// costs and the same translations.
	proc := walkModelProc(t, 1<<10)
	cfg := DefaultConfig()
	cfg.Walk = NewWalkModel()
	m := New(Base, cfg, proc)

	first := m.Translate(0x10000)
	if first.Outcome != OutWalk || first.Cycles != 4*(4+14+200) {
		t.Fatalf("first access = %+v", first)
	}
	// Different page, far away: upper levels now PWC-cached.
	second := m.Translate(0x10000 + 800)
	if second.Outcome != OutWalk {
		t.Fatalf("second access = %+v", second)
	}
	if second.Cycles >= first.Cycles {
		t.Errorf("PWC did not reduce the second walk: %d vs %d", second.Cycles, first.Cycles)
	}
	want, _ := proc.Translate(0x10000 + 800)
	if second.PFN != want {
		t.Error("detailed walk mistranslated")
	}
	// OS-initiated flush reaches the PWC via the registered hook.
	costBefore := m.Translate(0x10000 + 801).Cycles // L1 TLB hit, 0 cycles
	_ = costBefore
	proc.UnmapRange(0x10000+900, 1) // triggers shootdowns, not full flush
	res := m.Translate(0x10000 + 802)
	if res.Outcome == OutFault {
		t.Fatal("unexpected fault")
	}
}

func TestWalkModelAverageConvergesBelowFlatCost(t *testing.T) {
	// With locality, PWC + caches make the average walk much cheaper
	// than 4 memory accesses; the paper's flat 50 cycles sits between
	// the warm and cold extremes.
	proc := walkModelProc(t, 1<<14)
	wm := NewWalkModel()
	for v := mem.VPN(0); v < 1<<14; v++ {
		wm.Cost(proc, 0x10000+v)
	}
	avg := wm.AverageCycles()
	if avg < 4 || avg > 200 {
		t.Errorf("average sequential walk = %.1f cycles; implausible", avg)
	}
}
