package mmu

import (
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// coltfaMMU implements CoLT's fully associative mode: beside the regular
// 4 KiB L2 sits a small fully associative array whose entries each map an
// arbitrarily long (capped) contiguous run, discovered by extending the
// walked translation through the page table in both directions. The full
// associativity is what caps the entry count (Table 3-era designs used
// 8-32 entries).
type coltfaMMU struct {
	cfg   Config
	proc  *osmem.Process
	l1    l1
	l2    *tlb.Cache
	runs  *tlb.RangeTLB
	stats Stats
}

func newCoLTFA(cfg Config, proc *osmem.Process) *coltfaMMU {
	return &coltfaMMU{
		cfg:  cfg,
		proc: proc,
		l1:   newL1(cfg),
		l2:   tlb.NewCache(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways),
		runs: tlb.NewRangeTLB(cfg.CoLTFAEntries),
	}
}

func (m *coltfaMMU) Scheme() Scheme { return CoLTFA }
func (m *coltfaMMU) Stats() Stats   { return m.stats }

func (m *coltfaMMU) Flush() {
	m.l1.flush()
	m.l2.Flush()
	m.runs.Flush()
}

// Invalidate implements the single-entry shootdown.
func (m *coltfaMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.l2, vpn)
	m.runs.InvalidateContaining(vpn)
}

// discoverRun extends the walked page in both directions while the 4 KiB
// mappings stay physically contiguous, up to the configured cap. The
// hardware performs this from PTE cache lines fetched during and after
// the walk.
func (m *coltfaMMU) discoverRun(vpn mem.VPN, pfn mem.PFN) tlb.RangeEntry {
	pt := m.proc.PageTable()
	cap := m.cfg.CoLTFAMaxPages
	start, startPFN := vpn, pfn
	var length uint64 = 1
	// Forward first: streaming accesses move upward, so the budget is
	// spent on pages that have not been translated yet.
	end := vpn + 1
	endPFN := pfn + 1
	for length < cap {
		w := pt.Walk(end)
		if !w.Present || w.Class != mem.Class4K || w.PFN != endPFN {
			break
		}
		end++
		endPFN++
		length++
	}
	for length < cap && start > 0 {
		w := pt.Walk(start - 1)
		if !w.Present || w.Class != mem.Class4K || w.PFN != startPFN-1 {
			break
		}
		start--
		startPFN--
		length++
	}
	return tlb.RangeEntry{StartVPN: start, StartPFN: startPFN, Pages: length}
}

func (m *coltfaMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	set := int(uint64(vpn) & m.l2.SetMask())
	if e, ok := m.l2.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
		m.stats.L2RegularHits++
		m.stats.Cycles += m.cfg.L2HitCycles
		m.l1.fill(vpn, e.PFNBase, mem.Class4K)
		return AccessResult{PFN: e.PFNBase, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
	}
	if r, ok := m.runs.Lookup(vpn); ok {
		pfn := r.Translate(vpn)
		m.stats.CoalescedHits++
		m.stats.Cycles += m.cfg.CoalescedHitCycles
		m.l1.fill(vpn, pfn, mem.Class4K)
		return AccessResult{PFN: pfn, Cycles: m.cfg.CoalescedHitCycles, Outcome: OutCoalescedHit}
	}

	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	if w.class == mem.Class4K {
		if run := m.discoverRun(vpn, w.pfn); run.Pages > 1 {
			m.runs.Insert(run)
		} else {
			fillL2(m.l2, vpn, w)
		}
	}
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
