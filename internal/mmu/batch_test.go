package mmu

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
)

// TestTranslateBatchMatchesTranslate drives the same VPN sequence
// through two identically built MMUs per scheme — one record at a time
// and one in deliberately irregular batch slices — and demands identical
// Stats and (for the anchor scheme) identical Table 2 action counts.
// This isolates the per-scheme inlined batch loops from the drive-loop
// segmentation that internal/sim's equivalence suite covers.
func TestTranslateBatchMatchesTranslate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cl := randomChunks(r, 40, 700)
	span := uint64(cl[len(cl)-1].StartVPN+mem.VPN(cl[len(cl)-1].Pages)) - uint64(cl[0].StartVPN)

	vpns := make([]mem.VPN, 20_000)
	for i := range vpns {
		// Mostly mapped pages with a sprinkling of unmapped ones so the
		// fault paths are exercised too.
		vpns[i] = cl[0].StartVPN + mem.VPN(r.Uint64()%(span+64))
	}

	sizes := []int{1, 3, 17, 64, 255, 4096}
	for _, scheme := range All() {
		t.Run(scheme.String(), func(t *testing.T) {
			_, serial := buildProc(t, scheme, cl, 64)
			for _, vpn := range vpns {
				serial.Translate(vpn)
			}

			_, batched := buildProc(t, scheme, cl, 64)
			si := 0
			for off := 0; off < len(vpns); {
				n := sizes[si%len(sizes)]
				si++
				if off+n > len(vpns) {
					n = len(vpns) - off
				}
				batched.TranslateBatch(vpns[off : off+n])
				off += n
			}

			if serial.Stats() != batched.Stats() {
				t.Errorf("stats diverged:\nserial:  %+v\nbatched: %+v", serial.Stats(), batched.Stats())
			}
			type actioned interface {
				Actions() map[core.L2Action]uint64
			}
			sa, sok := serial.(actioned)
			ba, bok := batched.(actioned)
			if sok != bok {
				t.Fatalf("action reporting mismatch: serial %v, batched %v", sok, bok)
			}
			if sok && !reflect.DeepEqual(sa.Actions(), ba.Actions()) {
				t.Errorf("anchor actions diverged:\nserial:  %v\nbatched: %v", sa.Actions(), ba.Actions())
			}
		})
	}
}

// TestTranslateBatchEmpty checks the degenerate slices are harmless.
func TestTranslateBatchEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cl := randomChunks(r, 4, 64)
	for _, scheme := range All() {
		t.Run(fmt.Sprint(scheme), func(t *testing.T) {
			_, m := buildProc(t, scheme, cl, 64)
			m.TranslateBatch(nil)
			m.TranslateBatch([]mem.VPN{})
			if s := m.Stats(); s != (Stats{}) {
				t.Errorf("empty batch mutated stats: %+v", s)
			}
		})
	}
}
