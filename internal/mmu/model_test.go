package mmu

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
)

// TestModelBasedFuzz interleaves random OS operations (unmap, append,
// protect, distance changes, compaction, promotion, reselect) with
// translations on every scheme, checking each translation against the
// process's reference mapping. This is the whole-stack consistency
// check: whatever the OS does, the hardware must never return a stale or
// wrong frame.
func TestModelBasedFuzz(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(0xF0 + int64(s)))
			proc := osmem.NewProcess(s.Policy())
			var cl mem.ChunkList
			vpn := mem.VPN(0x10000)
			for i := 0; i < 24; i++ {
				pages := uint64(1 + r.Intn(2000))
				cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: mem.PFN(1<<22 + i<<14), Pages: pages})
				vpn += mem.VPN(pages + uint64(r.Intn(32)))
			}
			if err := proc.InstallChunks(cl, 0); err != nil {
				t.Fatal(err)
			}
			m := New(s, DefaultConfig(), proc)

			lo, hi := cl[0].StartVPN, vpn
			span := int64(hi - lo)
			freshPFN := mem.PFN(1) << 37
			for step := 0; step < 40000; step++ {
				v := lo + mem.VPN(r.Int63n(span))
				switch op := r.Intn(100); {
				case op < 90: // translate and verify
					res := m.Translate(v)
					want, mapped := proc.Translate(v)
					if mapped {
						if res.Outcome == OutFault {
							t.Fatalf("step %d: fault on mapped %#x", step, uint64(v))
						}
						if res.PFN != want {
							t.Fatalf("step %d: translate(%#x) = %#x, want %#x (outcome %v)",
								step, uint64(v), uint64(res.PFN), uint64(want), res.Outcome)
						}
					} else if res.Outcome != OutFault {
						t.Fatalf("step %d: unmapped %#x gave %v", step, uint64(v), res.Outcome)
					}
				case op < 93: // unmap a small region
					proc.UnmapRange(v, uint64(1+r.Intn(128)))
				case op < 96: // fresh allocation somewhere
					c := mem.Chunk{StartVPN: v, StartPFN: freshPFN, Pages: uint64(1 + r.Intn(128))}
					freshPFN += mem.PFN(c.Pages + 512)
					_ = proc.AppendChunk(c) // overlap rejections are fine
				case op < 97: // protection change
					if err := proc.SetProtection(v, uint64(1+r.Intn(64)), osmem.ProtRead); err != nil {
						t.Fatal(err)
					}
				case op < 98 && s.Policy().Anchors: // distance churn
					proc.Reselect(osmem.DefaultSweepCost)
				case op < 99: // promotion pass
					proc.PromoteHugePages()
				default: // compaction
					proc.Compact(mem.PFN(1)<<38+mem.PFN(step)<<20, osmem.DefaultSweepCost)
				}
			}
			if st := m.Stats(); st.Accesses == 0 {
				t.Fatal("fuzz performed no translations")
			}
		})
	}
}
