package mmu

import (
	"hybridtlb/internal/osmem"
)

// ShardState is implemented by MMU schemes that support shard-parallel
// replay: deep-cloning the full translation state onto a private process
// copy, and serializing the behaviour-relevant state canonically so the
// shard engine's fixpoint can compare simulator states for equivalence.
//
// All schemes implement it except when a shared detailed walk model is
// configured (Config.Walk carries mutable cross-access cache state); the
// sim layer falls back to the single-goroutine drive in that case.
type ShardState interface {
	MMU
	// CloneFor returns a deep copy of the MMU bound to proc (normally a
	// Process.Clone of the original), with flush/invalidate hooks
	// re-registered on it, mirroring what New does.
	CloneFor(proc *osmem.Process) MMU
	// AppendCanonical appends the canonical translation state (TLB
	// contents in canonical form; accumulated stats excluded — they are
	// outputs, not behavioural inputs).
	AppendCanonical(dst []byte) []byte
}

// Shardable reports whether m supports shard-parallel replay under the
// given config.
func Shardable(m MMU, cfg Config) bool {
	_, ok := m.(ShardState)
	return ok && cfg.Walk == nil
}

func hookUp(m MMU, proc *osmem.Process) MMU {
	proc.OnFlush(m.Flush)
	proc.OnInvalidate(m.Invalidate)
	return m
}

func (l l1) clone() l1 {
	return l1{tlb4K: l.tlb4K.Clone(), tlb2M: l.tlb2M.Clone()}
}

func (l l1) appendCanonical(dst []byte) []byte {
	dst = l.tlb4K.AppendCanonical(dst)
	return l.tlb2M.AppendCanonical(dst)
}

func (m *standardMMU) CloneFor(proc *osmem.Process) MMU {
	c := &standardMMU{
		scheme: m.scheme,
		cfg:    m.cfg,
		proc:   proc,
		l1:     m.l1.clone(),
		l2:     m.l2.Clone(),
		stats:  m.stats,
	}
	return hookUp(c, proc)
}

func (m *standardMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	return m.l2.AppendCanonical(dst)
}

func (m *anchorMMU) CloneFor(proc *osmem.Process) MMU {
	c := &anchorMMU{
		cfg:     m.cfg,
		proc:    proc,
		l1:      m.l1.clone(),
		l2:      m.l2.Clone(),
		stats:   m.stats,
		actions: m.actions,
	}
	return hookUp(c, proc)
}

func (m *anchorMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	return m.l2.AppendCanonical(dst)
}

func (m *clusterMMU) CloneFor(proc *osmem.Process) MMU {
	c := &clusterMMU{
		scheme:  m.scheme,
		cfg:     m.cfg,
		proc:    proc,
		l1:      m.l1.clone(),
		regular: m.regular.Clone(),
		cluster: m.cluster.Clone(),
		stats:   m.stats,
	}
	return hookUp(c, proc)
}

func (m *clusterMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	dst = m.regular.AppendCanonical(dst)
	return m.cluster.AppendCanonical(dst)
}

func (m *coltMMU) CloneFor(proc *osmem.Process) MMU {
	c := &coltMMU{
		cfg:   m.cfg,
		proc:  proc,
		l1:    m.l1.clone(),
		l2:    m.l2.Clone(),
		stats: m.stats,
	}
	return hookUp(c, proc)
}

func (m *coltMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	return m.l2.AppendCanonical(dst)
}

func (m *coltfaMMU) CloneFor(proc *osmem.Process) MMU {
	c := &coltfaMMU{
		cfg:   m.cfg,
		proc:  proc,
		l1:    m.l1.clone(),
		l2:    m.l2.Clone(),
		runs:  m.runs.Clone(),
		stats: m.stats,
	}
	return hookUp(c, proc)
}

func (m *coltfaMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	dst = m.l2.AppendCanonical(dst)
	return m.runs.AppendCanonical(dst)
}

func (m *rmmMMU) CloneFor(proc *osmem.Process) MMU {
	c := &rmmMMU{
		cfg:    m.cfg,
		proc:   proc,
		l1:     m.l1.clone(),
		l2:     m.l2.Clone(),
		ranges: m.ranges.Clone(),
		stats:  m.stats,
	}
	return hookUp(c, proc)
}

func (m *rmmMMU) AppendCanonical(dst []byte) []byte {
	dst = m.l1.appendCanonical(dst)
	dst = m.l2.AppendCanonical(dst)
	return m.ranges.AppendCanonical(dst)
}

// actionCounts exposes the anchor action counters as raw deltas for the
// shard merge (Actions() builds the user-facing map).
func (m *anchorMMU) ActionCounts() [5]uint64 { return m.actions }

// ActionCounter is implemented by schemes with per-action accounting that
// the shard merge must recombine (anchor's Table 2 rows).
type ActionCounter interface {
	ActionCounts() [5]uint64
}
