package mmu

import (
	"math/bits"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/tlb"
)

// This file holds the TranslateBatch implementations: one inlined inner
// loop per scheme, each the exact flow of the scheme's Translate minus
// the per-access AccessResult, with statistics accumulated in locals and
// flushed once per batch. Callers guarantee nothing flushes or remaps
// mid-batch (the drive loop re-selects distances only at batch segment
// boundaries), so TLB state and Stats after a batch are byte-identical
// to translating the same VPNs one at a time — the equivalence suite in
// batch_test.go and internal/sim pins that down for every scheme.

//tlbvet:hotpath
func (m *standardMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		if pfn, class, ok := probeL2(m.l2, vpn); ok {
			st.L2RegularHits++
			st.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, pfn, class)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		fillL2(m.l2, vpn, w)
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
}

//tlbvet:hotpath
func (m *clusterMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	twoMB := m.scheme == Cluster2M
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		regularHit := false
		if twoMB {
			if pfn, class, ok := probeL2(m.regular, vpn); ok {
				st.L2RegularHits++
				st.Cycles += m.cfg.L2HitCycles
				m.l1.fill(vpn, pfn, class)
				regularHit = true
			}
		} else {
			set := int(uint64(vpn) & m.regular.SetMask())
			if e, ok := m.regular.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
				st.L2RegularHits++
				st.Cycles += m.cfg.L2HitCycles
				m.l1.fill(vpn, e.PFNBase, mem.Class4K)
				regularHit = true
			}
		}
		if regularHit {
			continue
		}
		if pfn, ok := probeCluster(m.cluster, vpn); ok {
			st.CoalescedHits++
			st.Cycles += m.cfg.CoalescedHitCycles
			m.l1.fill(vpn, pfn, mem.Class4K)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		switch {
		case w.class == mem.Class2M && twoMB:
			fillL2(m.regular, vpn, w)
		case w.class == mem.Class4K:
			base, pfnBase, bitmap := scanBlock(m.proc, vpn, w.pfn)
			if bits.OnesCount8(bitmap) > 1 {
				set := int((uint64(vpn) / clusterBlock) & m.cluster.SetMask())
				m.cluster.Insert(set, clusterKey(base, pfnBase), tlb.Entry{
					Kind: tlb.KindCluster, VPNBase: base, PFNBase: pfnBase, Bitmap: bitmap,
				})
			} else {
				set := int(uint64(vpn) & m.regular.SetMask())
				m.regular.Insert(set, tlb.Key(tlb.Kind4K, uint64(vpn)), tlb.Entry{
					Kind: tlb.Kind4K, VPNBase: vpn, PFNBase: w.pfn,
				})
			}
		default:
			// A 2 MiB mapping under the plain cluster scheme cannot
			// happen (its policy installs no huge pages); fill nothing.
		}
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
}

//tlbvet:hotpath
func (m *rmmMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		if pfn, class, ok := probeL2(m.l2, vpn); ok {
			st.L2RegularHits++
			st.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, pfn, class)
			continue
		}
		if r, ok := m.ranges.Lookup(vpn); ok {
			st.CoalescedHits++
			st.Cycles += m.cfg.CoalescedHitCycles
			m.l1.fill(vpn, r.Translate(vpn), mem.Class4K)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		fillL2(m.l2, vpn, w)
		if c, ok := m.proc.Chunks().Lookup(vpn); ok {
			m.ranges.Insert(tlb.RangeEntry{StartVPN: c.StartVPN, StartPFN: c.StartPFN, Pages: c.Pages})
		}
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
}

//tlbvet:hotpath
func (m *anchorMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	var acts [5]uint64
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		d := m.proc.DistanceAt(vpn)
		if pfn, class, ok := probeL2(m.l2, vpn); ok {
			acts[core.ActionRegularHit]++
			st.L2RegularHits++
			st.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, pfn, class)
			continue
		}
		if e, hit, covered := m.probeAnchor(vpn, d); hit {
			if covered {
				acts[core.ActionAnchorHit]++
				st.CoalescedHits++
				st.Cycles += m.cfg.CoalescedHitCycles
				m.l1.fill(vpn, core.TranslateViaAnchor(vpn, e.VPNBase, e.PFNBase), mem.Class4K)
				continue
			}
			w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
			st.Cycles += walkCost
			if !w.present {
				st.Faults++
				continue
			}
			acts[core.ActionFillRegular]++
			st.Walks++
			fillL2(m.l2, vpn, w)
			m.l1.fill(vpn, w.pfn, w.class)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		avpn := core.AnchorVPN(vpn, d)
		contig := uint64(0)
		var appn mem.PFN
		if apfn, aclass, _, _, present := m.proc.PageTable().WalkFast(avpn); present && aclass == mem.Class4K {
			contig = m.proc.PageTable().AnchorContiguity(avpn, d)
			appn = apfn
		}
		if core.Covered(vpn, avpn, contig) {
			acts[core.ActionWalkFillAnchor]++
			m.fillAnchor(avpn, appn, contig, d)
		} else {
			acts[core.ActionWalkFillRegular]++
			fillL2(m.l2, vpn, w)
		}
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
	for i, n := range acts {
		m.actions[i] += n
	}
}

//tlbvet:hotpath
func (m *coltMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		if pfn, ok := probeCluster(m.l2, vpn); ok {
			st.CoalescedHits++
			st.Cycles += m.cfg.CoalescedHitCycles
			m.l1.fill(vpn, pfn, mem.Class4K)
			continue
		}
		set := int(uint64(vpn) & m.l2.SetMask())
		if e, ok := m.l2.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
			st.L2RegularHits++
			st.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, e.PFNBase, mem.Class4K)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		base, pfnBase, bitmap := scanBlock(m.proc, vpn, w.pfn)
		if bits.OnesCount8(bitmap) > 1 {
			cset := int((uint64(vpn) / clusterBlock) & m.l2.SetMask())
			m.l2.Insert(cset, clusterKey(base, pfnBase), tlb.Entry{
				Kind: tlb.KindCluster, VPNBase: base, PFNBase: pfnBase, Bitmap: bitmap,
			})
		} else {
			fillL2(m.l2, vpn, w)
		}
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
}

//tlbvet:hotpath
func (m *coltfaMMU) TranslateBatch(vpns []mem.VPN) {
	st := m.stats
	for _, vpn := range vpns {
		st.Accesses++
		if _, ok := m.l1.lookup(vpn); ok {
			st.L1Hits++
			continue
		}
		set := int(uint64(vpn) & m.l2.SetMask())
		if e, ok := m.l2.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
			st.L2RegularHits++
			st.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, e.PFNBase, mem.Class4K)
			continue
		}
		if r, ok := m.runs.Lookup(vpn); ok {
			st.CoalescedHits++
			st.Cycles += m.cfg.CoalescedHitCycles
			m.l1.fill(vpn, r.Translate(vpn), mem.Class4K)
			continue
		}
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		st.Cycles += walkCost
		if !w.present {
			st.Faults++
			continue
		}
		st.Walks++
		if w.class == mem.Class4K {
			if run := m.discoverRun(vpn, w.pfn); run.Pages > 1 {
				m.runs.Insert(run)
			} else {
				fillL2(m.l2, vpn, w)
			}
		}
		m.l1.fill(vpn, w.pfn, w.class)
	}
	m.stats = st
}
