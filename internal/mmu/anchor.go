package mmu

import (
	"math/bits"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// anchorSet computes the L2 set an anchor entry indexes: bits [d+12,
// d+12+N) of the virtual address, i.e. avpn/d. Distances are always
// powers of two (core.ValidDistance), so the division is a shift — this
// runs on every L2-missing access and a hardware DIV would dominate the
// probe.
func anchorSet(avpn mem.VPN, d uint64, mask uint64) int {
	return int((uint64(avpn) >> uint(bits.TrailingZeros64(d))) & mask)
}

// anchorMMU implements the paper's hybrid TLB coalescing (Sections 3.1
// and 3.2): 4 KiB, 2 MiB and anchor entries share the single L2 array.
// Regular entries index with the usual bits; anchor entries index with
// bits [d+12, d+12+N) of the virtual address (Figure 6), where d is the
// process's anchor distance — read from the per-process anchor distance
// register on every lookup. The L2 operation flow follows Table 2: the
// anchor probe is a second, serialized L2 access, which is why an anchor
// hit costs one cycle more than a regular hit.
type anchorMMU struct {
	cfg   Config
	proc  *osmem.Process
	l1    l1
	l2    *tlb.Cache
	stats Stats

	// actions counts Table 2 rows for detailed reporting (Table 5).
	actions [5]uint64
}

func newAnchor(cfg Config, proc *osmem.Process) *anchorMMU {
	return &anchorMMU{
		cfg:  cfg,
		proc: proc,
		l1:   newL1(cfg),
		l2:   tlb.NewCache(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways),
	}
}

func (m *anchorMMU) Scheme() Scheme { return Anchor }
func (m *anchorMMU) Stats() Stats   { return m.stats }

// Actions returns how often each Table 2 row occurred.
func (m *anchorMMU) Actions() map[core.L2Action]uint64 {
	out := make(map[core.L2Action]uint64, len(m.actions))
	for a, n := range m.actions {
		out[core.L2Action(a)] = n
	}
	return out
}

func (m *anchorMMU) Flush() {
	m.l1.flush()
	m.l2.Flush()
}

// Invalidate implements the single-entry shootdown: both the regular
// entries for vpn and the anchor entry responsible for it (at the current
// anchor distance — distance changes always use a full flush, so no entry
// from an older distance can be live).
func (m *anchorMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.l2, vpn)
	d := m.proc.DistanceAt(vpn)
	avpn := core.AnchorVPN(vpn, d)
	set := anchorSet(avpn, d, m.l2.SetMask())
	m.l2.Invalidate(set, tlb.Key(tlb.KindAnchor, uint64(avpn)))
}

// probeAnchor performs the anchor lookup of Figure 6: index with the
// anchor VPN shifted by the distance, tag on the anchor VPN, then compare
// the VPN's distance from the anchor against the entry's contiguity.
func (m *anchorMMU) probeAnchor(vpn mem.VPN, d uint64) (e tlb.Entry, hit, covered bool) {
	avpn := core.AnchorVPN(vpn, d)
	set := anchorSet(avpn, d, m.l2.SetMask())
	e, hit = m.l2.Lookup(set, tlb.Key(tlb.KindAnchor, uint64(avpn)))
	if !hit {
		return e, false, false
	}
	return e, true, core.Covered(vpn, avpn, e.Contig)
}

// fillAnchor installs an anchor entry.
func (m *anchorMMU) fillAnchor(avpn mem.VPN, appn mem.PFN, contig, d uint64) {
	set := anchorSet(avpn, d, m.l2.SetMask())
	m.l2.InsertNew(set, tlb.Key(tlb.KindAnchor, uint64(avpn)), tlb.Entry{
		Kind: tlb.KindAnchor, VPNBase: avpn, PFNBase: appn, Contig: contig,
	})
}

func (m *anchorMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	// The anchor distance register — or, with the multi-region
	// extension, the region table searched in parallel with the L2.
	d := m.proc.DistanceAt(vpn)

	// First L2 access: the regular 4 KiB / 2 MiB probes.
	if pfn, class, ok := probeL2(m.l2, vpn); ok {
		m.actions[core.ActionRegularHit]++
		m.stats.L2RegularHits++
		m.stats.Cycles += m.cfg.L2HitCycles
		m.l1.fill(vpn, pfn, class)
		return AccessResult{PFN: pfn, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
	}

	// Second L2 access: the anchor probe.
	if e, hit, covered := m.probeAnchor(vpn, d); hit {
		if covered {
			// Table 2 row 2: translation completed through the anchor.
			m.actions[core.ActionAnchorHit]++
			m.stats.CoalescedHits++
			m.stats.Cycles += m.cfg.CoalescedHitCycles
			pfn := core.TranslateViaAnchor(vpn, e.VPNBase, e.PFNBase)
			m.l1.fill(vpn, pfn, mem.Class4K)
			return AccessResult{PFN: pfn, Cycles: m.cfg.CoalescedHitCycles, Outcome: OutCoalescedHit}
		}
		// Table 2 row 3: anchor present but the VPN is outside its
		// contiguity — walk and fill a regular entry.
		w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
		m.stats.Cycles += walkCost
		if !w.present {
			m.stats.Faults++
			return AccessResult{Cycles: walkCost, Outcome: OutFault}
		}
		m.actions[core.ActionFillRegular]++
		m.stats.Walks++
		fillL2(m.l2, vpn, w)
		m.l1.fill(vpn, w.pfn, w.class)
		return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
	}

	// Table 2 rows 4-5: both probes missed. The walker fetches the
	// regular entry (returned to the core first) and the anchor entry,
	// whose PTE cache block arrives with the contiguity bits; the anchor
	// is filled only when its contiguity covers the VPN.
	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	avpn := core.AnchorVPN(vpn, d)
	contig := uint64(0)
	var appn mem.PFN
	if apfn, aclass, _, _, present := m.proc.PageTable().WalkFast(avpn); present && aclass == mem.Class4K {
		contig = m.proc.PageTable().AnchorContiguity(avpn, d)
		appn = apfn
	}
	if core.Covered(vpn, avpn, contig) {
		m.actions[core.ActionWalkFillAnchor]++
		m.fillAnchor(avpn, appn, contig, d)
	} else {
		m.actions[core.ActionWalkFillRegular]++
		fillL2(m.l2, vpn, w)
	}
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
