package mmu

import (
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// standardMMU implements the Base and THP schemes: split L1s over a
// shared set-associative L2 that holds 4 KiB entries and (under THP)
// 2 MiB entries. The two schemes differ only in the OS mapping policy
// that feeds them.
type standardMMU struct {
	scheme Scheme
	cfg    Config
	proc   *osmem.Process
	l1     l1
	l2     *tlb.Cache
	stats  Stats
}

func newStandard(s Scheme, cfg Config, proc *osmem.Process) *standardMMU {
	return &standardMMU{
		scheme: s,
		cfg:    cfg,
		proc:   proc,
		l1:     newL1(cfg),
		l2:     tlb.NewCache(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways),
	}
}

func (m *standardMMU) Scheme() Scheme { return m.scheme }
func (m *standardMMU) Stats() Stats   { return m.stats }

func (m *standardMMU) Flush() {
	m.l1.flush()
	m.l2.Flush()
}

// Invalidate implements the single-entry shootdown.
func (m *standardMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.l2, vpn)
}

// probeL2 performs the parallel 4 KiB + 2 MiB L2 lookup shared by the
// standard, RMM and anchor schemes.
func probeL2(c *tlb.Cache, vpn mem.VPN) (mem.PFN, mem.PageClass, bool) {
	set4 := int(uint64(vpn) & c.SetMask())
	if e, ok := c.Lookup(set4, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
		return e.PFNBase, mem.Class4K, true
	}
	base := vpn.AlignDown(mem.PagesPer2M)
	set2 := int((uint64(vpn) >> 9) & c.SetMask())
	if e, ok := c.Lookup(set2, tlb.Key(tlb.Kind2M, uint64(base))); ok {
		return e.PFNBase + mem.PFN(vpn-base), mem.Class2M, true
	}
	return 0, mem.Class4K, false
}

// fillL2 installs a walked translation as a regular L2 entry.
func fillL2(c *tlb.Cache, vpn mem.VPN, w walkInfo) {
	if w.class == mem.Class2M {
		set := int((uint64(vpn) >> 9) & c.SetMask())
		c.InsertNew(set, tlb.Key(tlb.Kind2M, uint64(w.baseVPN)), tlb.Entry{
			Kind: tlb.Kind2M, VPNBase: w.baseVPN, PFNBase: w.basePFN,
		})
		return
	}
	set := int(uint64(vpn) & c.SetMask())
	c.InsertNew(set, tlb.Key(tlb.Kind4K, uint64(vpn)), tlb.Entry{
		Kind: tlb.Kind4K, VPNBase: vpn, PFNBase: w.pfn,
	})
}

// walkInfo condenses a page walk result for the fill helpers.
type walkInfo struct {
	present bool
	pfn     mem.PFN
	class   mem.PageClass
	baseVPN mem.VPN
	basePFN mem.PFN
}

// walkTimed performs the walk and returns its latency: the flat Table 3
// cost, or the detailed cache+PWC model when configured. The config is
// passed by pointer and the WalkResult is condensed in place (no helper
// frame) because this sits on the translation hot path.
func walkTimed(proc *osmem.Process, vpn mem.VPN, cfg *Config) (walkInfo, uint64) {
	var wi walkInfo
	wi.pfn, wi.class, wi.baseVPN, wi.basePFN, wi.present = proc.PageTable().WalkFast(vpn)
	if cfg.Walk != nil {
		return wi, cfg.Walk.Cost(proc, vpn)
	}
	return wi, cfg.WalkCycles
}

func (m *standardMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	if pfn, class, ok := probeL2(m.l2, vpn); ok {
		m.stats.L2RegularHits++
		m.stats.Cycles += m.cfg.L2HitCycles
		m.l1.fill(vpn, pfn, class)
		return AccessResult{PFN: pfn, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
	}
	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	fillL2(m.l2, vpn, w)
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
