package mmu

import (
	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// rmmMMU implements Redundant Memory Mapping (Karakostas et al.,
// ISCA'15) as configured in Table 3: the baseline 4 KiB + 2 MiB L2 plus a
// 32-entry fully associative range TLB. Each physically contiguous chunk
// of the mapping is a range; on a range-TLB miss the "range table walk"
// (here: a chunk list lookup) refills it. RMM excels when a handful of
// huge ranges cover the footprint and collapses when the mapping is
// fragmented into more ranges than the range TLB can hold — exactly the
// trade-off Figure 2 of the paper shows.
type rmmMMU struct {
	cfg    Config
	proc   *osmem.Process
	l1     l1
	l2     *tlb.Cache
	ranges *tlb.RangeTLB
	stats  Stats
}

func newRMM(cfg Config, proc *osmem.Process) *rmmMMU {
	return &rmmMMU{
		cfg:    cfg,
		proc:   proc,
		l1:     newL1(cfg),
		l2:     tlb.NewCache(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways),
		ranges: tlb.NewRangeTLB(cfg.RangeEntries),
	}
}

func (m *rmmMMU) Scheme() Scheme { return RMM }
func (m *rmmMMU) Stats() Stats   { return m.stats }

func (m *rmmMMU) Flush() {
	m.l1.flush()
	m.l2.Flush()
	m.ranges.Flush()
}

// Invalidate implements the single-entry shootdown; ranges covering the
// page are also shot down, since the backing chunk changed.
func (m *rmmMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.l2, vpn)
	m.ranges.InvalidateContaining(vpn)
}

func (m *rmmMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	if pfn, class, ok := probeL2(m.l2, vpn); ok {
		m.stats.L2RegularHits++
		m.stats.Cycles += m.cfg.L2HitCycles
		m.l1.fill(vpn, pfn, class)
		return AccessResult{PFN: pfn, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
	}
	if r, ok := m.ranges.Lookup(vpn); ok {
		pfn := r.Translate(vpn)
		m.stats.CoalescedHits++
		m.stats.Cycles += m.cfg.CoalescedHitCycles
		m.l1.fill(vpn, pfn, mem.Class4K)
		return AccessResult{PFN: pfn, Cycles: m.cfg.CoalescedHitCycles, Outcome: OutCoalescedHit}
	}

	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	fillL2(m.l2, vpn, w)
	// Range table walk: refill the range covering this VPN from the OS's
	// range table (the chunk list).
	if c, ok := m.proc.Chunks().Lookup(vpn); ok {
		m.ranges.Insert(tlb.RangeEntry{StartVPN: c.StartVPN, StartPFN: c.StartPFN, Pages: c.Pages})
	}
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
