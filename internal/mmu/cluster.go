package mmu

import (
	"math/bits"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// clusterBlock is the coalescing reach of a cluster TLB entry: one entry
// maps up to 8 pages of an 8-page-aligned virtual block whose frames are
// contiguous relative to the block base (Pham et al., HPCA'14).
const clusterBlock = 8

// clusterMMU implements the Cluster and Cluster2M schemes: the L2
// capacity is statically partitioned into a regular TLB (4 KiB entries,
// plus 2 MiB entries for Cluster2M) and a cluster TLB whose entries
// coalesce whole blocks. The paper notes this partitioning is exactly
// what hurts cactusADM: cluster entries can sit underutilized while the
// regular partition thrashes.
type clusterMMU struct {
	scheme  Scheme
	cfg     Config
	proc    *osmem.Process
	l1      l1
	regular *tlb.Cache
	cluster *tlb.Cache
	stats   Stats
}

func newCluster(s Scheme, cfg Config, proc *osmem.Process) *clusterMMU {
	return &clusterMMU{
		scheme:  s,
		cfg:     cfg,
		proc:    proc,
		l1:      newL1(cfg),
		regular: tlb.NewCache(cfg.ClusterRegularEntries/cfg.ClusterRegularWays, cfg.ClusterRegularWays),
		cluster: tlb.NewCache(cfg.ClusterEntries/cfg.ClusterWays, cfg.ClusterWays),
	}
}

func (m *clusterMMU) Scheme() Scheme { return m.scheme }
func (m *clusterMMU) Stats() Stats   { return m.stats }

func (m *clusterMMU) Flush() {
	m.l1.flush()
	m.regular.Flush()
	m.cluster.Flush()
}

// Invalidate implements the single-entry shootdown: the regular entry and
// every cluster entry whose block covers vpn are removed.
func (m *clusterMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.regular, vpn)
	block := vpn.AlignDown(clusterBlock)
	set := int((uint64(vpn) / clusterBlock) & m.cluster.SetMask())
	m.cluster.InvalidateWhere(set, func(e tlb.Entry) bool {
		return e.Kind == tlb.KindCluster && e.VPNBase == block
	})
}

// probeCluster looks vpn up in a cluster-entry cache: the block tag must
// match and the page's offset bit must be set in the coverage bitmap.
// One virtual block can hold several cluster entries with different
// physical bases (when a block spans a physical-contiguity boundary), so
// the probe scans the set rather than matching a single key.
func probeCluster(c *tlb.Cache, vpn mem.VPN) (mem.PFN, bool) {
	block := vpn.AlignDown(clusterBlock)
	set := int((uint64(vpn) / clusterBlock) & c.SetMask())
	off := uint(vpn - block)
	e, ok := c.LookupWhere(set, func(e tlb.Entry) bool {
		return e.Kind == tlb.KindCluster && e.VPNBase == block && e.Bitmap&(1<<off) != 0
	})
	if !ok {
		return 0, false
	}
	return e.PFNBase + mem.PFN(off), true
}

// clusterKey builds a replacement key identifying one (block, physical
// base) cluster entry, so refilling the same coalesced run overwrites in
// place while a different run of the same block occupies another way.
func clusterKey(block mem.VPN, pfnBase mem.PFN) uint64 {
	return tlb.Key(tlb.KindCluster, uint64(block)*0x9E3779B97F4A7C15^uint64(pfnBase))
}

// scanBlock builds a cluster entry for the block containing vpn by
// examining the other page table entries of the same PTE cache line —
// which the walk already fetched, so this costs no extra memory access.
// Bit i is set when block page i maps to pfnBase+i.
func scanBlock(proc *osmem.Process, vpn mem.VPN, pfn mem.PFN) (base mem.VPN, pfnBase mem.PFN, bitmap uint8) {
	base = vpn.AlignDown(clusterBlock)
	pfnBase = pfn - mem.PFN(vpn-base)
	pt := proc.PageTable()
	for off := mem.VPN(0); off < clusterBlock; off++ {
		w := pt.Walk(base + off)
		if w.Present && w.Class == mem.Class4K && w.PFN == pfnBase+mem.PFN(off) {
			bitmap |= 1 << uint(off)
		}
	}
	return base, pfnBase, bitmap
}

func (m *clusterMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	// Regular partition: 4 KiB always, 2 MiB only for cluster-2mb.
	if m.scheme == Cluster2M {
		if pfn, class, ok := probeL2(m.regular, vpn); ok {
			m.stats.L2RegularHits++
			m.stats.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, pfn, class)
			return AccessResult{PFN: pfn, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
		}
	} else {
		set := int(uint64(vpn) & m.regular.SetMask())
		if e, ok := m.regular.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
			m.stats.L2RegularHits++
			m.stats.Cycles += m.cfg.L2HitCycles
			m.l1.fill(vpn, e.PFNBase, mem.Class4K)
			return AccessResult{PFN: e.PFNBase, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
		}
	}
	if pfn, ok := probeCluster(m.cluster, vpn); ok {
		m.stats.CoalescedHits++
		m.stats.Cycles += m.cfg.CoalescedHitCycles
		m.l1.fill(vpn, pfn, mem.Class4K)
		return AccessResult{PFN: pfn, Cycles: m.cfg.CoalescedHitCycles, Outcome: OutCoalescedHit}
	}

	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	switch {
	case w.class == mem.Class2M && m.scheme == Cluster2M:
		fillL2(m.regular, vpn, w)
	case w.class == mem.Class4K:
		base, pfnBase, bitmap := scanBlock(m.proc, vpn, w.pfn)
		if bits.OnesCount8(bitmap) > 1 {
			set := int((uint64(vpn) / clusterBlock) & m.cluster.SetMask())
			m.cluster.Insert(set, clusterKey(base, pfnBase), tlb.Entry{
				Kind: tlb.KindCluster, VPNBase: base, PFNBase: pfnBase, Bitmap: bitmap,
			})
		} else {
			set := int(uint64(vpn) & m.regular.SetMask())
			m.regular.Insert(set, tlb.Key(tlb.Kind4K, uint64(vpn)), tlb.Entry{
				Kind: tlb.Kind4K, VPNBase: vpn, PFNBase: w.pfn,
			})
		}
	default:
		// A 2 MiB mapping under the plain cluster scheme cannot happen:
		// its policy installs no huge pages. Fill nothing defensively.
	}
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
