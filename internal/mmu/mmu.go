// Package mmu composes the TLB structures of internal/tlb into the full
// translation schemes the paper evaluates (Table 3): the baseline 4 KiB
// TLB hierarchy, transparent huge pages, cluster TLB with and without
// 2 MiB support, RMM's range TLB, and the paper's anchor scheme.
//
// Every scheme shares the same L1 (64-entry 4-way for 4 KiB pages plus
// 32-entry 4-way for 2 MiB pages) and differs in how the L2 level is
// organized and what happens on an L2 miss. Latencies follow Table 3:
// the L1 is latency-hidden, a regular L2 hit costs 7 cycles, a coalesced
// hit (cluster / range / anchor) costs 8, and a page walk costs 50.
package mmu

import (
	"fmt"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// Scheme identifies a translation scheme.
type Scheme int

// The translation schemes compared in the evaluation.
const (
	// Base: 4 KiB pages only.
	Base Scheme = iota
	// THP: transparent huge pages (4 KiB + 2 MiB shared L2).
	THP
	// Cluster: HW coalescing with a partitioned L2 (768-entry regular
	// 4 KiB TLB + 320-entry cluster-8 TLB), no huge pages.
	Cluster
	// Cluster2M: cluster TLB whose regular partition also holds 2 MiB
	// pages.
	Cluster2M
	// RMM: redundant memory mappings — baseline 4 KiB+2 MiB L2 plus a
	// 32-entry fully associative range TLB holding segment translations.
	RMM
	// Anchor: the paper's hybrid coalescing scheme — 4 KiB, 2 MiB and
	// anchor entries share one L2 with per-kind indexing.
	Anchor
	// CoLT: coalesced large-reach TLB (Pham et al., MICRO'12), modeled
	// as run-coalescing entries in a shared set-associative L2: an entry
	// covers a contiguous run of up to 8 pages starting anywhere in the
	// entry's block. Implemented as an extension baseline.
	CoLT
	// CoLTFA: CoLT's fully associative mode (Section 2.1 of the paper:
	// "a fully associative mode that supports a much larger number of
	// coalesced contiguous pages ... which in turn restricts the number
	// of entries available"): a small fully associative array of
	// arbitrarily long runs beside the regular set-associative L2.
	CoLTFA
	numSchemes
)

// String names the scheme as the paper's figures do.
func (s Scheme) String() string {
	switch s {
	case Base:
		return "base"
	case THP:
		return "thp"
	case Cluster:
		return "cluster"
	case Cluster2M:
		return "cluster-2mb"
	case RMM:
		return "rmm"
	case Anchor:
		return "anchor"
	case CoLT:
		return "colt"
	case CoLTFA:
		return "colt-fa"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a scheme name.
func ParseScheme(name string) (Scheme, error) {
	for s := Base; s < numSchemes; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("mmu: unknown scheme %q", name)
}

// All returns every scheme in presentation order.
func All() []Scheme {
	return []Scheme{Base, THP, Cluster, Cluster2M, RMM, Anchor, CoLT, CoLTFA}
}

// Policy returns the OS mapping policy the scheme pairs with.
func (s Scheme) Policy() osmem.Policy {
	switch s {
	case Base, Cluster, CoLT, CoLTFA:
		return osmem.Policy{}
	case THP, Cluster2M, RMM:
		return osmem.Policy{THP: true}
	case Anchor:
		return osmem.Policy{THP: true, Anchors: true}
	default:
		panic("mmu: unknown scheme")
	}
}

// Config carries the TLB geometry and latency parameters of Table 3.
type Config struct {
	L1Entries4K, L1Ways4K int
	L1Entries2M, L1Ways2M int

	// L2 geometry for the shared schemes (base/THP/RMM/anchor).
	L2Entries, L2Ways int

	// Cluster partitioning.
	ClusterRegularEntries, ClusterRegularWays int
	ClusterEntries, ClusterWays               int

	// RMM range TLB.
	RangeEntries int

	// CoLT-FA fully associative coalescing TLB: entry count and the
	// maximum pages one entry may coalesce.
	CoLTFAEntries  int
	CoLTFAMaxPages uint64

	// Latencies in cycles.
	L2HitCycles        uint64
	CoalescedHitCycles uint64
	WalkCycles         uint64

	// Walk optionally replaces the flat WalkCycles latency with the
	// detailed cache+PWC walk model (nil: Table 3's constant 50 cycles).
	Walk *WalkModel
}

// DefaultConfig returns Table 3 exactly.
func DefaultConfig() Config {
	return Config{
		L1Entries4K: 64, L1Ways4K: 4,
		L1Entries2M: 32, L1Ways2M: 4,
		L2Entries: 1024, L2Ways: 8,
		ClusterRegularEntries: 768, ClusterRegularWays: 6,
		ClusterEntries: 320, ClusterWays: 5,
		RangeEntries:       32,
		CoLTFAEntries:      16,
		CoLTFAMaxPages:     256,
		L2HitCycles:        7,
		CoalescedHitCycles: 8,
		WalkCycles:         50,
	}
}

// Outcome classifies where a translation was satisfied.
type Outcome int

// Translation outcomes, fastest first.
const (
	// OutL1Hit: satisfied by an L1 TLB (latency hidden).
	OutL1Hit Outcome = iota
	// OutL2Hit: regular L2 entry (4 KiB or 2 MiB).
	OutL2Hit
	// OutCoalescedHit: anchor, cluster, CoLT or range entry.
	OutCoalescedHit
	// OutWalk: page table walk (the "TLB miss" the paper counts).
	OutWalk
	// OutFault: the VPN is unmapped.
	OutFault
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutL1Hit:
		return "l1-hit"
	case OutL2Hit:
		return "l2-hit"
	case OutCoalescedHit:
		return "coalesced-hit"
	case OutWalk:
		return "walk"
	case OutFault:
		return "fault"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// AccessResult reports one translation.
type AccessResult struct {
	PFN     mem.PFN
	Cycles  uint64
	Outcome Outcome
}

// Stats accumulates translation statistics for one MMU.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	L2RegularHits uint64
	CoalescedHits uint64
	Walks         uint64 // page walks for mapped pages: the TLB miss count
	Faults        uint64
	Cycles        uint64
}

// L2Accesses returns how many translations reached the L2 level.
func (s Stats) L2Accesses() uint64 { return s.Accesses - s.L1Hits }

// Misses returns the L2 TLB miss count — the paper's "TLB misses" metric.
func (s Stats) Misses() uint64 { return s.Walks + s.Faults }

// MMU is one translation scheme instance bound to a process.
type MMU interface {
	// Scheme identifies the implementation.
	Scheme() Scheme
	// Translate performs one access. Unmapped VPNs report OutFault.
	Translate(vpn mem.VPN) AccessResult
	// TranslateBatch performs one access per VPN, in order, equivalent
	// to calling Translate on each but without per-access results — the
	// bulk path the batched drive loop uses. TLB state and Stats after a
	// batch are byte-identical to the per-record path.
	TranslateBatch(vpns []mem.VPN)
	// Stats returns the accumulated counters.
	Stats() Stats
	// Flush empties every TLB level (whole-TLB shootdown).
	Flush()
	// Invalidate removes every cached entry that could translate vpn
	// (single-entry shootdown after a mapping update).
	Invalidate(vpn mem.VPN)
}

// New builds the MMU for a scheme over a process whose mapping was
// installed with the scheme's Policy. The MMU registers its Flush with
// the process so OS-initiated shootdowns reach the hardware.
func New(s Scheme, cfg Config, proc *osmem.Process) MMU {
	var m MMU
	switch s {
	case Base, THP:
		m = newStandard(s, cfg, proc)
	case Cluster, Cluster2M:
		m = newCluster(s, cfg, proc)
	case RMM:
		m = newRMM(cfg, proc)
	case Anchor:
		m = newAnchor(cfg, proc)
	case CoLT:
		m = newCoLT(cfg, proc)
	case CoLTFA:
		m = newCoLTFA(cfg, proc)
	default:
		panic("mmu: unknown scheme")
	}
	proc.OnFlush(m.Flush)
	proc.OnInvalidate(m.Invalidate)
	if cfg.Walk != nil {
		proc.OnFlush(cfg.Walk.FlushTranslations)
	}
	return m
}

// l1 bundles the split L1 TLBs every scheme shares.
type l1 struct {
	tlb4K *tlb.Cache
	tlb2M *tlb.Cache
}

func newL1(cfg Config) l1 {
	return l1{
		tlb4K: tlb.NewCache(cfg.L1Entries4K/cfg.L1Ways4K, cfg.L1Ways4K),
		tlb2M: tlb.NewCache(cfg.L1Entries2M/cfg.L1Ways2M, cfg.L1Ways2M),
	}
}

// lookup probes both L1s (they are accessed in parallel in hardware).
func (l *l1) lookup(vpn mem.VPN) (mem.PFN, bool) {
	set4 := int(uint64(vpn) & l.tlb4K.SetMask())
	if e, ok := l.tlb4K.Lookup(set4, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
		return e.PFNBase, true
	}
	base := vpn.AlignDown(mem.PagesPer2M)
	set2 := int((uint64(vpn) >> 9) & l.tlb2M.SetMask())
	if e, ok := l.tlb2M.Lookup(set2, tlb.Key(tlb.Kind2M, uint64(base))); ok {
		return e.PFNBase + mem.PFN(vpn-base), true
	}
	return 0, false
}

// fill installs the translation of vpn into the appropriate L1.
func (l *l1) fill(vpn mem.VPN, pfn mem.PFN, class mem.PageClass) {
	if class == mem.Class2M {
		base := vpn.AlignDown(mem.PagesPer2M)
		set := int((uint64(vpn) >> 9) & l.tlb2M.SetMask())
		l.tlb2M.InsertNew(set, tlb.Key(tlb.Kind2M, uint64(base)), tlb.Entry{
			Kind: tlb.Kind2M, VPNBase: base, PFNBase: pfn - mem.PFN(vpn-base),
		})
		return
	}
	set := int(uint64(vpn) & l.tlb4K.SetMask())
	l.tlb4K.InsertNew(set, tlb.Key(tlb.Kind4K, uint64(vpn)), tlb.Entry{
		Kind: tlb.Kind4K, VPNBase: vpn, PFNBase: pfn,
	})
}

// invalidate removes any L1 entry translating vpn.
func (l *l1) invalidate(vpn mem.VPN) {
	set4 := int(uint64(vpn) & l.tlb4K.SetMask())
	l.tlb4K.Invalidate(set4, tlb.Key(tlb.Kind4K, uint64(vpn)))
	base := vpn.AlignDown(mem.PagesPer2M)
	set2 := int((uint64(vpn) >> 9) & l.tlb2M.SetMask())
	l.tlb2M.Invalidate(set2, tlb.Key(tlb.Kind2M, uint64(base)))
}

func (l *l1) flush() {
	l.tlb4K.Flush()
	l.tlb2M.Flush()
}

// invalidateL2Regular removes the 4 KiB and 2 MiB entries for vpn from a
// shared L2.
func invalidateL2Regular(c *tlb.Cache, vpn mem.VPN) {
	set4 := int(uint64(vpn) & c.SetMask())
	c.Invalidate(set4, tlb.Key(tlb.Kind4K, uint64(vpn)))
	base := vpn.AlignDown(mem.PagesPer2M)
	set2 := int((uint64(vpn) >> 9) & c.SetMask())
	c.Invalidate(set2, tlb.Key(tlb.Kind2M, uint64(base)))
}
