package mmu

import (
	"math/bits"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/tlb"
)

// coltMMU implements CoLT-SA (Pham et al., MICRO'12) as an extension
// baseline: coalesced entries live in the single shared L2 (no static
// partition, unlike the cluster scheme). Each coalesced entry covers the
// contiguously mapped pages of one 8-page-aligned block, discovered from
// the PTE cache line the walk already fetched. CoLT uses no huge pages.
type coltMMU struct {
	cfg   Config
	proc  *osmem.Process
	l1    l1
	l2    *tlb.Cache
	stats Stats
}

func newCoLT(cfg Config, proc *osmem.Process) *coltMMU {
	return &coltMMU{
		cfg:  cfg,
		proc: proc,
		l1:   newL1(cfg),
		l2:   tlb.NewCache(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways),
	}
}

func (m *coltMMU) Scheme() Scheme { return CoLT }
func (m *coltMMU) Stats() Stats   { return m.stats }

func (m *coltMMU) Flush() {
	m.l1.flush()
	m.l2.Flush()
}

// Invalidate implements the single-entry shootdown: the regular entry and
// every coalesced entry whose block covers vpn are removed.
func (m *coltMMU) Invalidate(vpn mem.VPN) {
	m.l1.invalidate(vpn)
	invalidateL2Regular(m.l2, vpn)
	block := vpn.AlignDown(clusterBlock)
	set := int((uint64(vpn) / clusterBlock) & m.l2.SetMask())
	m.l2.InvalidateWhere(set, func(e tlb.Entry) bool {
		return e.Kind == tlb.KindCluster && e.VPNBase == block
	})
}

func (m *coltMMU) Translate(vpn mem.VPN) AccessResult {
	m.stats.Accesses++
	if pfn, ok := m.l1.lookup(vpn); ok {
		m.stats.L1Hits++
		return AccessResult{PFN: pfn, Outcome: OutL1Hit}
	}
	// Coalesced probe in the shared L2: same access as the 4 KiB probe
	// (single indexing, one extra tag compare), so it costs a regular
	// hit... except we keep the paper's conservative 8-cycle coalesced
	// latency for comparability.
	if pfn, ok := probeCluster(m.l2, vpn); ok {
		m.stats.CoalescedHits++
		m.stats.Cycles += m.cfg.CoalescedHitCycles
		m.l1.fill(vpn, pfn, mem.Class4K)
		return AccessResult{PFN: pfn, Cycles: m.cfg.CoalescedHitCycles, Outcome: OutCoalescedHit}
	}
	set := int(uint64(vpn) & m.l2.SetMask())
	if e, ok := m.l2.Lookup(set, tlb.Key(tlb.Kind4K, uint64(vpn))); ok {
		m.stats.L2RegularHits++
		m.stats.Cycles += m.cfg.L2HitCycles
		m.l1.fill(vpn, e.PFNBase, mem.Class4K)
		return AccessResult{PFN: e.PFNBase, Cycles: m.cfg.L2HitCycles, Outcome: OutL2Hit}
	}

	w, walkCost := walkTimed(m.proc, vpn, &m.cfg)
	m.stats.Cycles += walkCost
	if !w.present {
		m.stats.Faults++
		return AccessResult{Cycles: walkCost, Outcome: OutFault}
	}
	m.stats.Walks++
	base, pfnBase, bitmap := scanBlock(m.proc, vpn, w.pfn)
	if bits.OnesCount8(bitmap) > 1 {
		cset := int((uint64(vpn) / clusterBlock) & m.l2.SetMask())
		m.l2.Insert(cset, clusterKey(base, pfnBase), tlb.Entry{
			Kind: tlb.KindCluster, VPNBase: base, PFNBase: pfnBase, Bitmap: bitmap,
		})
	} else {
		fillL2(m.l2, vpn, w)
	}
	m.l1.fill(vpn, w.pfn, w.class)
	return AccessResult{PFN: w.pfn, Cycles: walkCost, Outcome: OutWalk}
}
