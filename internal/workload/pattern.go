// Package workload provides synthetic stand-ins for the paper's benchmark
// suite (SPEC CPU2006, BioBench, graph500, gups). The authors drove their
// simulator with Pin-generated traces; those are not reproducible here, so
// each benchmark is modeled as a deterministic access-pattern generator
// whose page-level footprint, reuse and locality are chosen to mimic the
// benchmark's published TLB behaviour. What matters for the paper's
// results is how accesses spread across pages relative to the mapping's
// contiguity — which these generators control directly.
package workload

import "math/rand"

// pattern produces a stream of page indices in [0, footprint).
type pattern interface {
	next() uint64
}

// uniformPattern is GUPS-style uniform random access: effectively zero
// page locality, the TLB worst case.
type uniformPattern struct {
	r         *rand.Rand
	footprint uint64
}

func (p *uniformPattern) next() uint64 { return uint64(p.r.Int63n(int64(p.footprint))) }

// zipfGranule is the spatial-locality granule of skewed access patterns:
// consecutive hot ranks stay together in groups of this many pages,
// because real allocators place hot objects adjacently. Coalescing
// schemes (cluster, anchors) rely on exactly this page-level locality.
const zipfGranule = 16

// zipfPattern models skewed hot/cold access (canneal, xalancbmk,
// omnetpp): rank i is accessed with probability ∝ 1/(v+i)^s. Rank groups
// of zipfGranule pages are scattered across the footprint with a
// multiplicative hash, so hot regions are spread over the address space
// but locally contiguous.
type zipfPattern struct {
	z         *rand.Zipf
	footprint uint64
}

func newZipf(r *rand.Rand, footprint uint64, s float64) *zipfPattern {
	return &zipfPattern{z: rand.NewZipf(r, s, 1, footprint-1), footprint: footprint}
}

func (p *zipfPattern) next() uint64 {
	rank := p.z.Uint64()
	group := rank / zipfGranule
	scattered := (group * 0x9E3779B97F4A7C15) % (p.footprint / zipfGranule * zipfGranule)
	return (scattered/zipfGranule*zipfGranule + rank%zipfGranule) % p.footprint
}

// streamPattern models sequential sweeps (milc, GemsFDTD, cactusADM):
// several concurrent streams walk the footprint with a page stride,
// touching each page repeat times before advancing (spatial locality
// within a page). Streams start evenly spaced and wrap around.
type streamPattern struct {
	footprint uint64
	cursors   []uint64
	stride    uint64
	repeat    int
	cur       int
	reps      int
}

func newStreams(footprint uint64, streams int, stride uint64, repeat int) *streamPattern {
	p := &streamPattern{footprint: footprint, stride: stride, repeat: repeat}
	for i := 0; i < streams; i++ {
		p.cursors = append(p.cursors, footprint/uint64(streams)*uint64(i))
	}
	return p
}

func (p *streamPattern) next() uint64 {
	v := p.cursors[p.cur]
	p.reps++
	if p.reps >= p.repeat {
		p.reps = 0
		p.cursors[p.cur] = (p.cursors[p.cur] + p.stride) % p.footprint
		p.cur = (p.cur + 1) % len(p.cursors)
	}
	return v
}

// chasePattern models pointer chasing over a large structure (mcf,
// mummer, tigr): a full-period LCG visits every page in a fixed pseudo-
// random order, like following a linked structure laid out by an
// allocator. footprint is rounded up to a power of two internally and
// out-of-range values are skipped, preserving full coverage.
type chasePattern struct {
	footprint uint64
	mod       uint64 // power of two >= footprint
	cur       uint64
}

func newChase(footprint uint64, seed uint64) *chasePattern {
	mod := uint64(1)
	for mod < footprint {
		mod <<= 1
	}
	return &chasePattern{footprint: footprint, mod: mod, cur: seed % footprint}
}

func (p *chasePattern) next() uint64 {
	for {
		// Full-period LCG modulo a power of two: a ≡ 5 (mod 8), odd c.
		p.cur = (p.cur*6364136223846793005 + 1442695040888963407) & (p.mod - 1)
		if p.cur < p.footprint {
			return p.cur
		}
	}
}

// walkPattern models spatially local wandering (astar's open list over a
// 2D lake grid): a random walk on a width×height page grid.
type walkPattern struct {
	r             *rand.Rand
	width, height uint64
	x, y          uint64
}

func newWalk(r *rand.Rand, footprint uint64) *walkPattern {
	w := uint64(1)
	for w*w < footprint {
		w++
	}
	h := footprint / w
	if h == 0 {
		h = 1
	}
	return &walkPattern{r: r, width: w, height: h, x: w / 2, y: h / 2}
}

func (p *walkPattern) next() uint64 {
	switch p.r.Intn(4) {
	case 0:
		p.x = (p.x + 1) % p.width
	case 1:
		p.x = (p.x + p.width - 1) % p.width
	case 2:
		p.y = (p.y + 1) % p.height
	default:
		p.y = (p.y + p.height - 1) % p.height
	}
	v := p.y*p.width + p.x
	if max := p.width * p.height; v >= max {
		v = max - 1
	}
	return v
}

// burstPattern wraps another pattern, expanding each of its accesses into
// a short sequential run (graph500 frontier scans: a random vertex lookup
// followed by a sweep over its adjacency list).
type burstPattern struct {
	r     *rand.Rand
	inner pattern

	footprint uint64
	maxBurst  int
	cur       uint64
	left      int
}

func newBurst(r *rand.Rand, inner pattern, footprint uint64, maxBurst int) *burstPattern {
	return &burstPattern{r: r, inner: inner, footprint: footprint, maxBurst: maxBurst}
}

func (p *burstPattern) next() uint64 {
	if p.left == 0 {
		p.cur = p.inner.next()
		p.left = 1 + p.r.Intn(p.maxBurst)
	}
	v := p.cur
	p.cur = (p.cur + 1) % p.footprint
	p.left--
	return v
}

// mixPattern interleaves sub-patterns with fixed weights (soplex's row
// sweeps plus random column accesses; sphinx3's model scans plus lookups).
type mixPattern struct {
	r        *rand.Rand
	parts    []pattern
	cumOdds  []int
	oddTotal int
}

func newMix(r *rand.Rand, parts []pattern, weights []int) *mixPattern {
	p := &mixPattern{r: r, parts: parts}
	total := 0
	for _, w := range weights {
		total += w
		p.cumOdds = append(p.cumOdds, total)
	}
	p.oddTotal = total
	return p
}

func (p *mixPattern) next() uint64 {
	pick := p.r.Intn(p.oddTotal)
	for i, c := range p.cumOdds {
		if pick < c {
			return p.parts[i].next()
		}
	}
	return p.parts[len(p.parts)-1].next()
}

// hotColdPattern confines a fraction of accesses to a small hot region
// (GemsFDTD's field arrays vs. auxiliary tables; sphinx3's active models).
type hotColdPattern struct {
	r         *rand.Rand
	hot       pattern
	cold      pattern
	hotPct    int
	hotPages  uint64
	footprint uint64
}

func newHotCold(r *rand.Rand, footprint uint64, hotFraction float64, hotPct int) *hotColdPattern {
	hotPages := uint64(float64(footprint) * hotFraction)
	if hotPages == 0 {
		hotPages = 1
	}
	return &hotColdPattern{
		r:         r,
		hot:       &uniformPattern{r: r, footprint: hotPages},
		cold:      &uniformPattern{r: r, footprint: footprint},
		hotPct:    hotPct,
		hotPages:  hotPages,
		footprint: footprint,
	}
}

func (p *hotColdPattern) next() uint64 {
	if p.r.Intn(100) < p.hotPct {
		return p.hot.next()
	}
	return p.cold.next()
}
