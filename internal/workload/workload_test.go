package workload

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14", len(suite))
	}
	seen := make(map[string]bool)
	for _, s := range suite {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("bad or duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.FootprintPages < 1<<10 {
			t.Errorf("%s: footprint %d pages is implausibly small", s.Name, s.FootprintPages)
		}
		if s.MeanInstrsPerAccess < 1 {
			t.Errorf("%s: bad instruction spacing", s.Name)
		}
		if s.build == nil {
			t.Errorf("%s: no pattern builder", s.Name)
		}
	}
	// gups and graph500 must be the largest (the paper sets them to 8 GiB).
	g, _ := ByName("gups")
	for _, s := range suite {
		if s.FootprintPages > g.FootprintPages {
			t.Errorf("%s footprint exceeds gups", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Errorf("ByName(mcf) = %+v, %v", s, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(Names()) != 14 {
		t.Error("Names() length wrong")
	}
}

func TestGeneratorBounds(t *testing.T) {
	const base = mem.VPN(0x10000)
	for _, s := range Suite() {
		fp := uint64(1 << 12)
		g := s.NewGenerator(base, fp, 20000, 42)
		n := 0
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			n++
			if rec.VPN < base || rec.VPN >= base+mem.VPN(fp) {
				t.Fatalf("%s: VPN %#x outside [%#x, %#x)", s.Name, uint64(rec.VPN), uint64(base), uint64(base)+fp)
			}
			if rec.Instrs < 1 {
				t.Fatalf("%s: zero instruction gap", s.Name)
			}
		}
		if n != 20000 {
			t.Errorf("%s: generated %d records, want 20000", s.Name, n)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, s := range Suite() {
		a := trace.Collect(s.NewGenerator(0, 1<<12, 1000, 7), 0)
		b := trace.Collect(s.NewGenerator(0, 1<<12, 1000, 7), 0)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs between identical seeds", s.Name, i)
			}
		}
		c := trace.Collect(s.NewGenerator(0, 1<<12, 1000, 8), 0)
		same := true
		for i := range a {
			if a[i].VPN != c[i].VPN {
				same = false
				break
			}
		}
		if same && s.Name != "cactusADM" { // pure streams are seed-independent by design
			t.Errorf("%s: different seeds produced identical VPN sequences", s.Name)
		}
	}
}

func TestMeanInstructionSpacing(t *testing.T) {
	for _, s := range Suite() {
		recs := trace.Collect(s.NewGenerator(0, 1<<12, 50000, 3), 0)
		var total uint64
		for _, r := range recs {
			total += uint64(r.Instrs)
		}
		got := float64(total) / float64(len(recs))
		want := float64(s.MeanInstrsPerAccess)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s: mean instruction gap %.2f, want ~%.0f", s.Name, got, want)
		}
	}
}

// TestLocalitySpectrum pins the relative page locality of key benchmarks
// via the miss rate of a 64-entry fully-associative LRU page filter (a
// tiny idealized TLB): gups must miss far more than the skewed canneal,
// which must miss more than the streaming cactusADM. This ordering is
// what drives the paper's per-benchmark differences.
func TestLocalitySpectrum(t *testing.T) {
	missRate := func(name string) float64 {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const accesses = 50000
		g := s.NewGenerator(0, 1<<14, accesses, 5)
		type node struct{ lru int }
		resident := make(map[mem.VPN]*node)
		clock, misses := 0, 0
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			clock++
			if n, hit := resident[rec.VPN]; hit {
				n.lru = clock
				continue
			}
			misses++
			if len(resident) >= 64 {
				var victim mem.VPN
				best := clock + 1
				for v, n := range resident {
					if n.lru < best {
						best, victim = n.lru, v
					}
				}
				delete(resident, victim)
			}
			resident[rec.VPN] = &node{lru: clock}
		}
		return float64(misses) / float64(accesses)
	}
	gups := missRate("gups")
	cactus := missRate("cactusADM")
	canneal := missRate("canneal")
	if !(gups > canneal && canneal > cactus) {
		t.Errorf("locality ordering violated: gups=%.3f canneal=%.3f cactusADM=%.3f", gups, canneal, cactus)
	}
}

// TestCoverage ensures long runs of every benchmark eventually touch a
// large share of the footprint (no generator is stuck in a corner).
func TestCoverage(t *testing.T) {
	for _, s := range Suite() {
		fp := uint64(1 << 10)
		g := s.NewGenerator(0, fp, 100000, 9)
		seen := make(map[mem.VPN]bool)
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			seen[rec.VPN] = true
		}
		frac := float64(len(seen)) / float64(fp)
		// astar's random walk is intentionally slow-moving; everything
		// else must cover most of the footprint.
		min := 0.5
		if s.Name == "astar_biglake" {
			min = 0.05
		}
		if frac < min {
			t.Errorf("%s: covered only %.1f%% of footprint", s.Name, frac*100)
		}
	}
}

func TestPatternPrimitives(t *testing.T) {
	r := rand.New(rand.NewSource(1))

	t.Run("streams", func(t *testing.T) {
		p := newStreams(100, 2, 1, 2)
		// Stream 0 at page 0 twice, then stream 1 at page 50 twice, then
		// stream 0 at page 1...
		want := []uint64{0, 0, 50, 50, 1, 1, 51, 51}
		for i, w := range want {
			if got := p.next(); got != w {
				t.Fatalf("access %d = %d, want %d", i, got, w)
			}
		}
	})

	t.Run("chase full coverage", func(t *testing.T) {
		p := newChase(1000, 1)
		seen := make(map[uint64]bool)
		for i := 0; i < 100000; i++ {
			v := p.next()
			if v >= 1000 {
				t.Fatal("chase escaped footprint")
			}
			seen[v] = true
		}
		if len(seen) < 990 {
			t.Errorf("chase covered %d/1000 pages", len(seen))
		}
	})

	t.Run("burst is sequential", func(t *testing.T) {
		p := newBurst(r, &uniformPattern{r: r, footprint: 1 << 20}, 1<<20, 8)
		prev := p.next()
		sequential := 0
		for i := 0; i < 1000; i++ {
			v := p.next()
			if v == prev+1 {
				sequential++
			}
			prev = v
		}
		if sequential < 300 {
			t.Errorf("burst produced only %d sequential steps of 1000", sequential)
		}
	})

	t.Run("hotcold concentrates", func(t *testing.T) {
		p := newHotCold(r, 10000, 0.01, 90)
		inHot := 0
		for i := 0; i < 10000; i++ {
			if p.next() < 100 {
				inHot++
			}
		}
		if inHot < 8000 {
			t.Errorf("only %d/10000 accesses in hot region", inHot)
		}
	})

	t.Run("zipf skew", func(t *testing.T) {
		p := newZipf(r, 1<<16, 1.2)
		counts := make(map[uint64]int)
		for i := 0; i < 100000; i++ {
			counts[p.next()]++
		}
		// Strong skew: far fewer distinct pages than accesses.
		if len(counts) > 50000 {
			t.Errorf("zipf touched %d distinct pages of 100000 accesses; not skewed", len(counts))
		}
	})

	t.Run("walk stays local", func(t *testing.T) {
		p := newWalk(r, 1<<16)
		a := p.next()
		far := 0
		for i := 0; i < 1000; i++ {
			b := p.next()
			d := int64(b) - int64(a)
			if d < 0 {
				d = -d
			}
			if d > 300 {
				far++
			}
			a = b
		}
		if far > 100 {
			t.Errorf("%d/1000 walk steps were long jumps", far)
		}
	})
}

func TestGeneratorZeroAccessesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero accesses accepted")
		}
	}()
	s, _ := ByName("gups")
	s.NewGenerator(0, 0, 0, 1)
}

func BenchmarkGeneratorGups(b *testing.B) {
	s, _ := ByName("gups")
	g := s.NewGenerator(0, 1<<19, uint64(b.N)+1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
