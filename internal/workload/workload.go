package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/trace"
)

// Spec describes one benchmark of the evaluation suite.
type Spec struct {
	// Name as used in the paper's figures.
	Name string
	// FootprintPages is the benchmark's native footprint in 4 KiB pages
	// (the paper's working-set sizes: SPEC CPU2006 reference inputs,
	// 8 GiB for gups and graph500), so footprint-to-TLB-reach ratios
	// match the paper's. Simulations can override it downward for quick
	// runs.
	FootprintPages uint64
	// MeanInstrsPerAccess spaces memory accesses in instructions; the
	// translation CPI denominator comes from this.
	MeanInstrsPerAccess int
	// WriteFraction is the fraction of accesses that are stores.
	WriteFraction float64
	// FineGrainedAlloc marks benchmarks that build their footprint from
	// many small allocations interleaved with frees (omnetpp,
	// xalancbmk), so even demand/eager paging hands them fine-grained
	// physical contiguity (the paper's Table 6 selects distance 4 for
	// them on the real mappings).
	FineGrainedAlloc bool
	// build constructs the benchmark's access pattern.
	build func(r *rand.Rand, footprint uint64) pattern
}

// Suite returns the evaluation suite in the paper's figure order
// (alphabetical as plotted in Figures 7 and 8).
func Suite() []Spec {
	return []Spec{
		{
			// FDTD solver: several large field arrays swept by stencil
			// streams, plus a small hot set of coefficient tables.
			Name: "GemsFDTD", FootprintPages: 840 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.35,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newStreams(fp, 6, 1, 2), newHotCold(r, fp, 0.02, 90)},
					[]int{85, 15})
			},
		},
		{
			// Pathfinding over the "biglake" map: a spatially local
			// random walk over a 2D grid with occasional jumps to the
			// priority queue region.
			Name: "astar_biglake", FootprintPages: 500 << 8, MeanInstrsPerAccess: 5, WriteFraction: 0.2,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newWalk(r, fp), newZipf(r, fp, 1.4)},
					[]int{70, 30})
			},
		},
		{
			// 3D stencil over a structured grid: long unit-stride streams.
			Name: "cactusADM", FootprintPages: 670 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.3,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newStreams(fp, 3, 1, 3)
			},
		},
		{
			// Simulated annealing over a netlist: heavily skewed random
			// access to scattered elements.
			Name: "canneal", FootprintPages: 940 << 8, MeanInstrsPerAccess: 5, WriteFraction: 0.15,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newZipf(r, fp, 1.1)
			},
		},
		{
			// BFS over a scale-free graph: random vertex lookups, each
			// followed by a sequential adjacency sweep.
			Name: "graph500", FootprintPages: 8192 << 8, MeanInstrsPerAccess: 3, WriteFraction: 0.1,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newBurst(r, &uniformPattern{r: r, footprint: fp}, fp, 4)
			},
		},
		{
			// Giant updates per second: uniform random read-modify-write
			// over the whole table. The TLB worst case.
			Name: "gups", FootprintPages: 8192 << 8, MeanInstrsPerAccess: 3, WriteFraction: 0.5,
			build: func(r *rand.Rand, fp uint64) pattern {
				return &uniformPattern{r: r, footprint: fp}
			},
		},
		{
			// Network simplex: pointer chasing over a hot arc/node core
			// (the reference input's active network) with cold sweeps
			// over the full footprint.
			Name: "mcf", FootprintPages: 1700 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.25,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newChase(fp/16, r.Uint64()), newStreams(fp, 1, 1, 2), &uniformPattern{r: r, footprint: fp}},
					[]int{70, 20, 10})
			},
		},
		{
			// Lattice QCD: strided sweeps over a 4D lattice.
			Name: "milc", FootprintPages: 680 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.3,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newStreams(fp, 4, 1, 2), newStreams(fp, 2, 17, 1)},
					[]int{70, 30})
			},
		},
		{
			// Genome alignment: suffix-tree walks concentrated on the
			// tree's upper levels, with excursions over the whole
			// reference.
			Name: "mummer", FootprintPages: 470 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.1,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newChase(fp/8, r.Uint64()), &uniformPattern{r: r, footprint: fp}},
					[]int{75, 25})
			},
		},
		{
			// Discrete event simulation: skewed access to event/message
			// pools.
			Name: "omnetpp", FootprintPages: 170 << 8, MeanInstrsPerAccess: 5, WriteFraction: 0.3, FineGrainedAlloc: true,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newZipf(r, fp, 1.05)
			},
		},
		{
			// LP solver on the pds instance: sparse row sweeps plus
			// random column accesses.
			Name: "soplex_pds", FootprintPages: 440 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.2,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newStreams(fp, 2, 1, 2), &uniformPattern{r: r, footprint: fp}},
					[]int{60, 40})
			},
		},
		{
			// Speech recognition: streaming over acoustic models with a
			// hot active set.
			Name: "sphinx3", FootprintPages: 180 << 8, MeanInstrsPerAccess: 5, WriteFraction: 0.1,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newStreams(fp, 2, 1, 4), newHotCold(r, fp, 0.05, 80)},
					[]int{60, 40})
			},
		},
		{
			// Genome assembly: index walks over a hot table region plus
			// random access over the full sequence store.
			Name: "tigr", FootprintPages: 470 << 8, MeanInstrsPerAccess: 4, WriteFraction: 0.1,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newMix(r,
					[]pattern{newChase(fp/8, r.Uint64()), &uniformPattern{r: r, footprint: fp}},
					[]int{65, 35})
			},
		},
		{
			// XSLT processing: pointer-heavy DOM traversal with a hot
			// skewed core.
			Name: "xalancbmk", FootprintPages: 380 << 8, MeanInstrsPerAccess: 5, WriteFraction: 0.2, FineGrainedAlloc: true,
			build: func(r *rand.Rand, fp uint64) pattern {
				return newZipf(r, fp, 1.2)
			},
		},
	}
}

// Names lists the suite's benchmark names, sorted.
func Names() []string {
	var out []string
	for _, s := range Suite() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// ByName finds a benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Generator streams the benchmark's accesses as trace records; it
// implements trace.Source.
type Generator struct {
	spec      Spec
	base      mem.VPN
	pat       pattern
	r         *rand.Rand
	remaining uint64
}

// NewGenerator builds a trace source for the benchmark over
// [base, base+footprint) emitting accesses records. A zero footprint uses
// the spec default; accesses must be positive.
func (s Spec) NewGenerator(base mem.VPN, footprint, accesses uint64, seed int64) *Generator {
	if footprint == 0 {
		footprint = s.FootprintPages
	}
	if accesses == 0 {
		panic("workload: zero-length trace")
	}
	r := rand.New(rand.NewSource(seed))
	return &Generator{
		spec:      s,
		base:      base,
		pat:       s.build(r, footprint),
		r:         r,
		remaining: accesses,
	}
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Record, bool) {
	if g.remaining == 0 {
		return trace.Record{}, false
	}
	g.remaining--
	// Instruction gaps are uniform in [1, 2*mean-1] so the mean holds.
	instrs := uint32(1)
	if m := g.spec.MeanInstrsPerAccess; m > 1 {
		instrs = uint32(1 + g.r.Intn(2*m-1))
	}
	return trace.Record{
		VPN:    g.base + mem.VPN(g.pat.next()),
		Instrs: instrs,
		Write:  g.r.Float64() < g.spec.WriteFraction,
	}, true
}

// ReadBatch implements trace.BatchSource. It draws from the RNG in
// exactly Next's order (instruction gap, then pattern, then write draw),
// so a batched trace is record-for-record identical to a serial one.
func (g *Generator) ReadBatch(dst []trace.Record) int {
	mean := g.spec.MeanInstrsPerAccess
	writeFrac := g.spec.WriteFraction
	for n := range dst {
		if g.remaining == 0 {
			return n
		}
		g.remaining--
		instrs := uint32(1)
		if mean > 1 {
			instrs = uint32(1 + g.r.Intn(2*mean-1))
		}
		dst[n] = trace.Record{
			VPN:    g.base + mem.VPN(g.pat.next()),
			Instrs: instrs,
			Write:  g.r.Float64() < writeFrac,
		}
	}
	return len(dst)
}
