// Package sim drives workloads through translation schemes: it wires a
// mapping scenario, an OS process, an MMU and a workload trace together,
// runs the access stream with periodic anchor-distance re-selection (the
// paper checks every one billion instructions), and reports the metrics
// the evaluation section plots — relative TLB misses, L2 hit breakdowns
// and translation cycles per instruction.
package sim

import (
	"fmt"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

// ProbeSample is one per-epoch observation delivered to a Probe: the
// cumulative state of the run when an epoch boundary was crossed.
type ProbeSample struct {
	// Epoch counts boundaries crossed so far, starting at 1.
	Epoch int
	// Instructions retired since the start of the run (warmup included).
	Instructions uint64
	// Stats are the MMU's cumulative counters (warmup included).
	Stats mmu.Stats
	// AnchorDistance is the process anchor distance after any
	// re-selection this boundary triggered (anchor-family schemes;
	// 0 for schemes without anchors).
	AnchorDistance uint64
}

// Probe observes epoch boundaries. It runs outside the per-access inner
// loop — once per EpochInstructions — so observability never costs the
// hot path anything. Probes fire on every scheme (for non-anchor schemes
// the boundary triggers no re-selection, only the observation) and must
// not mutate simulation state; they are excluded from sweep cache keys.
type Probe func(ProbeSample)

// Config parameterizes one simulation run.
type Config struct {
	Scheme   mmu.Scheme
	Workload workload.Spec
	Scenario mapping.Scenario

	// Hardware configuration (zero value: Table 3 via DefaultConfig).
	HW mmu.Config

	// FootprintPages overrides the workload's default footprint.
	FootprintPages uint64
	// Accesses is the trace length (default 1,000,000).
	Accesses uint64
	// WarmupAccesses run before counters reset (default Accesses/10).
	WarmupAccesses uint64
	// Seed drives both mapping generation and the workload.
	Seed int64
	// Pressure is the background fragmentation for buddy-backed
	// scenarios.
	Pressure float64

	// FixedDistance pins the anchor distance and disables dynamic
	// re-selection (the static configuration). Zero selects dynamically.
	FixedDistance uint64
	// EpochInstructions is the dynamic re-selection period (the paper
	// uses 1e9; the scaled default is 10,000,000).
	EpochInstructions uint64
	// SweepCost models distance-change cost (zero: the calibrated
	// default).
	SweepCost osmem.SweepCostModel
	// CostModel selects the distance-selection cost model (zero: the
	// paper-faithful entry count; core.CostCapacityAware is this
	// repository's capacity-aware extension).
	CostModel core.CostModel
	// MultiRegionAnchors installs per-region anchor distances (the
	// paper's Section 4.2 future-work extension) instead of one
	// process-wide distance. Requires the anchor scheme; FixedDistance
	// is ignored.
	MultiRegionAnchors bool
	// DetailedWalk replaces the flat 50-cycle walk latency with the
	// cache+PWC walk model (an ablation of the Table 3 assumption).
	DetailedWalk bool

	// Probe, when non-nil, is called at every epoch boundary with a
	// snapshot of the run. Purely observational: it never changes
	// results, and the sweep engine excludes it from cache keys.
	Probe Probe

	// Shards splits the drive into that many trace segments replayed by
	// parallel simulators (see shard.go). Results are byte-identical to
	// the serial drive for every scheme — the equivalence suite holds
	// them together — so the sweep engine excludes Shards from cache
	// keys, like Probe. Values <= 1 (and configs the shard engine cannot
	// serve, e.g. DetailedWalk) run the regular batched drive.
	Shards int
}

// WithDefaults returns the config with every zero field replaced by its
// default — the configuration Run actually simulates. The sweep engine
// normalizes configs this way before hashing, so a config and its
// defaulted form share one cache cell. It is idempotent.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.HW == (mmu.Config{}) {
		c.HW = mmu.DefaultConfig()
	}
	if c.FootprintPages == 0 {
		c.FootprintPages = c.Workload.FootprintPages
	}
	if c.Accesses == 0 {
		c.Accesses = 1_000_000
	}
	if c.WarmupAccesses == 0 {
		c.WarmupAccesses = c.Accesses / 10
	}
	if c.EpochInstructions == 0 {
		c.EpochInstructions = 10_000_000
	}
	if c.SweepCost == (osmem.SweepCostModel{}) {
		c.SweepCost = osmem.DefaultSweepCost
	}
	return c
}

// Result reports one simulation.
type Result struct {
	Scheme   mmu.Scheme
	Workload string
	Scenario mapping.Scenario

	Stats        mmu.Stats
	Instructions uint64

	// Mapping/OS facts.
	Chunks          int
	HugePages       int
	AnchorDistance  uint64 // final distance (anchor scheme)
	DistanceChanges uint64

	// AnchorActions breaks anchor-scheme L2 flows down by Table 2 row.
	AnchorActions map[core.L2Action]uint64
}

// MissesPerMillionInstructions is the paper's underlying miss-rate metric.
func (r Result) MissesPerMillionInstructions() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Stats.Misses()) / float64(r.Instructions) * 1e6
}

// RelativeMisses returns this run's misses normalized to a baseline run
// (the y-axis of Figures 2 and 7-9), in percent.
func (r Result) RelativeMisses(base Result) float64 {
	if base.Stats.Misses() == 0 {
		if r.Stats.Misses() == 0 {
			return 100
		}
		return 0
	}
	return 100 * float64(r.Stats.Misses()) / float64(base.Stats.Misses())
}

// CPIBreakdown is the translation cycles-per-instruction split plotted in
// Figures 10 and 11.
type CPIBreakdown struct {
	L2Hit     float64 // cycles spent on regular L2 hits
	Coalesced float64 // cycles on anchor / cluster / range hits
	Walk      float64 // cycles on page table walks
}

// Total returns the full translation CPI.
func (c CPIBreakdown) Total() float64 { return c.L2Hit + c.Coalesced + c.Walk }

// CPI computes the translation CPI breakdown under the given latencies.
func (r Result) CPI(hw mmu.Config) CPIBreakdown {
	if r.Instructions == 0 {
		return CPIBreakdown{}
	}
	inv := 1 / float64(r.Instructions)
	return CPIBreakdown{
		L2Hit:     float64(r.Stats.L2RegularHits*hw.L2HitCycles) * inv,
		Coalesced: float64(r.Stats.CoalescedHits*hw.CoalescedHitCycles) * inv,
		Walk:      float64((r.Stats.Walks+r.Stats.Faults)*hw.WalkCycles) * inv,
	}
}

// L2Breakdown returns the Table 5 row: fractions of L2 accesses served by
// regular entries, coalesced entries, and misses.
func (r Result) L2Breakdown() (regular, coalesced, miss float64) {
	total := r.Stats.L2Accesses()
	if total == 0 {
		return 0, 0, 0
	}
	inv := 1 / float64(total)
	return float64(r.Stats.L2RegularHits) * inv,
		float64(r.Stats.CoalescedHits) * inv,
		float64(r.Stats.Misses()) * inv
}

// driveFunc pushes a trace through an MMU; drive is the production
// batched implementation, driveSerial the record-at-a-time reference the
// equivalence suite compares it against.
type driveFunc func(m mmu.MMU, proc *osmem.Process, src trace.Source, cfg Config, res *Result)

// Run executes one simulation.
func Run(cfg Config) (Result, error) { return run(cfg, driveFor(cfg)) }

// driveFor selects the drive implementation for a config: the
// shard-parallel engine when sharding was requested, the batched drive
// otherwise. driveSharded itself falls back to drive for configs it
// cannot serve, so selection here only needs the shard count.
func driveFor(cfg Config) driveFunc {
	if cfg.Shards > 1 {
		return driveSharded
	}
	return drive
}

func run(cfg Config, driveFn driveFunc) (Result, error) {
	cfg = cfg.withDefaults()

	cl, err := mapping.Generate(cfg.Scenario, mapping.Config{
		FootprintPages: cfg.FootprintPages,
		Seed:           cfg.Seed,
		Pressure:       cfg.Pressure,
		FineGrained:    cfg.Workload.FineGrainedAlloc,
	})
	if err != nil {
		return Result{}, fmt.Errorf("sim: generating mapping: %w", err)
	}

	if cfg.DetailedWalk {
		cfg.HW.Walk = mmu.NewWalkModel()
	}
	pol := cfg.Scheme.Policy()
	pol.Cost = cfg.CostModel
	proc := osmem.NewProcess(pol)
	if cfg.MultiRegionAnchors {
		if err := proc.InstallChunksRegions(cl, 0); err != nil {
			return Result{}, fmt.Errorf("sim: installing multi-region mapping: %w", err)
		}
	} else if err := proc.InstallChunks(cl, cfg.FixedDistance); err != nil {
		return Result{}, fmt.Errorf("sim: installing mapping: %w", err)
	}
	m := mmu.New(cfg.Scheme, cfg.HW, proc)

	base := cl[0].StartVPN
	gen := cfg.Workload.NewGenerator(base, cfg.FootprintPages, cfg.WarmupAccesses+cfg.Accesses, cfg.Seed)

	res := Result{
		Scheme:   cfg.Scheme,
		Workload: cfg.Workload.Name,
		Scenario: cfg.Scenario,
		Chunks:   len(cl),
	}

	driveFn(m, proc, gen, cfg, &res)

	res.HugePages = proc.HugePages()
	res.AnchorDistance = proc.AnchorDistance()
	res.DistanceChanges = proc.DistanceChanges()
	if am, ok := m.(interface {
		Actions() map[core.L2Action]uint64
	}); ok && res.AnchorActions == nil {
		// The shard engine fills AnchorActions itself (the original MMU
		// only replayed the first segment, so its live counters are
		// partial); only a full serial drive reads them off the MMU here.
		res.AnchorActions = am.Actions()
	}
	return res, nil
}

// batchRecords is the drive loop's batch size: large enough to amortize
// the per-batch bookkeeping to nothing, small enough that the record and
// VPN buffers (96 KiB together) stay cache-resident.
const batchRecords = 4096

// drive pushes the trace through the MMU in batches, resetting counters
// after warmup and running the periodic distance re-selection. Each batch
// is sliced into segments that stop exactly where the per-record loop
// would act — at the warmup boundary (counted in accesses) and at each
// epoch boundary (counted in instructions) — so the per-access warmup
// countdown and epoch check live here, at segment granularity, instead of
// inside the translation inner loop. Results are byte-identical to
// driveSerial: the equivalence suite holds the two paths together.
func drive(m mmu.MMU, proc *osmem.Process, src trace.Source, cfg Config, res *Result) {
	anchors := cfg.Scheme.Policy().Anchors
	dynamic := anchors && cfg.FixedDistance == 0
	trackEpochs := dynamic || cfg.Probe != nil
	bs := trace.Batched(src)

	recs := make([]trace.Record, batchRecords)
	vpns := make([]mem.VPN, batchRecords)

	var instructions, sinceEpoch uint64
	warmLeft := cfg.WarmupAccesses
	var warmStats mmu.Stats
	var warmInstr uint64
	epoch := 0

	// The batch loop is the per-access path: setup above (the two
	// batchRecords-sized buffers) is the only allocation the drive makes.
	//tlbvet:hotpath
	for {
		n := bs.ReadBatch(recs)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			vpns[i] = recs[i].VPN
		}
		for start := 0; start < n; {
			// The segment ends at the batch end, the warmup boundary, or
			// the first record that crosses the epoch threshold —
			// whichever comes first. The serial loop checks warmup before
			// the epoch on each record, and both after translating it;
			// applying the warmup snapshot first below preserves that
			// order when one record is both boundaries.
			end := n
			if warmLeft > 0 && uint64(end-start) > warmLeft {
				end = start + int(warmLeft)
			}
			var segInstrs uint64
			epochCrossed := false
			if trackEpochs {
				// sinceEpoch < EpochInstructions holds here (it resets on
				// every crossing), so the budget is at least one.
				budget := cfg.EpochInstructions - sinceEpoch
				for i := start; i < end; i++ {
					segInstrs += uint64(recs[i].Instrs)
					if segInstrs >= budget {
						end = i + 1
						epochCrossed = true
						break
					}
				}
			} else {
				for i := start; i < end; i++ {
					segInstrs += uint64(recs[i].Instrs)
				}
			}

			m.TranslateBatch(vpns[start:end])
			instructions += segInstrs

			if warmLeft > 0 {
				warmLeft -= uint64(end - start)
				if warmLeft == 0 {
					warmStats = m.Stats()
					warmInstr = instructions
				}
			}
			if epochCrossed {
				sinceEpoch = 0
				if dynamic {
					proc.Reselect(cfg.SweepCost)
				}
				if cfg.Probe != nil {
					epoch++
					d := uint64(0)
					if anchors {
						d = proc.AnchorDistance()
					}
					cfg.Probe(ProbeSample{
						Epoch:          epoch,
						Instructions:   instructions,
						Stats:          m.Stats(),
						AnchorDistance: d,
					})
				}
			} else {
				sinceEpoch += segInstrs
			}
			start = end
		}
	}
	res.Stats = subStats(m.Stats(), warmStats)
	res.Instructions = instructions - warmInstr
}

// driveSerial is the original record-at-a-time loop, kept as the golden
// reference: the batched drive above must produce byte-identical results.
// Only the equivalence tests call it.
func driveSerial(m mmu.MMU, proc *osmem.Process, src trace.Source, cfg Config, res *Result) {
	anchors := cfg.Scheme.Policy().Anchors
	dynamic := anchors && cfg.FixedDistance == 0
	var instructions, sinceEpoch uint64
	var warmLeft = cfg.WarmupAccesses
	var warmStats mmu.Stats
	var warmInstr uint64
	epoch := 0

	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		m.Translate(rec.VPN)
		instructions += uint64(rec.Instrs)
		sinceEpoch += uint64(rec.Instrs)

		if warmLeft > 0 {
			warmLeft--
			if warmLeft == 0 {
				warmStats = m.Stats()
				warmInstr = instructions
			}
		}
		if (dynamic || cfg.Probe != nil) && sinceEpoch >= cfg.EpochInstructions {
			sinceEpoch = 0
			if dynamic {
				proc.Reselect(cfg.SweepCost)
			}
			if cfg.Probe != nil {
				epoch++
				d := uint64(0)
				if anchors {
					d = proc.AnchorDistance()
				}
				cfg.Probe(ProbeSample{
					Epoch:          epoch,
					Instructions:   instructions,
					Stats:          m.Stats(),
					AnchorDistance: d,
				})
			}
		}
	}
	res.Stats = subStats(m.Stats(), warmStats)
	res.Instructions = instructions - warmInstr
}

func subStats(a, b mmu.Stats) mmu.Stats {
	return mmu.Stats{
		Accesses:      a.Accesses - b.Accesses,
		L1Hits:        a.L1Hits - b.L1Hits,
		L2RegularHits: a.L2RegularHits - b.L2RegularHits,
		CoalescedHits: a.CoalescedHits - b.CoalescedHits,
		Walks:         a.Walks - b.Walks,
		Faults:        a.Faults - b.Faults,
		Cycles:        a.Cycles - b.Cycles,
	}
}

// StaticIdealConfigs expands the paper's "static ideal" configuration
// into its per-distance probe configs: one run per candidate anchor
// distance with the dynamic selection disabled. Callers run the probes —
// serially here in RunStaticIdeal, or concurrently and cached through
// internal/sweep — and reduce them with BestStaticIdeal.
func StaticIdealConfigs(cfg Config) ([]Config, error) {
	if !cfg.Scheme.Policy().Anchors {
		return nil, fmt.Errorf("sim: static-ideal requires an anchor scheme, got %v", cfg.Scheme)
	}
	ds := core.Distances()
	out := make([]Config, 0, len(ds))
	for _, d := range ds {
		c := cfg
		c.FixedDistance = d
		out = append(out, c)
	}
	return out, nil
}

// BestStaticIdeal picks the static-ideal winner from per-distance
// results in StaticIdealConfigs order: fewest misses, earliest distance
// on ties.
func BestStaticIdeal(all []Result) Result {
	var best Result
	for i, r := range all {
		if i == 0 || r.Stats.Misses() < best.Stats.Misses() {
			best = r
		}
	}
	return best
}

// RunStaticIdeal exhaustively evaluates every anchor distance with the
// dynamic selection disabled and returns the best run (fewest misses)
// — the paper's "static ideal" configuration — along with every
// per-distance result.
func RunStaticIdeal(cfg Config) (Result, []Result, error) {
	cfgs, err := StaticIdealConfigs(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	all := make([]Result, 0, len(cfgs))
	for _, c := range cfgs {
		r, err := Run(c)
		if err != nil {
			return Result{}, nil, err
		}
		all = append(all, r)
	}
	return BestStaticIdeal(all), all, nil
}
