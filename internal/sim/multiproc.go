package sim

import (
	"fmt"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/trace"
)

// This file simulates time-shared cores: several processes round-robin on
// one core, and — as the paper notes for native x86 Linux (Section 3.3:
// "the native Linux kernel for x86 flushes the TLB on context switches")
// — every context switch flushes the TLBs and reloads the per-process
// anchor distance register alongside CR3. Context switching is what makes
// the whole-TLB flush of an anchor distance change "relatively minor".

// MultiProcessConfig parameterizes a time-shared simulation.
type MultiProcessConfig struct {
	// Processes are the co-scheduled simulations. Each runs its own
	// mapping and workload; Accesses applies per process.
	Processes []Config
	// QuantumInstructions is the scheduling quantum (instructions
	// between context switches).
	QuantumInstructions uint64
	// ASID models address-space-identifier-tagged TLBs (x86 PCID): the
	// kernel skips the TLB flush on context switches because entries are
	// tagged with their address space. The paper's baseline is the
	// untagged native-Linux behaviour (flush every switch).
	ASID bool
}

// MultiProcessResult reports a time-shared simulation.
type MultiProcessResult struct {
	// PerProcess holds each process's result, in configuration order.
	PerProcess []Result
	// ContextSwitches counts scheduler dispatches after the first of
	// each process; every one flushed the TLBs.
	ContextSwitches uint64
	// TotalMisses sums L2 TLB misses across processes.
	TotalMisses uint64
}

// procState is one time-shared process's live state.
type procState struct {
	proc         *osmem.Process
	mmu          mmu.MMU
	gen          trace.Source
	instructions uint64
	done         bool
	res          Result
}

// RunMultiProcess time-shares the configured processes on one core.
func RunMultiProcess(cfg MultiProcessConfig) (MultiProcessResult, error) {
	if len(cfg.Processes) == 0 {
		return MultiProcessResult{}, fmt.Errorf("sim: no processes")
	}
	if cfg.QuantumInstructions == 0 {
		return MultiProcessResult{}, fmt.Errorf("sim: zero scheduling quantum")
	}

	states := make([]*procState, 0, len(cfg.Processes))
	for i, pc := range cfg.Processes {
		pc = pc.withDefaults()
		cl, err := mapping.Generate(pc.Scenario, mapping.Config{
			FootprintPages: pc.FootprintPages,
			Seed:           pc.Seed + int64(i), // distinct mappings per process
			Pressure:       pc.Pressure,
			FineGrained:    pc.Workload.FineGrainedAlloc,
		})
		if err != nil {
			return MultiProcessResult{}, fmt.Errorf("sim: process %d mapping: %w", i, err)
		}
		pol := pc.Scheme.Policy()
		pol.Cost = pc.CostModel
		proc := osmem.NewProcess(pol)
		if err := proc.InstallChunks(cl, pc.FixedDistance); err != nil {
			return MultiProcessResult{}, fmt.Errorf("sim: process %d install: %w", i, err)
		}
		states = append(states, &procState{
			proc: proc,
			mmu:  mmu.New(pc.Scheme, pc.HW, proc),
			gen:  pc.Workload.NewGenerator(cl[0].StartVPN, pc.FootprintPages, pc.Accesses, pc.Seed+int64(i)),
			res: Result{
				Scheme:   pc.Scheme,
				Workload: pc.Workload.Name,
				Scenario: pc.Scenario,
				Chunks:   len(cl),
			},
		})
	}

	var out MultiProcessResult
	live := len(states)
	var dispatches uint64
	for cur := 0; live > 0; cur = (cur + 1) % len(states) {
		st := states[cur]
		if st.done {
			continue
		}
		// On dispatch the incoming process starts with cold TLBs unless
		// the TLBs are ASID-tagged: the kernel flushed on the switch and
		// restored CR3 plus the anchor distance register.
		if !cfg.ASID {
			st.mmu.Flush()
		}
		dispatches++

		var ranInQuantum uint64
		for ranInQuantum < cfg.QuantumInstructions {
			rec, ok := st.gen.Next()
			if !ok {
				st.done = true
				live--
				break
			}
			st.mmu.Translate(rec.VPN)
			st.instructions += uint64(rec.Instrs)
			ranInQuantum += uint64(rec.Instrs)
		}
	}

	for _, st := range states {
		st.res.Stats = st.mmu.Stats()
		st.res.Instructions = st.instructions
		st.res.AnchorDistance = st.proc.AnchorDistance()
		out.PerProcess = append(out.PerProcess, st.res)
		out.TotalMisses += st.res.Stats.Misses()
	}
	// The first dispatch of each process is creation, not a switch.
	out.ContextSwitches = dispatches - uint64(len(states))
	return out, nil
}
