package sim

import (
	"bytes"
	"sort"
	"sync"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/trace"
)

// Shard-parallel drive: the trace is split into K epoch-aligned segments
// and replayed by K simulators in parallel, with results byte-identical
// to the serial drive. Byte-identity needs every segment to start from
// the exact simulator state the serial run would have reached at its cut,
// which is unknowable before the predecessor finishes — so the engine
// runs a fixpoint: round 1 starts every segment from a clone of the
// installed (post-warmboot) state, and each later round re-runs exactly
// the segments whose entering state changed, seeded with their
// predecessor's latest end state. Iteration stops when every segment's
// entering state matches its predecessor's end state, which by induction
// from segment 0 (whose entering state is exact by construction) makes
// every segment's replay exact.
//
// Two properties make the fixpoint converge in ~2 rounds instead of K:
//
//   - Canonical state comparison. States are compared through
//     AppendCanonical serializations that erase the LRU clock and (for
//     set-associative TLBs) way placement, so two simulators that have
//     self-synchronized — same contents, same recency — compare equal
//     even though their raw representations never will.
//   - Early merge. Each run records the canonical state at fixed interval
//     boundaries inside its segment. A re-run compares its state against
//     the previous run's recording at each boundary and, on a match,
//     splices the previous run's remaining per-interval outputs instead
//     of re-simulating them — so a re-run costs roughly the TLB
//     self-synchronization distance, not the whole segment.
//
// All accounting (stats, anchor actions, OS counters, probe samples) is
// recorded as per-interval deltas and recombined by an ordered merge, so
// the final Result and the probe sample stream are bit-for-bit those of
// the serial drive, delivered in epoch order regardless of shard
// completion order.

// maxShards caps the segment count; beyond this, per-segment state
// overhead dominates any conceivable parallel win.
const maxShards = 64

// shardSample is one probe observation, recorded as deltas against its
// interval's entry state so spliced intervals replay it unchanged.
type shardSample struct {
	bound int       // global record index of the epoch boundary
	ord   int       // global boundary ordinal (1-based) — the sample's Epoch
	stats mmu.Stats // delta from interval start
	dist  uint64    // anchor distance when the sample fired
}

// shardInterval is the unit of recorded work: all simulator outputs over
// one slice of the trace, as deltas, plus the canonical end state.
type shardInterval struct {
	end             int // global record index (exclusive)
	stats           mmu.Stats
	actions         [5]uint64
	distanceChanges uint64
	fullFlushes     uint64
	entryShootdowns uint64
	samples         []shardSample
	state           []byte // canonical simulator state at interval end
}

// simState is one live simulator: an MMU bound to its private process.
type simState struct {
	m    mmu.MMU
	proc *osmem.Process
}

func (s simState) canonical() []byte {
	dst := s.proc.AppendCanonical(make([]byte, 0, 4096))
	return s.m.(mmu.ShardState).AppendCanonical(dst)
}

func (s simState) clone() simState {
	proc := s.proc.Clone()
	return simState{m: s.m.(mmu.ShardState).CloneFor(proc), proc: proc}
}

// shardSeg is one trace segment and its latest accepted replay.
type shardSeg struct {
	lo, hi    int
	grid      []int // interval end positions, ascending; last == hi
	entering  []byte
	intervals []shardInterval
	end       simState // live objects canonically equal to lastState()
}

func (s *shardSeg) lastState() []byte { return s.intervals[len(s.intervals)-1].state }

// shardEngine carries the immutable per-run inputs shared by all segment
// replays.
type shardEngine struct {
	cfg     Config
	recs    []trace.Record
	bounds  []int // epoch boundary positions (record index after the crossing record)
	dynamic bool
	anchors bool
	probe   bool
}

// driveSharded is the shard-parallel counterpart of drive; run selects it
// when cfg.Shards > 1 and the scheme supports state cloning. It matches
// driveFunc so the equivalence suite can hold it against driveSerial.
func driveSharded(m mmu.MMU, proc *osmem.Process, src trace.Source, cfg Config, res *Result) {
	records := trace.DrainSource(src)
	shards := cfg.Shards
	if shards > maxShards {
		shards = maxShards
	}
	if !mmu.Shardable(m, cfg.HW) || shards <= 1 || len(records) < 2*shards {
		drive(m, proc, trace.NewSliceSource(records), cfg, res)
		return
	}

	anchors := cfg.Scheme.Policy().Anchors
	eng := &shardEngine{
		cfg:     cfg,
		recs:    records,
		dynamic: anchors && cfg.FixedDistance == 0,
		anchors: anchors,
		probe:   cfg.Probe != nil,
	}
	if eng.dynamic || eng.probe {
		var since uint64
		for i := range records {
			since += uint64(records[i].Instrs)
			if since >= cfg.EpochInstructions {
				eng.bounds = append(eng.bounds, i+1)
				since = 0
			}
		}
	}

	segs := eng.partition(shards)
	orig := simState{m: m, proc: proc}

	// Capture the original process counters before any replay touches
	// them: the merge recombines per-interval deltas on top of these.
	baseDistCh := proc.DistanceChanges()
	baseFlush := proc.FullFlushes()
	baseShoot := proc.EntryShootdowns()

	initCanon := orig.canonical()

	// Round 1: clone the installed state for every segment but the first
	// (which replays the exact prefix on the original simulator), then run
	// all segments in parallel.
	states := make([]simState, len(segs))
	states[0] = orig
	for k := 1; k < len(segs); k++ {
		states[k] = orig.clone()
		segs[k].entering = initCanon
	}
	segs[0].entering = initCanon
	eng.runRound(segs, states, nil)

	// Fixpoint: re-run segments whose entering state no longer matches
	// their predecessor's end state. Segment 0 is exact from round 1 and
	// never re-runs; each later segment becomes exact once its entering
	// state equals its (exact) predecessor's end state, so the loop
	// terminates after at most len(segs) rounds.
	for {
		var stale []int
		for k := 1; k < len(segs); k++ {
			if !bytes.Equal(segs[k-1].lastState(), segs[k].entering) {
				stale = append(stale, k)
			}
		}
		if len(stale) == 0 {
			break
		}
		states = make([]simState, len(segs))
		for _, k := range stale {
			// Clones are taken serially before the round launches: end
			// states are never mutated after their run, so cloning from a
			// predecessor that is itself about to re-run reads only its
			// previous-round objects.
			states[k] = segs[k-1].end.clone()
			segs[k].entering = segs[k-1].lastState()
		}
		eng.runRound(segs, states, stale)
	}

	eng.merge(segs, res, baseDistCh, baseFlush, baseShoot)
}

// partition cuts the trace into shard segments: the mandatory warmup cut
// (the serial drive snapshots warm stats exactly there) plus near-even
// cuts snapped to epoch boundaries when one is close.
func (e *shardEngine) partition(shards int) []*shardSeg {
	n := len(e.recs)
	cutSet := map[int]struct{}{}
	if w := e.cfg.WarmupAccesses; w > 0 && w <= uint64(n) {
		if int(w) > 0 && int(w) < n {
			cutSet[int(w)] = struct{}{}
		}
	}
	span := n / shards
	for k := 1; k < shards; k++ {
		cut := k * span
		// Snap to the nearest epoch boundary when one is within half a
		// segment, keeping segments epoch-aligned wherever the trace
		// allows it.
		if len(e.bounds) > 0 {
			i := sort.SearchInts(e.bounds, cut)
			best := -1
			if i < len(e.bounds) {
				best = e.bounds[i]
			}
			if i > 0 && (best == -1 || cut-e.bounds[i-1] < best-cut) {
				best = e.bounds[i-1]
			}
			if best > 0 && best < n && abs(best-cut) <= span/2 {
				cut = best
			}
		}
		if cut > 0 && cut < n {
			cutSet[cut] = struct{}{}
		}
	}
	cuts := make([]int, 0, len(cutSet)+1)
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	cuts = append(cuts, n)

	segs := make([]*shardSeg, 0, len(cuts))
	lo := 0
	for _, hi := range cuts {
		if hi <= lo {
			continue
		}
		seg := &shardSeg{lo: lo, hi: hi}
		// Interval grid: ~8 splice points per segment, never finer than a
		// quarter batch (state capture must stay a rounding error).
		c := (hi - lo + 7) / 8
		if c < batchRecords/4 {
			c = batchRecords / 4
		}
		for p := lo + c; p < hi; p += c {
			seg.grid = append(seg.grid, p)
		}
		seg.grid = append(seg.grid, hi)
		segs = append(segs, seg)
		lo = hi
	}
	return segs
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// runRound replays the given segments in parallel (all of them when stale
// is nil). states[k] holds each replayed segment's entering simulator.
func (e *shardEngine) runRound(segs []*shardSeg, states []simState, stale []int) {
	if stale == nil {
		stale = make([]int, len(segs))
		for k := range segs {
			stale[k] = k
		}
	}
	type outcome struct {
		intervals []shardInterval
		completed bool
	}
	outs := make([]outcome, len(segs))
	var wg sync.WaitGroup
	for _, k := range stale {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ivs, completed := e.runSegment(states[k], segs[k], segs[k].intervals)
			outs[k] = outcome{intervals: ivs, completed: completed}
		}(k)
	}
	wg.Wait()
	for _, k := range stale {
		segs[k].intervals = outs[k].intervals
		if outs[k].completed {
			segs[k].end = states[k]
		}
		// On an early merge the previous end objects stay: they are
		// canonically equal to the (unchanged) segment end state.
	}
}

// runSegment replays seg's records on st, recording per-interval deltas.
// When prev holds a previous replay of the same segment and the canonical
// state at an interval boundary matches it, the remaining intervals are
// adopted from prev and the replay stops (completed=false: the caller
// keeps the previous end objects).
func (e *shardEngine) runSegment(st simState, seg *shardSeg, prev []shardInterval) ([]shardInterval, bool) {
	vpns := make([]mem.VPN, batchRecords)
	intervals := make([]shardInterval, 0, len(seg.grid))
	// First epoch boundary strictly inside the segment: a boundary
	// exactly at lo fired in the predecessor segment.
	bi := sort.SearchInts(e.bounds, seg.lo+1)

	counter := simCounters{}
	pos := seg.lo
	for gi, b := range seg.grid {
		counter.reset(st)
		var samples []shardSample
		for pos < b {
			end := b
			if bi < len(e.bounds) && e.bounds[bi] < end {
				end = e.bounds[bi]
			}
			translateRange(st.m, e.recs[pos:end], vpns)
			pos = end
			if bi < len(e.bounds) && pos == e.bounds[bi] {
				if e.dynamic {
					st.proc.Reselect(e.cfg.SweepCost)
				}
				if e.probe {
					var d uint64
					if e.anchors {
						d = st.proc.AnchorDistance()
					}
					samples = append(samples, shardSample{
						bound: pos,
						ord:   bi + 1,
						stats: subStats(st.m.Stats(), counter.stats),
						dist:  d,
					})
				}
				bi++
			}
		}
		iv := counter.delta(st)
		iv.end = b
		iv.samples = samples
		iv.state = st.canonical()
		intervals = append(intervals, iv)
		if gi < len(prev) && prev[gi].end == b && bytes.Equal(iv.state, prev[gi].state) {
			// The replay has converged onto the previous trajectory:
			// everything from here on replays identically, so adopt it.
			intervals = append(intervals, prev[gi+1:]...)
			return intervals, false
		}
	}
	return intervals, true
}

// simCounters snapshots a simulator's cumulative counters at an interval
// entry so the interval's outputs can be extracted as deltas.
type simCounters struct {
	stats           mmu.Stats
	actions         [5]uint64
	distanceChanges uint64
	fullFlushes     uint64
	entryShootdowns uint64
}

func (c *simCounters) reset(st simState) {
	c.stats = st.m.Stats()
	if ac, ok := st.m.(mmu.ActionCounter); ok {
		c.actions = ac.ActionCounts()
	}
	c.distanceChanges = st.proc.DistanceChanges()
	c.fullFlushes = st.proc.FullFlushes()
	c.entryShootdowns = st.proc.EntryShootdowns()
}

func (c *simCounters) delta(st simState) shardInterval {
	iv := shardInterval{
		stats:           subStats(st.m.Stats(), c.stats),
		distanceChanges: st.proc.DistanceChanges() - c.distanceChanges,
		fullFlushes:     st.proc.FullFlushes() - c.fullFlushes,
		entryShootdowns: st.proc.EntryShootdowns() - c.entryShootdowns,
	}
	if ac, ok := st.m.(mmu.ActionCounter); ok {
		now := ac.ActionCounts()
		for i := range now {
			iv.actions[i] = now[i] - c.actions[i]
		}
	}
	return iv
}

// translateRange pushes one record slice through the MMU in cache-sized
// batches. This is the shard engine's per-record path: the VPN copy and
// TranslateBatch call are the only work per access, with no allocation.
func translateRange(m mmu.MMU, recs []trace.Record, vpns []mem.VPN) {
	//tlbvet:hotpath
	for off := 0; off < len(recs); {
		c := len(recs) - off
		if c > batchRecords {
			c = batchRecords
		}
		for i := 0; i < c; i++ {
			vpns[i] = recs[off+i].VPN
		}
		m.TranslateBatch(vpns[:c])
		off += c
	}
}

// merge recombines per-interval deltas in trace order: cumulative stats
// prefixes reproduce the serial drive's warm snapshot and probe samples
// exactly, and the final counters are adopted back into the original
// process so run() reads the same end state the serial drive leaves.
func (e *shardEngine) merge(segs []*shardSeg, res *Result, baseDistCh, baseFlush, baseShoot uint64) {
	n := len(e.recs)
	prefixInstr := make([]uint64, n+1)
	for i := range e.recs {
		prefixInstr[i+1] = prefixInstr[i] + uint64(e.recs[i].Instrs)
	}

	warmCut := -1
	if w := e.cfg.WarmupAccesses; w > 0 && w <= uint64(n) {
		warmCut = int(w)
	}

	var prefix, warm mmu.Stats
	var warmInstr uint64
	var actions [5]uint64
	var dch, ffl, esh uint64
	hasActions := false
	orig := segs[0].end
	if _, ok := orig.m.(mmu.ActionCounter); ok {
		hasActions = true
	}
	for _, seg := range segs {
		for _, iv := range seg.intervals {
			if e.probe {
				for _, s := range iv.samples {
					e.cfg.Probe(ProbeSample{
						Epoch:          s.ord,
						Instructions:   prefixInstr[s.bound],
						Stats:          addStats(prefix, s.stats),
						AnchorDistance: s.dist,
					})
				}
			}
			prefix = addStats(prefix, iv.stats)
			for i := range actions {
				actions[i] += iv.actions[i]
			}
			dch += iv.distanceChanges
			ffl += iv.fullFlushes
			esh += iv.entryShootdowns
			if iv.end == warmCut {
				warm = prefix
				warmInstr = prefixInstr[warmCut]
			}
		}
	}

	res.Stats = subStats(prefix, warm)
	res.Instructions = prefixInstr[n] - warmInstr
	if hasActions {
		out := make(map[core.L2Action]uint64, len(actions))
		for a, v := range actions {
			out[core.L2Action(a)] = v
		}
		res.AnchorActions = out
	}

	// The original process object must read as if it ran the whole trace:
	// final distance from the exact final simulator, counters from the
	// ordered delta sum.
	final := segs[len(segs)-1].end
	origProc := segs[0].end.proc
	origProc.AdoptReplayState(final.proc.AnchorDistance(), baseDistCh+dch, baseFlush+ffl, baseShoot+esh)
}

// addStats is the merge's inverse of subStats.
func addStats(a, b mmu.Stats) mmu.Stats {
	a.Accesses += b.Accesses
	a.L1Hits += b.L1Hits
	a.L2RegularHits += b.L2RegularHits
	a.CoalescedHits += b.CoalescedHits
	a.Walks += b.Walks
	a.Faults += b.Faults
	a.Cycles += b.Cycles
	return a
}
