package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

// equivCfg builds a small config whose boundaries deliberately avoid
// batch alignment: warmup ends mid-batch (499 accesses) and the epoch
// period is short enough that dynamic re-selection fires many times per
// run, so any drift between the batched drive's segment slicing and the
// serial per-record checks shows up.
func equivCfg(t testing.TB, scheme mmu.Scheme, scenario mapping.Scenario, wl string) Config {
	spec, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Scheme:            scheme,
		Workload:          spec,
		Scenario:          scenario,
		FootprintPages:    1 << 12,
		Accesses:          4_999,
		Seed:              42,
		EpochInstructions: 1_500,
	}
}

// TestBatchedSerialEquivalence is the cross-product golden test: every
// scheme over every scenario must produce a byte-identical Result —
// Stats, AnchorActions, final anchor distance, everything — through the
// batched TranslateBatch pipeline and the record-at-a-time reference.
func TestBatchedSerialEquivalence(t *testing.T) {
	for _, scheme := range mmu.All() {
		for _, scenario := range mapping.All() {
			t.Run(fmt.Sprintf("%s/%s", scheme, scenario), func(t *testing.T) {
				cfg := equivCfg(t, scheme, scenario, "mcf")
				serial, err := run(cfg, driveSerial)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, batched) {
					t.Errorf("batched result diverged from serial:\nserial:  %+v\nbatched: %+v", serial, batched)
				}
			})
		}
	}
}

// TestBatchedSerialEquivalenceMultiRegion covers the per-region anchor
// distance extension, where DistanceAt varies across the footprint.
func TestBatchedSerialEquivalenceMultiRegion(t *testing.T) {
	for _, scenario := range mapping.All() {
		t.Run(scenario.String(), func(t *testing.T) {
			cfg := equivCfg(t, mmu.Anchor, scenario, "mcf")
			cfg.MultiRegionAnchors = true
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, batched) {
				t.Errorf("batched result diverged from serial:\nserial:  %+v\nbatched: %+v", serial, batched)
			}
		})
	}
}

// TestBatchedSerialEquivalenceReplay proves the replay path (which feeds
// a trace.Reader's native ReadBatch into the drive) matches the serial
// replay record for record.
func TestBatchedSerialEquivalenceReplay(t *testing.T) {
	spec, err := workload.ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	gen := spec.NewGenerator(0x4000, 1<<12, 6_000, 7)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	for _, scheme := range []mmu.Scheme{mmu.Base, mmu.Anchor, mmu.CoLT} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := equivCfg(t, scheme, mapping.Medium, "gups")
			cfg.Accesses = 5_000 // replay bounds: warmup 500 + 5000 measured

			serialR, err := trace.NewReader(bytes.NewReader(encoded))
			if err != nil {
				t.Fatal(err)
			}
			serial, err := runTrace(cfg, serialR, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			batchedR, err := trace.NewReader(bytes.NewReader(encoded))
			if err != nil {
				t.Fatal(err)
			}
			batched, err := RunTrace(cfg, batchedR)
			if err != nil {
				t.Fatal(err)
			}
			if serialR.Err() != nil || batchedR.Err() != nil {
				t.Fatalf("reader errors: serial %v, batched %v", serialR.Err(), batchedR.Err())
			}
			if !reflect.DeepEqual(serial, batched) {
				t.Errorf("replay diverged:\nserial:  %+v\nbatched: %+v", serial, batched)
			}
		})
	}
}

// TestProbeEquivalence pins the Probe hook to the same firing points on
// both drive paths: same epochs, same instruction counts, same stats
// snapshots, same anchor distances — and identical final results whether
// or not a probe is attached (observation must be free).
func TestProbeEquivalence(t *testing.T) {
	for _, scheme := range []mmu.Scheme{mmu.Anchor, mmu.Base} {
		t.Run(scheme.String(), func(t *testing.T) {
			base := equivCfg(t, scheme, mapping.Low, "mcf")

			plain, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}

			var serialSamples, batchedSamples []ProbeSample
			cfg := base
			cfg.Probe = func(s ProbeSample) { serialSamples = append(serialSamples, s) }
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Probe = func(s ProbeSample) { batchedSamples = append(batchedSamples, s) }
			batched, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(serialSamples) == 0 {
				t.Fatal("probe never fired; epoch period too long for the test trace")
			}
			if !reflect.DeepEqual(serialSamples, batchedSamples) {
				t.Errorf("probe samples diverged:\nserial:  %+v\nbatched: %+v", serialSamples, batchedSamples)
			}
			if !reflect.DeepEqual(serial, batched) {
				t.Errorf("results with probe diverged:\nserial:  %+v\nbatched: %+v", serial, batched)
			}
			if !reflect.DeepEqual(plain, batched) {
				t.Errorf("attaching a probe changed the result:\nplain:  %+v\nprobed: %+v", plain, batched)
			}
		})
	}
}

// TestShardSerialEquivalence is the shard-parallel golden test: for every
// shard count, scheme, and scenario, the shard engine's fixpoint replay
// must reproduce the serial reference byte for byte — Stats,
// AnchorActions, final anchor distance, OS counters, everything. Run
// under -race in CI: the shards genuinely execute in parallel.
func TestShardSerialEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, scheme := range mmu.All() {
			for _, scenario := range mapping.All() {
				t.Run(fmt.Sprintf("k%d/%s/%s", shards, scheme, scenario), func(t *testing.T) {
					cfg := equivCfg(t, scheme, scenario, "mcf")
					serial, err := run(cfg, driveSerial)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Shards = shards
					sharded, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(serial, sharded) {
						t.Errorf("sharded result diverged from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
					}
				})
			}
		}
	}
}

// TestShardSerialEquivalenceMultiRegion holds the shard engine against
// the per-region anchor distance extension, where re-selection sweeps
// different distances across the footprint.
func TestShardSerialEquivalenceMultiRegion(t *testing.T) {
	for _, scenario := range mapping.All() {
		t.Run(scenario.String(), func(t *testing.T) {
			cfg := equivCfg(t, mmu.Anchor, scenario, "mcf")
			cfg.MultiRegionAnchors = true
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("sharded result diverged from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
			}
		})
	}
}

// TestShardFixedDistance covers the static-anchor configuration: no
// dynamic re-selection, so no epoch boundaries unless a probe asks for
// them — segment cuts fall on raw record positions.
func TestShardFixedDistance(t *testing.T) {
	cfg := equivCfg(t, mmu.Anchor, mapping.Medium, "mcf")
	cfg.FixedDistance = 8
	serial, err := run(cfg, driveSerial)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("fixed-distance sharded diverged:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
}

// TestShardProbeEquivalence pins probe delivery: shard completion order
// is nondeterministic, but samples must arrive in epoch order with the
// exact cumulative stats, instruction counts, and distances the serial
// drive reports — and attaching a probe must not change the result.
func TestShardProbeEquivalence(t *testing.T) {
	for _, scheme := range []mmu.Scheme{mmu.Anchor, mmu.Base} {
		t.Run(scheme.String(), func(t *testing.T) {
			base := equivCfg(t, scheme, mapping.Low, "mcf")
			base.Shards = 4

			plain, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}

			var serialSamples, shardedSamples []ProbeSample
			cfg := base
			cfg.Shards = 0
			cfg.Probe = func(s ProbeSample) { serialSamples = append(serialSamples, s) }
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			cfg.Probe = func(s ProbeSample) { shardedSamples = append(shardedSamples, s) }
			sharded, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(serialSamples) == 0 {
				t.Fatal("probe never fired; epoch period too long for the test trace")
			}
			if !reflect.DeepEqual(serialSamples, shardedSamples) {
				t.Errorf("probe samples diverged:\nserial:  %+v\nsharded: %+v", serialSamples, shardedSamples)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("results with probe diverged:\nserial:  %+v\nsharded: %+v", serial, sharded)
			}
			if !reflect.DeepEqual(plain, sharded) {
				t.Errorf("attaching a probe changed the sharded result:\nplain:  %+v\nprobed: %+v", plain, sharded)
			}
		})
	}
}

// TestShardWarmupEdges exercises the mandatory warmup cut: mid-segment
// positions, warmup consuming the whole trace, and warmup exceeding it
// (the serial drive then never snapshots).
func TestShardWarmupEdges(t *testing.T) {
	total := uint64(3 * batchRecords)
	for _, warm := range []uint64{1, batchRecords, batchRecords + 1, 2*batchRecords + 17, total, total + 100} {
		t.Run(fmt.Sprintf("warm=%d", warm), func(t *testing.T) {
			cfg := equivCfg(t, mmu.Anchor, mapping.Medium, "gups")
			cfg.Accesses = total
			cfg.WarmupAccesses = warm
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("warmup=%d sharded diverged:\nserial:  %+v\nsharded: %+v", warm, serial, sharded)
			}
		})
	}
}

// TestShardReplayBinTrace drives the shard engine from the binary trace
// layer end to end: records encoded with BinWriter, reopened as a
// zero-copy Bin view, replayed sharded, and held against the serial
// replay of the same stream.
func TestShardReplayBinTrace(t *testing.T) {
	spec, err := workload.ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	gen := spec.NewGenerator(0x4000, 1<<12, 6_000, 7)
	var buf bytes.Buffer
	w, err := trace.NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	for _, scheme := range []mmu.Scheme{mmu.Base, mmu.Anchor, mmu.CoLT} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := equivCfg(t, scheme, mapping.Medium, "gups")
			cfg.Accesses = 5_000

			serialB, err := trace.NewBin(encoded)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := runTrace(cfg, serialB, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			shardedB, err := trace.NewBin(encoded)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunTrace(cfg, shardedB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("bin replay diverged:\nserial:  %+v\nsharded: %+v", serial, sharded)
			}
		})
	}
}

// TestShardFallbacks pins the configurations the shard engine must
// decline: a detailed walk model (shared mutable walk state) and shard
// counts the trace cannot fill. Both must silently produce the serial
// drive's exact result.
func TestShardFallbacks(t *testing.T) {
	t.Run("detailed-walk", func(t *testing.T) {
		cfg := equivCfg(t, mmu.Anchor, mapping.Medium, "mcf")
		cfg.DetailedWalk = true
		serial, err := run(cfg, driveSerial)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("detailed-walk fallback diverged:\nserial:  %+v\nsharded: %+v", serial, sharded)
		}
	})
	t.Run("tiny-trace", func(t *testing.T) {
		cfg := equivCfg(t, mmu.Cluster, mapping.Low, "mcf")
		cfg.Accesses = 40
		cfg.WarmupAccesses = 7
		serial, err := run(cfg, driveSerial)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 64
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("tiny-trace fallback diverged:\nserial:  %+v\nsharded: %+v", serial, sharded)
		}
	})
}

// TestWarmupOnBatchBoundary exercises the corner where the warmup
// boundary lands exactly on a batch edge and where warmup exceeds one
// batch, both of which take different paths through the segment slicer.
func TestWarmupOnBatchBoundary(t *testing.T) {
	for _, warm := range []uint64{batchRecords, batchRecords + 1, 2*batchRecords + 17, 1} {
		t.Run(fmt.Sprintf("warm=%d", warm), func(t *testing.T) {
			cfg := equivCfg(t, mmu.Anchor, mapping.Medium, "gups")
			cfg.Accesses = 3 * batchRecords
			cfg.WarmupAccesses = warm
			serial, err := run(cfg, driveSerial)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, batched) {
				t.Errorf("warmup=%d diverged:\nserial:  %+v\nbatched: %+v", warm, serial, batched)
			}
		})
	}
}
