package sim

import (
	"fmt"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/trace"
)

// RunTrace replays a recorded access trace (see internal/trace and
// cmd/tracegen) through the configured scheme and mapping instead of
// generating accesses — the record/replay mode the paper's Pin-based
// methodology uses. The config's Workload supplies only the footprint
// default; Accesses and WarmupAccesses bound and split the replay
// (Accesses 0 replays everything after warmup).
func RunTrace(cfg Config, src trace.Source) (Result, error) {
	return runTrace(cfg, src, driveFor(cfg))
}

func runTrace(cfg Config, src trace.Source, driveFn driveFunc) (Result, error) {
	cfg = cfg.withDefaults()

	cl, err := mapping.Generate(cfg.Scenario, mapping.Config{
		FootprintPages: cfg.FootprintPages,
		Seed:           cfg.Seed,
		Pressure:       cfg.Pressure,
		FineGrained:    cfg.Workload.FineGrainedAlloc,
	})
	if err != nil {
		return Result{}, fmt.Errorf("sim: generating mapping: %w", err)
	}
	if cfg.DetailedWalk {
		cfg.HW.Walk = mmu.NewWalkModel()
	}
	pol := cfg.Scheme.Policy()
	pol.Cost = cfg.CostModel
	proc := osmem.NewProcess(pol)
	if err := proc.InstallChunks(cl, cfg.FixedDistance); err != nil {
		return Result{}, fmt.Errorf("sim: installing mapping: %w", err)
	}
	m := mmu.New(cfg.Scheme, cfg.HW, proc)

	res := Result{
		Scheme:   cfg.Scheme,
		Workload: cfg.Workload.Name,
		Scenario: cfg.Scenario,
		Chunks:   len(cl),
	}
	bounded := src
	if cfg.Accesses > 0 {
		bounded = trace.Limit(src, cfg.WarmupAccesses+cfg.Accesses)
	}
	driveFn(m, proc, bounded, cfg, &res)

	res.HugePages = proc.HugePages()
	res.AnchorDistance = proc.AnchorDistance()
	res.DistanceChanges = proc.DistanceChanges()
	if am, ok := m.(interface {
		Actions() map[core.L2Action]uint64
	}); ok && res.AnchorActions == nil {
		res.AnchorActions = am.Actions()
	}
	return res, nil
}
