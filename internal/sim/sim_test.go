package sim

import (
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/trace"
	"hybridtlb/internal/workload"
)

// smallCfg keeps unit-test runs fast: a modest footprint and trace.
func smallCfg(s mmu.Scheme, wl string, sc mapping.Scenario) Config {
	spec, err := workload.ByName(wl)
	if err != nil {
		panic(err)
	}
	return Config{
		Scheme:         s,
		Workload:       spec,
		Scenario:       sc,
		FootprintPages: 1 << 14,
		Accesses:       200_000,
		Seed:           1,
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(smallCfg(mmu.Base, "gups", mapping.Medium))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accesses != 200_000 {
		t.Errorf("accesses = %d", res.Stats.Accesses)
	}
	if res.Instructions == 0 {
		t.Error("no instructions accounted")
	}
	if res.Stats.Faults != 0 {
		t.Errorf("%d faults: workload escaped its mapping", res.Stats.Faults)
	}
	if res.Stats.Misses() == 0 {
		t.Error("gups on base scheme produced zero misses; implausible")
	}
	if res.MissesPerMillionInstructions() <= 0 {
		t.Error("MPMI not positive")
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := smallCfg(mmu.Base, "gups", mapping.Medium)
	cfg.WarmupAccesses = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accesses != 200_000 {
		t.Errorf("measured accesses = %d, want 200000 after warmup", res.Stats.Accesses)
	}
}

func TestSchemeOrderingOnMediumContiguity(t *testing.T) {
	// The paper's core result at medium contiguity (Figure 8): anchor
	// must beat base, THP must be nearly useless, and anchor must be at
	// least as good as cluster.
	misses := make(map[mmu.Scheme]uint64)
	for _, s := range []mmu.Scheme{mmu.Base, mmu.THP, mmu.Cluster, mmu.Anchor} {
		res, err := Run(smallCfg(s, "gups", mapping.Medium))
		if err != nil {
			t.Fatal(err)
		}
		misses[s] = res.Stats.Misses()
	}
	if misses[mmu.Anchor] >= misses[mmu.Base] {
		t.Errorf("anchor (%d) did not beat base (%d)", misses[mmu.Anchor], misses[mmu.Base])
	}
	if misses[mmu.Anchor] > misses[mmu.Cluster] {
		t.Errorf("anchor (%d) worse than cluster (%d) at medium contiguity", misses[mmu.Anchor], misses[mmu.Cluster])
	}
	if float64(misses[mmu.THP]) < float64(misses[mmu.Base])*0.7 {
		t.Errorf("THP (%d) too effective at medium contiguity vs base (%d)", misses[mmu.THP], misses[mmu.Base])
	}
}

func TestAnchorNearEliminatesMissesAtMaxContiguity(t *testing.T) {
	base, err := Run(smallCfg(mmu.Base, "gups", mapping.Max))
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := Run(smallCfg(mmu.Anchor, "gups", mapping.Max))
	if err != nil {
		t.Fatal(err)
	}
	rmm, err := Run(smallCfg(mmu.RMM, "gups", mapping.Max))
	if err != nil {
		t.Fatal(err)
	}
	if rel := anchor.RelativeMisses(base); rel > 10 {
		t.Errorf("anchor relative misses at max contiguity = %.1f%%, want < 10%%", rel)
	}
	if rel := rmm.RelativeMisses(base); rel > 5 {
		t.Errorf("RMM relative misses at max contiguity = %.1f%%, want < 5%%", rel)
	}
	// One 2^14-page chunk: the selection picks the distance matching the
	// chunk size (one anchor covers everything); 2^16 would leave no
	// anchor-coverable unit at all.
	if anchor.AnchorDistance != 1<<14 {
		t.Errorf("anchor distance = %d, want %d (the chunk size)", anchor.AnchorDistance, 1<<14)
	}
}

func TestFixedDistancePinsAndDisablesReselect(t *testing.T) {
	cfg := smallCfg(mmu.Anchor, "gups", mapping.Max)
	cfg.FixedDistance = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnchorDistance != 8 {
		t.Errorf("distance = %d, want pinned 8", res.AnchorDistance)
	}
	if res.DistanceChanges != 0 {
		t.Errorf("pinned run changed distance %d times", res.DistanceChanges)
	}
}

func TestDynamicReselectRuns(t *testing.T) {
	cfg := smallCfg(mmu.Anchor, "gups", mapping.Medium)
	cfg.EpochInstructions = 50_000 // force many epochs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The selection must be stable: epochs re-run the algorithm but the
	// histogram has not changed, so no distance changes occur.
	if res.DistanceChanges != 0 {
		t.Errorf("stable mapping caused %d distance changes", res.DistanceChanges)
	}
}

func TestAnchorActionsReported(t *testing.T) {
	res, err := Run(smallCfg(mmu.Anchor, "gups", mapping.Medium))
	if err != nil {
		t.Fatal(err)
	}
	if res.AnchorActions == nil {
		t.Fatal("anchor actions missing")
	}
	// Actions accumulate over the whole run (warmup included), so they
	// must cover at least the measured L2 accesses.
	var total uint64
	for _, n := range res.AnchorActions {
		total += n
	}
	if total < res.Stats.L2Accesses() {
		t.Errorf("action counts (%d) below measured L2 accesses (%d)", total, res.Stats.L2Accesses())
	}
	if res.AnchorActions[core.ActionAnchorHit] == 0 {
		t.Error("no anchor hits recorded at medium contiguity")
	}
	base, err := Run(smallCfg(mmu.Base, "gups", mapping.Medium))
	if err != nil {
		t.Fatal(err)
	}
	if base.AnchorActions != nil {
		t.Error("base scheme reported anchor actions")
	}
}

func TestCPIBreakdown(t *testing.T) {
	res, err := Run(smallCfg(mmu.Anchor, "gups", mapping.Medium))
	if err != nil {
		t.Fatal(err)
	}
	cpi := res.CPI(mmu.DefaultConfig())
	if cpi.Total() <= 0 {
		t.Error("zero translation CPI")
	}
	want := float64(res.Stats.Cycles) / float64(res.Instructions)
	if got := cpi.Total(); got < want*0.99 || got > want*1.01 {
		t.Errorf("CPI breakdown total %.4f != cycles/instr %.4f", got, want)
	}
	if cpi.Coalesced == 0 {
		t.Error("anchor scheme shows no coalesced-hit cycles")
	}
}

func TestL2Breakdown(t *testing.T) {
	res, err := Run(smallCfg(mmu.Anchor, "gups", mapping.Medium))
	if err != nil {
		t.Fatal(err)
	}
	reg, coal, miss := res.L2Breakdown()
	sum := reg + coal + miss
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("L2 breakdown sums to %.4f", sum)
	}
	if coal == 0 {
		t.Error("no anchor-hit fraction")
	}
}

func TestRelativeMissesEdgeCases(t *testing.T) {
	a := Result{Stats: mmu.Stats{Walks: 50}, Instructions: 1000}
	b := Result{Stats: mmu.Stats{Walks: 100}, Instructions: 1000}
	if got := a.RelativeMisses(b); got != 50 {
		t.Errorf("relative misses = %v, want 50", got)
	}
	zero := Result{Instructions: 1000}
	if got := zero.RelativeMisses(zero); got != 100 {
		t.Errorf("0/0 relative misses = %v, want 100", got)
	}
	if got := a.RelativeMisses(zero); got != 0 {
		t.Errorf("n/0 relative misses = %v, want 0", got)
	}
}

func TestRunStaticIdeal(t *testing.T) {
	cfg := smallCfg(mmu.Anchor, "omnetpp", mapping.Low)
	cfg.Accesses = 50_000
	best, all, err := RunStaticIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(core.Distances()) {
		t.Fatalf("evaluated %d distances", len(all))
	}
	for _, r := range all {
		if r.Stats.Misses() < best.Stats.Misses() {
			t.Errorf("distance %d beats reported best", r.AnchorDistance)
		}
	}
	// Static-ideal can never lose to the dynamic pick by much; sanity:
	// its best distance should be small for the low-contiguity mapping.
	if best.AnchorDistance > 64 {
		t.Errorf("static-ideal picked distance %d for low contiguity", best.AnchorDistance)
	}
	if _, _, err := RunStaticIdeal(smallCfg(mmu.Base, "gups", mapping.Low)); err == nil {
		t.Error("static-ideal accepted a non-anchor scheme")
	}
}

func TestAllSchemesAllScenariosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke matrix skipped in -short")
	}
	for _, s := range mmu.All() {
		for _, sc := range mapping.All() {
			cfg := smallCfg(s, "xalancbmk", sc)
			cfg.Accesses = 30_000
			cfg.Pressure = 0.3
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", s, sc, err)
			}
			if res.Stats.Faults != 0 {
				t.Errorf("%v/%v: %d faults", s, sc, res.Stats.Faults)
			}
		}
	}
}

func BenchmarkSimulateAnchorMedium(b *testing.B) {
	cfg := smallCfg(mmu.Anchor, "gups", mapping.Medium)
	cfg.Accesses = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDetailedWalkChangesCosts(t *testing.T) {
	cfg := smallCfg(mmu.Base, "gups", mapping.Medium)
	flat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DetailedWalk = true
	det, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same translations, same misses; only the cycle accounting moves.
	if det.Stats.Misses() != flat.Stats.Misses() {
		t.Errorf("detailed walk changed miss count: %d vs %d", det.Stats.Misses(), flat.Stats.Misses())
	}
	if det.Stats.Cycles == flat.Stats.Cycles {
		t.Error("detailed walk produced identical cycles; model not engaged")
	}
}

func TestRunTraceReplayMatchesGenerated(t *testing.T) {
	// Recording a workload and replaying it must reproduce the generated
	// run exactly (same mapping seed, same access stream).
	cfg := smallCfg(mmu.Anchor, "canneal", mapping.Medium)
	cfg.Accesses = 50_000
	gen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Record the identical stream (warmup + measured).
	spec, _ := workload.ByName("canneal")
	recs := trace.Collect(spec.NewGenerator(
		mapping.DefaultBaseVPN, cfg.FootprintPages, cfg.WarmupAccesses+cfg.Accesses+55_000, cfg.Seed), 55_000)
	replayed, err := RunTrace(cfg, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Stats.Misses() != gen.Stats.Misses() {
		t.Errorf("replay misses %d != generated %d", replayed.Stats.Misses(), gen.Stats.Misses())
	}
	if replayed.Stats.Accesses != gen.Stats.Accesses {
		t.Errorf("replay accesses %d != generated %d", replayed.Stats.Accesses, gen.Stats.Accesses)
	}
}

func TestRunTraceUnbounded(t *testing.T) {
	cfg := smallCfg(mmu.Base, "gups", mapping.Low)
	cfg.Accesses = 0 // replay everything
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{VPN: mapping.DefaultBaseVPN + mem.VPN(i%100), Instrs: 4}
	}
	res, err := RunTrace(cfg, trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	// WarmupAccesses defaults to Accesses/10 = 0 here, so all 1000 count.
	if res.Stats.Accesses != 1000 {
		t.Errorf("accesses = %d", res.Stats.Accesses)
	}
	if res.Stats.Faults != 0 {
		t.Errorf("faults = %d", res.Stats.Faults)
	}
}
