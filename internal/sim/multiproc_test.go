package sim

import (
	"testing"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/workload"
)

func multiCfg(t *testing.T, quantum uint64, n int) MultiProcessConfig {
	t.Helper()
	spec, err := workload.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Config, n)
	for i := range procs {
		procs[i] = Config{
			Scheme:         mmu.Anchor,
			Workload:       spec,
			Scenario:       mapping.Medium,
			FootprintPages: 1 << 14,
			Accesses:       60_000,
			Seed:           3,
		}
	}
	return MultiProcessConfig{Processes: procs, QuantumInstructions: quantum}
}

func TestRunMultiProcessBasic(t *testing.T) {
	res, err := RunMultiProcess(multiCfg(t, 50_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProcess) != 2 {
		t.Fatalf("per-process results = %d", len(res.PerProcess))
	}
	for i, pr := range res.PerProcess {
		// The time-shared runner has no warmup phase: all accesses count.
		if pr.Stats.Accesses != 60_000 {
			t.Errorf("process %d accesses = %d", i, pr.Stats.Accesses)
		}
		if pr.Stats.Faults != 0 {
			t.Errorf("process %d faults = %d", i, pr.Stats.Faults)
		}
		if pr.Instructions == 0 {
			t.Errorf("process %d ran no instructions", i)
		}
	}
	if res.ContextSwitches == 0 {
		t.Error("no context switches recorded")
	}
	if res.TotalMisses != res.PerProcess[0].Stats.Misses()+res.PerProcess[1].Stats.Misses() {
		t.Error("total misses do not sum")
	}
}

// TestQuantumEffect: smaller scheduling quanta flush the TLBs more often,
// so misses must rise — the cost the paper's distance-change flush is
// compared against.
func TestQuantumEffect(t *testing.T) {
	coarse, err := RunMultiProcess(multiCfg(t, 200_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := RunMultiProcess(multiCfg(t, 5_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fine.ContextSwitches <= coarse.ContextSwitches {
		t.Errorf("switches: fine %d <= coarse %d", fine.ContextSwitches, coarse.ContextSwitches)
	}
	if fine.TotalMisses <= coarse.TotalMisses {
		t.Errorf("misses: fine quantum %d <= coarse %d; flushes had no cost", fine.TotalMisses, coarse.TotalMisses)
	}
}

// TestMultiProcessIsolation: processes get distinct mappings (per-process
// seeds) and their translations never interfere.
func TestMultiProcessIsolation(t *testing.T) {
	res, err := RunMultiProcess(multiCfg(t, 30_000, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.PerProcess {
		if pr.Stats.Faults != 0 {
			t.Errorf("process %d faulted %d times", i, pr.Stats.Faults)
		}
	}
}

func TestMultiProcessValidation(t *testing.T) {
	if _, err := RunMultiProcess(MultiProcessConfig{}); err == nil {
		t.Error("empty process list accepted")
	}
	cfg := multiCfg(t, 0, 1)
	if _, err := RunMultiProcess(cfg); err == nil {
		t.Error("zero quantum accepted")
	}
}

// TestASIDAvoidsFlushCost: with ASID-tagged TLBs the context-switch
// flushes disappear, so the same schedule misses far less — quantifying
// what the paper's flush-on-switch assumption costs.
func TestASIDAvoidsFlushCost(t *testing.T) {
	flushed, err := RunMultiProcess(multiCfg(t, 10_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := multiCfg(t, 10_000, 2)
	cfg.ASID = true
	tagged, err := RunMultiProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.TotalMisses >= flushed.TotalMisses {
		t.Errorf("ASID misses %d >= flushed %d", tagged.TotalMisses, flushed.TotalMisses)
	}
	// Correctness unaffected.
	for i, pr := range tagged.PerProcess {
		if pr.Stats.Faults != 0 {
			t.Errorf("process %d faulted under ASID", i)
		}
	}
}
