package sim

import (
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
	"hybridtlb/internal/workload"
)

// TestCapacityAwareSelectionExtension: the capacity-aware cost model (an
// extension beyond the paper) must not lose to the paper's entry-count
// heuristic where the heuristic is known to misfire — mappings whose
// hypothetical entry count exceeds TLB capacity — and must tie elsewhere.
func TestCapacityAwareSelectionExtension(t *testing.T) {
	run := func(wl string, sc mapping.Scenario, m core.CostModel) uint64 {
		spec, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Scheme:    mmu.Anchor,
			Workload:  spec,
			Scenario:  sc,
			Accesses:  150_000,
			Seed:      9,
			Pressure:  0.15,
			CostModel: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Misses()
	}
	for _, c := range []struct {
		wl string
		sc mapping.Scenario
	}{
		{"canneal", mapping.Medium},
		{"mummer", mapping.Medium},
		{"canneal", mapping.Eager},
		{"omnetpp", mapping.Low},
		{"gups", mapping.Max},
	} {
		entry := run(c.wl, c.sc, core.CostEntryCount)
		capac := run(c.wl, c.sc, core.CostCapacityAware)
		// Allow 10% noise in the tie direction; never a big regression.
		if float64(capac) > float64(entry)*1.1+100 {
			t.Errorf("%s/%v: capacity-aware %d misses vs entry-count %d", c.wl, c.sc, capac, entry)
		}
		t.Logf("%s/%-7v entry-count=%-8d capacity-aware=%d", c.wl, c.sc, entry, capac)
	}
}

// TestMultiRegionExtension: on a mixed mapping — half the address space
// fine-grained, half one huge region — per-region anchor distances
// (Section 4.2) must beat the single process-wide distance.
func TestMultiRegionExtension(t *testing.T) {
	// Build the mixed mapping by hand: fine chunks then one huge chunk.
	var cl mem.ChunkList
	vpn := mem.VPN(0x10000)
	pfn := mem.PFN(1 << 22)
	for i := 0; i < 4096; i++ { // 16K pages in 4-page chunks
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: 4})
		vpn += 4
		pfn += 4 + 512
	}
	huge := mem.Chunk{StartVPN: vpn, StartPFN: 1 << 27, Pages: 1 << 14}
	cl = append(cl, huge)

	spec, err := workload.ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	footprint := cl.TotalPages()

	runMisses := func(multi bool) uint64 {
		pol := mmu.Anchor.Policy()
		proc := osmem.NewProcess(pol)
		var ierr error
		if multi {
			ierr = proc.InstallChunksRegions(cl, 0)
		} else {
			ierr = proc.InstallChunks(cl, 0)
		}
		if ierr != nil {
			t.Fatal(ierr)
		}
		m := mmu.New(mmu.Anchor, mmu.DefaultConfig(), proc)
		gen := spec.NewGenerator(cl[0].StartVPN, footprint, 300_000, 5)
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			m.Translate(rec.VPN)
		}
		if m.Stats().Faults != 0 {
			t.Fatalf("faults: %d", m.Stats().Faults)
		}
		return m.Stats().Misses()
	}

	single := runMisses(false)
	multi := runMisses(true)
	t.Logf("mixed mapping: single-distance misses=%d, multi-region misses=%d", single, multi)
	if multi >= single {
		t.Errorf("multi-region (%d) did not beat single distance (%d) on a mixed mapping", multi, single)
	}
}

// TestMultiRegionOnProcessImage drives the Section 4.2 extension on a
// realistic multi-VMA process image: regions with distinct contiguity
// (fine-grained code vs demand-paged heap vs high-contiguity mmap arena)
// get distinct anchor distances, and translations stay exact.
func TestMultiRegionOnProcessImage(t *testing.T) {
	im, err := mapping.GenerateImage(mapping.DefaultImage(1<<15), mapping.Config{Seed: 6, Pressure: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	proc := osmem.NewProcess(mmu.Anchor.Policy())
	if err := proc.InstallChunksRegions(im.Chunks, 0); err != nil {
		t.Fatal(err)
	}
	regions := proc.Regions()
	if len(regions) < 2 {
		t.Fatalf("image partitioned into %d regions", len(regions))
	}
	// The code VMA and the mmap arena must land in regions with very
	// different distances.
	var codeVMA, mmapVMA mapping.PlacedVMA
	for _, v := range im.VMAs {
		switch v.Name {
		case "code":
			codeVMA = v
		case "mmap":
			mmapVMA = v
		}
	}
	dCode := proc.DistanceAt(codeVMA.StartVPN)
	dMmap := proc.DistanceAt(mmapVMA.StartVPN + 100)
	if dCode*8 > dMmap {
		t.Errorf("code distance %d not far below mmap distance %d", dCode, dMmap)
	}
	// Exact translations through the real MMU across every VMA.
	m := mmu.New(mmu.Anchor, mmu.DefaultConfig(), proc)
	for _, v := range im.VMAs {
		for vpn := v.StartVPN; vpn < v.EndVPN; vpn += mem.VPN(1 + (v.EndVPN-v.StartVPN)/97) {
			want, ok := proc.Translate(vpn)
			if !ok {
				t.Fatalf("%s: unmapped VPN %#x", v.Name, uint64(vpn))
			}
			res := m.Translate(vpn)
			if res.Outcome == mmu.OutFault || res.PFN != want {
				t.Fatalf("%s: translate(%#x) = %+v, want %#x", v.Name, uint64(vpn), res, uint64(want))
			}
		}
	}
}
