package sim

import (
	"testing"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
)

func churnCfg(t *testing.T, scheme mmu.Scheme, interval, pages uint64) ChurnConfig {
	t.Helper()
	return ChurnConfig{
		Config:                    smallCfg(scheme, "canneal", mapping.Medium),
		ChurnIntervalInstructions: interval,
		ChurnPages:                pages,
	}
}

func TestRunWithChurnBasic(t *testing.T) {
	cfg := churnCfg(t, mmu.Anchor, 20_000, 64)
	cfg.Accesses = 100_000
	res, stats, err := RunWithChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operations == 0 {
		t.Fatal("no churn operations fired")
	}
	if stats.PagesRemapped != stats.Operations*64 {
		t.Errorf("pages remapped = %d for %d ops", stats.PagesRemapped, stats.Operations)
	}
	if stats.EntryShootdowns == 0 {
		t.Error("churn produced no shootdowns")
	}
	// The workload only touches VAs that stay mapped throughout, so no
	// faults even though the physical side changes underneath.
	if res.Stats.Faults != 0 {
		t.Errorf("churn caused %d faults", res.Stats.Faults)
	}
}

// TestChurnCostsMisses: remapping invalidates cached translations, so a
// churned run misses more than an identical calm run.
func TestChurnCostsMisses(t *testing.T) {
	calmCfg := smallCfg(mmu.Anchor, "canneal", mapping.Medium)
	calmCfg.Accesses = 100_000
	calm, err := Run(calmCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnCfg(t, mmu.Anchor, 5_000, 256)
	cfg.Accesses = 100_000
	churned, _, err := RunWithChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if churned.Stats.Misses() <= calm.Stats.Misses() {
		t.Errorf("churned misses %d <= calm %d", churned.Stats.Misses(), calm.Stats.Misses())
	}
}

// TestChurnAllSchemes: every scheme stays correct under live remapping.
func TestChurnAllSchemes(t *testing.T) {
	for _, s := range mmu.All() {
		cfg := churnCfg(t, s, 25_000, 32)
		cfg.Accesses = 40_000
		res, _, err := RunWithChurn(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Stats.Faults != 0 {
			t.Errorf("%v: %d faults under churn", s, res.Stats.Faults)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := churnCfg(t, mmu.Base, 0, 64)
	if _, _, err := RunWithChurn(cfg); err == nil {
		t.Error("zero interval accepted")
	}
	cfg = churnCfg(t, mmu.Base, 1000, 0)
	if _, _, err := RunWithChurn(cfg); err == nil {
		t.Error("zero churn size accepted")
	}
}
