package sim

import (
	"fmt"
	"math/rand"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/osmem"
)

// This file simulates mapping churn: the process frees and reallocates
// parts of its footprint while running, as Section 3.3 ("Updating Memory
// Mapping") and Section 4 ("memory mappings can change even during the
// execution") describe. Every churn operation unmaps a region and remaps
// it to fresh frames, which forces the OS to rewrite the affected anchor
// entries and shoot stale TLB entries down — all while the workload keeps
// translating.

// ChurnConfig extends a simulation with periodic remapping.
type ChurnConfig struct {
	Config
	// ChurnIntervalInstructions is how often a churn operation fires.
	ChurnIntervalInstructions uint64
	// ChurnPages is the size of each remapped region.
	ChurnPages uint64
}

// ChurnStats reports the OS work the churn caused.
type ChurnStats struct {
	Operations      uint64
	PagesRemapped   uint64
	EntryShootdowns uint64
	FullFlushes     uint64
	DistanceChanges uint64
}

// RunWithChurn drives the workload while periodically remapping regions
// of the footprint. Remapped regions keep their virtual addresses (a
// free immediately followed by an allocation reusing them), so the
// workload never faults; only the physical side and the affected anchors
// change.
func RunWithChurn(cfg ChurnConfig) (Result, ChurnStats, error) {
	base := cfg.Config.withDefaults()
	if cfg.ChurnIntervalInstructions == 0 || cfg.ChurnPages == 0 {
		return Result{}, ChurnStats{}, fmt.Errorf("sim: churn interval and size must be positive")
	}

	cl, err := mapping.Generate(base.Scenario, mapping.Config{
		FootprintPages: base.FootprintPages,
		Seed:           base.Seed,
		Pressure:       base.Pressure,
		FineGrained:    base.Workload.FineGrainedAlloc,
	})
	if err != nil {
		return Result{}, ChurnStats{}, fmt.Errorf("sim: generating mapping: %w", err)
	}
	pol := base.Scheme.Policy()
	pol.Cost = base.CostModel
	proc := osmem.NewProcess(pol)
	if err := proc.InstallChunks(cl, base.FixedDistance); err != nil {
		return Result{}, ChurnStats{}, fmt.Errorf("sim: installing mapping: %w", err)
	}
	m := mmu.New(base.Scheme, base.HW, proc)

	startVPN := cl[0].StartVPN
	endVPN := cl[len(cl)-1].EndVPN()
	gen := base.Workload.NewGenerator(startVPN, base.FootprintPages, base.WarmupAccesses+base.Accesses, base.Seed)

	res := Result{
		Scheme:   base.Scheme,
		Workload: base.Workload.Name,
		Scenario: base.Scenario,
		Chunks:   len(cl),
	}
	r := rand.New(rand.NewSource(base.Seed ^ 0x636875726e)) // "churn"
	// Fresh frames for remaps come from a region above everything the
	// mapping generator used, within the architectural 40-bit PFN field.
	freshPFN := mem.PFN(1) << 38

	var stats ChurnStats
	var instructions, sinceChurn, sinceEpoch uint64
	warmLeft := base.WarmupAccesses
	var warmStats mmu.Stats
	var warmInstr uint64
	dynamic := pol.Anchors && base.FixedDistance == 0

	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		m.Translate(rec.VPN)
		instructions += uint64(rec.Instrs)
		sinceChurn += uint64(rec.Instrs)
		sinceEpoch += uint64(rec.Instrs)

		if warmLeft > 0 {
			warmLeft--
			if warmLeft == 0 {
				warmStats = m.Stats()
				warmInstr = instructions
			}
		}
		if sinceChurn >= cfg.ChurnIntervalInstructions {
			sinceChurn = 0
			// Free + realloc a random region at the same VA.
			span := uint64(endVPN - startVPN)
			if span > cfg.ChurnPages {
				v := startVPN + mem.VPN(uint64(r.Int63n(int64(span-cfg.ChurnPages))))
				proc.UnmapRange(v, cfg.ChurnPages)
				if err := proc.AppendChunk(mem.Chunk{StartVPN: v, StartPFN: freshPFN, Pages: cfg.ChurnPages}); err != nil {
					return Result{}, ChurnStats{}, fmt.Errorf("sim: churn remap: %w", err)
				}
				freshPFN += mem.PFN(cfg.ChurnPages + 512)
				stats.Operations++
				stats.PagesRemapped += cfg.ChurnPages
			}
		}
		if dynamic && sinceEpoch >= base.EpochInstructions {
			sinceEpoch = 0
			proc.Reselect(base.SweepCost)
		}
	}
	res.Stats = subStats(m.Stats(), warmStats)
	res.Instructions = instructions - warmInstr
	res.HugePages = proc.HugePages()
	res.AnchorDistance = proc.AnchorDistance()
	res.DistanceChanges = proc.DistanceChanges()

	stats.EntryShootdowns = proc.EntryShootdowns()
	stats.FullFlushes = proc.FullFlushes()
	stats.DistanceChanges = proc.DistanceChanges()
	return res, stats, nil
}
