package buildinfo

import (
	"runtime/debug"
	"testing"
)

func info(version string, settings ...debug.BuildSetting) *debug.BuildInfo {
	return &debug.BuildInfo{
		Main:     debug.Module{Version: version},
		Settings: settings,
	}
}

func TestFromBuildInfo(t *testing.T) {
	cases := []struct {
		name string
		bi   *debug.BuildInfo
		want string
	}{
		{"no metadata", info(""), "devel"},
		{"devel marker", info("(devel)"), "devel"},
		{
			"devel with revision",
			info("(devel)", debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"}),
			"devel+0123456789ab",
		},
		{
			"devel dirty",
			info("(devel)",
				debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				debug.BuildSetting{Key: "vcs.modified", Value: "true"}),
			"devel+0123456789ab.dirty",
		},
		{
			// Newer toolchains stamp the revision into the
			// pseudo-version; it must not be appended a second time.
			"pseudo-version already carries the revision",
			info("v0.0.0-20260808204712-0123456789ab+dirty",
				debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				debug.BuildSetting{Key: "vcs.modified", Value: "true"}),
			"v0.0.0-20260808204712-0123456789ab+dirty",
		},
		{
			"tagged release",
			info("v1.2.3", debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"}),
			"v1.2.3+0123456789ab",
		},
		{
			"label-breaking characters sanitized",
			info("v1\"2\n3"),
			"v1_2_3",
		},
	}
	for _, tc := range cases {
		if got := fromBuildInfo(tc.bi); got != tc.want {
			t.Errorf("%s: fromBuildInfo = %q, want %q", tc.name, got, tc.want)
		}
	}
}
