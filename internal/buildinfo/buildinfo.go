// Package buildinfo derives a build-identity string from the binary's
// embedded module and VCS metadata. Every fleet-facing command
// (tlbserver, tlbworker, tlbsim) exposes it behind -version, and the
// fabric coordinator compares it at worker registration so a cluster
// never mixes binaries from different builds: a worker and coordinator
// that disagree on the simulator would silently poison the shared
// content-addressed result store.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version returns the build identity: the main module version, plus the
// VCS revision (and a ".dirty" marker for modified trees) when the
// binary was built from a checkout. Two binaries built from the same
// tree with the same toolchain report the same string.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	return fromBuildInfo(bi)
}

// fromBuildInfo is split out so tests can exercise the formatting
// without controlling the process's own build metadata.
func fromBuildInfo(bi *debug.BuildInfo) string {
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	// Newer toolchains stamp the revision (and a "+dirty" suffix) into
	// the module pseudo-version itself; only append what is missing so
	// the identity never repeats the same revision twice.
	if rev != "" && !strings.Contains(v, rev) {
		v += "+" + rev
		if dirty {
			v += ".dirty"
		}
	}
	// Defensive: the string travels through flag output and Prometheus
	// labels; strip anything that could break a line-oriented consumer.
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' || r == '"' {
			return '_'
		}
		return r
	}, v)
}
