// Package core implements the paper's primary contribution in library
// form: anchor-based hybrid TLB coalescing. It contains the pure anchor
// translation math (Section 3.2), the L2 TLB operation flow of Table 2,
// and the dynamic anchor distance selection algorithm (Section 4,
// Algorithm 1). The hardware composition that uses these pieces lives in
// internal/mmu; the OS maintenance that feeds them lives in
// internal/osmem.
package core

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// MinDistance and MaxDistance bound the anchor distances the system
// supports: Algorithm 1 considers [2, 4, 8, ..., 2^16].
const (
	MinDistance uint64 = 2
	MaxDistance uint64 = 1 << 16
)

// Distances returns the list of candidate anchor distances the OS
// evaluates, [2, 4, 8, ..., 2^16], as in line 4 of Algorithm 1.
func Distances() []uint64 {
	var out []uint64
	for d := MinDistance; d <= MaxDistance; d *= 2 {
		out = append(out, d)
	}
	return out
}

// ValidDistance reports whether d is a legal anchor distance.
func ValidDistance(d uint64) bool {
	return mem.IsPow2(d) && d >= MinDistance && d <= MaxDistance
}

// AnchorVPN returns the anchor virtual page number (AVPN) responsible for
// vpn at anchor distance d: the VPN aligned down to the distance
// ("clearing out the log2(anchor distance) LSB bits of the VPN").
func AnchorVPN(vpn mem.VPN, d uint64) mem.VPN {
	if !ValidDistance(d) {
		panic(fmt.Sprintf("core: invalid anchor distance %d", d))
	}
	return vpn.AlignDown(d)
}

// Covered reports whether a VPN is covered by its anchor's contiguity:
// the anchor at AnchorVPN(vpn, d) maps vpn iff VPN - AVPN < contiguity.
func Covered(vpn, avpn mem.VPN, contiguity uint64) bool {
	return vpn >= avpn && uint64(vpn-avpn) < contiguity
}

// TranslateViaAnchor computes the physical frame for vpn through an anchor
// entry: APPN + (VPN - AVPN). The caller must have checked Covered.
func TranslateViaAnchor(vpn, avpn mem.VPN, appn mem.PFN) mem.PFN {
	return appn + mem.PFN(vpn-avpn)
}

// L2Action describes what the anchor-TLB lookup flow does for a request,
// enumerating the rows of Table 2 in the paper.
type L2Action int

// The five rows of Table 2.
const (
	// ActionRegularHit: the regular L2 entry hits; translation done.
	ActionRegularHit L2Action = iota
	// ActionAnchorHit: regular miss, anchor hit, contiguity matches;
	// translation done through the anchor entry.
	ActionAnchorHit
	// ActionFillRegular: regular miss, anchor hit, contiguity does NOT
	// match; page walk fetches the page table entry and fills a regular
	// TLB entry.
	ActionFillRegular
	// ActionWalkFillAnchor: both miss; page walk fetches the regular
	// entry (returned to the core first) and the anchor entry; the
	// contiguity matches, so only the anchor entry is filled.
	ActionWalkFillAnchor
	// ActionWalkFillRegular: both miss; the fetched anchor's contiguity
	// does not cover the VPN, so only the regular entry is filled.
	ActionWalkFillRegular
)

// String names the action.
func (a L2Action) String() string {
	switch a {
	case ActionRegularHit:
		return "regular-hit"
	case ActionAnchorHit:
		return "anchor-hit"
	case ActionFillRegular:
		return "anchor-hit-contig-miss"
	case ActionWalkFillAnchor:
		return "walk-fill-anchor"
	case ActionWalkFillRegular:
		return "walk-fill-regular"
	default:
		return fmt.Sprintf("L2Action(%d)", int(a))
	}
}

// ClassifyL2 implements the decision table (Table 2). regularHit and
// anchorHit describe the two L2 probes; contigMatch is whether the
// (present or freshly walked) anchor covers the VPN.
func ClassifyL2(regularHit, anchorHit, contigMatch bool) L2Action {
	switch {
	case regularHit:
		return ActionRegularHit
	case anchorHit && contigMatch:
		return ActionAnchorHit
	case anchorHit && !contigMatch:
		return ActionFillRegular
	case contigMatch:
		return ActionWalkFillAnchor
	default:
		return ActionWalkFillRegular
	}
}

// NeedsWalk reports whether the action involves a page table walk.
func (a L2Action) NeedsWalk() bool {
	return a == ActionFillRegular || a == ActionWalkFillAnchor || a == ActionWalkFillRegular
}
