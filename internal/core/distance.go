package core

import (
	"fmt"
	"math"

	"hybridtlb/internal/mem"
)

// This file implements the dynamic anchor distance selection algorithm of
// Section 4 (Algorithm 1). The OS maintains a contiguity histogram of the
// chunks mapped to a process; for every candidate anchor distance it
// estimates the TLB capacity cost of covering the whole footprint with
// anchor entries, 2 MiB large-page entries, and 4 KiB page entries, and
// picks the distance with the minimum cost.
//
// Per (contiguity, frequency) histogram bin and candidate distance d, the
// hypothetical entry counts follow the paper's accounting:
//
//	anchors   = floor(cont / d)        * freq
//	remainder = cont mod d
//	large_pgs = floor(remainder / 512) * freq
//	pages     = (remainder mod 512)    * freq
//
// How the three counts combine into a cost is configurable:
//
//   - CostEntryCount (the default) minimizes the plain sum
//     anchors + large_pgs + pages — "the number of TLB entries ...
//     required to provide coverage for the active pages", which is the
//     algorithm's stated aim. This choice empirically reproduces the
//     paper's Table 6: distance 4 for the low-contiguity mapping, 16-32
//     for medium, ~256 for high, and 64K for the maximum-contiguity
//     mapping of the largest footprints.
//
//   - CostCoverageWeighted applies the inverse-coverage weights written
//     in the Algorithm 1 listing (anchors/d + large_pgs/512 + pages).
//     It reproduces the low-contiguity selections but systematically
//     picks smaller distances than Table 6 reports elsewhere; it is kept
//     for comparison and ablation.

// PagesPerLargePage is the 2 MiB large-page coverage used by the cost
// model (512 base pages).
const PagesPerLargePage = 512

// CostModel selects how hypothetical entry counts combine into the
// selection cost.
type CostModel int

// The available cost models.
const (
	// CostEntryCount sums the entry counts directly (default).
	CostEntryCount CostModel = iota
	// CostCoverageWeighted weighs each entry type down by the inverse of
	// its coverage, as written in the paper's Algorithm 1 listing.
	CostCoverageWeighted
	// CostCapacityAware is this repository's extension beyond the paper:
	// it maximizes the footprint covered by the L2's worth of
	// highest-coverage entries. When the hypothetical entry count
	// exceeds TLB capacity (where the paper's heuristic can chase cheap
	// small-chunk coverage while the dominant huge chunks thrash), this
	// model keeps the entries that protect the most pages.
	CostCapacityAware
)

// L2CapacityEntries is the shared L2 size the capacity-aware model
// assumes (Table 3).
const L2CapacityEntries = 1024

// ParseCostModel resolves a cost model name ("" means the default).
func ParseCostModel(name string) (CostModel, error) {
	switch name {
	case "", "entry-count":
		return CostEntryCount, nil
	case "coverage-weighted":
		return CostCoverageWeighted, nil
	case "capacity-aware":
		return CostCapacityAware, nil
	default:
		return 0, fmt.Errorf("core: unknown cost model %q", name)
	}
}

// String names the cost model.
func (m CostModel) String() string {
	switch m {
	case CostEntryCount:
		return "entry-count"
	case CostCoverageWeighted:
		return "coverage-weighted"
	case CostCapacityAware:
		return "capacity-aware"
	default:
		return "CostModel?"
	}
}

// DistanceCost is the estimated TLB capacity cost of one candidate anchor
// distance, with the contributing hypothetical entry counts.
type DistanceCost struct {
	Distance uint64
	// AnchorEntries, LargePages and SmallPages are the hypothetical TLB
	// entry counts needed to cover the footprint.
	AnchorEntries uint64
	LargePages    uint64
	SmallPages    uint64
	// Cost is the value the algorithm minimizes.
	Cost float64
}

// EvaluateDistanceModel computes the cost of a single candidate distance
// for a contiguity histogram under the given cost model.
func EvaluateDistanceModel(hist mem.Histogram, d uint64, model CostModel) DistanceCost {
	dc := DistanceCost{Distance: d}
	for _, bin := range hist {
		anchors := bin.Contiguity / d * bin.Frequency
		remainder := bin.Contiguity % d
		largePgs := remainder / PagesPerLargePage * bin.Frequency
		pages := remainder % PagesPerLargePage * bin.Frequency
		dc.AnchorEntries += anchors
		dc.LargePages += largePgs
		dc.SmallPages += pages
	}
	switch model {
	case CostCoverageWeighted:
		dc.Cost = float64(dc.AnchorEntries)/float64(d) +
			float64(dc.LargePages)/float64(PagesPerLargePage) +
			float64(dc.SmallPages)
	case CostCapacityAware:
		// Fill the L2 with the highest-coverage entries and score by the
		// pages left UNcovered (lower cost = better, like the others).
		covered := coverageWithin(dc, d, L2CapacityEntries)
		total := dc.AnchorEntries*d + dc.LargePages*PagesPerLargePage + dc.SmallPages
		dc.Cost = float64(total - covered)
	default:
		dc.Cost = float64(dc.AnchorEntries + dc.LargePages + dc.SmallPages)
	}
	return dc
}

// coverageWithin returns how many pages the `slots` highest-coverage
// hypothetical entries protect: entries are taken greedily by per-entry
// coverage (anchor = d pages, large page = 512, base page = 1).
func coverageWithin(dc DistanceCost, d, slots uint64) uint64 {
	type kind struct{ coverage, count uint64 }
	kinds := []kind{
		{d, dc.AnchorEntries},
		{PagesPerLargePage, dc.LargePages},
		{1, dc.SmallPages},
	}
	if d < PagesPerLargePage {
		kinds[0], kinds[1] = kinds[1], kinds[0]
	}
	var covered uint64
	for _, k := range kinds {
		take := k.count
		if take > slots {
			take = slots
		}
		covered += take * k.coverage
		slots -= take
		if slots == 0 {
			break
		}
	}
	return covered
}

// EvaluateDistance computes the cost of one candidate distance under the
// default entry-count model.
func EvaluateDistance(hist mem.Histogram, d uint64) DistanceCost {
	return EvaluateDistanceModel(hist, d, CostEntryCount)
}

// SelectDistanceModel runs Algorithm 1 under the given cost model: it
// evaluates every candidate distance against the histogram and returns
// the distance with the minimum cost, together with the per-distance
// costs (ascending by distance) for inspection. Ties break toward the
// smaller distance, and an empty histogram selects the minimum distance.
func SelectDistanceModel(hist mem.Histogram, model CostModel) (uint64, []DistanceCost) {
	costs := make([]DistanceCost, 0, 16)
	best := MinDistance
	bestCost := math.Inf(1)
	for _, d := range Distances() {
		dc := EvaluateDistanceModel(hist, d, model)
		costs = append(costs, dc)
		if dc.Cost < bestCost {
			bestCost = dc.Cost
			best = d
		}
	}
	return best, costs
}

// SelectDistance runs Algorithm 1 under the default entry-count model.
func SelectDistance(hist mem.Histogram) (uint64, []DistanceCost) {
	return SelectDistanceModel(hist, CostEntryCount)
}

// SelectDistanceFromChunks is a convenience wrapper building the histogram
// from a chunk list first.
func SelectDistanceFromChunks(cl mem.ChunkList) (uint64, []DistanceCost) {
	return SelectDistance(mem.BuildHistogram(cl))
}
