package core

import (
	"testing"
	"testing/quick"

	"hybridtlb/internal/mem"
)

func TestDistances(t *testing.T) {
	ds := Distances()
	if len(ds) != 16 {
		t.Fatalf("got %d distances, want 16 (2..2^16)", len(ds))
	}
	if ds[0] != 2 || ds[len(ds)-1] != 1<<16 {
		t.Errorf("range = [%d, %d], want [2, 65536]", ds[0], ds[len(ds)-1])
	}
	for _, d := range ds {
		if !ValidDistance(d) {
			t.Errorf("distance %d reported invalid", d)
		}
	}
	for _, d := range []uint64{0, 1, 3, 6, 1 << 17} {
		if ValidDistance(d) {
			t.Errorf("distance %d reported valid", d)
		}
	}
}

func TestAnchorVPN(t *testing.T) {
	if AnchorVPN(0x1237, 16) != 0x1230 {
		t.Error("AnchorVPN wrong")
	}
	if AnchorVPN(0x1230, 16) != 0x1230 {
		t.Error("aligned VPN moved")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid distance accepted")
		}
	}()
	AnchorVPN(5, 3)
}

func TestCoveredBoundaries(t *testing.T) {
	avpn := mem.VPN(0x100)
	if !Covered(0x100, avpn, 1) {
		t.Error("anchor page itself not covered with contiguity 1")
	}
	if Covered(0x101, avpn, 1) {
		t.Error("page past contiguity covered")
	}
	if !Covered(0x10F, avpn, 16) || Covered(0x110, avpn, 16) {
		t.Error("contiguity 16 boundary wrong")
	}
	if Covered(0x0FF, avpn, 16) {
		t.Error("page before anchor covered")
	}
	if Covered(0x100, avpn, 0) {
		t.Error("zero contiguity covered something")
	}
}

func TestTranslateViaAnchor(t *testing.T) {
	got := TranslateViaAnchor(0x105, 0x100, 0x5000)
	if got != 0x5005 {
		t.Errorf("translate = %#x, want 0x5005", uint64(got))
	}
}

func TestAnchorTranslationProperty(t *testing.T) {
	// For any VPN within a contiguous run starting at an anchor, the
	// anchor translation equals the direct offset translation.
	f := func(vpnRaw, appnRaw uint64, dShift uint8, off uint16) bool {
		d := uint64(1) << (dShift%15 + 2) // 4..2^16
		avpn := mem.VPN(vpnRaw % (1 << 30)).AlignDown(d)
		appn := mem.PFN(appnRaw % (1 << 30))
		delta := uint64(off) % d
		vpn := avpn + mem.VPN(delta)
		if AnchorVPN(vpn, d) != avpn {
			return false
		}
		if !Covered(vpn, avpn, d) {
			return false
		}
		return TranslateViaAnchor(vpn, avpn, appn) == appn+mem.PFN(delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTable2 verifies the L2 TLB operation flow against every row of
// Table 2 in the paper.
func TestTable2(t *testing.T) {
	cases := []struct {
		name                             string
		regularHit, anchorHit, contigHit bool
		want                             L2Action
		needsWalk                        bool
	}{
		{"row1: regular hit", true, false, false, ActionRegularHit, false},
		{"row1b: regular hit shadows anchor state", true, true, true, ActionRegularHit, false},
		{"row2: anchor hit, contiguity match", false, true, true, ActionAnchorHit, false},
		{"row3: anchor hit, contiguity miss", false, true, false, ActionFillRegular, true},
		{"row4: both miss, walked anchor covers", false, false, true, ActionWalkFillAnchor, true},
		{"row5: both miss, walked anchor does not cover", false, false, false, ActionWalkFillRegular, true},
	}
	for _, c := range cases {
		got := ClassifyL2(c.regularHit, c.anchorHit, c.contigHit)
		if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got.NeedsWalk() != c.needsWalk {
			t.Errorf("%s: NeedsWalk = %v, want %v", c.name, got.NeedsWalk(), c.needsWalk)
		}
	}
}

func TestL2ActionString(t *testing.T) {
	for a := ActionRegularHit; a <= ActionWalkFillRegular; a++ {
		if a.String() == "" {
			t.Errorf("action %d has empty name", int(a))
		}
	}
	if L2Action(99).String() != "L2Action(99)" {
		t.Error("unknown action formatting wrong")
	}
}
