package core

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/mem"
)

// uniformHistogram builds a histogram with one chunk of every size in
// [lo, hi] stepped by step — the shape of the paper's synthetic mappings
// (Table 4), where chunk sizes are uniformly distributed over a range.
func uniformHistogram(lo, hi, step uint64) mem.Histogram {
	var h mem.Histogram
	for c := lo; c <= hi; c += step {
		h = append(h, mem.HistogramBin{Contiguity: c, Frequency: 1})
	}
	return h
}

func TestEvaluateDistanceArithmetic(t *testing.T) {
	// One chunk of 100 pages at distance 16: 6 anchors cover 96 pages,
	// remainder 4 pages are 4K entries (no 2MB possible).
	h := mem.Histogram{{Contiguity: 100, Frequency: 1}}
	dc := EvaluateDistance(h, 16)
	if dc.AnchorEntries != 6 || dc.LargePages != 0 || dc.SmallPages != 4 {
		t.Fatalf("entries = %d anchors, %d large, %d small", dc.AnchorEntries, dc.LargePages, dc.SmallPages)
	}
	if dc.Cost != 10 { // entry count: 6 anchors + 4 pages
		t.Errorf("cost = %v, want 10", dc.Cost)
	}
	weighted := EvaluateDistanceModel(h, 16, CostCoverageWeighted)
	if want := 6.0/16 + 4; weighted.Cost != want {
		t.Errorf("weighted cost = %v, want %v", weighted.Cost, want)
	}

	// One 1500-page chunk at distance 1024: 1 anchor covers 1024,
	// remainder 476 -> 0 large pages, 476 small pages.
	dc = EvaluateDistance(mem.Histogram{{Contiguity: 1500, Frequency: 1}}, 1024)
	if dc.AnchorEntries != 1 || dc.LargePages != 0 || dc.SmallPages != 476 {
		t.Fatalf("entries = %+v", dc)
	}

	// One 2000-page chunk at distance 65536: no anchor fits, so 3 large
	// pages (1536) + 464 small pages.
	dc = EvaluateDistance(mem.Histogram{{Contiguity: 2000, Frequency: 1}}, 1<<16)
	if dc.AnchorEntries != 0 || dc.LargePages != 3 || dc.SmallPages != 464 {
		t.Fatalf("entries = %+v", dc)
	}

	// Frequency multiplies everything.
	dc = EvaluateDistance(mem.Histogram{{Contiguity: 100, Frequency: 5}}, 16)
	if dc.AnchorEntries != 30 || dc.SmallPages != 20 {
		t.Fatalf("entries = %+v", dc)
	}
}

func TestSelectDistanceLowContiguity(t *testing.T) {
	// Table 6: for the low-contiguity mapping (uniform 1..16 pages) the
	// algorithm selects distance 4 for every application.
	best, costs := SelectDistance(uniformHistogram(1, 16, 1))
	if best != 4 {
		for _, c := range costs {
			t.Logf("d=%-6d cost=%.3f (a=%d l=%d p=%d)", c.Distance, c.Cost, c.AnchorEntries, c.LargePages, c.SmallPages)
		}
		t.Fatalf("selected %d, want 4", best)
	}
	if len(costs) != 16 {
		t.Errorf("got %d cost rows", len(costs))
	}
}

func TestSelectDistanceMediumContiguity(t *testing.T) {
	// Medium contiguity (uniform 1..512): the paper's Table 6 reports
	// 16-32 for most applications; the exact value depends on the
	// realized histogram, so assert the plausible band 8..32.
	best, _ := SelectDistance(uniformHistogram(1, 512, 1))
	if best < 8 || best > 32 {
		t.Fatalf("selected %d, want within [8, 32]", best)
	}
}

func TestSelectDistanceHighContiguity(t *testing.T) {
	// High contiguity (chunk sizes uniformly random in 512..65536, as in
	// Table 4): Table 6 reports selections of 32-1K.
	r := rand.New(rand.NewSource(5))
	var h mem.Histogram
	for i := 0; i < 200; i++ {
		h = append(h, mem.HistogramBin{Contiguity: uint64(512 + r.Intn(65536-512+1)), Frequency: 1})
	}
	best, _ := SelectDistance(h)
	if best < 32 || best > 1024 {
		t.Fatalf("selected %d, want within [32, 1K]", best)
	}
}

func TestSelectDistanceMaxContiguity(t *testing.T) {
	// A single huge chunk (max contiguity, 8 GiB working set): the
	// biggest distance wins (Table 6 shows 64K for gups/graph500/mcf).
	h := mem.Histogram{{Contiguity: 1 << 21, Frequency: 1}}
	best, _ := SelectDistance(h)
	if best != 1<<16 {
		t.Fatalf("selected %d, want %d", best, 1<<16)
	}
}

func TestSelectDistanceEmptyHistogram(t *testing.T) {
	best, costs := SelectDistance(nil)
	if best != MinDistance {
		t.Errorf("selected %d for empty histogram, want %d", best, MinDistance)
	}
	for _, c := range costs {
		if c.Cost != 0 {
			t.Errorf("nonzero cost %v for empty histogram", c.Cost)
		}
	}
}

func TestSelectDistanceFromChunks(t *testing.T) {
	cl := mem.ChunkList{
		{StartVPN: 0, StartPFN: 0, Pages: 1 << 16},
		{StartVPN: 1 << 20, StartPFN: 1 << 20, Pages: 1 << 16},
	}
	best, _ := SelectDistanceFromChunks(cl)
	if best != 1<<16 {
		t.Errorf("selected %d, want %d", best, 1<<16)
	}
}

// TestCostModelCoverageConservation: for any histogram and distance, the
// pages accounted by the three entry types must sum exactly to the
// histogram's total footprint.
func TestCostModelCoverageConservation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var h mem.Histogram
		for i := 0; i < 1+r.Intn(20); i++ {
			h = append(h, mem.HistogramBin{
				Contiguity: uint64(1 + r.Intn(1<<17)),
				Frequency:  uint64(1 + r.Intn(50)),
			})
		}
		total := h.TotalPages()
		for _, d := range Distances() {
			dc := EvaluateDistance(h, d)
			covered := dc.AnchorEntries*d + dc.LargePages*PagesPerLargePage + dc.SmallPages
			if covered != total {
				t.Fatalf("d=%d: covered %d pages, footprint %d", d, covered, total)
			}
		}
	}
}

// TestSelectedDistanceIsArgmin: the returned distance always has the
// minimal cost among the evaluated candidates.
func TestSelectedDistanceIsArgmin(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		var h mem.Histogram
		for i := 0; i < 1+r.Intn(10); i++ {
			h = append(h, mem.HistogramBin{
				Contiguity: uint64(1 + r.Intn(1<<16)),
				Frequency:  uint64(1 + r.Intn(10)),
			})
		}
		best, costs := SelectDistance(h)
		var bestCost float64
		for _, c := range costs {
			if c.Distance == best {
				bestCost = c.Cost
			}
		}
		for _, c := range costs {
			if c.Cost < bestCost {
				t.Fatalf("distance %d has cost %v < selected %d's %v", c.Distance, c.Cost, best, bestCost)
			}
		}
	}
}

func BenchmarkSelectDistance(b *testing.B) {
	h := uniformHistogram(1, 65536, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectDistance(h)
	}
}

func TestParseCostModel(t *testing.T) {
	cases := map[string]CostModel{
		"":                  CostEntryCount,
		"entry-count":       CostEntryCount,
		"coverage-weighted": CostCoverageWeighted,
		"capacity-aware":    CostCapacityAware,
	}
	for name, want := range cases {
		got, err := ParseCostModel(name)
		if err != nil || got != want {
			t.Errorf("ParseCostModel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseCostModel("bogus"); err == nil {
		t.Error("bogus model parsed")
	}
	for _, m := range []CostModel{CostEntryCount, CostCoverageWeighted, CostCapacityAware} {
		if m.String() == "" || m.String() == "CostModel?" {
			t.Errorf("model %d has no name", m)
		}
	}
	if CostModel(99).String() != "CostModel?" {
		t.Error("unknown model name wrong")
	}
}

func TestCapacityAwareModel(t *testing.T) {
	// A bimodal histogram: most pages live in a few huge chunks, but a
	// heavy band of mid-size chunks (96 pages) is perfectly covered by a
	// small distance, tempting entry-count minimization into d=32 — at
	// which the huge chunks alone need 16x the TLB capacity in anchors.
	h := mem.Histogram{
		{Contiguity: 65536, Frequency: 8}, // 512K pages in huge chunks
		{Contiguity: 96, Frequency: 3000}, // 288K pages in mid chunks
	}
	entry, _ := SelectDistanceModel(h, CostEntryCount)
	capac, _ := SelectDistanceModel(h, CostCapacityAware)
	if entry != 32 {
		t.Fatalf("entry-count picked %d; the trap case expects 32", entry)
	}
	if capac < 4096 {
		t.Errorf("capacity-aware picked %d, want a capacity-fitting distance >= 4096", capac)
	}
	// With the capacity-aware distance, the L2's worth of entries covers
	// the dominant huge mass (the mid mass thrashes under every d).
	dc := EvaluateDistanceModel(h, capac, CostCapacityAware)
	total := float64(h.TotalPages())
	uncovered := dc.Cost
	if uncovered/total > 0.4 {
		t.Errorf("capacity-aware leaves %.0f%% uncovered at its own pick", 100*uncovered/total)
	}
}

func TestCoverageWithin(t *testing.T) {
	dc := DistanceCost{AnchorEntries: 10, LargePages: 5, SmallPages: 100}
	// d = 1024 >= 512: anchors first.
	if got := coverageWithin(dc, 1024, 12); got != 10*1024+2*512 {
		t.Errorf("coverage(12 slots, d=1024) = %d", got)
	}
	// d = 64 < 512: large pages outrank anchors.
	if got := coverageWithin(dc, 64, 7); got != 5*512+2*64 {
		t.Errorf("coverage(7 slots, d=64) = %d", got)
	}
	// Plenty of slots: everything covered.
	if got := coverageWithin(dc, 64, 1024); got != 10*64+5*512+100 {
		t.Errorf("coverage(all) = %d", got)
	}
	// Zero slots edge: nothing covered.
	if got := coverageWithin(DistanceCost{AnchorEntries: 1}, 64, 0); got != 0 {
		t.Errorf("coverage(0 slots) = %d", got)
	}
}

// TestCapacityAwareNeverUncoversFittingFootprint: when the whole
// footprint fits in the L2 at some distance, the capacity-aware model
// must achieve zero uncovered pages.
func TestCapacityAwareNeverUncoversFittingFootprint(t *testing.T) {
	h := mem.Histogram{{Contiguity: 1 << 16, Frequency: 8}} // 512K pages in 8 chunks
	best, costs := SelectDistanceModel(h, CostCapacityAware)
	for _, c := range costs {
		if c.Distance == best && c.Cost != 0 {
			t.Errorf("best distance %d leaves %v pages uncovered", best, c.Cost)
		}
	}
}
