// Package cache provides a set-associative data-cache model used to give
// page table walks realistic, state-dependent latencies. The paper's
// methodology simulates "the cache and TLB structures" (Section 5.1) but
// reports translation costs with the flat Table 3 latencies; this package
// backs the optional detailed walk model (mmu.WalkModel), which can
// replace the flat 50-cycle walk with per-level cache hits and misses plus
// a page-walk cache — and is exercised as an ablation.
package cache

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// LineShift is the cache line granularity (64-byte lines).
const LineShift = 6

// Line is a physical cache-line address (a physical byte address shifted
// right by LineShift).
type Line uint64

// LineOf converts a physical address to its line.
func LineOf(pa mem.PhysAddr) Line { return Line(pa >> LineShift) }

// Cache is a set-associative, LRU, physically indexed cache of line
// addresses. It models presence only (no data), which is all latency
// modeling needs.
type Cache struct {
	sets, ways int
	lines      []entry
	clock      uint64

	hits, misses uint64
}

type entry struct {
	valid bool
	line  Line
	lru   uint64
}

// New creates a cache with capacityBytes capacity and the given
// associativity. capacityBytes must yield a power-of-two set count.
func New(capacityBytes uint64, ways int) *Cache {
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	lines := capacityBytes >> LineShift
	if lines == 0 || lines%uint64(ways) != 0 {
		panic(fmt.Sprintf("cache: capacity %d does not divide into %d ways of lines", capacityBytes, ways))
	}
	sets := lines / uint64(ways)
	if !mem.IsPow2(sets) {
		panic(fmt.Sprintf("cache: %d sets is not a power of two", sets))
	}
	return &Cache{sets: int(sets), ways: ways, lines: make([]entry, lines)}
}

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityBytes returns the modeled capacity.
func (c *Cache) CapacityBytes() uint64 { return uint64(c.sets*c.ways) << LineShift }

// Hits returns the number of accesses satisfied by the cache.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of accesses that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// Access touches a line: on a hit it is promoted to MRU; on a miss it is
// installed, evicting the set's LRU line. The return value reports a hit.
func (c *Cache) Access(l Line) bool {
	set := int(uint64(l) & uint64(c.sets-1))
	base := set * c.ways
	c.clock++
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].line == l {
			c.lines[i].lru = c.clock
			c.hits++
			return true
		}
		if !c.lines[i].valid {
			if c.lines[victim].valid {
				victim = i
			}
			continue
		}
		if c.lines[victim].valid && c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	c.misses++
	c.lines[victim] = entry{valid: true, line: l, lru: c.clock}
	return false
}

// Contains reports presence without touching LRU or counters.
func (c *Cache) Contains(l Line) bool {
	set := int(uint64(l) & uint64(c.sets-1))
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].line == l {
			return true
		}
	}
	return false
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = entry{}
	}
}

// Hierarchy chains cache levels: an access tries each level in order and
// fills all of them (inclusive), accumulating the level's latency until
// the first hit; a full miss costs the memory latency on top.
type Hierarchy struct {
	levels []level
	memLat uint64
}

type level struct {
	c   *Cache
	lat uint64
}

// NewHierarchy builds a hierarchy; call AddLevel outermost-first is NOT
// required — levels are probed in the order added (closest first).
func NewHierarchy(memoryLatency uint64) *Hierarchy {
	return &Hierarchy{memLat: memoryLatency}
}

// AddLevel appends a cache level with its hit latency.
func (h *Hierarchy) AddLevel(c *Cache, hitLatency uint64) *Hierarchy {
	h.levels = append(h.levels, level{c, hitLatency})
	return h
}

// Access performs one line access and returns its total latency in
// cycles.
func (h *Hierarchy) Access(l Line) uint64 {
	var cycles uint64
	for _, lv := range h.levels {
		cycles += lv.lat
		if lv.c.Access(l) {
			return cycles
		}
	}
	return cycles + h.memLat
}

// Flush empties every level.
func (h *Hierarchy) Flush() {
	for _, lv := range h.levels {
		lv.c.Flush()
	}
}
