package cache

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/mem"
)

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4) },
		func() { New(1<<15, 0) },
		func() { New(3*64, 4) },   // lines not divisible by ways... 3 lines / 4 ways
		func() { New(64*4*3, 4) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	c := New(32<<10, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.CapacityBytes() != 32<<10 {
		t.Errorf("geometry: %d sets, %d ways, %d bytes", c.Sets(), c.Ways(), c.CapacityBytes())
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := New(4<<10, 4) // 16 sets
	if c.Access(100) {
		t.Error("cold access hit")
	}
	if !c.Access(100) {
		t.Error("warm access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("counters: %d hits, %d misses", c.Hits(), c.Misses())
	}
	if !c.Contains(100) || c.Contains(101) {
		t.Error("Contains wrong")
	}
	c.Flush()
	if c.Contains(100) {
		t.Error("flush kept line")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(64*2, 2) // 1 set, 2 ways
	c.Access(0)
	c.Access(1)
	c.Access(0) // 1 becomes LRU
	c.Access(2) // evicts 1
	if !c.Contains(0) || c.Contains(1) || !c.Contains(2) {
		t.Error("LRU eviction wrong")
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(4096) != 64 {
		t.Error("LineOf wrong")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// Working set within capacity: near-perfect reuse after warmup.
	c := New(64<<10, 8) // 1024 lines
	for pass := 0; pass < 3; pass++ {
		for l := Line(0); l < 512; l++ {
			c.Access(l)
		}
	}
	missRate := float64(c.Misses()) / float64(c.Hits()+c.Misses())
	if missRate > 0.34 {
		t.Errorf("fitting working set miss rate = %.2f", missRate)
	}
	// Working set 4x capacity with streaming access: almost all misses.
	c2 := New(64<<10, 8)
	for pass := 0; pass < 3; pass++ {
		for l := Line(0); l < 4096; l++ {
			c2.Access(l)
		}
	}
	missRate2 := float64(c2.Misses()) / float64(c2.Hits()+c2.Misses())
	if missRate2 < 0.9 {
		t.Errorf("streaming over-capacity miss rate = %.2f", missRate2)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l1 := New(4<<10, 4)
	l2 := New(32<<10, 8)
	h := NewHierarchy(200).AddLevel(l1, 4).AddLevel(l2, 12)

	// Cold: L1 miss + L2 miss + memory.
	if got := h.Access(42); got != 4+12+200 {
		t.Errorf("cold latency = %d", got)
	}
	// Warm: L1 hit.
	if got := h.Access(42); got != 4 {
		t.Errorf("L1 hit latency = %d", got)
	}
	// Evict from L1 only: L2 hit. L1 has 16 sets; conflict line 42+16k.
	for i := 1; i <= 4; i++ {
		h.Access(Line(42 + 64*i))
	}
	if l1.Contains(42) {
		t.Skip("line survived L1 (different conflict geometry)")
	}
	if got := h.Access(42); got != 4+12 {
		t.Errorf("L2 hit latency = %d", got)
	}
	h.Flush()
	if got := h.Access(42); got != 216 {
		t.Errorf("post-flush latency = %d", got)
	}
}

func TestRandomizedCounters(t *testing.T) {
	c := New(8<<10, 4)
	r := rand.New(rand.NewSource(2))
	var accesses uint64
	for i := 0; i < 100000; i++ {
		c.Access(Line(r.Intn(1 << 12)))
		accesses++
	}
	if c.Hits()+c.Misses() != accesses {
		t.Errorf("counters do not sum: %d + %d != %d", c.Hits(), c.Misses(), accesses)
	}
}

func TestPhysAddrIntegration(t *testing.T) {
	// Lines derived from adjacent PTEs in one page table node share a
	// cache line (8 PTEs x 8 bytes = 64 bytes).
	base := mem.PhysAddr(0x1234000)
	if LineOf(base) != LineOf(base+56) {
		t.Error("PTEs of one cache block map to different lines")
	}
	if LineOf(base) == LineOf(base+64) {
		t.Error("adjacent cache blocks collide")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(256<<10, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Line(i & 0xFFFF))
	}
}
