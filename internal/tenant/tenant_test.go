package tenant

import (
	"strings"
	"testing"
	"time"
)

const sampleKeyfile = `{
  "tenants": [
    {"name": "light", "key": "tlb_light", "weight": 3, "rate_per_sec": 100, "burst": 50, "max_in_flight": 4},
    {"name": "heavy", "key": "tlb_heavy", "weight": 1, "rate_per_sec": 25, "max_in_flight": 1},
    {"name": "free-rider_2", "key": "tlb_free"}
  ]
}`

func TestParseKeyfile(t *testing.T) {
	reg, err := Parse(strings.NewReader(sampleKeyfile))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := reg.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if names := reg.Names(); names[0] != "free-rider_2" || names[1] != "heavy" || names[2] != "light" {
		t.Fatalf("Names not sorted: %v", names)
	}

	light, ok := reg.Authenticate("tlb_light")
	if !ok || light.Name != "light" {
		t.Fatalf("Authenticate(tlb_light) = %+v, %v", light, ok)
	}
	if light.Weight != 3 || light.RatePerSec != 100 || light.Burst != 50 || light.MaxInFlight != 4 {
		t.Fatalf("light fields not preserved: %+v", light)
	}

	// Defaults: weight 1, burst max(rate,1).
	heavy, _ := reg.Get("heavy")
	if heavy.Weight != 1 || heavy.Burst != 25 {
		t.Fatalf("heavy defaults wrong: %+v", heavy)
	}
	free, _ := reg.Get("free-rider_2")
	if free.Weight != 1 || free.Burst != 1 || free.RatePerSec != 0 {
		t.Fatalf("free-rider defaults wrong: %+v", free)
	}

	if _, ok := reg.Authenticate("bogus"); ok {
		t.Fatal("unknown key authenticated")
	}
}

func TestParseKeyfileRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         `{"tenants": []}`,
		"bad name":      `{"tenants": [{"name": "no spaces", "key": "k"}]}`,
		"label unsafe":  `{"tenants": [{"name": "a{b}", "key": "k"}]}`,
		"empty key":     `{"tenants": [{"name": "a", "key": "  "}]}`,
		"dup name":      `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`,
		"dup key":       `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`,
		"negative rate": `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": -1}]}`,
		"unknown field": `{"tenants": [{"name": "a", "key": "k", "quota": 9}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Parse accepted %s", label, doc)
		}
	}
}

func TestBucketAdmission(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewBucket(10, 2) // 10 tokens/s, burst 2

	if !b.Allow(t0) || !b.Allow(t0) {
		t.Fatal("burst of 2 should admit two immediate requests")
	}
	if b.Allow(t0) {
		t.Fatal("third immediate request should be refused")
	}
	// 100ms matures exactly one token at 10/s.
	if ra := b.RetryAfter(t0); ra != 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 100ms", ra)
	}
	if !b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("one token should have matured after 100ms")
	}
	if b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("only one token matured")
	}
	// A long idle period refills to burst, never beyond.
	t1 := t0.Add(time.Hour)
	if !b.Allow(t1) || !b.Allow(t1) {
		t.Fatal("idle bucket should refill to burst")
	}
	if b.Allow(t1) {
		t.Fatal("refill must cap at burst")
	}
}

func TestBucketUnlimitedAndClockSkew(t *testing.T) {
	var nilBucket *Bucket
	if !nilBucket.Allow(time.Unix(0, 0)) || nilBucket.RetryAfter(time.Unix(0, 0)) != 0 {
		t.Fatal("nil bucket must admit everything")
	}
	b := NewBucket(0, 0)
	for i := 0; i < 100; i++ {
		if !b.Allow(time.Unix(0, 0)) {
			t.Fatal("zero-rate bucket must admit everything")
		}
	}
	// Time moving backwards must not mint tokens.
	t0 := time.Unix(1000, 0)
	lim := NewBucket(1, 1)
	if !lim.Allow(t0) {
		t.Fatal("first request admitted")
	}
	if lim.Allow(t0.Add(-time.Hour)) {
		t.Fatal("backwards clock minted a token")
	}
}

func TestBucketBurstFloor(t *testing.T) {
	b := NewBucket(5, 0.2)
	if !b.Allow(time.Unix(0, 0)) {
		t.Fatal("burst floor of 1 should admit a lone request")
	}
}
