package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket with caller-supplied time: refill is
// computed from the `now` each call passes in, so the package never
// reads a clock and tests drive admission decisions deterministically.
// The zero rate means "unlimited" — Allow always admits.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewBucket returns a bucket filled to capacity. A rate of 0 disables
// limiting; burst < 1 is raised to 1 so a configured limiter always
// admits a lone request.
func NewBucket(rate, burst float64) *Bucket {
	if rate > 0 && burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// refillLocked advances the bucket to now.
func (b *Bucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
}

// Allow spends one token if available, reporting whether the request
// is admitted.
func (b *Bucket) Allow(now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter reports how long after now the next token matures — the
// honest backoff hint for a request the bucket just refused. Zero
// means a token is already available.
func (b *Bucket) RetryAfter(now time.Time) time.Duration {
	if b == nil || b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		return 0
	}
	missing := 1 - b.tokens
	return time.Duration(missing / b.rate * float64(time.Second))
}
