// Package tenant is the server's multi-tenancy model: a static keyfile
// of named tenants (API key, fair-share weight, rate limit, in-flight
// quota) loaded at startup, and the clock-free token bucket that
// enforces each tenant's request rate.
//
// The keyfile being static is a deliberate cardinality contract: every
// tenant name a server will ever emit as a metric label is known at
// startup, so per-tenant time series stay bounded by the reviewed file
// rather than by traffic. Authentication rejects unknown keys before
// any labeled counter is touched.
//
// The package never reads the wall clock — callers pass `now` into the
// bucket — so it sits inside tlbvet's determinism scope and its tests
// run without sleeps.
package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// nameRe bounds tenant names to label-safe identifiers: they are
// emitted verbatim as Prometheus label values and logged everywhere.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// DefaultName labels traffic on servers running without a keyfile:
// every caller is the same implicit tenant with default weight and no
// limits — exactly the pre-tenancy behavior.
const DefaultName = "default"

// Tenant is one keyfile entry.
type Tenant struct {
	// Name identifies the tenant in logs, metrics and scheduling. It
	// must match ^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$ (it becomes a metric
	// label value).
	Name string `json:"name"`
	// Key is the bearer token presented as `Authorization: Bearer
	// <key>`. Keys are opaque and must be unique across the file.
	Key string `json:"key"`
	// Weight is the tenant's fair-share weight in the job scheduler
	// (default 1). A tenant with weight 3 drains three cells of queued
	// work for every one cell of a weight-1 tenant under contention.
	Weight int `json:"weight,omitempty"`
	// RatePerSec refills the tenant's token bucket; each admitted API
	// request costs one token. Zero: no rate limit.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently admitted work —
	// queued or running sweep jobs plus in-flight synchronous
	// simulations. Zero: unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// withDefaults normalizes optional fields.
func (t Tenant) withDefaults() Tenant {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Burst <= 0 {
		t.Burst = t.RatePerSec
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// keyfile is the on-disk document shape.
type keyfile struct {
	Tenants []Tenant `json:"tenants"`
}

// Registry is an immutable, validated set of tenants indexed by API
// key. Build one with Load or Parse.
type Registry struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	names  []string // sorted, for deterministic iteration
}

// Load reads and validates a keyfile from disk.
func Load(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: open keyfile: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only file
	reg, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("tenant: keyfile %s: %w", path, err)
	}
	return reg, nil
}

// Parse validates a keyfile document: at least one tenant, names
// label-safe and unique, keys non-empty and unique, scalars sane.
func Parse(r io.Reader) (*Registry, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var kf keyfile
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	if len(kf.Tenants) == 0 {
		return nil, fmt.Errorf("keyfile declares no tenants")
	}
	reg := &Registry{
		byKey:  make(map[string]*Tenant, len(kf.Tenants)),
		byName: make(map[string]*Tenant, len(kf.Tenants)),
	}
	for i, t := range kf.Tenants {
		if !nameRe.MatchString(t.Name) {
			return nil, fmt.Errorf("tenant %d: name %q must match %s", i, t.Name, nameRe)
		}
		if strings.TrimSpace(t.Key) == "" {
			return nil, fmt.Errorf("tenant %q: key must be non-empty", t.Name)
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("tenant %q: weight %d must be >= 0", t.Name, t.Weight)
		}
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxInFlight < 0 {
			return nil, fmt.Errorf("tenant %q: rate, burst and max_in_flight must be >= 0", t.Name)
		}
		if _, dup := reg.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenant name %q declared twice", t.Name)
		}
		if _, dup := reg.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key already assigned to another tenant", t.Name)
		}
		tt := t.withDefaults()
		reg.byName[tt.Name] = &tt
		reg.byKey[tt.Key] = &tt
		reg.names = append(reg.names, tt.Name)
	}
	sort.Strings(reg.names)
	return reg, nil
}

// Authenticate resolves a bearer key to its tenant.
func (r *Registry) Authenticate(key string) (*Tenant, bool) {
	t, ok := r.byKey[key]
	return t, ok
}

// Get resolves a tenant by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Names returns every tenant name in sorted order — the bounded label
// set per-tenant metrics iterate.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Len returns the number of tenants.
func (r *Registry) Len() int { return len(r.names) }
