// Package persist provides the durable state layer for crash-safe
// sweeps: a content-addressed result store (one checksummed file per
// sweep-cell key, written atomically) and an append-only JSONL job
// journal (replayed on startup, tolerant of a torn final line).
//
// The package is deliberately clock-free — callers supply timestamps —
// so it can sit inside the determinism boundary enforced by tlbvet:
// nothing here reads the wall clock or consumes ambient randomness.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// storeVersion stamps every envelope; bumping it invalidates (and
// quarantines) all prior entries, which is exactly what a format change
// requires of a content-addressed cache.
const storeVersion = 1

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	Hits        uint64 // entries loaded and verified
	Misses      uint64 // absent entries (corrupt entries also count here)
	Corruptions uint64 // entries that failed version/key/checksum validation
	Writes      uint64 // entries persisted successfully
	WriteErrors uint64 // failed persists (callers degrade to memory-only)
	Pruned      uint64 // entries removed by Prune to enforce a size cap
}

// ResultStore is a disk-backed content-addressed store keyed by the
// sweep engine's SHA-256 job key. Entries live at
// dir/<key[:2]>/<key>.json wrapped in a checksummed envelope; a
// corrupt or version-mismatched entry is moved to dir/quarantine/ and
// reported as a miss, never an error — losing a cache entry must not
// lose a sweep.
//
// All methods are safe for concurrent use: distinct keys touch
// distinct files, and same-key writers race only on an atomic rename.
type ResultStore struct {
	dir        string
	quarantine string

	hits        atomic.Uint64
	misses      atomic.Uint64
	corruptions atomic.Uint64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	pruned      atomic.Uint64
}

// envelope is the on-disk wrapper. Sum is the hex SHA-256 of the
// compacted Payload bytes exactly as they appear in the file, so a
// flipped bit anywhere in the payload fails verification.
type envelope struct {
	Version int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*ResultStore, error) {
	q := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(q, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store %s: %w", dir, err)
	}
	return &ResultStore{dir: dir, quarantine: q}, nil
}

// validKey accepts only lowercase-hex SHA-256 keys; anything else
// (path separators, traversal) is rejected before touching the
// filesystem.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *ResultStore) entryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Load returns the payload stored under key, or (nil, false) on a
// miss. An unreadable, corrupt, wrong-version, or wrong-key entry is
// quarantined and counted, then reported as a miss.
func (s *ResultStore) Load(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	p := s.entryPath(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.quarantineEntry(p)
		}
		s.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.quarantineEntry(p)
		s.misses.Add(1)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Version != storeVersion || env.Key != key || env.Sum != hex.EncodeToString(sum[:]) {
		s.quarantineEntry(p)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Payload, true
}

// quarantineEntry moves a bad entry aside so it cannot poison future
// loads; if even the rename fails the entry is deleted. Best-effort by
// design: degradation must never fail the caller.
func (s *ResultStore) quarantineEntry(p string) {
	s.corruptions.Add(1)
	if err := os.Rename(p, filepath.Join(s.quarantine, filepath.Base(p))); err != nil {
		os.Remove(p)
	}
}

// Save persists payload (which must be valid JSON) under key. The
// entry is staged in a temp file, fsynced, then renamed into place so
// readers — including a future process recovering after a crash —
// observe either the complete entry or none at all.
func (s *ResultStore) Save(key string, payload []byte) error {
	if !validKey(key) {
		s.writeErrors.Add(1)
		return fmt.Errorf("persist: invalid store key %q", key)
	}
	env, err := encodeEnvelope(key, payload)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	p := s.entryPath(key)
	if err := s.writeAtomic(p, env); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)
	return nil
}

// encodeEnvelope compacts the payload and wraps it so that the
// checksum is computed over the exact bytes that land in the file.
// Encoding goes through a json.Encoder with HTML escaping off: that
// matches json.Compact byte-for-byte, keeping Sum verifiable on Load.
func encodeEnvelope(key string, payload []byte) ([]byte, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return nil, fmt.Errorf("persist: payload for %s is not valid JSON: %w", key, err)
	}
	sum := sha256.Sum256(compact.Bytes())
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(envelope{
		Version: storeVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(compact.Bytes()),
	}); err != nil {
		return nil, fmt.Errorf("persist: encode entry %s: %w", key, err)
	}
	return out.Bytes(), nil
}

func (s *ResultStore) writeAtomic(p string, data []byte) error {
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, p)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: write %s: %w", p, err)
	}
	return nil
}

// Prune enforces a size cap on the store: when the envelopes under dir
// total more than maxBytes, the oldest ones (by modification time, path
// as a deterministic tie-break) are deleted until the total fits. The
// quarantine directory and in-flight temp files are never touched. A
// pruned entry is simply a future cache miss — the content-addressed
// design means losing one can only cost a re-simulation, never
// correctness — so long-running workers can cap their artifact cache
// without coordination. Returns the number of entries removed.
//
// Concurrent Saves are safe: a Save racing a Prune either lands after
// the scan (and survives) or is deleted as if it had been evicted.
func (s *ResultStore) Prune(maxBytes int64) (int, error) {
	if maxBytes < 0 {
		return 0, nil
	}
	type entry struct {
		path string
		size int64
		mod  int64 // UnixNano of the file's mtime
	}
	var entries []entry
	var total int64
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently pruned/quarantined file is not a failure.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			if path == s.quarantine {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".tmp-") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // vanished mid-walk; skip
		}
		entries = append(entries, entry{path: path, size: info.Size(), mod: info.ModTime().UnixNano()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("persist: prune scan: %w", err)
	}
	if total <= maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod < entries[j].mod
		}
		return entries[i].path < entries[j].path
	})
	removed := 0
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				total -= e.size
				continue
			}
			return removed, fmt.Errorf("persist: prune %s: %w", e.path, err)
		}
		total -= e.size
		removed++
		s.pruned.Add(1)
	}
	return removed, nil
}

// Stats returns a snapshot of the store's counters.
func (s *ResultStore) Stats() StoreStats {
	return StoreStats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corruptions: s.corruptions.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Pruned:      s.pruned.Load(),
	}
}
