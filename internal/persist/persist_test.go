package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("cell-1")
	payload := []byte(`{"result":{"walks":42},"churn":{"ops":7}}`)
	if err := s.Save(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(key)
	if !ok {
		t.Fatal("Load after Save missed")
	}
	var want bytes.Buffer
	if err := json.Compact(&want, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("payload mismatch:\n got %s\nwant %s", got, want.Bytes())
	}
	st := s.Stats()
	if st.Hits != 1 || st.Writes != 1 || st.Corruptions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 write, 0 corruptions", st)
	}
}

func TestStoreMiss(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(testKey("absent")); ok {
		t.Fatal("Load of absent key hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if err := s.Save(key, []byte(`{}`)); err == nil {
			t.Errorf("Save(%q) succeeded, want error", key)
		}
		if _, ok := s.Load(key); ok {
			t.Errorf("Load(%q) hit, want miss", key)
		}
	}
}

// A flipped byte inside a stored entry must quarantine the file and
// degrade to a miss — never an error, never a bogus hit.
func TestStoreCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("corrupt-me")
	if err := s.Save(key, []byte(`{"walks":1}`)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Load(key); ok {
		t.Fatal("Load of corrupt entry hit")
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 corruption and 1 miss", st)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in place, want quarantined")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %v entries, err %v; want 1 entry", len(q), err)
	}
	// The key stays writable after quarantine.
	if err := s.Save(key, []byte(`{"walks":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); !ok {
		t.Fatal("re-save after quarantine missed")
	}
}

// A version bump invalidates old entries: they are misses, not errors.
func TestStoreVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("old-version")
	payload := []byte(`{"walks":2}`)
	sum := sha256.Sum256(payload)
	env := fmt.Sprintf(`{"v":%d,"key":%q,"sha256":%q,"payload":%s}`,
		storeVersion+1, key, hex.EncodeToString(sum[:]), payload)
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("Load of future-version entry hit")
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("stats = %+v, want 1 corruption", st)
	}
}

// Entries whose filename does not match the embedded key (e.g. a
// mis-copied state dir) are rejected.
func TestStoreKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testKey("a"), []byte(`{"walks":3}`)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, testKey("a")[:2], testKey("a")+".json")
	dstKey := testKey("b")
	dst := filepath.Join(dir, dstKey[:2], dstKey+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(dstKey); ok {
		t.Fatal("Load of entry with mismatched key hit")
	}
}

func TestStoreConcurrentSaves(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := testKey(fmt.Sprintf("cell-%d", i%4))
			payload := []byte(fmt.Sprintf(`{"walks":%d}`, i%4))
			if err := s.Save(key, payload); err != nil {
				t.Error(err)
			}
			if _, ok := s.Load(key); !ok {
				t.Errorf("Load(%s) missed after Save", key)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.WriteErrors != 0 {
		t.Fatalf("stats = %+v, want no write errors", st)
	}
}

// Prune must delete oldest-first until the cap fits, never touching
// quarantine or temp files, and count what it removed.
func TestStorePruneOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var keys []string
	var sizes []int64
	for i := 0; i < 4; i++ {
		key := testKey(fmt.Sprintf("prune-%d", i))
		keys = append(keys, key)
		if err := s.Save(key, []byte(fmt.Sprintf(`{"walks":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, key[:2], key+".json")
		// Stamp ascending mtimes so "oldest" is deterministic.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}

	// Cap leaves room for all but the two oldest entries.
	cap := total - sizes[0] - sizes[1]
	removed, err := s.Prune(cap)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("Prune removed %d entries, want 2", removed)
	}
	for i, key := range keys {
		_, ok := s.Load(key)
		if wantHit := i >= 2; ok != wantHit {
			t.Errorf("after prune, Load(key %d) hit=%v, want %v", i, ok, wantHit)
		}
	}
	if st := s.Stats(); st.Pruned != 2 {
		t.Fatalf("stats = %+v, want Pruned=2", st)
	}

	// Under the cap: a no-op.
	if removed, err := s.Prune(total); err != nil || removed != 0 {
		t.Fatalf("Prune under cap = (%d, %v), want (0, nil)", removed, err)
	}
}

func TestStorePruneSparesQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture a quarantined entry by corrupting a saved one.
	key := testKey("quarantine-me")
	if err := s.Save(key, []byte(`{"walks":1}`)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Load(key) // quarantines

	// Plant a stale temp file alongside a live entry.
	live := testKey("live")
	if err := s.Save(live, []byte(`{"walks":2}`)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, live[:2], ".tmp-stale")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Cap of zero evicts every live envelope — but nothing else.
	removed, err := s.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Prune removed %d entries, want 1 (the live envelope)", removed)
	}
	if q, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %d entries, err %v; want 1 untouched entry", len(q), err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp file removed by prune: %v", err)
	}
	// The store keeps working after a full eviction.
	if err := s.Save(live, []byte(`{"walks":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(live); !ok {
		t.Fatal("Load after post-prune Save missed")
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	want := []Record{
		{Type: RecordAccepted, Job: "swp_1", Time: now, Cells: 4, Request: json.RawMessage(`{"schemes":["htc"]}`)},
		{Type: RecordState, Job: "swp_1", Time: now.Add(time.Second), State: "running"},
		{Type: RecordState, Job: "swp_1", Time: now.Add(2 * time.Second), State: "done"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || r.Job != want[i].Job || r.State != want[i].State ||
			!r.Time.Equal(want[i].Time) || r.Cells != want[i].Cells ||
			!bytes.Equal(r.Request, want[i].Request) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if j2.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", j2.Dropped())
	}
}

// A torn final line — the signature of a crash mid-append — must be
// discarded and truncated so later appends produce a clean file.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := j.Append(Record{Type: RecordAccepted, Job: "swp_1", Time: now}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"t":"state","job":"swp_1","st`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Job != "swp_1" {
		t.Fatalf("replayed %+v, want the single intact record", recs)
	}
	if j2.Dropped() == 0 {
		t.Fatal("Dropped = 0, want > 0 for the torn tail")
	}
	// Appending after truncation must yield a parseable journal.
	if err := j2.Append(Record{Type: RecordState, Job: "swp_1", Time: now, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].State != "done" {
		t.Fatalf("after re-append replayed %+v, want 2 records ending in done", recs)
	}
}

// Garbage in the middle stops replay at the last good line; the rest
// of the file (even if it parses) is dropped rather than trusted.
func TestJournalCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	lines := `{"v":1,"t":"accepted","job":"swp_1","time":"2026-08-05T12:00:00Z"}
not json at all
{"v":1,"t":"state","job":"swp_1","time":"2026-08-05T12:00:01Z","state":"done"}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 1 || recs[0].Type != RecordAccepted {
		t.Fatalf("replayed %+v, want only the first record", recs)
	}
	if j.Dropped() == 0 {
		t.Fatal("Dropped = 0, want the corrupt remainder counted")
	}
}
