package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalVersion stamps every record; replay stops at the first record
// from a different format, treating everything after it like a torn
// tail.
const journalVersion = 1

// Record types. "accepted" carries the original request so an
// interrupted job can be re-expanded and re-enqueued after a restart;
// "state" marks lifecycle transitions; "evicted" marks retention-cap
// evictions so replay keeps answering 410 for those IDs.
const (
	RecordAccepted = "accepted"
	RecordState    = "state"
	RecordEvicted  = "evicted"
)

// Record is one journal line. Timestamps are supplied by the caller —
// the package itself never reads the clock.
type Record struct {
	Version int             `json:"v"`
	Type    string          `json:"t"`
	Job     string          `json:"job"`
	Time    time.Time       `json:"time"`
	State   string          `json:"state,omitempty"`
	Error   string          `json:"error,omitempty"`
	Cells   int             `json:"cells,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	// Tenant and Priority travel with "accepted" records so a resumed
	// job lands back in the right fair-share queue after a restart.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// Journal is an append-only JSONL log. Appends are serialized and
// fsynced per record: a record either reaches disk whole (terminated
// by its newline) or is discarded as a torn tail on the next open.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	replayed int
	dropped  int
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record, truncates any torn or corrupt tail, and returns
// the journal positioned for appending. A damaged tail is never an
// error — recovery proceeds from the last good line.
func OpenJournal(path string) (*Journal, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: open journal %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("persist: read journal %s: %w", path, err)
	}

	var recs []Record
	good := 0 // byte offset just past the last intact record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write
		}
		line := data[off : off+nl]
		off += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			good = off
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Version != journalVersion {
			break // corrupt or foreign record: replay up to here only
		}
		recs = append(recs, r)
		good = off
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open journal %s: %w", path, err)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, nil, fmt.Errorf("persist: truncate torn journal tail %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, nil, fmt.Errorf("persist: seek journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path, replayed: len(recs), dropped: len(data) - good}, recs, nil
}

// Append writes one record and fsyncs it. Errors are reported but the
// journal stays usable; a failed append means the record may be lost
// on crash, not that the process must stop.
func (j *Journal) Append(r Record) error {
	r.Version = journalVersion
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("persist: encode journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("persist: append journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("persist: sync journal %s: %w", j.path, err)
	}
	return nil
}

// Replayed reports how many intact records the opening replay
// returned; Dropped reports how many tail bytes were discarded as
// torn or corrupt.
func (j *Journal) Replayed() int { return j.replayed }
func (j *Journal) Dropped() int  { return j.dropped }

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		if cerr := j.f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return fmt.Errorf("persist: close journal %s: %w", j.path, err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("persist: close journal %s: %w", j.path, err)
	}
	return nil
}
