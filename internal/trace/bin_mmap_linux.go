//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus an unmap func.
// Empty files cannot be mapped; callers fall back to reading.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
