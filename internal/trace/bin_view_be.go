//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm)

package trace

// castRecords is disabled on big-endian (or unvetted) platforms; NewBin
// decodes records field by field instead.
func castRecords(body []byte) []Record { return nil }
