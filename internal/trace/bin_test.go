package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybridtlb/internal/mem"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	v := mem.VPN(0x1000)
	for i := range recs {
		v += mem.VPN(i%7) * 3
		recs[i] = Record{VPN: v, Instrs: uint32(i%19 + 1), Write: i%3 == 0}
	}
	return recs
}

func writeBinBytes(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatalf("NewBinWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestBinRoundTrip(t *testing.T) {
	recs := sampleRecords(533)
	b, err := NewBin(writeBinBytes(t, recs))
	if err != nil {
		t.Fatalf("NewBin: %v", err)
	}
	if b.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(recs))
	}
	got := Collect(b, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch")
	}
}

func TestBinFileRoundTripAndCountPatch(t *testing.T) {
	recs := sampleRecords(97)
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewBinWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Files get the count patched into the header (writer was seekable).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(raw[16:24]); got != uint64(len(recs)) {
		t.Fatalf("patched count = %d, want %d", got, len(recs))
	}

	b, err := OpenBin(path)
	if err != nil {
		t.Fatalf("OpenBin: %v", err)
	}
	defer b.Close()
	if got := Collect(b, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestBinZeroCountDerivesFromSize(t *testing.T) {
	recs := sampleRecords(12)
	img := writeBinBytes(t, recs)
	// A non-seekable writer leaves count zero; emulate by clearing it.
	binary.LittleEndian.PutUint64(img[16:24], 0)
	b, err := NewBin(img)
	if err != nil {
		t.Fatalf("NewBin: %v", err)
	}
	if b.Len() != len(recs) {
		t.Fatalf("derived Len = %d, want %d", b.Len(), len(recs))
	}
}

func TestBinHeaderValidation(t *testing.T) {
	recs := sampleRecords(4)
	good := writeBinBytes(t, recs)

	short := good[:binHeaderSize-1]
	if _, err := NewBin(short); err == nil {
		t.Error("short image accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, err := NewBin(badMagic); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badVersion[8:12], 99)
	if _, err := NewBin(badVersion); err == nil {
		t.Error("bad version accepted")
	}

	overCount := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(overCount[16:24], uint64(len(recs)+1))
	if _, err := NewBin(overCount); err == nil {
		t.Error("count beyond body accepted")
	}

	ragged := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(ragged[16:24], 0)
	ragged = append(ragged, 0xAB) // body no longer a whole record count
	if _, err := NewBin(ragged); err == nil {
		t.Error("ragged zero-count body accepted")
	}

	// Truncated count: header says fewer records than present — legal,
	// reads exactly count records.
	trunc := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(trunc[16:24], 2)
	b, err := NewBin(trunc)
	if err != nil {
		t.Fatalf("truncating count rejected: %v", err)
	}
	if got := Collect(b, 0); !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("truncated read mismatch")
	}
}

func TestBinNonCanonicalBoolDecodes(t *testing.T) {
	recs := sampleRecords(8)
	img := writeBinBytes(t, recs)
	// Corrupt one Write byte to a non-bool value and one pad byte: the
	// zero-copy view must refuse and the decode path must normalise.
	img[binHeaderSize+12] = 7
	img[binHeaderSize+binRecordSize+13] = 1
	b, err := NewBin(img)
	if err != nil {
		t.Fatalf("NewBin: %v", err)
	}
	got := Collect(b, 0)
	want := append([]Record(nil), recs...)
	want[0].Write = true // 7 != 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decode-path normalisation mismatch")
	}
}

func TestBinDrainAndReset(t *testing.T) {
	recs := sampleRecords(40)
	b, err := NewBin(writeBinBytes(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Next(); !ok {
		t.Fatal("Next failed")
	}
	rest := b.Drain()
	if !reflect.DeepEqual(rest, recs[1:]) {
		t.Fatalf("Drain mismatch")
	}
	if _, ok := b.Next(); ok {
		t.Fatal("Next after Drain should report exhaustion")
	}
	b.Reset()
	if got := len(DrainSource(b)); got != len(recs) {
		t.Fatalf("post-Reset DrainSource = %d records, want %d", got, len(recs))
	}
}

func TestDrainSourceVariants(t *testing.T) {
	recs := sampleRecords(25)

	// SliceSource drains as a view.
	ss := NewSliceSource(recs)
	ss.Next()
	if got := DrainSource(ss); !reflect.DeepEqual(got, recs[1:]) {
		t.Fatalf("SliceSource drain mismatch")
	}

	// Limit clips the drained view.
	lim := Limit(NewSliceSource(recs), 10)
	if got := DrainSource(lim); !reflect.DeepEqual(got, recs[:10]) {
		t.Fatalf("limit drain mismatch")
	}
	if n := DrainSource(lim); len(n) != 0 {
		t.Fatalf("second drain returned %d records", len(n))
	}

	// Streaming v1 sources fall back to Collect.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := DrainSource(Limit(rd, 7)); !reflect.DeepEqual(got, recs[:7]) {
		t.Fatalf("streaming limited drain mismatch")
	}
}

func TestOpenPathAutoDetect(t *testing.T) {
	recs := sampleRecords(64)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "t.bin")
	if err := os.WriteFile(binPath, writeBinBytes(t, recs), 0o644); err != nil {
		t.Fatal(err)
	}

	v1Path := filepath.Join(dir, "t.v1")
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1Path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{binPath, v1Path} {
		src, closeFn, err := OpenPath(path)
		if err != nil {
			t.Fatalf("OpenPath(%s): %v", path, err)
		}
		got := Collect(src, 0)
		if err := closeFn(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("OpenPath(%s) records mismatch", path)
		}
	}

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPath(junk); err == nil {
		t.Fatal("junk file accepted")
	}
}
