package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hybridtlb/internal/mem"
)

// Binary fixed-width encoding ("bin" format): an mmap-able trace layout
// with a versioned header and fixed-size records, so paper-scale traces
// replay with no decode branch in the hot loop. On little-endian hosts the
// on-disk record layout matches the in-memory Record layout exactly and
// the reader hands out record slices straight over the mapped bytes.
//
// Layout (all little-endian):
//
//	offset  size  field
//	0       8     magic "HTLBTRB2"
//	8       4     version (currently 1)
//	12      4     reserved (zero)
//	16      8     record count (0 = derive from file size)
//	24      16*N  records
//
// Each record is 16 bytes: VPN u64, Instrs u32, Write u8 (0 or 1), and
// 3 zero pad bytes — the exact field layout of Record on a 64-bit
// little-endian machine, which is what makes the zero-copy view legal.
const (
	binMagic      = "HTLBTRB2"
	binVersion    = 1
	binHeaderSize = 24
	binRecordSize = 16
)

// BinWriter encodes records into the fixed-width binary format.
type BinWriter struct {
	w     *bufio.Writer
	under io.Writer
	count uint64
}

// NewBinWriter emits the header (with a zero record count) and returns a
// writer. Close patches the count in place when the underlying writer
// supports seeking; otherwise the count stays zero and readers derive it
// from the file size.
func NewBinWriter(w io.Writer) (*BinWriter, error) {
	bw := bufio.NewWriter(w)
	var head [binHeaderSize]byte
	copy(head[:8], binMagic)
	binary.LittleEndian.PutUint32(head[8:12], binVersion)
	if _, err := bw.Write(head[:]); err != nil {
		return nil, err
	}
	return &BinWriter{w: bw, under: w}, nil
}

// Write appends one record.
func (t *BinWriter) Write(r Record) error {
	var buf [binRecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.VPN))
	binary.LittleEndian.PutUint32(buf[8:12], r.Instrs)
	if r.Write {
		buf[12] = 1
	}
	if _, err := t.w.Write(buf[:]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns how many records have been written.
func (t *BinWriter) Count() uint64 { return t.count }

// Close flushes buffered output and, when the underlying writer is
// seekable, patches the record count into the header. It does not close
// the underlying writer.
func (t *BinWriter) Close() error {
	if err := t.w.Flush(); err != nil {
		return err
	}
	ws, ok := t.under.(io.WriteSeeker)
	if !ok {
		return nil
	}
	if _, err := ws.Seek(16, io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], t.count)
	if _, err := ws.Write(cnt[:]); err != nil {
		return err
	}
	_, err := ws.Seek(0, io.SeekEnd)
	return err
}

// Bin replays records from a parsed binary trace; it implements
// BatchSource and hands out whole record slices by offset, so the shard
// engine can partition the trace without copying.
type Bin struct {
	records []Record
	pos     int
	// unmap releases an mmap backing the records view, when there is one.
	unmap func() error
}

// NewBin parses an in-memory binary trace image. On little-endian hosts
// with a validated image the returned Bin's records alias data directly
// (zero-copy); callers must keep data alive and unmodified. Otherwise the
// records are decoded into a fresh slice.
func NewBin(data []byte) (*Bin, error) {
	n, err := binValidateHeader(data)
	if err != nil {
		return nil, err
	}
	body := data[binHeaderSize : binHeaderSize+n*binRecordSize]
	if recs := castRecords(body); recs != nil && binBodyCanonical(body) {
		return &Bin{records: recs}, nil
	}
	recs := make([]Record, n)
	for i := range recs {
		off := i * binRecordSize
		recs[i] = Record{
			VPN:    mem.VPN(binary.LittleEndian.Uint64(body[off : off+8])),
			Instrs: binary.LittleEndian.Uint32(body[off+8 : off+12]),
			Write:  body[off+12] != 0,
		}
	}
	return &Bin{records: recs}, nil
}

// binValidateHeader checks magic/version and returns the record count.
func binValidateHeader(data []byte) (int, error) {
	if len(data) < binHeaderSize {
		return 0, errors.New("trace: bin image shorter than header")
	}
	if string(data[:8]) != binMagic {
		return 0, errors.New("trace: bad magic; not a binary trace")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != binVersion {
		return 0, fmt.Errorf("trace: unsupported bin version %d", v)
	}
	body := len(data) - binHeaderSize
	count := binary.LittleEndian.Uint64(data[16:24])
	if count == 0 {
		if body%binRecordSize != 0 {
			return 0, fmt.Errorf("trace: bin body %d bytes is not a whole record count", body)
		}
		return body / binRecordSize, nil
	}
	if count > uint64(body/binRecordSize) {
		return 0, fmt.Errorf("trace: header count %d exceeds %d records present", count, body/binRecordSize)
	}
	return int(count), nil
}

// binBodyCanonical reports whether every record's Write byte is 0 or 1 and
// its pad bytes are zero — the precondition for aliasing the bytes as
// []Record (Go bools must be exactly 0 or 1 in memory).
func binBodyCanonical(body []byte) bool {
	for off := 12; off < len(body); off += binRecordSize {
		if body[off] > 1 || body[off+1] != 0 || body[off+2] != 0 || body[off+3] != 0 {
			return false
		}
	}
	return true
}

// Next implements Source.
func (b *Bin) Next() (Record, bool) {
	if b.pos >= len(b.records) {
		return Record{}, false
	}
	r := b.records[b.pos]
	b.pos++
	return r, true
}

// ReadBatch implements BatchSource.
func (b *Bin) ReadBatch(dst []Record) int {
	n := copy(dst, b.records[b.pos:])
	b.pos += n
	return n
}

// Reset rewinds the source to the beginning.
func (b *Bin) Reset() { b.pos = 0 }

// Len returns the total record count.
func (b *Bin) Len() int { return len(b.records) }

// Drain returns the remaining records as one slice (a view, not a copy)
// and advances past them.
func (b *Bin) Drain() []Record {
	rest := b.records[b.pos:]
	b.pos = len(b.records)
	return rest
}

// Close releases the mmap backing the record view, if any. The records
// must not be used afterwards.
func (b *Bin) Close() error {
	if b.unmap == nil {
		return nil
	}
	fn := b.unmap
	b.unmap = nil
	b.records = nil
	return fn()
}

// OpenBin opens a binary trace file, memory-mapping it when the platform
// supports that (records then stream straight from the page cache with no
// decode pass).
func OpenBin(path string) (*Bin, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		// No mmap on this platform (or it failed): fall back to reading
		// the file into memory.
		data, err = os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		b, err := NewBin(data)
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	b, err := NewBin(data)
	if err != nil {
		unmap()
		return nil, err
	}
	b.unmap = unmap
	return b, nil
}

// Drainer is implemented by sources that can hand over their remaining
// records as one slice without a copy loop.
type Drainer interface {
	Drain() []Record
}

// Drain returns all remaining records of a source, using the source's own
// slice view when it has one and collecting through Next otherwise.
func DrainSource(src Source) []Record {
	if d, ok := src.(Drainer); ok {
		return d.Drain()
	}
	return Collect(src, 0)
}

// OpenPath opens a trace file of either format, auto-detected by its
// 8-byte magic header. The returned close func releases the file or
// mapping backing the source.
func OpenPath(path string) (BatchSource, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		_ = f.Close() // read-only; the read error is the failure
		return nil, nil, fmt.Errorf("trace: reading magic of %s: %w", path, err)
	}
	if string(head[:]) == binMagic {
		if err := f.Close(); err != nil {
			return nil, nil, err
		}
		b, err := OpenBin(path)
		if err != nil {
			return nil, nil, err
		}
		return b, b.Close, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		_ = f.Close() // read-only; the seek error is the failure
		return nil, nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		_ = f.Close() // read-only; the header error is the failure
		return nil, nil, err
	}
	return r, f.Close, nil
}
