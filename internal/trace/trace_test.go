package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hybridtlb/internal/mem"
)

func TestSliceSource(t *testing.T) {
	recs := []Record{{VPN: 1, Instrs: 3}, {VPN: 2, Instrs: 4, Write: true}}
	s := NewSliceSource(recs)
	for i, want := range recs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("record %d = %+v, %v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("source not exhausted")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Error("reset failed")
	}
}

func TestLimit(t *testing.T) {
	recs := make([]Record, 10)
	src := Limit(NewSliceSource(recs), 3)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("limited source yielded %d records, want 3", n)
	}
}

func TestCollect(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i].VPN = mem.VPN(i)
	}
	got := Collect(NewSliceSource(recs), 4)
	if len(got) != 4 || got[3].VPN != 3 {
		t.Errorf("Collect(4) = %d records", len(got))
	}
	got = Collect(NewSliceSource(recs), 0)
	if len(got) != 10 {
		t.Errorf("Collect(0) = %d records, want all 10", len(got))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := make([]Record, 5000)
	vpn := mem.VPN(1 << 30)
	for i := range recs {
		vpn += mem.VPN(r.Intn(100)) - 50 // mixed forward/backward deltas
		recs[i] = Record{VPN: vpn, Instrs: uint32(r.Intn(1000)), Write: r.Intn(2) == 0}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5000 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := rd.Next()
		if !ok {
			t.Fatalf("stream ended at record %d: %v", i, rd.Err())
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := rd.Next(); ok {
		t.Error("stream longer than written")
	}
	if rd.Err() != nil {
		t.Errorf("clean EOF reported error: %v", rd.Err())
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(vpns []uint32, instrs []uint16) bool {
		n := len(vpns)
		if len(instrs) < n {
			n = len(instrs)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{VPN: mem.VPN(vpns[i]), Instrs: uint32(instrs[i]), Write: i%3 == 0}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if w.Write(rec) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, ok := rd.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := rd.Next()
		return !ok && rd.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("HT")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{VPN: 123456, Instrs: 7})
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-1] // chop the last byte
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.Next(); ok {
		t.Error("truncated record decoded")
	}
	if rd.Err() == nil {
		t.Error("truncation not reported")
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{VPN: 0x123456, Instrs: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.VPN++
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

func TestAnalyzeBasics(t *testing.T) {
	// Sequence: A B A  C B A — reuse distances: A:1 (B between), B:1 (A),
	// A:2 (C,B between).
	recs := []Record{
		{VPN: 1, Instrs: 4}, {VPN: 2, Instrs: 4}, {VPN: 1, Instrs: 4, Write: true},
		{VPN: 3, Instrs: 4}, {VPN: 2, Instrs: 4}, {VPN: 1, Instrs: 4},
	}
	a := Analyze(NewSliceSource(recs))
	if a.Records != 6 || a.Instructions != 24 || a.Writes != 1 {
		t.Fatalf("basics: %+v", a)
	}
	if a.DistinctPages != 3 || a.ColdAccesses != 3 {
		t.Fatalf("footprint: %+v", a)
	}
	// Distances: 1, 2, 2 -> bucket 0 (<2): 1, bucket 1 (2-3): 2.
	if a.ReuseBuckets[0] != 1 || a.ReuseBuckets[1] != 2 {
		t.Errorf("buckets = %v", a.ReuseBuckets[:4])
	}
}

func TestAnalyzeStreamingVsRandom(t *testing.T) {
	// Streaming with immediate repeats has tiny distances; uniform random
	// over a large footprint has large ones.
	var stream []Record
	for i := 0; i < 3000; i++ {
		stream = append(stream, Record{VPN: mem.VPN(i / 3), Instrs: 1})
	}
	sa := Analyze(NewSliceSource(stream))
	if sa.ReuseBuckets[0] != 2000 {
		t.Errorf("stream short-distance accesses = %d, want 2000", sa.ReuseBuckets[0])
	}

	r := rand.New(rand.NewSource(1))
	var random []Record
	for i := 0; i < 30000; i++ {
		random = append(random, Record{VPN: mem.VPN(r.Intn(1 << 13)), Instrs: 1})
	}
	ra := Analyze(NewSliceSource(random))
	var shortAcc, longAcc uint64
	for i, n := range ra.ReuseBuckets {
		if i <= 6 {
			shortAcc += n
		} else {
			longAcc += n
		}
	}
	if longAcc < shortAcc {
		t.Errorf("random trace skewed short: %d short vs %d long", shortAcc, longAcc)
	}
}

func TestBucketLabels(t *testing.T) {
	if BucketLabel(0) != "<2" || BucketLabel(1) != "2-3" || BucketLabel(17) != ">=128K" {
		t.Error("labels wrong")
	}
	if bucketOf(0) != 0 || bucketOf(1) != 0 || bucketOf(2) != 1 || bucketOf(1024) != 10 {
		t.Error("bucketing wrong")
	}
}

func TestAnalyzeWriteTo(t *testing.T) {
	recs := []Record{{VPN: 1}, {VPN: 2}, {VPN: 1}}
	var buf bytes.Buffer
	Analyze(NewSliceSource(recs)).Print(&buf)
	for _, want := range []string{"records", "distinct pages", "reuse-distance"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
