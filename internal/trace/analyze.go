package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"hybridtlb/internal/mem"
)

// Analysis summarizes a trace's page-level behaviour: volume, footprint,
// write ratio, and a page reuse-distance histogram. Reuse distance (the
// number of *distinct* pages touched between two accesses to the same
// page) is the quantity that decides TLB hit rates: accesses with reuse
// distance below a TLB's entry count hit in steady state.
type Analysis struct {
	Records      uint64
	Instructions uint64
	Writes       uint64
	// DistinctPages is the trace's page footprint.
	DistinctPages uint64
	// ReuseBuckets counts accesses whose page reuse distance d falls in
	// bucket i covering [2^i, 2^(i+1)) (bucket 0 covers d<2); cold first
	// touches are counted separately.
	ReuseBuckets []uint64
	ColdAccesses uint64
}

// maxReuseTracked bounds the exact reuse-distance bookkeeping; distances
// beyond it land in the last bucket (they miss in any realistic TLB
// anyway).
const maxReuseTracked = 1 << 16

// Analyze drains a source and computes its Analysis.
//
// Reuse distances are computed exactly with an access-ordered set: for
// each access, the distance is the number of distinct pages touched since
// the previous access to the same page. The implementation keeps a
// last-access timestamp per page and counts distinct pages in the window
// with a sorted timestamp list (O(log n) per access).
func Analyze(src Source) Analysis {
	a := Analysis{ReuseBuckets: make([]uint64, 18)}
	lastStamp := make(map[mem.VPN]uint64) // page -> stamp of last access
	// stamps holds the last-access stamps of all resident pages, sorted;
	// the reuse distance of an access to a page last seen at stamp s is
	// the count of stamps greater than s.
	var stamps []uint64
	var clock uint64

	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		a.Records++
		a.Instructions += uint64(rec.Instrs)
		if rec.Write {
			a.Writes++
		}
		clock++
		prev, seen := lastStamp[rec.VPN]
		if !seen {
			a.ColdAccesses++
			a.DistinctPages++
		} else {
			// Count distinct pages touched strictly after prev.
			i := sort.Search(len(stamps), func(i int) bool { return stamps[i] > prev })
			d := uint64(len(stamps) - i)
			a.ReuseBuckets[bucketOf(d)]++
			// Remove the page's old stamp.
			j := sort.Search(len(stamps), func(i int) bool { return stamps[i] >= prev })
			stamps = append(stamps[:j], stamps[j+1:]...)
		}
		lastStamp[rec.VPN] = clock
		stamps = append(stamps, clock) // clock is monotonically the max
		// Cap the tracked set: drop the oldest stamps; their pages will
		// read as max-distance on next touch, which is the right answer.
		if len(stamps) > maxReuseTracked {
			cut := stamps[len(stamps)-maxReuseTracked]
			for p, s := range lastStamp {
				if s < cut {
					delete(lastStamp, p)
				}
			}
			stamps = stamps[len(stamps)-maxReuseTracked:]
		}
	}
	return a
}

// bucketOf maps a reuse distance to its power-of-two bucket.
func bucketOf(d uint64) int {
	b := 0
	for d >= 2 && b < 17 {
		d >>= 1
		b++
	}
	return b
}

// BucketLabel names bucket i's distance range.
func BucketLabel(i int) string {
	if i == 0 {
		return "<2"
	}
	if i >= 17 {
		return ">=128K"
	}
	return fmt.Sprintf("%d-%d", 1<<i, 1<<(i+1)-1)
}

// Print renders the analysis as a table.
func (a Analysis) Print(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "records\t%d\n", a.Records)
	fmt.Fprintf(tw, "instructions\t%d\n", a.Instructions)
	fmt.Fprintf(tw, "writes\t%d\n", a.Writes)
	fmt.Fprintf(tw, "distinct pages\t%d\n", a.DistinctPages)
	fmt.Fprintf(tw, "cold accesses\t%d\n", a.ColdAccesses)
	tw.Flush()
	fmt.Fprintln(w, "page reuse-distance histogram (distinct pages between touches):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	warm := a.Records - a.ColdAccesses
	for i, n := range a.ReuseBuckets {
		if n == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\n", BucketLabel(i), n, 100*float64(n)/float64(warm))
	}
	tw.Flush()
}
