//go:build !linux

package trace

import "errors"

var errNoMmap = errors.New("trace: mmap not supported on this platform")

// mmapFile is unavailable off Linux; OpenBin falls back to os.ReadFile.
func mmapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}
