// Package trace defines the memory-access trace format the simulator
// consumes: a stream of (virtual page, instruction-delta, read/write)
// records, like the Pin-generated traces the paper drives its simulator
// with, plus a compact binary encoding for record-and-replay.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hybridtlb/internal/mem"
)

// Record is one memory access.
type Record struct {
	// VPN is the virtual page touched.
	VPN mem.VPN
	// Instrs is the number of instructions retired since the previous
	// memory access, inclusive of this one (used to account translation
	// cycles per instruction).
	Instrs uint32
	// Write marks stores (irrelevant to TLB hit/miss behaviour but kept
	// for dirty-bit realism and future extensions).
	Write bool
}

// Source is a stream of access records. Next returns false when the
// stream is exhausted.
type Source interface {
	Next() (Record, bool)
}

// SliceSource replays records from memory.
type SliceSource struct {
	records []Record
	pos     int
}

// NewSliceSource wraps a record slice.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.records) {
		return Record{}, false
	}
	r := s.records[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit wraps a source, truncating it after n records.
func Limit(src Source, n uint64) Source { return &limitSource{src: src, left: n} }

type limitSource struct {
	src  Source
	left uint64
}

func (l *limitSource) Next() (Record, bool) {
	if l.left == 0 {
		return Record{}, false
	}
	l.left--
	return l.src.Next()
}

// Collect drains up to n records from a source into a slice (n == 0 drains
// everything).
func Collect(src Source, n uint64) []Record {
	var out []Record
	for {
		if n != 0 && uint64(len(out)) == n {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Binary encoding: a fixed magic header, then one varint-packed record per
// access. VPNs are delta-encoded (zig-zag) against the previous record
// because workloads revisit nearby pages, keeping traces compact.

const magic = "HTLBTRC1"

// Writer encodes records to a stream.
type Writer struct {
	w       *bufio.Writer
	prevVPN mem.VPN
	started bool
	count   uint64
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	var buf [binary.MaxVarintLen64 * 2]byte
	delta := int64(r.VPN) - int64(t.prevVPN)
	n := binary.PutVarint(buf[:], delta)
	t.prevVPN = r.VPN
	packed := uint64(r.Instrs) << 1
	if r.Write {
		packed |= 1
	}
	n += binary.PutUvarint(buf[n:], packed)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns how many records have been written.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a trace stream; it implements Source.
type Reader struct {
	r       *bufio.Reader
	prevVPN mem.VPN
	err     error
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic; not a trace stream")
	}
	return &Reader{r: br}, nil
}

// Next implements Source. Decoding errors terminate the stream and are
// reported by Err.
func (t *Reader) Next() (Record, bool) {
	if t.err != nil {
		return Record{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return Record{}, false
	}
	packed, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return Record{}, false
	}
	vpn := mem.VPN(int64(t.prevVPN) + delta)
	t.prevVPN = vpn
	return Record{VPN: vpn, Instrs: uint32(packed >> 1), Write: packed&1 != 0}, true
}

// Err reports a decoding error encountered by Next, if any.
func (t *Reader) Err() error { return t.err }
