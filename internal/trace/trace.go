// Package trace defines the memory-access trace format the simulator
// consumes: a stream of (virtual page, instruction-delta, read/write)
// records, like the Pin-generated traces the paper drives its simulator
// with, plus a compact binary encoding for record-and-replay.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hybridtlb/internal/mem"
)

// Record is one memory access.
type Record struct {
	// VPN is the virtual page touched.
	VPN mem.VPN
	// Instrs is the number of instructions retired since the previous
	// memory access, inclusive of this one (used to account translation
	// cycles per instruction).
	Instrs uint32
	// Write marks stores (irrelevant to TLB hit/miss behaviour but kept
	// for dirty-bit realism and future extensions).
	Write bool
}

// Source is a stream of access records. Next returns false when the
// stream is exhausted.
type Source interface {
	Next() (Record, bool)
}

// BatchSource is a Source that can also fill whole record batches, the
// interface the batched simulation pipeline consumes. ReadBatch stores up
// to len(dst) records into dst and returns how many it stored; it may
// return fewer than requested mid-stream, and returns 0 only when the
// stream is exhausted (or len(dst) is 0). Interleaving Next and ReadBatch
// calls is legal: both consume the same underlying position.
type BatchSource interface {
	Source
	ReadBatch(dst []Record) int
}

// Batched adapts any Source to a BatchSource: sources with a native
// ReadBatch are returned as-is, legacy sources get a wrapper that fills
// batches through Next.
func Batched(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &nextBatcher{src: src}
}

type nextBatcher struct{ src Source }

func (b *nextBatcher) Next() (Record, bool) { return b.src.Next() }

func (b *nextBatcher) ReadBatch(dst []Record) int {
	for n := range dst {
		r, ok := b.src.Next()
		if !ok {
			return n
		}
		dst[n] = r
	}
	return len(dst)
}

// SliceSource replays records from memory.
type SliceSource struct {
	records []Record
	pos     int
}

// NewSliceSource wraps a record slice.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.records) {
		return Record{}, false
	}
	r := s.records[s.pos]
	s.pos++
	return r, true
}

// ReadBatch implements BatchSource.
func (s *SliceSource) ReadBatch(dst []Record) int {
	n := copy(dst, s.records[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Drain returns the remaining records as one slice (a view, not a copy)
// and advances past them.
func (s *SliceSource) Drain() []Record {
	rest := s.records[s.pos:]
	s.pos = len(s.records)
	return rest
}

// Limit wraps a source, truncating it after n records. The result is a
// BatchSource (batching through the wrapped source's native ReadBatch
// when it has one).
func Limit(src Source, n uint64) BatchSource {
	return &limitSource{src: src, batch: Batched(src), left: n}
}

type limitSource struct {
	src   Source
	batch BatchSource
	left  uint64
}

func (l *limitSource) Next() (Record, bool) {
	if l.left == 0 {
		return Record{}, false
	}
	l.left--
	return l.src.Next()
}

// ReadBatch implements BatchSource.
func (l *limitSource) ReadBatch(dst []Record) int {
	if l.left < uint64(len(dst)) {
		dst = dst[:l.left]
	}
	n := l.batch.ReadBatch(dst)
	l.left -= uint64(n)
	return n
}

// Drain returns the remaining (limit-clipped) records. When the wrapped
// source is itself drainable this is a slice view; the wrapped source is
// consumed past the limit either way.
func (l *limitSource) Drain() []Record {
	var rest []Record
	if d, ok := l.src.(Drainer); ok {
		rest = d.Drain()
	} else {
		rest = Collect(l.batch, l.left)
	}
	if uint64(len(rest)) > l.left {
		rest = rest[:l.left]
	}
	l.left = 0
	return rest
}

// Collect drains up to n records from a source into a slice (n == 0 drains
// everything).
func Collect(src Source, n uint64) []Record {
	var out []Record
	for {
		if n != 0 && uint64(len(out)) == n {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Binary encoding: a fixed magic header, then one varint-packed record per
// access. VPNs are delta-encoded (zig-zag) against the previous record
// because workloads revisit nearby pages, keeping traces compact.

const magic = "HTLBTRC1"

// Writer encodes records to a stream.
type Writer struct {
	w       *bufio.Writer
	prevVPN mem.VPN
	started bool
	count   uint64
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	var buf [binary.MaxVarintLen64 * 2]byte
	delta := int64(r.VPN) - int64(t.prevVPN)
	n := binary.PutVarint(buf[:], delta)
	t.prevVPN = r.VPN
	packed := uint64(r.Instrs) << 1
	if r.Write {
		packed |= 1
	}
	n += binary.PutUvarint(buf[n:], packed)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns how many records have been written.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a trace stream; it implements Source.
type Reader struct {
	r       *bufio.Reader
	prevVPN mem.VPN
	err     error
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic; not a trace stream")
	}
	return &Reader{r: br}, nil
}

// Next implements Source. Decoding errors terminate the stream and are
// reported by Err.
func (t *Reader) Next() (Record, bool) {
	if t.err != nil {
		return Record{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return Record{}, false
	}
	packed, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return Record{}, false
	}
	vpn := mem.VPN(int64(t.prevVPN) + delta)
	t.prevVPN = vpn
	return Record{VPN: vpn, Instrs: uint32(packed >> 1), Write: packed&1 != 0}, true
}

// ReadBatch implements BatchSource. A mid-stream decode error ends the
// final (possibly partial) batch exactly as Next ends the stream: the
// records decoded before the bad byte are returned, the error is
// reported by Err, and every later call returns 0.
func (t *Reader) ReadBatch(dst []Record) int {
	if t.err != nil {
		return 0
	}
	prev := t.prevVPN
	for n := range dst {
		delta, err := binary.ReadVarint(t.r)
		if err != nil {
			if err != io.EOF {
				t.err = err
			}
			t.prevVPN = prev
			return n
		}
		packed, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: truncated record: %w", err)
			t.prevVPN = prev
			return n
		}
		prev = mem.VPN(int64(prev) + delta)
		dst[n] = Record{VPN: prev, Instrs: uint32(packed >> 1), Write: packed&1 != 0}
	}
	t.prevVPN = prev
	return len(dst)
}

// Err reports a decoding error encountered by Next or ReadBatch, if any.
func (t *Reader) Err() error { return t.err }
