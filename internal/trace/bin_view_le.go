//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm

package trace

import "unsafe"

// Little-endian platforms where the 16-byte on-disk record layout matches
// the in-memory layout of Record, so a validated trace body can be viewed
// as []Record without decoding.

// castRecords reinterprets a record body as a []Record view, or returns
// nil when the platform/layout makes that unsafe (misalignment, or an
// unexpected struct layout).
func castRecords(body []byte) []Record {
	if len(body) == 0 || len(body)%binRecordSize != 0 {
		return nil
	}
	if unsafe.Sizeof(Record{}) != binRecordSize ||
		unsafe.Offsetof(Record{}.Instrs) != 8 ||
		unsafe.Offsetof(Record{}.Write) != 12 {
		return nil
	}
	p := unsafe.Pointer(&body[0])
	if uintptr(p)%unsafe.Alignof(Record{}) != 0 {
		return nil
	}
	return unsafe.Slice((*Record)(p), len(body)/binRecordSize)
}
