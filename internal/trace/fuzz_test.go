package trace

import (
	"bytes"
	"testing"

	"hybridtlb/internal/mem"
)

// FuzzBinaryRoundTrip exercises the varint/zig-zag trace codec with
// arbitrary record contents: whatever is written must read back exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0x10000), uint32(4), true, uint64(0x10001), uint32(7), false)
	f.Add(uint64(0), uint32(0), false, uint64(1<<47), uint32(1<<30), true)
	f.Add(uint64(1<<47), uint32(1), false, uint64(0), uint32(2), false)
	f.Fuzz(func(t *testing.T, v1 uint64, i1 uint32, w1 bool, v2 uint64, i2 uint32, w2 bool) {
		recs := []Record{
			{VPN: mem.VPN(v1 & (1<<47 - 1)), Instrs: i1, Write: w1},
			{VPN: mem.VPN(v2 & (1<<47 - 1)), Instrs: i2, Write: w2},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, ok := rd.Next()
			if !ok {
				t.Fatalf("record %d missing: %v", i, rd.Err())
			}
			if got != want {
				t.Fatalf("record %d = %+v, want %+v", i, got, want)
			}
		}
		if _, ok := rd.Next(); ok {
			t.Fatal("extra record decoded")
		}
	})
}

// FuzzReaderRobustness feeds arbitrary bytes to the decoder: it must never
// panic, only return records or stop with an error.
func FuzzReaderRobustness(f *testing.F) {
	f.Add([]byte("HTLBTRC1\x02\x08"))
	f.Add([]byte("HTLBTRC1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad header: fine
		}
		for i := 0; i < 10000; i++ {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	})
}
