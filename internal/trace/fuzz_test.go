package trace

import (
	"bytes"
	"testing"

	"hybridtlb/internal/mem"
)

// FuzzBinaryRoundTrip exercises the varint/zig-zag trace codec with
// arbitrary record contents: whatever is written must read back exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0x10000), uint32(4), true, uint64(0x10001), uint32(7), false)
	f.Add(uint64(0), uint32(0), false, uint64(1<<47), uint32(1<<30), true)
	f.Add(uint64(1<<47), uint32(1), false, uint64(0), uint32(2), false)
	f.Fuzz(func(t *testing.T, v1 uint64, i1 uint32, w1 bool, v2 uint64, i2 uint32, w2 bool) {
		recs := []Record{
			{VPN: mem.VPN(v1 & (1<<47 - 1)), Instrs: i1, Write: w1},
			{VPN: mem.VPN(v2 & (1<<47 - 1)), Instrs: i2, Write: w2},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, ok := rd.Next()
			if !ok {
				t.Fatalf("record %d missing: %v", i, rd.Err())
			}
			if got != want {
				t.Fatalf("record %d = %+v, want %+v", i, got, want)
			}
		}
		if _, ok := rd.Next(); ok {
			t.Fatal("extra record decoded")
		}
	})
}

// FuzzReaderRobustness feeds arbitrary bytes to the decoder: it must never
// panic, only return records or stop with an error.
func FuzzReaderRobustness(f *testing.F) {
	f.Add([]byte("HTLBTRC1\x02\x08"))
	f.Add([]byte("HTLBTRC1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad header: fine
		}
		for i := 0; i < 10000; i++ {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	})
}

// FuzzBinCrossCodecEquivalence writes the same fuzzed records through the
// varint v1 codec and the fixed-width bin codec and demands both decode
// back to the identical record stream: the bin round-trip is exactly the
// existing record stream, byte for byte of every field.
func FuzzBinCrossCodecEquivalence(f *testing.F) {
	f.Add(uint64(0x10000), uint32(4), true, uint64(0x10001), uint32(7), false, uint8(3))
	f.Add(uint64(0), uint32(0), false, uint64(1<<47), uint32(1<<30), true, uint8(0))
	f.Add(uint64(1<<47), uint32(1), false, uint64(0), uint32(2), false, uint8(9))
	f.Fuzz(func(t *testing.T, v1 uint64, i1 uint32, w1 bool, v2 uint64, i2 uint32, w2 bool, repeat uint8) {
		base := []Record{
			{VPN: mem.VPN(v1 & (1<<47 - 1)), Instrs: i1, Write: w1},
			{VPN: mem.VPN(v2 & (1<<47 - 1)), Instrs: i2, Write: w2},
		}
		var recs []Record
		for i := 0; i <= int(repeat%13); i++ {
			recs = append(recs, Record{
				VPN:    base[i%2].VPN + mem.VPN(i),
				Instrs: base[i%2].Instrs,
				Write:  base[i%2].Write != (i%5 == 0),
			})
		}

		var v1buf bytes.Buffer
		vw, err := NewWriter(&v1buf)
		if err != nil {
			t.Fatal(err)
		}
		var binbuf bytes.Buffer
		bw, err := NewBinWriter(&binbuf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := vw.Write(r); err != nil {
				t.Fatal(err)
			}
			if err := bw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := vw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}

		vr, err := NewReader(&v1buf)
		if err != nil {
			t.Fatal(err)
		}
		br, err := NewBin(binbuf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if br.Len() != len(recs) {
			t.Fatalf("bin Len = %d, want %d", br.Len(), len(recs))
		}
		for i := range recs {
			vrec, vok := vr.Next()
			brec, bok := br.Next()
			if !vok || !bok {
				t.Fatalf("record %d: v1 ok=%v bin ok=%v (v1 err %v)", i, vok, bok, vr.Err())
			}
			if vrec != brec || brec != recs[i] {
				t.Fatalf("record %d: v1 %+v, bin %+v, want %+v", i, vrec, brec, recs[i])
			}
		}
		if _, ok := vr.Next(); ok {
			t.Fatal("v1 stream has extra records")
		}
		if _, ok := br.Next(); ok {
			t.Fatal("bin stream has extra records")
		}
	})
}

// FuzzBinRobustness feeds arbitrary bytes to the bin parser: it must never
// panic, only produce a valid source or an error, and any accepted image
// must decode without panicking.
func FuzzBinRobustness(f *testing.F) {
	f.Add([]byte("HTLBTRB2"))
	f.Add([]byte("HTLBTRB2\x01\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add(append([]byte("HTLBTRB2\x01\x00\x00\x00\x00\x00\x00\x00"), make([]byte, 8+16)...))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := NewBin(data)
		if err != nil {
			return
		}
		n := 0
		for {
			if _, ok := b.Next(); !ok {
				break
			}
			n++
		}
		if n != b.Len() {
			t.Fatalf("decoded %d records from an image reporting Len %d", n, b.Len())
		}
	})
}

// FuzzReadBatchEquivalence feeds arbitrary bytes — valid traces and
// corrupt ones alike — to two readers over the same stream and demands
// that ReadBatch, driven with a fuzzed slice size, yields exactly the
// records Next yields, including the final partial batch before a
// mid-stream decode error, and that both readers settle on the same
// Err() state.
func FuzzReadBatchEquivalence(f *testing.F) {
	valid := func(recs []Record) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	whole := valid([]Record{
		{VPN: 0x10000, Instrs: 3, Write: true},
		{VPN: 0x10007, Instrs: 1},
		{VPN: 0x0fff0, Instrs: 9, Write: true},
	})
	f.Add(whole, uint8(2))
	f.Add(whole[:len(whole)-1], uint8(1)) // truncated mid-record
	f.Add(whole[:len(whole)-2], uint8(7))
	f.Add([]byte("HTLBTRC1\x02\x08"), uint8(3))
	f.Add([]byte("garbage"), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, size uint8) {
		serial, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad header: fine, both constructors see the same bytes
		}
		batched, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second reader rejected the same header: %v", err)
		}
		n := int(size%16) + 1
		dst := make([]Record, n)
		var got []Record
		for len(got) < 100_000 {
			k := batched.ReadBatch(dst)
			if k == 0 {
				break
			}
			got = append(got, dst[:k]...)
		}
		for i := 0; ; i++ {
			rec, ok := serial.Next()
			if !ok {
				if i != len(got) {
					t.Fatalf("ReadBatch yielded %d records, Next yielded %d", len(got), i)
				}
				break
			}
			if i >= len(got) {
				t.Fatalf("Next yielded record %d (%+v) past ReadBatch's %d", i, rec, len(got))
			}
			if got[i] != rec {
				t.Fatalf("record %d: ReadBatch %+v != Next %+v", i, got[i], rec)
			}
		}
		serr, berr := serial.Err(), batched.Err()
		if (serr == nil) != (berr == nil) {
			t.Fatalf("error states diverged: serial %v, batched %v", serr, berr)
		}
		if serr != nil && serr.Error() != berr.Error() {
			t.Fatalf("error messages diverged: serial %q, batched %q", serr, berr)
		}
	})
}
