// Package mem provides the address and page arithmetic shared by every
// layer of the hybrid TLB coalescing simulator: virtual and physical
// addresses, page frame numbers, the x86-64 page-size hierarchy
// (4 KiB / 2 MiB / 1 GiB), and alignment helpers.
//
// All other packages express translations in terms of mem.VPN and mem.PFN
// so that page-size bookkeeping lives in exactly one place.
package mem

import "fmt"

// Page-size constants for the x86-64 three-level page-size hierarchy.
const (
	// Shift4K is the bit width of the offset within a 4 KiB base page.
	Shift4K = 12
	// Shift2M is the bit width of the offset within a 2 MiB huge page.
	Shift2M = 21
	// Shift1G is the bit width of the offset within a 1 GiB giga page.
	Shift1G = 30

	// Size4K is the base page size in bytes.
	Size4K uint64 = 1 << Shift4K
	// Size2M is the huge page size in bytes.
	Size2M uint64 = 1 << Shift2M
	// Size1G is the giga page size in bytes.
	Size1G uint64 = 1 << Shift1G

	// PagesPer2M is the number of base pages covered by one 2 MiB page.
	PagesPer2M uint64 = Size2M / Size4K // 512
	// PagesPer1G is the number of base pages covered by one 1 GiB page.
	PagesPer1G uint64 = Size1G / Size4K // 262144

	// VirtAddrBits is the number of meaningful virtual address bits in
	// the classical x86-64 4-level paging scheme.
	VirtAddrBits = 48
	// PhysAddrBits is the number of physical address bits the PTE layout
	// reserves for the page frame number field (Fig. 4 of the paper).
	PhysAddrBits = 52
)

// VirtAddr is a byte-granular virtual address.
type VirtAddr uint64

// PhysAddr is a byte-granular physical address.
type PhysAddr uint64

// VPN is a virtual page number: a virtual address shifted right by Shift4K.
// All VPNs in the simulator are in units of 4 KiB base pages regardless of
// the page size that maps them.
type VPN uint64

// PFN is a physical frame number in units of 4 KiB base frames.
type PFN uint64

// PageClass identifies one of the supported hardware page sizes.
type PageClass uint8

// The supported page classes, ordered by size.
const (
	Class4K PageClass = iota
	Class2M
	Class1G
)

// String returns the conventional name of the page class.
func (c PageClass) String() string {
	switch c {
	case Class4K:
		return "4K"
	case Class2M:
		return "2M"
	case Class1G:
		return "1G"
	default:
		return fmt.Sprintf("PageClass(%d)", uint8(c))
	}
}

// Shift returns the offset width of the page class.
func (c PageClass) Shift() uint {
	switch c {
	case Class4K:
		return Shift4K
	case Class2M:
		return Shift2M
	case Class1G:
		return Shift1G
	default:
		panic("mem: invalid PageClass")
	}
}

// Size returns the page size in bytes.
func (c PageClass) Size() uint64 { return uint64(1) << c.Shift() }

// BasePages returns how many 4 KiB base pages the class covers.
func (c PageClass) BasePages() uint64 { return c.Size() / Size4K }

// PageNumber returns the 4 KiB virtual page number containing the address.
func (a VirtAddr) PageNumber() VPN { return VPN(a >> Shift4K) }

// Offset returns the byte offset of the address within its 4 KiB page.
func (a VirtAddr) Offset() uint64 { return uint64(a) & (Size4K - 1) }

// PageNumber returns the 4 KiB physical frame number containing the address.
func (a PhysAddr) PageNumber() PFN { return PFN(a >> Shift4K) }

// Offset returns the byte offset of the address within its 4 KiB frame.
func (a PhysAddr) Offset() uint64 { return uint64(a) & (Size4K - 1) }

// Addr returns the first virtual address of the page.
func (v VPN) Addr() VirtAddr { return VirtAddr(v << Shift4K) }

// Addr returns the first physical address of the frame.
func (p PFN) Addr() PhysAddr { return PhysAddr(p << Shift4K) }

// AlignDown rounds v down to a multiple of align pages.
// align must be a power of two.
func (v VPN) AlignDown(align uint64) VPN {
	return VPN(uint64(v) &^ (align - 1))
}

// AlignUp rounds v up to a multiple of align pages.
// align must be a power of two.
func (v VPN) AlignUp(align uint64) VPN {
	return VPN((uint64(v) + align - 1) &^ (align - 1))
}

// IsAligned reports whether v is a multiple of align pages.
func (v VPN) IsAligned(align uint64) bool { return uint64(v)&(align-1) == 0 }

// AlignDown rounds p down to a multiple of align frames.
func (p PFN) AlignDown(align uint64) PFN {
	return PFN(uint64(p) &^ (align - 1))
}

// IsAligned reports whether p is a multiple of align frames.
func (p PFN) IsAligned(align uint64) bool { return uint64(p)&(align-1) == 0 }

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x uint64) bool { return x != 0 && x&(x-1) == 0 }

// Log2 returns floor(log2(x)). It panics if x == 0.
func Log2(x uint64) uint {
	if x == 0 {
		panic("mem: Log2 of zero")
	}
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// NextPow2 returns the smallest power of two >= x (and 1 for x == 0).
func NextPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	p := uint64(1)
	for p < x {
		p <<= 1
	}
	return p
}

// HumanBytes renders a byte count using binary units (KiB, MiB, GiB).
func HumanBytes(b uint64) string {
	switch {
	case b >= Size1G && b%Size1G == 0:
		return fmt.Sprintf("%dGiB", b/Size1G)
	case b >= Size2M && b%Size2M == 0:
		return fmt.Sprintf("%dMiB", b/(1<<20))
	case b >= 1024 && b%1024 == 0:
		return fmt.Sprintf("%dKiB", b/1024)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// HumanPages renders a page count as a short string (e.g. "16", "2K", "64K"),
// matching the formatting of Table 6 in the paper.
func HumanPages(pages uint64) string {
	switch {
	case pages >= 1<<20 && pages%(1<<20) == 0:
		return fmt.Sprintf("%dM", pages>>20)
	case pages >= 1<<10 && pages%(1<<10) == 0:
		return fmt.Sprintf("%dK", pages>>10)
	default:
		return fmt.Sprintf("%d", pages)
	}
}
