package mem

import (
	"testing"
	"testing/quick"
)

func TestPageClassSizes(t *testing.T) {
	cases := []struct {
		class PageClass
		size  uint64
		pages uint64
		name  string
	}{
		{Class4K, 4096, 1, "4K"},
		{Class2M, 2 << 20, 512, "2M"},
		{Class1G, 1 << 30, 262144, "1G"},
	}
	for _, c := range cases {
		if got := c.class.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.class, got, c.size)
		}
		if got := c.class.BasePages(); got != c.pages {
			t.Errorf("%v.BasePages() = %d, want %d", c.class, got, c.pages)
		}
		if got := c.class.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.class, got, c.name)
		}
	}
}

func TestPageClassInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shift() on invalid PageClass did not panic")
		}
	}()
	PageClass(99).Shift()
}

func TestAddrPageRoundTrip(t *testing.T) {
	va := VirtAddr(0x7f1234567abc)
	if got := va.PageNumber(); got != VPN(0x7f1234567) {
		t.Errorf("PageNumber = %#x, want %#x", uint64(got), uint64(0x7f1234567))
	}
	if got := va.Offset(); got != 0xabc {
		t.Errorf("Offset = %#x, want 0xabc", got)
	}
	if got := va.PageNumber().Addr(); got != VirtAddr(0x7f1234567000) {
		t.Errorf("Addr = %#x, want 0x7f1234567000", uint64(got))
	}

	pa := PhysAddr(0x89abcdef123)
	if pa.PageNumber().Addr()+PhysAddr(pa.Offset()) != pa {
		t.Errorf("PhysAddr round trip failed for %#x", uint64(pa))
	}
}

func TestAlignment(t *testing.T) {
	v := VPN(0x1237)
	if got := v.AlignDown(16); got != 0x1230 {
		t.Errorf("AlignDown(16) = %#x, want 0x1230", uint64(got))
	}
	if got := v.AlignUp(16); got != 0x1240 {
		t.Errorf("AlignUp(16) = %#x, want 0x1240", uint64(got))
	}
	if VPN(0x1230).AlignUp(16) != 0x1230 {
		t.Error("AlignUp of aligned value changed it")
	}
	if !VPN(0x1230).IsAligned(16) || VPN(0x1231).IsAligned(16) {
		t.Error("IsAligned wrong")
	}
	if !PFN(512).IsAligned(512) || PFN(513).IsAligned(512) {
		t.Error("PFN IsAligned wrong")
	}
	if PFN(1000).AlignDown(512) != 512 {
		t.Error("PFN AlignDown wrong")
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(raw uint64, shiftSeed uint8) bool {
		align := uint64(1) << (shiftSeed % 17) // 1..65536
		v := VPN(raw % (1 << 40))
		down, up := v.AlignDown(align), v.AlignUp(align)
		if !down.IsAligned(align) || !up.IsAligned(align) {
			return false
		}
		if down > v || up < v {
			return false
		}
		return uint64(up-down) == 0 || uint64(up-down) == align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPow2Helpers(t *testing.T) {
	if !IsPow2(1) || !IsPow2(1024) || IsPow2(0) || IsPow2(6) {
		t.Error("IsPow2 wrong")
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1<<16) != 16 || Log2(3) != 1 {
		t.Error("Log2 wrong")
	}
	if NextPow2(0) != 1 || NextPow2(1) != 1 || NextPow2(3) != 4 || NextPow2(1024) != 1024 || NextPow2(1025) != 2048 {
		t.Error("NextPow2 wrong")
	}
}

func TestLog2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestHumanFormatting(t *testing.T) {
	if HumanBytes(4096) != "4KiB" || HumanBytes(Size2M) != "2MiB" || HumanBytes(Size1G) != "1GiB" || HumanBytes(100) != "100B" {
		t.Error("HumanBytes wrong")
	}
	if HumanPages(4) != "4" || HumanPages(2048) != "2K" || HumanPages(65536) != "64K" || HumanPages(1<<20) != "1M" {
		t.Error("HumanPages wrong")
	}
}

func TestChunkTranslate(t *testing.T) {
	c := Chunk{StartVPN: 100, StartPFN: 5000, Pages: 16}
	if !c.Contains(100) || !c.Contains(115) || c.Contains(116) || c.Contains(99) {
		t.Error("Contains wrong")
	}
	if c.Translate(100) != 5000 || c.Translate(115) != 5015 {
		t.Error("Translate wrong")
	}
	if c.Bytes() != 16*4096 {
		t.Error("Bytes wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Translate outside chunk did not panic")
		}
	}()
	c.Translate(200)
}

func TestChunkListLookup(t *testing.T) {
	cl := ChunkList{
		{StartVPN: 0, StartPFN: 100, Pages: 4},
		{StartVPN: 10, StartPFN: 200, Pages: 2},
		{StartVPN: 100, StartPFN: 300, Pages: 50},
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if cl.TotalPages() != 56 {
		t.Errorf("TotalPages = %d, want 56", cl.TotalPages())
	}
	for _, tc := range []struct {
		v    VPN
		want PFN
		ok   bool
	}{
		{0, 100, true}, {3, 103, true}, {4, 0, false},
		{10, 200, true}, {11, 201, true}, {12, 0, false},
		{100, 300, true}, {149, 349, true}, {150, 0, false}, {99, 0, false},
	} {
		c, ok := cl.Lookup(tc.v)
		if ok != tc.ok {
			t.Errorf("Lookup(%d) ok = %v, want %v", tc.v, ok, tc.ok)
			continue
		}
		if ok && c.Translate(tc.v) != tc.want {
			t.Errorf("Lookup(%d) -> %d, want %d", tc.v, c.Translate(tc.v), tc.want)
		}
	}
}

func TestChunkListValidateErrors(t *testing.T) {
	if err := (ChunkList{{StartVPN: 0, Pages: 0}}).Validate(); err == nil {
		t.Error("empty chunk not rejected")
	}
	overlapping := ChunkList{
		{StartVPN: 0, StartPFN: 0, Pages: 10},
		{StartVPN: 5, StartPFN: 100, Pages: 10},
	}
	if err := overlapping.Validate(); err == nil {
		t.Error("overlapping chunks not rejected")
	}
}

func TestCoalesceVirtual(t *testing.T) {
	cl := ChunkList{
		{StartVPN: 0, StartPFN: 100, Pages: 4},
		{StartVPN: 4, StartPFN: 104, Pages: 4},  // merges with previous
		{StartVPN: 8, StartPFN: 300, Pages: 4},  // physically discontiguous
		{StartVPN: 20, StartPFN: 304, Pages: 4}, // virtually discontiguous
	}
	got := cl.CoalesceVirtual()
	want := ChunkList{
		{StartVPN: 0, StartPFN: 100, Pages: 8},
		{StartVPN: 8, StartPFN: 300, Pages: 4},
		{StartVPN: 20, StartPFN: 304, Pages: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d chunks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
	if CoalesceEmpty := (ChunkList{}).CoalesceVirtual(); CoalesceEmpty != nil {
		t.Error("coalescing empty list should return nil")
	}
}

func TestCoalescePreservesTranslation(t *testing.T) {
	f := func(seeds []uint8) bool {
		// Build a random valid chunk list from seeds.
		var cl ChunkList
		vpn, pfn := VPN(0), PFN(1<<20)
		for _, s := range seeds {
			pages := uint64(s%16) + 1
			gapV := uint64(s % 3) // sometimes virtually adjacent
			gapP := uint64(s % 5) // sometimes physically adjacent
			vpn += VPN(gapV)
			pfn += PFN(gapP)
			cl = append(cl, Chunk{StartVPN: vpn, StartPFN: pfn, Pages: pages})
			vpn += VPN(pages)
			pfn += PFN(pages)
		}
		co := cl.CoalesceVirtual()
		// Every VPN must translate identically before and after.
		for _, c := range cl {
			for v := c.StartVPN; v < c.EndVPN(); v++ {
				oc, ok1 := cl.Lookup(v)
				cc, ok2 := co.Lookup(v)
				if !ok1 || !ok2 || oc.Translate(v) != cc.Translate(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	cl := ChunkList{
		{StartVPN: 0, StartPFN: 0, Pages: 4},
		{StartVPN: 10, StartPFN: 100, Pages: 4},
		{StartVPN: 20, StartPFN: 200, Pages: 16},
	}
	h := BuildHistogram(cl)
	if len(h) != 2 {
		t.Fatalf("got %d bins, want 2", len(h))
	}
	if h[0] != (HistogramBin{Contiguity: 4, Frequency: 2}) {
		t.Errorf("bin 0 = %+v", h[0])
	}
	if h[1] != (HistogramBin{Contiguity: 16, Frequency: 1}) {
		t.Errorf("bin 1 = %+v", h[1])
	}
	if h.TotalPages() != 24 || h.TotalChunks() != 3 {
		t.Errorf("totals = %d pages, %d chunks", h.TotalPages(), h.TotalChunks())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := Histogram{{Contiguity: 1, Frequency: 8}, {Contiguity: 8, Frequency: 1}}
	cdf := h.CDF()
	if len(cdf) != 2 {
		t.Fatalf("got %d points", len(cdf))
	}
	if cdf[0].CumFraction != 0.5 {
		t.Errorf("first point fraction = %v, want 0.5", cdf[0].CumFraction)
	}
	if cdf[1].CumFraction != 1.0 {
		t.Errorf("last point fraction = %v, want 1.0", cdf[1].CumFraction)
	}
	if (Histogram{}).CDF() != nil {
		t.Error("empty histogram CDF should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		var cl ChunkList
		v := VPN(0)
		for _, s := range sizes {
			p := uint64(s%2048) + 1
			cl = append(cl, Chunk{StartVPN: v, StartPFN: PFN(v), Pages: p})
			v += VPN(p + 1)
		}
		cdf := BuildHistogram(cl).CDF()
		prevX, prevY := uint64(0), 0.0
		for _, pt := range cdf {
			if pt.ChunkPages <= prevX && prevX != 0 {
				return false
			}
			if pt.CumFraction < prevY {
				return false
			}
			prevX, prevY = pt.ChunkPages, pt.CumFraction
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].CumFraction > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
