package mem

import (
	"fmt"
	"sort"
)

// Chunk describes a run of virtually- and physically-contiguous base pages:
// Pages consecutive VPNs starting at StartVPN map to Pages consecutive PFNs
// starting at StartPFN. Chunks are the unit in which mapping scenarios are
// described and in which the OS reasons about contiguity (Section 4 of the
// paper: the contiguity histogram is a histogram over chunk sizes).
type Chunk struct {
	StartVPN VPN
	StartPFN PFN
	Pages    uint64
}

// EndVPN returns the first VPN after the chunk.
func (c Chunk) EndVPN() VPN { return c.StartVPN + VPN(c.Pages) }

// EndPFN returns the first PFN after the chunk.
func (c Chunk) EndPFN() PFN { return c.StartPFN + PFN(c.Pages) }

// Contains reports whether the chunk maps the given VPN.
func (c Chunk) Contains(v VPN) bool {
	return v >= c.StartVPN && v < c.EndVPN()
}

// Translate maps a VPN inside the chunk to its PFN. It panics if the VPN is
// outside the chunk; callers check Contains first.
func (c Chunk) Translate(v VPN) PFN {
	if !c.Contains(v) {
		panic(fmt.Sprintf("mem: VPN %#x outside chunk [%#x,%#x)", uint64(v), uint64(c.StartVPN), uint64(c.EndVPN())))
	}
	return c.StartPFN + PFN(v-c.StartVPN)
}

// Bytes returns the chunk size in bytes.
func (c Chunk) Bytes() uint64 { return c.Pages * Size4K }

// String renders the chunk as "VPN[a,b) -> PFN[c,d)".
func (c Chunk) String() string {
	return fmt.Sprintf("VPN[%#x,%#x)->PFN[%#x,%#x)",
		uint64(c.StartVPN), uint64(c.EndVPN()), uint64(c.StartPFN), uint64(c.EndPFN()))
}

// ChunkList is a set of non-overlapping chunks ordered by StartVPN.
// It is the canonical in-memory representation of a process memory mapping.
type ChunkList []Chunk

// Sort orders the list by StartVPN.
func (cl ChunkList) Sort() {
	sort.Slice(cl, func(i, j int) bool { return cl[i].StartVPN < cl[j].StartVPN })
}

// TotalPages returns the number of mapped base pages.
func (cl ChunkList) TotalPages() uint64 {
	var n uint64
	for _, c := range cl {
		n += c.Pages
	}
	return n
}

// Lookup finds the chunk containing v using binary search over the sorted
// list. The second result is false when v is unmapped.
func (cl ChunkList) Lookup(v VPN) (Chunk, bool) {
	i := sort.Search(len(cl), func(i int) bool { return cl[i].EndVPN() > v })
	if i < len(cl) && cl[i].Contains(v) {
		return cl[i], true
	}
	return Chunk{}, false
}

// Validate checks the invariants of a sorted chunk list: chunks are
// non-empty, ordered, and non-overlapping in virtual address space.
func (cl ChunkList) Validate() error {
	for i, c := range cl {
		if c.Pages == 0 {
			return fmt.Errorf("mem: chunk %d is empty", i)
		}
		if i > 0 && cl[i-1].EndVPN() > c.StartVPN {
			return fmt.Errorf("mem: chunk %d overlaps chunk %d (%s vs %s)", i, i-1, c, cl[i-1])
		}
	}
	return nil
}

// CoalesceVirtual merges chunks that are adjacent in both virtual and
// physical address space. The receiver must be sorted. The result is the
// minimal chunk list describing the same mapping, which is exactly the
// chunk structure the OS contiguity histogram is computed from.
func (cl ChunkList) CoalesceVirtual() ChunkList {
	if len(cl) == 0 {
		return nil
	}
	out := make(ChunkList, 0, len(cl))
	cur := cl[0]
	for _, c := range cl[1:] {
		if c.StartVPN == cur.EndVPN() && c.StartPFN == cur.EndPFN() {
			cur.Pages += c.Pages
			continue
		}
		out = append(out, cur)
		cur = c
	}
	return append(out, cur)
}

// Histogram summarizes chunk sizes as (contiguity, frequency) pairs sorted
// by ascending contiguity. This is the "contiguity histogram" the OS feeds
// into the dynamic anchor distance selection algorithm (Algorithm 1).
type Histogram []HistogramBin

// HistogramBin is one (contiguity, frequency) pair: Frequency chunks of
// exactly Contiguity base pages each.
type HistogramBin struct {
	Contiguity uint64 // chunk size in base pages
	Frequency  uint64 // number of chunks of that size
}

// BuildHistogram computes the contiguity histogram of a chunk list.
func BuildHistogram(cl ChunkList) Histogram {
	counts := make(map[uint64]uint64)
	for _, c := range cl {
		counts[c.Pages]++
	}
	h := make(Histogram, 0, len(counts))
	for cont, freq := range counts {
		h = append(h, HistogramBin{Contiguity: cont, Frequency: freq})
	}
	sort.Slice(h, func(i, j int) bool { return h[i].Contiguity < h[j].Contiguity })
	return h
}

// TotalPages returns the number of pages accounted for by the histogram.
func (h Histogram) TotalPages() uint64 {
	var n uint64
	for _, b := range h {
		n += b.Contiguity * b.Frequency
	}
	return n
}

// TotalChunks returns the number of chunks in the histogram.
func (h Histogram) TotalChunks() uint64 {
	var n uint64
	for _, b := range h {
		n += b.Frequency
	}
	return n
}

// CDF returns the cumulative distribution of *pages* over chunk sizes:
// point (x, y) means a fraction y of all mapped pages live in chunks of at
// most x base pages. This is the quantity plotted in Figure 1 of the paper.
func (h Histogram) CDF() []CDFPoint {
	total := h.TotalPages()
	if total == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(h))
	var cum uint64
	for _, b := range h {
		cum += b.Contiguity * b.Frequency
		out = append(out, CDFPoint{ChunkPages: b.Contiguity, CumFraction: float64(cum) / float64(total)})
	}
	return out
}

// CDFPoint is one point of a chunk-size CDF.
type CDFPoint struct {
	ChunkPages  uint64
	CumFraction float64
}
