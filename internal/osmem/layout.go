// Package osmem models the operating-system side of hybrid TLB
// coalescing (Sections 3.3 and 4 of the paper): it owns a process's
// memory mapping (the chunk list), installs it into an anchored page
// table under a page-size policy, maintains anchor contiguity across
// mapping changes, selects the per-process anchor distance from the
// contiguity histogram, and models the cost of anchor distance changes.
package osmem

import (
	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
)

// Policy describes which translation machinery the OS uses for a process.
// Each translation scheme in internal/mmu pairs with one policy.
type Policy struct {
	// THP promotes 2 MiB-aligned, physically 2 MiB-contiguous regions to
	// huge pages (Linux transparent huge pages).
	THP bool
	// Anchors maintains anchor entries at the process's anchor distance
	// (the paper's scheme). Anchor-covered regions stay 4 KiB-mapped;
	// with THP also set, only regions not covered by anchors are
	// promoted.
	Anchors bool
	// Cost selects the distance-selection cost model (zero value: the
	// entry-count model that reproduces the paper's Table 6).
	Cost core.CostModel
}

// SegKind classifies how a segment of a chunk is mapped.
type SegKind uint8

// Segment kinds produced by DecomposeChunk.
const (
	// Seg4K: plain 4 KiB pages, no anchors.
	Seg4K SegKind = iota
	// Seg2M: one or more 2 MiB huge pages.
	Seg2M
	// SegAnchored: 4 KiB pages covered by anchor entries at every
	// distance-aligned VPN.
	SegAnchored
)

// String names the segment kind.
func (k SegKind) String() string {
	switch k {
	case Seg4K:
		return "4K"
	case Seg2M:
		return "2M"
	case SegAnchored:
		return "anchored"
	default:
		return "SegKind?"
	}
}

// Segment is a physically contiguous portion of a chunk mapped with one
// mechanism.
type Segment struct {
	Kind     SegKind
	StartVPN mem.VPN
	StartPFN mem.PFN
	Pages    uint64
}

// EndVPN returns the first VPN after the segment.
func (s Segment) EndVPN() mem.VPN { return s.StartVPN + mem.VPN(s.Pages) }

// DecomposeChunk splits one physically contiguous chunk into mapping
// segments according to the policy and anchor distance:
//
//   - With anchors, the suffix of the chunk starting at the first
//     distance-aligned VPN is anchor-covered (every aligned anchor inside
//     it records the run length to the chunk end, so all its pages
//     translate through anchors). The misaligned head falls through to
//     the THP/4K rules.
//   - With THP, 2 MiB-aligned subruns (virtually and physically) of
//     non-anchored regions become huge pages.
//   - Everything else is 4 KiB pages.
//
// dist is ignored unless pol.Anchors is set.
func DecomposeChunk(c mem.Chunk, pol Policy, dist uint64) []Segment {
	var segs []Segment
	end := c.EndVPN()

	nonAnchoredEnd := end
	if pol.Anchors {
		if !core.ValidDistance(dist) {
			panic("osmem: DecomposeChunk with anchors requires a valid distance")
		}
		if a := c.StartVPN.AlignUp(dist); a < end {
			nonAnchoredEnd = a
		}
	}

	// Head region [start, nonAnchoredEnd): THP promotion where possible.
	emit4K := func(from, to mem.VPN) {
		if from < to {
			segs = append(segs, Segment{Seg4K, from, c.Translate(from), uint64(to - from)})
		}
	}
	v := c.StartVPN
	if pol.THP && nonAnchoredEnd > v {
		// A huge page needs both the VPN and the PFN 512-aligned; since
		// PFN = StartPFN + (VPN - StartVPN), that is possible only when
		// the virtual-to-physical offset is 2 MiB-congruent.
		congruent := (uint64(c.StartVPN)-uint64(c.StartPFN))%mem.PagesPer2M == 0
		if congruent {
			hugeStart := v.AlignUp(mem.PagesPer2M)
			hugeEnd := nonAnchoredEnd.AlignDown(mem.PagesPer2M)
			if hugeStart < hugeEnd {
				emit4K(v, hugeStart)
				segs = append(segs, Segment{Seg2M, hugeStart, c.Translate(hugeStart), uint64(hugeEnd - hugeStart)})
				v = hugeEnd
			}
		}
	}
	emit4K(v, nonAnchoredEnd)

	// Anchored tail [nonAnchoredEnd, end).
	if nonAnchoredEnd < end {
		segs = append(segs, Segment{SegAnchored, nonAnchoredEnd, c.Translate(nonAnchoredEnd), uint64(end - nonAnchoredEnd)})
	}
	return segs
}
