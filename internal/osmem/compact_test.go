package osmem

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/mem"
)

// fragmentedChunks builds a mapping of many small physically scattered
// chunks covering a contiguous VA range.
func fragmentedChunks(n int, pagesEach uint64) mem.ChunkList {
	var cl mem.ChunkList
	vpn := mem.VPN(0x10000)
	pfn := mem.PFN(1 << 22)
	for i := 0; i < n; i++ {
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: pagesEach})
		vpn += mem.VPN(pagesEach)
		pfn += mem.PFN(pagesEach + 512) // scattered, congruence-preserving
	}
	return cl
}

func TestCompactMergesChunks(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(fragmentedChunks(64, 8), 0); err != nil {
		t.Fatal(err)
	}
	if p.AnchorDistance() > 16 {
		t.Fatalf("fragmented mapping selected distance %d", p.AnchorDistance())
	}
	res := p.Compact(1<<24, DefaultSweepCost)
	if res.ChunksBefore != 64 || res.ChunksAfter != 1 {
		t.Fatalf("compact: %d -> %d chunks", res.ChunksBefore, res.ChunksAfter)
	}
	if res.PagesMoved == 0 {
		t.Error("no pages moved")
	}
	// The re-selection reacted to the new histogram with a much larger
	// distance.
	if !res.Reselect.Changed || p.AnchorDistance() < 256 {
		t.Errorf("post-compaction distance = %d (changed=%v)", p.AnchorDistance(), res.Reselect.Changed)
	}
	checkTranslations(t, p)
	// Anchor coverage now spans the whole compacted footprint.
	d := p.AnchorDistance()
	avpn := mem.VPN(0x10000).AlignUp(d)
	if got := p.PageTable().AnchorContiguity(avpn, d); got == 0 {
		t.Error("no anchor after compaction")
	}
}

func TestCompactPreservesTranslationUnderRandomMappings(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		p := NewProcess(Policy{THP: true, Anchors: true})
		if err := p.InstallChunks(randomChunks(r, 15, 1024), 0); err != nil {
			t.Fatal(err)
		}
		p.Compact(1<<25, DefaultSweepCost)
		checkTranslations(t, p)
		if err := p.Chunks().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactEmptyProcess(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	res := p.Compact(1<<24, DefaultSweepCost)
	if res.ChunksBefore != 0 || res.ChunksAfter != 0 || res.PagesMoved != 0 {
		t.Errorf("empty compact = %+v", res)
	}
}

func TestPromoteHugePages(t *testing.T) {
	p := NewProcess(Policy{THP: true})
	// A congruent 4-page-misaligned chunk: after installation it holds
	// 4 KiB pages (no anchors policy), fully promotable in the aligned
	// interior. Install with THP disabled first by using a chunk whose
	// head prevents promotion... simpler: install, demote via protection,
	// clear protection effects by promoting again.
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 2048}}, 0); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 4 {
		t.Fatalf("install promoted %d huge pages", p.HugePages())
	}
	// Punch a protection hole to demote one huge page.
	if err := p.SetProtection(100, 10, ProtRead); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 3 {
		t.Fatalf("after protection: %d huge pages", p.HugePages())
	}
	// Restore uniform protection; khugepaged re-promotes the demoted
	// region.
	if err := p.SetProtection(100, 10, ProtDefault); err != nil {
		t.Fatal(err)
	}
	res := p.PromoteHugePages()
	if res.Promoted != 1 {
		t.Fatalf("promoted = %d, want 1", res.Promoted)
	}
	if p.HugePages() != 4 {
		t.Errorf("huge pages = %d, want 4", p.HugePages())
	}
	w := p.PageTable().Walk(100)
	if !w.Present || w.Class != mem.Class2M || w.PFN != 100 {
		t.Errorf("walk(100) = %+v", w)
	}
	checkTranslations(t, p)
}

func TestPromoteRespectsProtectionBoundaries(t *testing.T) {
	p := NewProcess(Policy{THP: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1024}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetProtection(100, 10, ProtRead); err != nil {
		t.Fatal(err)
	}
	res := p.PromoteHugePages()
	if res.Promoted != 0 {
		t.Errorf("promoted across a protection boundary: %d", res.Promoted)
	}
	// Non-THP policies never promote.
	q := NewProcess(Policy{})
	if err := q.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1024}}, 0); err != nil {
		t.Fatal(err)
	}
	if r := q.PromoteHugePages(); r.Promoted != 0 {
		t.Error("non-THP policy promoted")
	}
}

func TestCompactionImprovesAnchorEfficiency(t *testing.T) {
	// End-to-end: fragmented mapping thrashes; after compaction the same
	// footprint is covered by a handful of anchors.
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(fragmentedChunks(512, 8), 0); err != nil {
		t.Fatal(err)
	}
	histBefore := p.Histogram()
	p.Compact(1<<25, DefaultSweepCost)
	histAfter := p.Histogram()
	if histAfter.TotalChunks() >= histBefore.TotalChunks() {
		t.Errorf("chunks: %d -> %d", histBefore.TotalChunks(), histAfter.TotalChunks())
	}
	if histAfter.TotalPages() != histBefore.TotalPages() {
		t.Errorf("pages changed: %d -> %d", histBefore.TotalPages(), histAfter.TotalPages())
	}
}
