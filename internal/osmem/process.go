package osmem

import (
	"fmt"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

// Process models one process's virtual memory state as the OS sees it:
// the authoritative chunk list, the anchored page table built from it, the
// current anchor distance, and shootdown accounting.
type Process struct {
	pt     *pagetable.Table
	chunks mem.ChunkList
	policy Policy
	dist   uint64

	// huge records the base VPNs of promoted 2 MiB pages so unmaps can
	// demote them.
	huge map[mem.VPN]mem.PFN

	// regions is the multi-region anchor table (Section 4.2 extension);
	// nil for single-distance processes.
	regions []Region

	// prots records explicit page protections (Section 3.3); pages not
	// covered carry ProtDefault.
	prots []protRange

	// Shootdown accounting (Section 3.3: mapping updates invalidate the
	// affected TLB entries; distance changes flush whole TLBs).
	entryShootdowns uint64
	fullFlushes     uint64
	distanceChanges uint64

	flushHooks      []func()
	invalidateHooks []func(mem.VPN)
}

// NewProcess creates a process with the given policy. The anchor distance
// starts at the minimum and is set by InstallChunks or SetDistance.
func NewProcess(pol Policy) *Process {
	return &Process{
		pt:     pagetable.New(),
		policy: pol,
		dist:   core.MinDistance,
		huge:   make(map[mem.VPN]mem.PFN),
	}
}

// PageTable exposes the process page table (the MMU walks it).
func (p *Process) PageTable() *pagetable.Table { return p.pt }

// Policy returns the process's mapping policy.
func (p *Process) Policy() Policy { return p.policy }

// AnchorDistance returns the current anchor distance in pages.
func (p *Process) AnchorDistance() uint64 { return p.dist }

// Chunks returns the authoritative mapping (do not mutate).
func (p *Process) Chunks() mem.ChunkList { return p.chunks }

// Histogram computes the contiguity histogram of the current mapping, the
// input to the dynamic distance selection algorithm.
func (p *Process) Histogram() mem.Histogram { return mem.BuildHistogram(p.chunks) }

// EntryShootdowns returns the count of single-entry TLB invalidations the
// OS has issued for mapping updates.
func (p *Process) EntryShootdowns() uint64 { return p.entryShootdowns }

// FullFlushes returns the count of whole-TLB flushes (anchor distance
// changes).
func (p *Process) FullFlushes() uint64 { return p.fullFlushes }

// DistanceChanges returns how many times the anchor distance changed.
func (p *Process) DistanceChanges() uint64 { return p.distanceChanges }

// OnFlush registers a hook invoked on every whole-TLB flush; MMUs register
// their TLB flush here so distance changes invalidate cached translations.
func (p *Process) OnFlush(fn func()) { p.flushHooks = append(p.flushHooks, fn) }

func (p *Process) flushTLBs() {
	p.fullFlushes++
	for _, fn := range p.flushHooks {
		fn()
	}
}

// OnInvalidate registers a hook invoked for every single-entry TLB
// shootdown; MMUs register their entry invalidation here so mapping
// updates evict stale cached translations.
func (p *Process) OnInvalidate(fn func(mem.VPN)) {
	p.invalidateHooks = append(p.invalidateHooks, fn)
}

// shootdown accounts one single-entry shootdown of vpn and delivers it to
// the registered MMUs.
func (p *Process) shootdown(vpn mem.VPN) {
	p.entryShootdowns++
	for _, fn := range p.invalidateHooks {
		fn(vpn)
	}
}

// InstallChunks replaces the process mapping with the given chunk list:
// it coalesces and validates the list, selects the anchor distance from
// the contiguity histogram when the policy uses anchors (unless a
// non-zero fixedDistance pins it, for the static-ideal configuration),
// rebuilds the page table, and flushes TLBs.
func (p *Process) InstallChunks(cl mem.ChunkList, fixedDistance uint64) error {
	sorted := append(mem.ChunkList(nil), cl...)
	sorted.Sort()
	sorted = sorted.CoalesceVirtual()
	if err := sorted.Validate(); err != nil {
		return fmt.Errorf("osmem: invalid chunk list: %w", err)
	}
	p.chunks = sorted

	if p.policy.Anchors {
		switch {
		case fixedDistance != 0 && !core.ValidDistance(fixedDistance):
			return fmt.Errorf("osmem: invalid fixed anchor distance %d", fixedDistance)
		case fixedDistance != 0:
			p.dist = fixedDistance
		default:
			p.dist, _ = core.SelectDistanceModel(mem.BuildHistogram(sorted), p.policy.Cost)
		}
	}

	p.pt = pagetable.New()
	p.huge = make(map[mem.VPN]mem.PFN)
	p.regions = nil
	p.prots = nil
	for _, c := range sorted {
		p.installChunkAt(c, p.dist)
	}
	p.flushTLBs()
	return nil
}

func (p *Process) installChunkAt(c mem.Chunk, dist uint64) {
	for _, s := range DecomposeChunk(c, p.policy, dist) {
		switch s.Kind {
		case Seg2M:
			for off := uint64(0); off < s.Pages; off += mem.PagesPer2M {
				vpn := s.StartVPN + mem.VPN(off)
				pfn := s.StartPFN + mem.PFN(off)
				if err := p.pt.Map2M(vpn, pfn, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
					panic(fmt.Sprintf("osmem: 2M install failed: %v", err))
				}
				p.huge[vpn] = pfn
			}
		case Seg4K, SegAnchored:
			for off := uint64(0); off < s.Pages; off++ {
				p.pt.Map4K(s.StartVPN+mem.VPN(off), s.StartPFN+mem.PFN(off), pagetable.FlagWrite|pagetable.FlagUser)
			}
			if s.Kind == SegAnchored {
				p.writeAnchors(s, c, dist)
			}
		}
	}
}

// writeAnchors records contiguity at every distance-aligned VPN of an
// anchored segment. The segment always ends at its chunk's end, so the
// physical run from each anchor extends to the chunk end.
func (p *Process) writeAnchors(s Segment, c mem.Chunk, dist uint64) {
	for avpn := s.StartVPN.AlignUp(dist); avpn < s.EndVPN(); avpn += mem.VPN(dist) {
		run := uint64(c.EndVPN() - avpn)
		p.pt.SetAnchorContiguity(avpn, dist, run)
	}
}

// Translate is the reference translation straight from the chunk list
// (what a correct MMU must produce). The second result is false for
// unmapped VPNs.
func (p *Process) Translate(vpn mem.VPN) (mem.PFN, bool) {
	c, ok := p.chunks.Lookup(vpn)
	if !ok {
		return 0, false
	}
	return c.Translate(vpn), true
}

// FootprintPages returns the number of mapped base pages.
func (p *Process) FootprintPages() uint64 { return p.chunks.TotalPages() }

// HugePages returns how many 2 MiB pages are installed.
func (p *Process) HugePages() int { return len(p.huge) }

// IsHugeMapped reports whether vpn is translated by a 2 MiB page.
func (p *Process) IsHugeMapped(vpn mem.VPN) bool {
	_, ok := p.huge[vpn.AlignDown(mem.PagesPer2M)]
	return ok
}
