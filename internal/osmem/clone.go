package osmem

import (
	"encoding/binary"

	"hybridtlb/internal/mem"
)

// Shard-replay support for Process: deep clones so per-shard simulators
// own private OS state, canonical serialization of the behaviour-relevant
// part of that state, and post-merge adoption of replay-computed counters
// back into the original process.

// Clone returns a deep copy of the process suitable for an independent
// shard simulator: the page table and huge-page map are deep-copied (the
// MMU walk path mutates table stats, and sweeps rewrite anchor entries),
// while the immutable chunk list, region table, and protection ranges are
// shared by value. Flush/invalidate hooks are NOT copied — the clone's
// MMU registers its own.
func (p *Process) Clone() *Process {
	huge := make(map[mem.VPN]mem.PFN, len(p.huge))
	for k, v := range p.huge {
		huge[k] = v
	}
	return &Process{
		pt:              p.pt.Clone(),
		chunks:          p.chunks,
		policy:          p.policy,
		dist:            p.dist,
		huge:            huge,
		regions:         append([]Region(nil), p.regions...),
		prots:           append([]protRange(nil), p.prots...),
		entryShootdowns: p.entryShootdowns,
		fullFlushes:     p.fullFlushes,
		distanceChanges: p.distanceChanges,
	}
}

// AppendCanonical appends the behaviour-relevant OS-side state to dst:
// the current anchor distance (single or per region). Everything else a
// drive can observe through the process — chunk list, page table
// contents, huge map, protections — is a pure function of the immutable
// layout and the current distance(s), because distance changes re-sweep
// every anchor of the active alignment and the layout never mutates
// mid-drive (churn runs through a separate serial driver). Shootdown and
// flush counters are outputs, not behavioural inputs, so they are
// deliberately excluded.
func (p *Process) AppendCanonical(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, p.dist)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(p.regions)))
	for _, r := range p.regions {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Start))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.End))
		dst = binary.LittleEndian.AppendUint64(dst, r.Distance)
	}
	return dst
}

// AdoptReplayState force-restores the distance and the event counters
// after a shard replay computed their true end-of-run values externally.
// No sweeps or flushes run: the caller asserts this state was reached by
// an exact replay of the same access stream.
func (p *Process) AdoptReplayState(dist, distanceChanges, fullFlushes, entryShootdowns uint64) {
	p.dist = dist
	p.distanceChanges = distanceChanges
	p.fullFlushes = fullFlushes
	p.entryShootdowns = entryShootdowns
}
