package osmem

import (
	"fmt"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

// This file implements dynamic mapping updates ("Updating Memory Mapping",
// Section 3.3): whenever pages are allocated, relocated, or deallocated,
// the OS updates the page table entries of the changed pages *and* the
// anchor entries whose contiguity they affect, then invalidates the stale
// TLB entries.

// AppendChunk adds a new physically contiguous chunk to the mapping (a
// fresh allocation). The chunk may be virtually adjacent to an existing
// chunk, in which case contiguity extends and the affected anchors are
// rewritten. New pages are mapped 4 KiB (with THP promotion inside the new
// chunk where alignment allows); anchors over the merged chunk extent are
// recomputed.
func (p *Process) AppendChunk(c mem.Chunk) error {
	if c.Pages == 0 {
		return fmt.Errorf("osmem: empty chunk")
	}
	for _, existing := range p.chunks {
		if c.StartVPN < existing.EndVPN() && existing.StartVPN < c.EndVPN() {
			return fmt.Errorf("osmem: chunk %v overlaps existing %v", c, existing)
		}
	}

	// Map the new pages themselves (THP only inside the fresh chunk; the
	// anchored-tail rule uses the distance in effect at the chunk's VA).
	p.installChunkAt(c, p.distanceForChunk(c))

	// Merge into the authoritative list.
	p.chunks = append(p.chunks, c)
	p.chunks.Sort()
	p.chunks = p.chunks.CoalesceVirtual()

	// If the chunk merged with neighbours, the merged chunk's anchors
	// (including ones before the new pages) see longer runs: rewrite them.
	merged, ok := p.chunks.Lookup(c.StartVPN)
	if !ok {
		panic("osmem: appended chunk not found after merge")
	}
	if merged != c && p.policy.Anchors {
		p.rewriteAnchorsIn(merged.StartVPN, merged.EndVPN())
	}
	return nil
}

// UnmapRange removes [startVPN, startVPN+pages) from the mapping: page
// table entries are cleared (2 MiB pages overlapping the range are demoted
// first), chunks are split, anchors whose runs were cut are rewritten, and
// one TLB entry shootdown is accounted per removed or demoted translation.
func (p *Process) UnmapRange(startVPN mem.VPN, pages uint64) {
	endVPN := startVPN + mem.VPN(pages)
	var next mem.ChunkList
	for _, c := range p.chunks {
		if endVPN <= c.StartVPN || c.EndVPN() <= startVPN {
			next = append(next, c)
			continue
		}
		lo, hi := c.StartVPN, c.EndVPN()
		cutLo, cutHi := maxVPN(lo, startVPN), minVPN(hi, endVPN)

		p.demoteHugeOverlapping(cutLo, cutHi, c)
		for v := cutLo; v < cutHi; v++ {
			if p.pt.Unmap(v) {
				p.shootdown(v)
			}
		}
		if lo < cutLo {
			next = append(next, mem.Chunk{StartVPN: lo, StartPFN: c.StartPFN, Pages: uint64(cutLo - lo)})
		}
		if cutHi < hi {
			next = append(next, mem.Chunk{StartVPN: cutHi, StartPFN: c.Translate(cutHi), Pages: uint64(hi - cutHi)})
		}
	}
	next.Sort()
	p.chunks = next

	if p.policy.Anchors {
		// Runs ending at or after the cut changed; rewriting anchors over
		// a window extending one max-contiguity before the cut is safe
		// and simple.
		from := mem.VPN(0)
		if startVPN > mem.VPN(1<<16) {
			from = (startVPN - 1<<16).AlignDown(p.dist)
		}
		p.rewriteAnchorsIn(from, endVPN)
	}
}

// demoteHugeOverlapping demotes every 2 MiB page overlapping [lo, hi) back
// to 4 KiB mappings for the portions that survive (are outside the cut but
// inside the chunk).
func (p *Process) demoteHugeOverlapping(lo, hi mem.VPN, c mem.Chunk) {
	for base := lo.AlignDown(mem.PagesPer2M); base < hi; base += mem.VPN(mem.PagesPer2M) {
		pfn, ok := p.huge[base]
		if !ok {
			continue
		}
		p.pt.Unmap(base)
		p.shootdown(base)
		delete(p.huge, base)
		for off := mem.VPN(0); off < mem.VPN(mem.PagesPer2M); off++ {
			v := base + off
			if v >= lo && v < hi {
				continue // being unmapped
			}
			if !c.Contains(v) {
				continue
			}
			p.pt.Map4K(v, pfn+mem.PFN(off), pagetable.FlagWrite|pagetable.FlagUser)
		}
	}
}

// rewriteAnchorsIn recomputes anchor contiguity for every distance-aligned
// VPN in [from, to): anchors on mapped 4 KiB pages get the run length to
// their chunk's end; anchors on unmapped or huge-mapped pages are cleared.
// Each rewritten anchor costs one TLB entry shootdown (the anchor entry
// may be cached).
func (p *Process) rewriteAnchorsIn(from, to mem.VPN) {
	// The anchor distance can vary by region (Section 4.2 extension), so
	// the stride is re-derived per anchor.
	d := p.DistanceAt(from)
	for avpn := from.AlignUp(d); avpn < to; {
		d = p.DistanceAt(avpn)
		if !avpn.IsAligned(d) {
			// Region boundary moved us off this region's alignment.
			avpn = avpn.AlignUp(d)
			continue
		}
		run := p.anchorRun(avpn)
		if p.pt.SetAnchorContiguity(avpn, d, run) > 0 {
			p.shootdown(avpn)
		}
		avpn += mem.VPN(d)
	}
}

func minVPN(a, b mem.VPN) mem.VPN {
	if a < b {
		return a
	}
	return b
}

func maxVPN(a, b mem.VPN) mem.VPN {
	if a > b {
		return a
	}
	return b
}
