package osmem

import (
	"fmt"
	"sort"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

// This file implements the paper's Section 4.2 future-work extension:
// multi-region anchor TLBs. A single per-process anchor distance assumes
// the whole address space has one clusterable chunk size, but different
// semantic regions (code, heap, large mmaps) can have very different
// contiguity. The OS therefore partitions the address space into a small
// number of regions — bounded by the hardware region table, which is
// searched fully associatively in parallel with the L2 lookup — and
// selects an anchor distance per region.

// MaxHWRegions is the hardware region-table capacity. Like RMM's range
// TLB, the table is searched fully associatively, which bounds its size.
const MaxHWRegions = 8

// Region is one address-space region with its own anchor distance.
type Region struct {
	Start    mem.VPN // inclusive
	End      mem.VPN // exclusive
	Distance uint64
}

// Contains reports whether vpn falls inside the region.
func (r Region) Contains(v mem.VPN) bool { return v >= r.Start && v < r.End }

// contiguityClass buckets a chunk size for region clustering: chunks in
// the same class have compatible optimal distances.
func contiguityClass(pages uint64) int {
	switch {
	case pages < 64:
		return 0 // fine-grained
	case pages < 2048:
		return 1 // medium
	default:
		return 2 // huge
	}
}

// PartitionRegions groups a sorted chunk list into at most maxRegions
// virtually contiguous regions of similar chunk size, then selects the
// anchor distance for each region from its own contiguity histogram.
func PartitionRegions(cl mem.ChunkList, maxRegions int) []Region {
	return PartitionRegionsModel(cl, maxRegions, core.CostEntryCount)
}

// PartitionRegionsModel is PartitionRegions with an explicit distance
// cost model.
func PartitionRegionsModel(cl mem.ChunkList, maxRegions int, model core.CostModel) []Region {
	if len(cl) == 0 {
		return nil
	}
	if maxRegions < 1 {
		maxRegions = 1
	}

	// Candidate regions: maximal runs of chunks in the same class.
	type candidate struct {
		start, end mem.VPN
		chunks     mem.ChunkList
		class      int
	}
	var cands []candidate
	for _, c := range cl {
		cls := contiguityClass(c.Pages)
		if n := len(cands); n > 0 && cands[n-1].class == cls {
			cands[n-1].end = c.EndVPN()
			cands[n-1].chunks = append(cands[n-1].chunks, c)
			continue
		}
		cands = append(cands, candidate{start: c.StartVPN, end: c.EndVPN(), chunks: mem.ChunkList{c}, class: cls})
	}

	// Merge down to the hardware budget: repeatedly merge the adjacent
	// pair with the smallest combined footprint (least-damage greedy).
	for len(cands) > maxRegions {
		best, bestPages := 0, uint64(1)<<63
		for i := 0; i+1 < len(cands); i++ {
			pages := cands[i].chunks.TotalPages() + cands[i+1].chunks.TotalPages()
			if pages < bestPages {
				best, bestPages = i, pages
			}
		}
		cands[best].end = cands[best+1].end
		cands[best].chunks = append(cands[best].chunks, cands[best+1].chunks...)
		cands = append(cands[:best+1], cands[best+2:]...)
	}

	regions := make([]Region, 0, len(cands))
	for _, c := range cands {
		d, _ := core.SelectDistanceModel(mem.BuildHistogram(c.chunks), model)
		regions = append(regions, Region{Start: c.start, End: c.end, Distance: d})
	}
	return regions
}

// InstallChunksRegions installs a mapping with per-region anchor
// distances (the multi-region extension). maxRegions is clamped to the
// hardware region table size; zero means MaxHWRegions.
func (p *Process) InstallChunksRegions(cl mem.ChunkList, maxRegions int) error {
	if !p.policy.Anchors {
		return fmt.Errorf("osmem: multi-region install requires an anchor policy")
	}
	if maxRegions <= 0 || maxRegions > MaxHWRegions {
		maxRegions = MaxHWRegions
	}
	sorted := append(mem.ChunkList(nil), cl...)
	sorted.Sort()
	sorted = sorted.CoalesceVirtual()
	if err := sorted.Validate(); err != nil {
		return fmt.Errorf("osmem: invalid chunk list: %w", err)
	}
	p.chunks = sorted
	p.regions = PartitionRegionsModel(sorted, maxRegions, p.policy.Cost)

	p.pt = pagetable.New()
	p.huge = make(map[mem.VPN]mem.PFN)
	p.prots = nil
	for _, c := range sorted {
		p.installChunkAt(c, p.distanceForChunk(c))
	}
	p.flushTLBs()
	return nil
}

// Regions returns the current region table (nil for single-distance
// processes).
func (p *Process) Regions() []Region { return p.regions }

// distanceForChunk returns the anchor distance governing a chunk (its
// containing region's, or the process distance).
func (p *Process) distanceForChunk(c mem.Chunk) uint64 {
	return p.DistanceAt(c.StartVPN)
}

// DistanceAt returns the anchor distance in effect for a VPN: the
// containing region's distance when a region table is installed, else the
// process-wide distance. The hardware looks the region table up in
// parallel with the L2 probe, so this costs no extra cycles.
func (p *Process) DistanceAt(vpn mem.VPN) uint64 {
	if len(p.regions) == 0 {
		return p.dist
	}
	i := sort.Search(len(p.regions), func(i int) bool { return p.regions[i].End > vpn })
	if i < len(p.regions) && p.regions[i].Contains(vpn) {
		return p.regions[i].Distance
	}
	return p.dist
}
