package osmem

import (
	"fmt"
	"sort"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

// This file implements the permission handling of Section 3.3
// ("Permission and Page Sharing"): even when a mapping is physically
// contiguous, pages may carry different r/w/x permissions, and an anchor
// entry — which supplies permissions for every page it covers — must not
// span a permission boundary. "Hybrid coalescing can support any
// fine-grained permission, by simply treating a page with a different
// permission as the non-contiguous page."

// Prot is a page protection bitmask.
type Prot uint8

// Protection bits.
const (
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtExec  Prot = 1 << 2

	// ProtDefault is the protection pages receive when none is set
	// explicitly (normal read-write data).
	ProtDefault = ProtRead | ProtWrite
)

// String renders the protection in ls -l style.
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// flags converts the protection to PTE flag bits.
func (p Prot) flags() pagetable.PTE {
	f := pagetable.FlagPresent | pagetable.FlagUser
	if p&ProtWrite != 0 {
		f |= pagetable.FlagWrite
	}
	if p&ProtExec == 0 {
		f |= pagetable.FlagNX
	}
	return f
}

// protRange is one maximal run of pages with uniform protection.
type protRange struct {
	start mem.VPN
	end   mem.VPN
	prot  Prot
}

// ProtectionAt returns the protection of a page (ProtDefault when never
// set explicitly).
func (p *Process) ProtectionAt(vpn mem.VPN) Prot {
	i := sort.Search(len(p.prots), func(i int) bool { return p.prots[i].end > vpn })
	if i < len(p.prots) && vpn >= p.prots[i].start {
		return p.prots[i].prot
	}
	return ProtDefault
}

// protBoundary returns the first VPN >= from where the protection in
// effect changes (or stays unbounded at `to` if none before it).
func (p *Process) protBoundary(from, to mem.VPN) mem.VPN {
	cur := p.ProtectionAt(from)
	for _, r := range p.prots {
		if r.end <= from {
			continue
		}
		if r.start > from && r.start < to && r.prot != cur {
			return r.start
		}
		if r.start <= from && r.end < to && r.end > from {
			// Protection changes at the end of the containing range
			// unless the next range continues with the same protection.
			if p.ProtectionAt(r.end) != cur {
				return r.end
			}
		}
	}
	return to
}

// SetProtection changes the protection of [start, start+pages): PTE flags
// are rewritten, anchors whose runs cross the new boundary are re-clamped
// (an anchor entry must supply one uniform permission), and the affected
// TLB entries are shot down. 2 MiB pages overlapping a partial-protection
// change are demoted first.
func (p *Process) SetProtection(start mem.VPN, pages uint64, prot Prot) error {
	if pages == 0 {
		return fmt.Errorf("osmem: empty protection range")
	}
	end := start + mem.VPN(pages)

	// Record the range (split/merge the sorted list).
	var next []protRange
	for _, r := range p.prots {
		if r.end <= start || r.start >= end {
			next = append(next, r)
			continue
		}
		if r.start < start {
			next = append(next, protRange{r.start, start, r.prot})
		}
		if r.end > end {
			next = append(next, protRange{end, r.end, r.prot})
		}
	}
	next = append(next, protRange{start, end, prot})
	sort.Slice(next, func(i, j int) bool { return next[i].start < next[j].start })
	p.prots = next

	// Rewrite leaf flags for mapped pages in the range; demote huge pages
	// that the boundary cuts through.
	for _, c := range p.chunks {
		lo, hi := maxVPN(c.StartVPN, start), minVPN(c.EndVPN(), end)
		if lo >= hi {
			continue
		}
		p.demoteHugeForProt(lo, hi, c)
		for v := lo; v < hi; v++ {
			if !p.IsHugeMapped(v) {
				p.pt.Map4K(v, c.Translate(v), prot.flags())
				p.shootdown(v)
			}
		}
	}

	// Re-clamp anchors: any anchor whose run could cross the new
	// boundaries must stop at them.
	if p.policy.Anchors {
		from := mem.VPN(0)
		if start > mem.VPN(pagetable.MaxContiguity) {
			from = start - mem.VPN(pagetable.MaxContiguity)
		}
		p.rewriteAnchorsIn(from, end)
	}
	return nil
}

// demoteHugeForProt demotes 2 MiB pages overlapping [lo, hi) whose span
// is not fully inside the range (a permission boundary inside a huge page
// forces 4 KiB granularity), and also those fully inside (their PTE flags
// change wholesale, which a demotion handles uniformly here).
func (p *Process) demoteHugeForProt(lo, hi mem.VPN, c mem.Chunk) {
	for base := lo.AlignDown(mem.PagesPer2M); base < hi; base += mem.VPN(mem.PagesPer2M) {
		pfn, ok := p.huge[base]
		if !ok {
			continue
		}
		p.pt.Unmap(base)
		p.shootdown(base)
		delete(p.huge, base)
		for off := mem.VPN(0); off < mem.VPN(mem.PagesPer2M); off++ {
			v := base + off
			if !c.Contains(v) {
				continue
			}
			p.pt.Map4K(v, pfn+mem.PFN(off), p.ProtectionAt(v).flags())
		}
	}
}

// anchorRun returns the contiguity an anchor at avpn may advertise: the
// physical run to its chunk's end, clamped at the first permission
// boundary (Section 3.3) and excluding huge-mapped anchors.
func (p *Process) anchorRun(avpn mem.VPN) uint64 {
	c, ok := p.chunks.Lookup(avpn)
	if !ok || p.IsHugeMapped(avpn) {
		return 0
	}
	end := c.EndVPN()
	if len(p.prots) > 0 {
		if b := p.protBoundary(avpn, end); b < end {
			end = b
		}
	}
	return uint64(end - avpn)
}
